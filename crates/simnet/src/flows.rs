//! Bulk-transfer flows with max-min fair bandwidth sharing.
//!
//! Transfers are modeled as fluid flows over their fixed route. Whenever the
//! flow set changes, link bandwidth is (re)divided by **progressive
//! filling**: repeatedly find the directed link with the smallest fair share
//! among its unfrozen flows, freeze those flows at that rate, subtract, and
//! continue. The result is the unique max-min fair allocation — the standard
//! fluid abstraction for competing TCP-like bulk transfers, and the
//! mechanism by which background traffic slows application communication in
//! the Table 1 experiments.
//!
//! # Incremental engine
//!
//! Max-min allocation decomposes over the connected components of the
//! *sharing graph* (flows are vertices-of-one-side, directed links the
//! other; a flow touches the links it crosses): progressive filling never
//! moves bandwidth between components. [`FlowTable`] exploits that three
//! ways ([`FlowEngine::Incremental`], the default):
//!
//! * **Sharing-cluster reallocation** — a link↔flow incidence index lets
//!   [`FlowTable::add_flow`]/[`FlowTable::remove_flow`] re-solve only the
//!   cluster of flows and links reachable from the changed flow's path
//!   (via [`nodesel_topology::maxmin::max_min_allocate_into`] over
//!   persistent scratch); disjoint clusters keep their rates untouched.
//! * **Completion heap** — the next flow completion is read from a
//!   lazy-deletion binary heap keyed on predicted finish time; a per-flow
//!   generation counter invalidates stale entries when a rate changes.
//!   Each flow keeps one *designated* entry (a lower bound on its finish):
//!   rate changes only push when they beat that bound, and a stale
//!   designated entry is re-queued when it surfaces — so heap size tracks
//!   the live-flow count even when every re-solve touches every flow.
//! * **Lazy settlement** — each flow carries an *anchor* (the time of its
//!   last rate change) and its remaining payload at that anchor; progress
//!   is evaluated closed-form on read, so [`FlowTable::settle`] is O(1)
//!   and an event only touches the flows of its own cluster. Per-link
//!   byte counters likewise accumulate on rate change and extrapolate on
//!   read, so the SNMP-style measurement layer sees exact values.
//!
//! [`FlowEngine::Reference`] keeps the paper-style full recompute (global
//! progressive filling, O(flows) completion scan, no heap) on the *same*
//! state layout: both engines produce bit-identical observable state
//! (asserted in debug builds after every incremental re-solve, and by the
//! `flow_parity` proptest suite over random churn sequences).

use crate::time::SimTime;
use nodesel_topology::maxmin::{max_min_allocate_into, MaxMinScratch};
use nodesel_topology::{Direction, EdgeId, NodeId, Path, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Identifier of a flow within a [`FlowTable`]. Unique per engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A directed link: the unit of capacity in the fluid model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirLink {
    /// The undirected edge.
    pub edge: EdgeId,
    /// Travel direction across it.
    pub dir: Direction,
}

impl DirLink {
    fn slot(self) -> usize {
        self.edge.index() * 2 + self.dir as usize
    }
}

/// Which reallocation strategy a [`FlowTable`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowEngine {
    /// Cluster-scoped re-solves, completion heap, lazy settlement:
    /// O(cluster) per flow event.
    #[default]
    Incremental,
    /// Full recompute on every change and a linear completion scan:
    /// O(flows · hops) per flow event. The oracle the incremental engine
    /// is checked against; also the baseline of the `flow_engine` bench.
    Reference,
}

#[derive(Debug, Clone)]
struct Flow {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    /// Remaining payload in bits as of `anchor`.
    remaining: f64,
    /// Current max-min fair rate in bits/s.
    rate: f64,
    /// Time of the last rate change; progress since is closed-form.
    anchor: SimTime,
    /// Bumped on every rate change and on removal; keeps growing across
    /// slab reuse so stale completion-heap entries never validate.
    gen: u64,
    /// Earliest completion-heap entry time standing for this slab entry
    /// (its designated lower bound), or [`SimTime::NEVER`] when none. A
    /// rate change only pushes when its prediction beats this bound, and
    /// a stale designated entry is re-queued at pop time — so the heap
    /// holds about one entry per live flow instead of one per rate
    /// change. Always `NEVER` under [`FlowEngine::Reference`], which
    /// never touches the heap.
    queued: SimTime,
    /// Directed-link slots traversed, in order (the slab entry keeps its
    /// buffer across reuse, so steady-state churn does not allocate).
    hops: Vec<usize>,
    live: bool,
}

impl Flow {
    /// Remaining payload at `t >= self.anchor`.
    fn remaining_at(&self, t: SimTime) -> f64 {
        let dt = t.seconds_since(self.anchor);
        if dt > 0.0 {
            (self.remaining - self.rate * dt).max(0.0)
        } else {
            self.remaining
        }
    }

    /// Predicted completion time (see [`predict_finish`]).
    fn finish(&self) -> SimTime {
        predict_finish(self.anchor, self.remaining, self.rate)
    }
}

/// Absolute completion time of a flow anchored at `anchor` with
/// `remaining` bits left and the given rate.
///
/// A drained flow completes at its anchor; a starved flow (zero rate —
/// e.g. routed across an administratively-down link) never completes and
/// must not schedule a wake. The prediction is rounded *up* until the
/// flow measures as drained at the returned instant, so a completion
/// event never fires early.
fn predict_finish(anchor: SimTime, remaining: f64, rate: f64) -> SimTime {
    if remaining <= 0.0 {
        return anchor;
    }
    if rate <= 0.0 {
        return SimTime::NEVER;
    }
    let mut t = anchor.after_secs_f64(remaining / rate);
    // f64 rounding in the division can land a whisker short of the drain
    // point; bump until the closed-form remaining is actually zero.
    let mut step = 1u64;
    while t != SimTime::NEVER && remaining - rate * t.seconds_since(anchor) > 0.0 {
        t += step;
        step = step.saturating_mul(2);
    }
    t
}

/// Persistent working memory for reallocation (cluster discovery + CSR
/// sub-problem). After warm-up, flow events allocate nothing.
#[derive(Debug, Default, Clone)]
struct ReallocScratch {
    /// Slab indices of the flows being re-solved.
    members: Vec<u32>,
    /// Slots whose aggregate rate must be refreshed.
    slots: Vec<usize>,
    /// Seed slots of the triggering change (survives unlinking).
    seeds: Vec<usize>,
    /// CSR hop lists of the member flows.
    arena: Vec<usize>,
    spans: Vec<(usize, usize)>,
    rates: Vec<f64>,
    /// Epoch marks for cluster BFS.
    slot_mark: Vec<u32>,
    flow_mark: Vec<u32>,
    epoch: u32,
    stack: Vec<usize>,
    maxmin: MaxMinScratch,
}

/// All live flows plus the derived per-link state. `Clone` is the deep
/// copy behind [`crate::Sim::fork`]: slab, heap, per-slot counters and
/// scratch all duplicate bit-exactly.
#[derive(Debug, Clone)]
pub struct FlowTable {
    engine: FlowEngine,
    /// Flow slab; freed entries are recycled via `free`.
    flows: Vec<Flow>,
    free: Vec<u32>,
    by_id: HashMap<FlowId, u32>,
    live: usize,
    /// Peak capacity per directed link (indexed by [`DirLink::slot`]).
    capacity: Vec<f64>,
    /// Aggregate allocated rate per directed link.
    link_rate: Vec<f64>,
    /// Bits carried per directed link, accumulated up to `bits_anchor`.
    link_bits: Vec<f64>,
    /// Per-slot accumulation point (advanced when the slot's rate
    /// changes; reads extrapolate from here at the current rate).
    bits_anchor: Vec<SimTime>,
    /// Link↔flow incidence: slab indices of the flows crossing each slot.
    slot_flows: Vec<Vec<u32>>,
    /// Lazy-deletion completion heaps, one per home domain (the top 16
    /// bits of a [`FlowId`]): (finish, generation, slab index). An
    /// unpartitioned table has exactly one heap, which reproduces the
    /// historical single-heap behaviour bit-for-bit.
    completions: Vec<BinaryHeap<Reverse<(SimTime, u64, u32)>>>,
    /// Homes whose flows changed rate since the last
    /// [`FlowTable::drain_touched_into`], deduplicated via
    /// `touched_mark`. The engine reschedules exactly these homes' wake
    /// events after a mutation, so a rate change in one domain never
    /// silently moves another domain's completions.
    touched: Vec<u16>,
    touched_mark: Vec<bool>,
    last_update: SimTime,
    scratch: ReallocScratch,
}

impl FlowTable {
    /// Creates an empty table for the given topology's link capacities,
    /// running the default incremental engine.
    pub fn new(topo: &Topology) -> Self {
        Self::with_engine(topo, FlowEngine::default())
    }

    /// Like [`FlowTable::new`] with an explicit engine choice.
    pub fn with_engine(topo: &Topology, engine: FlowEngine) -> Self {
        let mut capacity = vec![0.0; topo.link_count() * 2];
        for e in topo.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                capacity[DirLink { edge: e, dir }.slot()] = topo.link(e).capacity(dir);
            }
        }
        let slots = capacity.len();
        FlowTable {
            engine,
            flows: Vec::new(),
            free: Vec::new(),
            by_id: HashMap::new(),
            live: 0,
            capacity,
            link_rate: vec![0.0; slots],
            link_bits: vec![0.0; slots],
            bits_anchor: vec![SimTime::ZERO; slots],
            slot_flows: vec![Vec::new(); slots],
            completions: vec![BinaryHeap::new()],
            touched: Vec::new(),
            touched_mark: vec![false],
            last_update: SimTime::ZERO,
            scratch: ReallocScratch::default(),
        }
    }

    /// Declares how many home domains flow ids may carry (the top 16
    /// bits of a [`FlowId`]). Completion tracking becomes per-home so
    /// each domain's wake events depend only on that domain's flows.
    /// Must be called before any flow is added; defaults to 1
    /// (unpartitioned).
    pub fn set_num_homes(&mut self, n: u16) {
        assert!(n >= 1, "at least one home domain");
        assert!(
            self.flows.is_empty(),
            "set_num_homes requires an empty flow table"
        );
        self.completions = (0..n).map(|_| BinaryHeap::new()).collect();
        self.touched_mark = vec![false; n as usize];
    }

    /// Number of home domains (1 when unpartitioned).
    pub fn num_homes(&self) -> u16 {
        self.completions.len() as u16
    }

    /// Home domain of a flow id: its top 16 bits.
    #[inline]
    fn home_of(id: FlowId) -> usize {
        (id.0 >> 48) as usize
    }

    /// Drains the homes whose flows changed rate since the last drain
    /// into `out` (cleared first), in unspecified order. The caller owns
    /// rescheduling those homes' wake events.
    pub fn drain_touched_into(&mut self, out: &mut Vec<u16>) {
        out.clear();
        for d in self.touched.drain(..) {
            self.touched_mark[d as usize] = false;
            out.push(d);
        }
    }

    /// The reallocation strategy this table runs.
    pub fn engine(&self) -> FlowEngine {
        self.engine
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no flow is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Aggregate allocated rate (bits/s) on a directed link.
    pub fn link_rate(&self, edge: EdgeId, dir: Direction) -> f64 {
        self.link_rate[DirLink { edge, dir }.slot()]
    }

    /// Cumulative bits carried by a directed link up to the last settle.
    pub fn link_bits(&self, edge: EdgeId, dir: Direction) -> f64 {
        self.link_bits_at(edge, dir, self.last_update)
    }

    /// Cumulative bits carried by a directed link up to `t` (`t` at or
    /// after the last settle). Counters accumulate on rate change and
    /// extrapolate at the current rate on read, so the value is exact at
    /// any instant — the SNMP-style octet counter the measurement layer
    /// samples.
    pub fn link_bits_at(&self, edge: EdgeId, dir: Direction, t: SimTime) -> f64 {
        let s = DirLink { edge, dir }.slot();
        self.link_bits[s] + self.link_rate[s] * t.seconds_since(self.bits_anchor[s])
    }

    /// The time up to which flow progress has been accounted.
    pub fn last_update(&self) -> SimTime {
        self.last_update
    }

    fn get(&self, id: FlowId) -> Option<&Flow> {
        self.by_id.get(&id).map(|&fi| &self.flows[fi as usize])
    }

    /// Current rate of a flow, if live.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.get(id).map(|f| f.rate)
    }

    /// Remaining bits of a flow, if live.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.get(id).map(|f| f.remaining_at(self.last_update))
    }

    /// Source and destination of a flow, if live.
    pub fn endpoints(&self, id: FlowId) -> Option<(NodeId, NodeId)> {
        self.get(id).map(|f| (f.src, f.dst))
    }

    /// Advances the accounting clock to `now`. Must be called before any
    /// mutation or query at `now`.
    ///
    /// O(1): flow progress and link byte counters are closed-form in the
    /// time since each flow's (or slot's) last rate change, so nothing is
    /// walked here.
    pub fn settle(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "time went backwards");
        self.last_update = now;
    }

    /// Adds a flow over `path` carrying `bits`, then reallocates its
    /// sharing cluster. The caller must have settled to the current time
    /// first.
    pub fn add_flow(&mut self, id: FlowId, path: &Path, bits: f64) {
        assert!(bits >= 0.0, "flow size must be non-negative");
        assert!(!path.is_empty(), "flows require src != dst");
        debug_assert!(
            Self::home_of(id) < self.completions.len(),
            "flow id home exceeds set_num_homes"
        );
        let now = self.last_update;
        let fi = match self.free.pop() {
            Some(fi) => fi,
            None => {
                let fi = u32::try_from(self.flows.len()).expect("too many flows");
                self.flows.push(Flow {
                    id,
                    src: path.src,
                    dst: path.dst,
                    remaining: 0.0,
                    rate: 0.0,
                    anchor: now,
                    gen: 0,
                    queued: SimTime::NEVER,
                    hops: Vec::new(),
                    live: false,
                });
                fi
            }
        };
        let f = &mut self.flows[fi as usize];
        f.id = id;
        f.src = path.src;
        f.dst = path.dst;
        f.remaining = bits;
        f.rate = 0.0;
        f.anchor = now;
        f.queued = SimTime::NEVER;
        f.live = true;
        f.hops.clear();
        f.hops.extend(
            path.hops
                .iter()
                .map(|&(edge, dir)| DirLink { edge, dir }.slot()),
        );
        let prev = self.by_id.insert(id, fi);
        debug_assert!(prev.is_none(), "duplicate flow id");
        self.live += 1;
        for &s in &self.flows[fi as usize].hops {
            self.slot_flows[s].push(fi);
        }
        self.scratch.seeds.clear();
        let (seeds, flows) = (&mut self.scratch.seeds, &self.flows);
        seeds.extend_from_slice(&flows[fi as usize].hops);
        self.reallocate(now);
        // A zero-sized payload can leave the rate at its initial 0.0 bit
        // pattern, in which case the re-solve queued no completion entry;
        // cover the flow explicitly. (A starved route predicts NEVER and
        // stays unqueued on purpose.)
        if self.engine == FlowEngine::Incremental {
            let f = &mut self.flows[fi as usize];
            let home = Self::home_of(f.id);
            let eta = f.finish();
            if eta < f.queued {
                f.queued = eta;
                self.completions[home].push(Reverse((eta, f.gen, fi)));
            }
        }
    }

    /// Removes a flow (finished or cancelled), then reallocates its
    /// sharing cluster. Returns true when the flow was live.
    pub fn remove_flow(&mut self, id: FlowId) -> bool {
        let Some(fi) = self.by_id.remove(&id) else {
            return false;
        };
        let now = self.last_update;
        self.scratch.seeds.clear();
        let (seeds, flows) = (&mut self.scratch.seeds, &self.flows);
        seeds.extend_from_slice(&flows[fi as usize].hops);
        self.unlink(fi);
        self.reallocate(now);
        true
    }

    /// Overrides the capacities of directed links and re-solves the
    /// affected sharing clusters once. This is the fault-injection entry
    /// point: a downed link (or a link whose endpoint crashed) drops to
    /// zero capacity — flows crossing it starve at rate 0 and predict
    /// [`SimTime::NEVER`], the same path as an administratively-down
    /// link — and a repaired link returns to its engineered rate.
    ///
    /// Entries whose capacity is bitwise unchanged are skipped; returns
    /// true when any slot actually changed. The caller must have settled
    /// to the current time first.
    pub fn set_capacities(&mut self, changes: &[(EdgeId, Direction, f64)]) -> bool {
        let now = self.last_update;
        self.scratch.seeds.clear();
        let mut any = false;
        for &(edge, dir, cap) in changes {
            assert!(
                cap >= 0.0 && cap.is_finite(),
                "link capacity must be finite and non-negative"
            );
            let s = DirLink { edge, dir }.slot();
            if self.capacity[s].to_bits() != cap.to_bits() {
                self.capacity[s] = cap;
                self.scratch.seeds.push(s);
                any = true;
            }
        }
        if any {
            self.reallocate(now);
        }
        any
    }

    /// Current capacity of a directed link, including any fault override
    /// applied through [`FlowTable::set_capacities`].
    pub fn capacity_of(&self, edge: EdgeId, dir: Direction) -> f64 {
        self.capacity[DirLink { edge, dir }.slot()]
    }

    /// Ids of live flows whose source or destination is `n`, ascending.
    /// Used by the engine to abort a crashed node's transfers.
    pub fn flows_with_endpoint(&self, n: NodeId) -> Vec<FlowId> {
        let mut out: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|f| f.live && (f.src == n || f.dst == n))
            .map(|f| f.id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Pops every flow whose predicted completion has arrived (id order),
    /// then reallocates once if any finished. Allocation-free after
    /// warm-up: `out` is cleared and refilled.
    ///
    /// Home-0 shorthand for [`FlowTable::take_finished_home_into`] —
    /// complete on an unpartitioned table, where every flow lives in
    /// home 0.
    pub fn take_finished_into(&mut self, out: &mut Vec<FlowId>) {
        self.take_finished_home_into(0, out);
    }

    /// Pops every flow of `home` whose predicted completion has arrived
    /// (id order), then reallocates once if any finished. Other homes'
    /// flows are never touched directly, though the reallocation may
    /// move their rates (reported via [`FlowTable::drain_touched_into`]).
    pub fn take_finished_home_into(&mut self, home: u16, out: &mut Vec<FlowId>) {
        out.clear();
        let now = self.last_update;
        match self.engine {
            FlowEngine::Incremental => {
                while let Some(&Reverse((t, gen, fi))) = self.completions[home as usize].peek() {
                    if t > now {
                        break;
                    }
                    self.completions[home as usize].pop();
                    let f = &self.flows[fi as usize];
                    if !f.live || out.contains(&f.id) {
                        continue;
                    }
                    if f.gen == gen {
                        debug_assert!(f.remaining_at(now) <= 0.0, "completion fired early");
                        out.push(f.id);
                    } else if t == f.queued {
                        // The designated lower-bound entry went stale (a
                        // later rate change moved the finish); re-queue at
                        // the current prediction — into the flow's *own*
                        // home heap, in case the slab slot was reused by a
                        // flow homed elsewhere. When the new entry lands at
                        // or before `now` the owning home's drain picks it
                        // right back up.
                        let f = &mut self.flows[fi as usize];
                        let eta = f.finish();
                        f.queued = eta;
                        let owner = Self::home_of(f.id);
                        if eta != SimTime::NEVER {
                            self.completions[owner].push(Reverse((eta, f.gen, fi)));
                        }
                    }
                }
            }
            FlowEngine::Reference => {
                for f in &self.flows {
                    if f.live && Self::home_of(f.id) == home as usize && f.finish() <= now {
                        out.push(f.id);
                    }
                }
            }
        }
        if out.is_empty() {
            return;
        }
        out.sort_unstable();
        self.scratch.seeds.clear();
        for &id in out.iter() {
            let fi = self.by_id.remove(&id).expect("finished flow is live");
            let (seeds, flows) = (&mut self.scratch.seeds, &self.flows);
            seeds.extend_from_slice(&flows[fi as usize].hops);
            self.unlink(fi);
        }
        self.reallocate(now);
    }

    /// Allocating convenience wrapper around
    /// [`FlowTable::take_finished_into`].
    pub fn take_finished(&mut self) -> Vec<FlowId> {
        let mut out = Vec::new();
        self.take_finished_into(&mut out);
        out
    }

    /// Absolute time of the earliest flow completion at current rates, or
    /// [`SimTime::NEVER`] when no live flow will complete (no flows, or
    /// every flow starved at rate zero).
    ///
    /// This is the O(flows) reference scan; the engine wake path uses the
    /// completion heaps via [`FlowTable::next_wake`].
    pub fn next_completion(&self) -> SimTime {
        let mut soonest = SimTime::NEVER;
        for f in &self.flows {
            if f.live {
                soonest = soonest.min(f.finish());
            }
        }
        soonest
    }

    /// [`FlowTable::next_completion`] restricted to flows homed in
    /// `home`.
    fn next_completion_home(&self, home: u16) -> SimTime {
        let mut soonest = SimTime::NEVER;
        for f in &self.flows {
            if f.live && Self::home_of(f.id) == home as usize {
                soonest = soonest.min(f.finish());
            }
        }
        soonest
    }

    /// Earliest completion through the completion heap. Home-0 shorthand
    /// for [`FlowTable::next_wake_home`] — complete on an unpartitioned
    /// table.
    pub fn next_wake(&mut self) -> SimTime {
        self.next_wake_home(0)
    }

    /// Earliest completion among flows homed in `home`, through that
    /// home's completion heap: discards stale entries (lazy deletion),
    /// then answers from the top in O(log heap). Falls back to the
    /// linear scan for [`FlowEngine::Reference`].
    pub fn next_wake_home(&mut self, home: u16) -> SimTime {
        if self.engine == FlowEngine::Reference {
            return self.next_completion_home(home);
        }
        let top = loop {
            match self.completions[home as usize].peek() {
                None => break SimTime::NEVER,
                Some(&Reverse((t, gen, fi))) => {
                    let f = &self.flows[fi as usize];
                    if f.live && f.gen == gen {
                        break t;
                    }
                    let requeue = f.live && t == f.queued;
                    self.completions[home as usize].pop();
                    if requeue {
                        // Into the flow's own home heap — the slab slot may
                        // have been reused by a flow homed elsewhere.
                        let f = &mut self.flows[fi as usize];
                        let eta = f.finish();
                        f.queued = eta;
                        let owner = Self::home_of(f.id);
                        if eta != SimTime::NEVER {
                            self.completions[owner].push(Reverse((eta, f.gen, fi)));
                        }
                    }
                }
            }
        };
        debug_assert_eq!(
            top,
            self.next_completion_home(home),
            "completion heap diverged"
        );
        top
    }

    /// Marks `fi` dead, detaches it from the incidence index and recycles
    /// its slab entry. The entry's generation keeps growing so stale heap
    /// entries never validate, and its hop buffer is kept for reuse.
    fn unlink(&mut self, fi: u32) {
        let f = &mut self.flows[fi as usize];
        debug_assert!(f.live);
        f.live = false;
        f.gen += 1;
        self.live -= 1;
        for &s in &self.flows[fi as usize].hops {
            let list = &mut self.slot_flows[s];
            let at = list.iter().position(|&x| x == fi).expect("incidence entry");
            list.swap_remove(at);
        }
        self.free.push(fi);
    }

    /// Re-solves the flows affected by the change seeded at
    /// `scratch.seeds` and applies the new rates at `now`:
    /// the incremental engine solves one sharing cluster, the reference
    /// engine re-solves everything. Both paths produce bit-identical
    /// state (asserted in debug builds).
    fn reallocate(&mut self, now: SimTime) {
        match self.engine {
            FlowEngine::Incremental => self.collect_cluster(),
            FlowEngine::Reference => self.collect_all(),
        }
        self.solve(now);
    }

    /// Cluster BFS over the link↔flow incidence from `scratch.seeds`:
    /// fills `scratch.members` (flows to re-solve) and `scratch.slots`
    /// (slots whose aggregate rate may change). Every flow crossing a
    /// collected slot is a member, so the sub-problem is self-contained
    /// and solving it against full link capacities is exact.
    fn collect_cluster(&mut self) {
        let sc = &mut self.scratch;
        sc.members.clear();
        sc.slots.clear();
        sc.stack.clear();
        if sc.slot_mark.len() < self.capacity.len() {
            sc.slot_mark.resize(self.capacity.len(), 0);
        }
        if sc.flow_mark.len() < self.flows.len() {
            sc.flow_mark.resize(self.flows.len(), 0);
        }
        if sc.epoch == u32::MAX {
            sc.slot_mark.iter_mut().for_each(|m| *m = 0);
            sc.flow_mark.iter_mut().for_each(|m| *m = 0);
            sc.epoch = 0;
        }
        sc.epoch += 1;
        let epoch = sc.epoch;
        for &s in &sc.seeds {
            if sc.slot_mark[s] != epoch {
                sc.slot_mark[s] = epoch;
                sc.slots.push(s);
                sc.stack.push(s);
            }
        }
        'bfs: while let Some(s) = sc.stack.pop() {
            for &fi in &self.slot_flows[s] {
                if sc.flow_mark[fi as usize] == epoch {
                    continue;
                }
                sc.flow_mark[fi as usize] = epoch;
                sc.members.push(fi);
                if sc.members.len() == self.live {
                    break 'bfs;
                }
                for &h in &self.flows[fi as usize].hops {
                    if sc.slot_mark[h] != epoch {
                        sc.slot_mark[h] = epoch;
                        sc.slots.push(h);
                        sc.stack.push(h);
                    }
                }
            }
        }
        // Degenerate fully-coupled cluster: every live flow is a member, so
        // stop expanding and refresh the full slot range instead (the
        // refresh of a slot whose aggregate is unchanged is a bitwise
        // no-op, so this stays exact).
        if sc.members.len() == self.live {
            sc.stack.clear();
            sc.slots.clear();
            sc.slots.extend(0..self.capacity.len());
        }
    }

    /// Reference collection: every live flow, every slot.
    fn collect_all(&mut self) {
        let sc = &mut self.scratch;
        sc.members.clear();
        sc.slots.clear();
        for (fi, f) in self.flows.iter().enumerate() {
            if f.live {
                sc.members.push(fi as u32);
            }
        }
        sc.slots.extend(0..self.capacity.len());
    }

    /// Progressive filling over `scratch.members`, then rate application:
    /// flows whose rate changed re-anchor at `now` (one closed-form drain
    /// of the elapsed segment) and, when the new prediction beats their
    /// designated heap entry, queue a completion entry; slots whose
    /// aggregate rate changed settle their byte counter at `now`.
    /// Unchanged flows and slots are left untouched — the lazy-settlement
    /// invariant.
    fn solve(&mut self, now: SimTime) {
        let sc = &mut self.scratch;
        sc.arena.clear();
        sc.spans.clear();
        for &fi in &sc.members {
            let hops = &self.flows[fi as usize].hops;
            let start = sc.arena.len();
            sc.arena.extend_from_slice(hops);
            sc.spans.push((start, hops.len()));
        }
        max_min_allocate_into(
            &self.capacity,
            &sc.arena,
            &sc.spans,
            &mut sc.rates,
            &mut sc.maxmin,
        );
        #[cfg(debug_assertions)]
        let check: Option<(Vec<u32>, Vec<f64>)> = (self.engine == FlowEngine::Incremental)
            .then(|| (sc.members.clone(), sc.rates.clone()));
        #[cfg(debug_assertions)]
        if let Some((members, rates)) = check {
            self.assert_cluster_matches_global(&members, &rates);
        }
        let sc = &mut self.scratch;
        for (k, &fi) in sc.members.iter().enumerate() {
            let f = &mut self.flows[fi as usize];
            let rate = sc.rates[k];
            debug_assert!(rate.is_finite(), "flows always have at least one hop");
            if rate.to_bits() == f.rate.to_bits() {
                continue;
            }
            let dt = now.seconds_since(f.anchor);
            if dt > 0.0 {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
            f.anchor = now;
            f.rate = rate;
            f.gen += 1;
            // The flow's completion moved: its home domain must
            // reschedule its wake event (drained by the engine via
            // `drain_touched_into`).
            let home = Self::home_of(f.id);
            if !self.touched_mark[home] {
                self.touched_mark[home] = true;
                self.touched.push(home as u16);
            }
            if self.engine == FlowEngine::Incremental {
                let eta = f.finish();
                if eta < f.queued {
                    f.queued = eta;
                    self.completions[home].push(Reverse((eta, f.gen, fi)));
                }
            }
        }
        for &s in &sc.slots {
            let mut sum = 0.0;
            for &fi in &self.slot_flows[s] {
                sum += self.flows[fi as usize].rate;
            }
            if sum.to_bits() != self.link_rate[s].to_bits() {
                let dt = now.seconds_since(self.bits_anchor[s]);
                if dt > 0.0 {
                    self.link_bits[s] += self.link_rate[s] * dt;
                }
                self.bits_anchor[s] = now;
                self.link_rate[s] = sum;
            }
        }
    }

    /// Debug oracle: the cluster solve must agree bit-for-bit with a full
    /// progressive filling over every live flow — members at their newly
    /// solved rates, non-members at their stored (untouched) rates.
    #[cfg(debug_assertions)]
    fn assert_cluster_matches_global(&self, members: &[u32], member_rates: &[f64]) {
        use nodesel_topology::maxmin::max_min_allocate;
        let live: Vec<u32> = (0..self.flows.len() as u32)
            .filter(|&fi| self.flows[fi as usize].live)
            .collect();
        let paths: Vec<Vec<usize>> = live
            .iter()
            .map(|&fi| self.flows[fi as usize].hops.clone())
            .collect();
        let global = max_min_allocate(&self.capacity, &paths);
        for (k, &fi) in live.iter().enumerate() {
            let expected = global[k];
            let actual = match members.iter().position(|&m| m == fi) {
                Some(m) => member_rates[m],
                None => self.flows[fi as usize].rate,
            };
            debug_assert_eq!(
                expected.to_bits(),
                actual.to_bits(),
                "cluster re-solve diverged from global max-min for flow {:?}",
                self.flows[fi as usize].id,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::{chain, dumbbell, star};
    use nodesel_topology::units::MBPS;
    use nodesel_topology::Routes;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn path(r: &Routes<'_>, a: NodeId, b: NodeId) -> Path {
        r.path(a, b).unwrap()
    }

    #[test]
    fn lone_flow_gets_bottleneck_bandwidth() {
        let (topo, ids) = chain(3, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[2]), 100.0 * MBPS);
        assert_eq!(ft.flow_rate(FlowId(1)), Some(100.0 * MBPS));
        // 100 Mbit at 100 Mbps => 1 second.
        assert_eq!(ft.next_completion(), t(1.0));
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        // Both flows converge on n2's access link (hub -> n2).
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[2]), 1e9);
        ft.add_flow(FlowId(2), &path(&r, ids[1], ids[2]), 1e9);
        assert_eq!(ft.flow_rate(FlowId(1)), Some(50.0 * MBPS));
        assert_eq!(ft.flow_rate(FlowId(2)), Some(50.0 * MBPS));
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let (topo, ids) = dumbbell(2, 100.0 * MBPS, 10.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        // Within the left side and within the right side.
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[1]), 1e9);
        ft.add_flow(FlowId(2), &path(&r, ids[2], ids[3]), 1e9);
        assert_eq!(ft.flow_rate(FlowId(1)), Some(100.0 * MBPS));
        assert_eq!(ft.flow_rate(FlowId(2)), Some(100.0 * MBPS));
    }

    #[test]
    fn max_min_gives_unbottlenecked_flow_the_slack() {
        let (topo, ids) = dumbbell(2, 100.0 * MBPS, 30.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        // Two cross flows share the 30 Mbps backbone (15 each); one local
        // flow shares l0's access link with cross flow 1.
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[2]), 1e12);
        ft.add_flow(FlowId(2), &path(&r, ids[1], ids[3]), 1e12);
        ft.add_flow(FlowId(3), &path(&r, ids[0], ids[1]), 1e12);
        let r1 = ft.flow_rate(FlowId(1)).unwrap();
        let r2 = ft.flow_rate(FlowId(2)).unwrap();
        let r3 = ft.flow_rate(FlowId(3)).unwrap();
        assert!((r1 - 15.0 * MBPS).abs() < 1.0);
        assert!((r2 - 15.0 * MBPS).abs() < 1.0);
        // Flow 3 picks up the remaining 85 Mbps on the shared access link.
        assert!((r3 - 85.0 * MBPS).abs() < 1.0);
    }

    #[test]
    fn opposite_directions_use_separate_capacity() {
        let (topo, ids) = chain(2, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[1]), 1e12);
        ft.add_flow(FlowId(2), &path(&r, ids[1], ids[0]), 1e12);
        // Full-duplex: each direction carries its flow at line rate.
        assert_eq!(ft.flow_rate(FlowId(1)), Some(100.0 * MBPS));
        assert_eq!(ft.flow_rate(FlowId(2)), Some(100.0 * MBPS));
    }

    #[test]
    fn settle_and_finish_lifecycle() {
        let (topo, ids) = chain(2, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[1]), 50.0 * MBPS);
        let eta = ft.next_completion();
        assert_eq!(eta, t(0.5));
        ft.settle(eta);
        assert_eq!(ft.take_finished(), vec![FlowId(1)]);
        assert!(ft.is_empty());
        // Counters recorded the carried bits on the forward direction only.
        let e = topo.edge_ids().next().unwrap();
        let fwd = ft.link_bits(e, topo.link(e).direction_from(ids[0]));
        let back = ft.link_bits(e, topo.link(e).direction_from(ids[1]));
        assert!((fwd - 50.0 * MBPS).abs() < 1e-3);
        assert_eq!(back, 0.0);
    }

    #[test]
    fn departure_speeds_up_survivor() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[2]), 100.0 * MBPS);
        ft.add_flow(FlowId(2), &path(&r, ids[1], ids[2]), 100.0 * MBPS);
        // Both run at 50 Mbps. After 1s, half of each remains.
        ft.settle(t(1.0));
        assert!(ft.remove_flow(FlowId(2)));
        assert_eq!(ft.flow_rate(FlowId(1)), Some(100.0 * MBPS));
        // Remaining 50 Mbit at 100 Mbps: finishes at 1.5s.
        assert_eq!(ft.next_completion(), t(1.5));
    }

    #[test]
    fn zero_size_flow_completes_immediately() {
        let (topo, ids) = chain(2, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[1]), 0.0);
        assert_eq!(ft.next_completion(), ft.next_completion());
        ft.settle(SimTime::ZERO);
        assert_eq!(ft.take_finished(), vec![FlowId(1)]);
    }

    #[test]
    fn link_rates_never_exceed_capacity() {
        // Heavily loaded star: all pairs exchanging.
        let (topo, ids) = star(4, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        let mut next = 0u64;
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    ft.add_flow(FlowId(next), &path(&r, a, b), 1e12);
                    next += 1;
                }
            }
        }
        for e in topo.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                assert!(ft.link_rate(e, dir) <= topo.link(e).capacity(dir) * (1.0 + 1e-9));
            }
        }
        // Every flow got a strictly positive rate.
        for f in 0..next {
            assert!(ft.flow_rate(FlowId(f)).unwrap() > 0.0);
        }
    }

    #[test]
    fn heap_tracks_completions_through_churn() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[2]), 100.0 * MBPS);
        ft.add_flow(FlowId(2), &path(&r, ids[1], ids[2]), 50.0 * MBPS);
        // Shared 50/50: the small flow drains at 1s.
        assert_eq!(ft.next_wake(), t(1.0));
        ft.settle(t(1.0));
        let mut done = Vec::new();
        ft.take_finished_into(&mut done);
        assert_eq!(done, vec![FlowId(2)]);
        // Survivor re-anchored at full rate: 50 Mbit left => 1.5s.
        assert_eq!(ft.next_wake(), t(1.5));
        ft.settle(t(1.5));
        ft.take_finished_into(&mut done);
        assert_eq!(done, vec![FlowId(1)]);
        assert_eq!(ft.next_wake(), SimTime::NEVER);
    }

    #[test]
    fn starved_flow_never_schedules_a_wake() {
        // One administratively-down direction (zero capacity a->b).
        let mut topo = Topology::new();
        let a = topo.add_compute_node("a", 1.0);
        let b = topo.add_compute_node("b", 1.0);
        topo.add_link_full(a, b, 0.0, 100.0 * MBPS, 0.0);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, a, b), 1e9);
        assert_eq!(ft.flow_rate(FlowId(1)), Some(0.0));
        assert_eq!(ft.next_completion(), SimTime::NEVER);
        assert_eq!(ft.next_wake(), SimTime::NEVER);
        ft.settle(t(3600.0));
        assert!(ft.take_finished().is_empty());
        assert_eq!(ft.remaining(FlowId(1)), Some(1e9));
        // The live direction still works at line rate.
        ft.add_flow(FlowId(2), &path(&r, b, a), 100.0 * MBPS);
        assert_eq!(ft.next_wake(), t(3601.0));
        assert!(ft.remove_flow(FlowId(1)));
    }

    #[test]
    fn cluster_churn_leaves_disjoint_flows_untouched() {
        let (topo, ids) = dumbbell(2, 100.0 * MBPS, 10.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[1]), 200.0 * MBPS);
        ft.settle(t(0.5));
        // Churn on the other side of the bottleneck: the left flow's rate
        // and predicted completion must be unaffected.
        ft.add_flow(FlowId(2), &path(&r, ids[2], ids[3]), 1e9);
        ft.add_flow(FlowId(3), &path(&r, ids[3], ids[2]), 1e9);
        assert!(ft.remove_flow(FlowId(3)));
        assert_eq!(ft.flow_rate(FlowId(1)), Some(100.0 * MBPS));
        assert_eq!(ft.next_completion(), t(2.0));
    }

    #[test]
    fn reference_engine_matches_incremental() {
        let (topo, ids) = dumbbell(3, 100.0 * MBPS, 30.0 * MBPS);
        let r = topo.routes();
        let mut inc = FlowTable::new(&topo);
        let mut oracle = FlowTable::with_engine(&topo, FlowEngine::Reference);
        assert_eq!(oracle.engine(), FlowEngine::Reference);
        let script: &[(u64, usize, usize, f64)] = &[
            (1, 0, 3, 1e9),
            (2, 1, 4, 5e8),
            (3, 2, 5, 2e9),
            (4, 0, 1, 1e8),
        ];
        for &(id, s, d, bits) in script {
            let p = path(&r, ids[s], ids[d]);
            inc.add_flow(FlowId(id), &p, bits);
            oracle.add_flow(FlowId(id), &p, bits);
        }
        // The 2 Gbit flow over the 30 Mbps shared backbone needs ~200 s.
        for step in 1..=300u64 {
            let now = SimTime::from_secs(step);
            inc.settle(now);
            oracle.settle(now);
            assert_eq!(inc.next_completion(), oracle.next_completion());
            assert_eq!(inc.next_wake(), oracle.next_wake());
            let (a, b) = (inc.take_finished(), oracle.take_finished());
            assert_eq!(a, b);
            for &(id, ..) in script {
                let id = FlowId(id);
                assert_eq!(
                    inc.flow_rate(id).map(f64::to_bits),
                    oracle.flow_rate(id).map(f64::to_bits)
                );
                assert_eq!(
                    inc.remaining(id).map(f64::to_bits),
                    oracle.remaining(id).map(f64::to_bits)
                );
            }
            for e in topo.edge_ids() {
                for dir in [Direction::AtoB, Direction::BtoA] {
                    assert_eq!(
                        inc.link_rate(e, dir).to_bits(),
                        oracle.link_rate(e, dir).to_bits()
                    );
                    assert_eq!(
                        inc.link_bits(e, dir).to_bits(),
                        oracle.link_bits(e, dir).to_bits()
                    );
                }
            }
        }
        assert!(inc.is_empty() && oracle.is_empty());
    }

    #[test]
    fn slab_reuses_entries_without_stale_completions() {
        let (topo, ids) = chain(2, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        let p = path(&r, ids[0], ids[1]);
        for round in 0..5u64 {
            let id = FlowId(round + 1);
            ft.add_flow(id, &p, 100.0 * MBPS);
            let eta = ft.next_wake();
            assert_eq!(eta, t(round as f64 + 1.0));
            ft.settle(eta);
            assert_eq!(ft.take_finished(), vec![id]);
        }
        assert!(ft.is_empty());
        assert_eq!(ft.next_wake(), SimTime::NEVER);
    }

    #[test]
    fn link_bits_extrapolate_between_settles() {
        let (topo, ids) = chain(2, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[1]), 1e12);
        let e = topo.edge_ids().next().unwrap();
        let dir = topo.link(e).direction_from(ids[0]);
        // No settle needed: the counter is exact at any read instant.
        assert!((ft.link_bits_at(e, dir, t(0.25)) - 25.0 * MBPS).abs() < 1e-3);
        ft.settle(t(0.5));
        assert!((ft.link_bits(e, dir) - 50.0 * MBPS).abs() < 1e-3);
    }
}
