//! Nodes of the logical topology graph.

use serde::{Deserialize, Serialize};

/// Whether a node can run application processes or only forwards traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A processor available for computation.
    Compute,
    /// A switch/router used only for routing communication.
    Network,
}

/// A node of the topology graph (paper §3.1).
///
/// Compute nodes carry two dynamic/static attributes used by the selection
/// algorithms:
///
/// * `speed` — relative computation capacity; `1.0` is the *reference node
///   type* of §3.3 ("Heterogeneous links and nodes"). A node twice as fast
///   as the reference has `speed == 2.0`.
/// * `load_avg` — the UNIX-style load average reported by the measurement
///   layer, from which [`Node::cpu`] derives the available CPU fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) speed: f64,
    pub(crate) load_avg: f64,
}

impl Node {
    pub(crate) fn new(name: impl Into<String>, kind: NodeKind, speed: f64) -> Self {
        let speed = if kind == NodeKind::Network {
            0.0
        } else {
            speed
        };
        assert!(
            kind == NodeKind::Network || speed > 0.0,
            "compute node speed must be positive"
        );
        Node {
            name: name.into(),
            kind,
            speed,
            load_avg: 0.0,
        }
    }

    /// Human-readable unique name (e.g. `"m-7"`, `"gibraltar"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Node kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// True when the node can run application processes.
    pub fn is_compute(&self) -> bool {
        self.kind == NodeKind::Compute
    }

    /// Relative computation capacity (1.0 = reference node type).
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Most recent load average attributed to this node.
    pub fn load_avg(&self) -> f64 {
        self.load_avg
    }

    /// Fraction of the node's computation power available to a new
    /// application process: `cpu = 1 / (1 + loadavg)` (paper §3.1).
    ///
    /// The load average counts active competing processes; assuming equal
    /// scheduling priority, an application process joining `loadavg` others
    /// receives this fraction of the processor. Network nodes report `0.0`.
    pub fn cpu(&self) -> f64 {
        match self.kind {
            NodeKind::Compute => 1.0 / (1.0 + self.load_avg),
            NodeKind::Network => 0.0,
        }
    }

    /// Available computation capacity normalized to the reference node type:
    /// `cpu() * speed()`.
    ///
    /// On a homogeneous system this equals [`Node::cpu`]; with heterogeneous
    /// nodes (§3.3) it is the quantity the balanced algorithm compares
    /// against fractional bandwidth.
    pub fn effective_cpu(&self) -> f64 {
        self.cpu() * self.speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_follows_paper_formula() {
        let mut n = Node::new("m-1", NodeKind::Compute, 1.0);
        assert_eq!(n.cpu(), 1.0);
        n.load_avg = 1.0;
        assert_eq!(n.cpu(), 0.5);
        n.load_avg = 3.0;
        assert_eq!(n.cpu(), 0.25);
    }

    #[test]
    fn network_nodes_have_no_cpu() {
        let n = Node::new("sw", NodeKind::Network, 1.0);
        assert_eq!(n.cpu(), 0.0);
        assert_eq!(n.speed(), 0.0);
        assert!(!n.is_compute());
    }

    #[test]
    fn effective_cpu_scales_with_speed() {
        let mut n = Node::new("fast", NodeKind::Compute, 2.0);
        n.load_avg = 1.0;
        // Half of a double-speed node is one reference node.
        assert_eq!(n.effective_cpu(), 1.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_compute_node_rejected() {
        let _ = Node::new("bad", NodeKind::Compute, 0.0);
    }
}
