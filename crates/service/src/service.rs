//! The placement server: epoch publication in, placements out.
//!
//! One [`PlacementService`] owns the latest published snapshot (in a
//! lock-free [`EpochCell`]), a [`PlacementLedger`] of admitted jobs with
//! the residual snapshot derived from it, a delta-invalidated
//! [`SelectionCache`], and an optional worker pool. A request travels:
//!
//! 1. **canonicalize** — [`CanonicalRequest`] normalizes the spec so
//!    identically-shaped requests share one cache slot and one solve;
//! 2. **pin a residual** — one short ledger lock captures the triple
//!    `(residual snapshot, raw epoch, ledger version)`; the answer is
//!    then *for that pair of pins*, whatever is published or admitted
//!    next;
//! 3. **cache** — a hit returns the `(epoch, version)` pair's cached
//!    bits;
//! 4. **single-flight** — a miss joins an identical in-flight solve on
//!    the same residual snapshot if one exists, else enqueues its own;
//! 5. **batch-solve** — workers drain the bounded queue up to
//!    `batch_size` jobs at a time, scarcest-first (tightest candidate
//!    pool first, larger requests first), solve each against the job's
//!    own pinned residual, and publish answer + footprint to the cache.
//!
//! With `workers == 0` the service solves inline on the calling thread —
//! same cache, same accounting, fully deterministic (the configuration
//! the parity proptests drive).
//!
//! # Overload and degraded operation
//!
//! The service carries a **monotone clock** (a lock-free f64 watermark,
//! advanced by every time-bearing call — [`PlacementService::get_with`]
//! with [`GetOptions::now`], [`PlacementService::publish_at`],
//! [`PlacementService::heartbeat`], [`PlacementService::reconcile`]).
//! Against it:
//!
//! * **Deadlines & shedding** — [`PlacementService::get_with`] accepts an
//!   optional absolute deadline. An already-expired request is shed at
//!   the door ([`ServiceError::DeadlineExceeded`]); a full queue or a
//!   saturated solve gate sheds instead of blocking when
//!   [`GetOptions::block_when_full`] is off ([`ServiceError::Shed`]);
//!   workers re-check deadlines at dequeue and skip jobs every merged
//!   waiter has abandoned. A counting gate
//!   ([`ServiceConfig::max_inflight_solves`]) bounds concurrently
//!   executing solves. Everything lands in [`ServiceStats`]:
//!   `requests == cache_hits + merges + solves + shed + refused`.
//! * **Degraded serving** — the service tracks when it last *heard from*
//!   the collector (any publication or [`PlacementService::heartbeat`])
//!   and the published snapshot's confidence
//!   ([`nodesel_topology::NetMetrics::min_confidence`]). Under a
//!   [`DegradePolicy`], answers past the soft staleness bound are served
//!   but flagged ([`PlacementQuality::Stale`]); past the hard bound,
//!   bandwidth-sensitive requests are refused
//!   ([`PlacementQuality::Refused`], carrying
//!   [`SelectError::DataTooStale`]) while CPU-only requests are still
//!   served — degradation is always *flagged*, never a silent lie. The
//!   flag never changes the answer's bits: a `Stale` answer is still
//!   bit-identical to a fresh solve on its pinned `(epoch, version)`.
//! * **Reconciliation** — [`PlacementService::reconcile`] sweeps the
//!   whole ledger against the latest snapshot's availability flags:
//!   claims on vanished entities are released, failed placements are
//!   re-selected through the per-job [`Supervisor`] (failures move
//!   immediately, quality moves respect hysteresis and exponential
//!   backoff), one ledger version bump per repaired job.
//!
//! # The placement lifecycle
//!
//! `get` answers and forgets: nothing is reserved, and K concurrent
//! callers with the same spec receive the same nodes. The lifecycle path
//! makes the service multi-job aware:
//!
//! * [`PlacementService::admit`] solves on the **residual** network (raw
//!   measurements plus every admitted claim), records the placement in
//!   the ledger with a [`ResourceDemand`]-derived claim, and bumps the
//!   ledger version;
//! * [`PlacementService::release`] un-charges the claim;
//! * [`PlacementService::supervise`] runs the failure-aware
//!   [`Supervisor`] for one admitted job against the residual network
//!   *excluding the job's own claim* (so its reservation cannot repel
//!   its re-placement) and, when re-selection is advised, moves the
//!   ledger entry atomically — one version bump swaps old claim for new,
//!   so no interleaved admission can observe the job double-counted or
//!   vanished.
//!
//! Ledger changes invalidate cached answers by the same
//! footprint-intersection machinery as measurement deltas: the changed
//! claim's touched entities are intersected with every entry's recorded
//! footprint (see [`SelectionCache::advance_ledger`]).
//!
//! With an **empty ledger** the residual snapshot *is* the raw snapshot
//! (the same `Arc`, pointer-identical), so every answer is bit-identical
//! to the oblivious path — proptest-guarded in `tests/cache_parity.rs`.
//!
//! # Locking
//!
//! Lock order is `last_published → ledger → cache → queue`; any path
//! taking several takes them in that order. The solve gate's mutex and
//! each job's `deadline`/`done` mutexes are leaves (held only
//! momentarily, never while acquiring another lock — job mutexes are
//! taken *inside* the queue lock, which is the one nesting the order
//! permits). The service clock is a lock-free atomic. Mutex poisoning
//! is deliberately escalated ([`lock`]): a thread that panicked while
//! mutating shared state has voided the bit-identical answer contract,
//! and no caller input can reach those panics — caller-reachable
//! failures on the lifecycle and overload paths are typed
//! [`ServiceError`]s instead.

use crate::cache::SelectionCache;
use crate::epoch::EpochCell;
use crate::error::ServiceError;
use crate::ledger::{JobId, PlacementLedger, ResourceDemand};
use crate::stats::{ServiceStats, StatsInner};
use nodesel_core::migration::OwnUsage;
use nodesel_core::{
    selector_for, CanonicalRequest, SelectError, Selection, SelectionFootprint, SelectionRequest,
    Supervisor, SupervisorCheck, SupervisorPolicy, SupervisorVerdict,
};
use nodesel_topology::{NetDelta, NetMetrics, NetSnapshot};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Tuning knobs for a [`PlacementService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Solver threads. `0` solves inline on the calling thread
    /// (deterministic; single-flight merges never occur).
    pub workers: usize,
    /// Maximum jobs a worker drains per wakeup; each drained batch is
    /// ordered scarcest-first before solving.
    pub batch_size: usize,
    /// Queued-job bound; producers block when it is reached.
    pub queue_capacity: usize,
    /// Selection-cache entry bound (LRU beyond it; `0` disables caching).
    pub cache_capacity: usize,
    /// Re-selection policy applied by [`PlacementService::supervise`]
    /// (hysteresis, backoff, staleness cap).
    pub supervisor: SupervisorPolicy,
    /// Bound on concurrently *executing* solves across the inline path
    /// and the worker pool (a counting admission gate). `0` disables the
    /// gate. When the gate is saturated, a request with
    /// [`GetOptions::block_when_full`] off is shed; workers always wait
    /// their turn.
    pub max_inflight_solves: usize,
    /// Degraded-mode serving policy (staleness and confidence bounds).
    /// The default disables every bound: all answers are
    /// [`PlacementQuality::Fresh`] and nothing is refused.
    pub degrade: DegradePolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            batch_size: 32,
            queue_capacity: 1024,
            cache_capacity: 65536,
            supervisor: SupervisorPolicy::default(),
            max_inflight_solves: 0,
            degrade: DegradePolicy::default(),
        }
    }
}

impl ServiceConfig {
    /// The default configuration with a pool of `workers` solver threads.
    pub fn pooled(workers: usize) -> Self {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }
}

/// Staleness and confidence bounds for degraded-mode serving.
///
/// `age` below is the **data age**: seconds of service-clock time since
/// the collector was last heard from — any publication
/// ([`PlacementService::publish_at`] / [`PlacementService::ingest_at`])
/// or [`PlacementService::heartbeat`]. A quiet-but-alive network (no new
/// epoch to publish, heartbeats flowing) therefore stays `Fresh`; only a
/// collector that has gone silent ages the data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradePolicy {
    /// Data age beyond which answers are still served but flagged
    /// [`PlacementQuality::Stale`].
    pub soft_staleness: f64,
    /// Data age beyond which bandwidth-sensitive requests are refused
    /// ([`PlacementQuality::Refused`]); CPU-only requests are still
    /// served, flagged `Stale`.
    pub hard_staleness: f64,
    /// Published-snapshot confidence floor
    /// ([`nodesel_topology::NetMetrics::min_confidence`]); below it
    /// answers are flagged `Stale`.
    pub min_confidence: f64,
}

impl Default for DegradePolicy {
    /// Every bound disabled: infinite staleness tolerance, zero
    /// confidence floor — all answers `Fresh`, nothing refused.
    fn default() -> Self {
        DegradePolicy {
            soft_staleness: f64::INFINITY,
            hard_staleness: f64::INFINITY,
            min_confidence: 0.0,
        }
    }
}

impl DegradePolicy {
    /// Classifies an answer produced at data age `age` with published
    /// confidence `confidence`, for a request of the given bandwidth
    /// sensitivity. Public so external harnesses (the chaos study, the
    /// parity proptests) can recompute the expected quality from their
    /// own tracked age/confidence and hold the service to it.
    pub fn classify(
        &self,
        age: f64,
        confidence: f64,
        bandwidth_sensitive: bool,
    ) -> PlacementQuality {
        if age > self.hard_staleness && bandwidth_sensitive {
            PlacementQuality::Refused { age }
        } else if age > self.soft_staleness || confidence < self.min_confidence {
            PlacementQuality::Stale { age }
        } else {
            PlacementQuality::Fresh
        }
    }
}

/// How trustworthy a service answer is, per the [`DegradePolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementQuality {
    /// Within every bound: the measurements behind the answer are
    /// current by the service's own policy.
    Fresh,
    /// Served, but the data behind it is past the soft staleness bound
    /// or below the confidence floor. The bits are still exactly a fresh
    /// solve on the pinned `(epoch, version)` — the flag marks the *pin*
    /// as aged, never the answer as approximate.
    Stale {
        /// Seconds since the service last heard from the collector.
        age: f64,
    },
    /// Refused: the data is past the hard staleness bound and the
    /// request is bandwidth-sensitive. The placement's `result` carries
    /// [`SelectError::DataTooStale`]; no selection was attempted.
    Refused {
        /// Seconds since the service last heard from the collector.
        age: f64,
    },
}

impl PlacementQuality {
    /// `true` unless the answer was refused outright.
    pub fn served(&self) -> bool {
        !matches!(self, PlacementQuality::Refused { .. })
    }

    /// `true` for [`PlacementQuality::Fresh`].
    pub fn is_fresh(&self) -> bool {
        matches!(self, PlacementQuality::Fresh)
    }
}

/// Per-request options for [`PlacementService::get_with`].
///
/// The default (`None` clock, no deadline, shed when full) is the
/// *load-shedding* configuration; [`PlacementService::get`] uses the
/// blocking no-deadline configuration, which cannot fail.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GetOptions {
    /// The caller's clock in service-clock seconds; advances the
    /// service's monotone clock. `None` reads the clock without
    /// advancing it.
    pub now: Option<f64>,
    /// Absolute deadline on the service clock. A request whose deadline
    /// has passed (`deadline <= now`) is shed — at submission, or at
    /// dequeue when every merged waiter's deadline has passed.
    pub deadline: Option<f64>,
    /// When the bounded queue or the solve gate is full: `true` blocks
    /// until space frees up (the classic behavior), `false` sheds with
    /// [`ServiceError::Shed`].
    pub block_when_full: bool,
}

impl GetOptions {
    /// Blocking, no deadline — the infallible configuration
    /// [`PlacementService::get`] uses.
    fn blocking() -> Self {
        GetOptions {
            block_when_full: true,
            ..GetOptions::default()
        }
    }
}

/// What one [`PlacementService::reconcile`] sweep did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReconcileReport {
    /// Jobs examined (ledger residency at sweep start).
    pub examined: usize,
    /// Jobs found healthy (no move advised).
    pub healthy: usize,
    /// Jobs with a pending quality move held back by hysteresis or
    /// backoff.
    pub held: usize,
    /// Jobs moved to a new placement (one ledger version bump each).
    pub repaired: Vec<JobId>,
    /// Jobs released because their placement referenced entities absent
    /// from the current structure.
    pub released: Vec<JobId>,
    /// Jobs whose advised re-selection failed; the ledger entry is
    /// unchanged and a later sweep may recover it.
    pub deferred: Vec<(JobId, SelectError)>,
}

/// A lock-free monotone service clock: an `f64` watermark stored as
/// bits.
///
/// For non-negative finite `f64` values the IEEE-754 bit patterns order
/// exactly like the values, so `fetch_max` on the bits is `fetch_max` on
/// the instants. Non-finite or negative instants are ignored, so the
/// clock never runs backwards and never turns NaN — the service-side
/// twin of the [`Supervisor`]'s per-job monotone clamp.
struct Clock(AtomicU64);

impl Clock {
    fn new() -> Self {
        Clock(AtomicU64::new(0f64.to_bits()))
    }

    /// The current watermark.
    fn now(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }

    /// Advances the watermark to `to` if later; returns the clamped
    /// (possibly unchanged) current time.
    fn advance(&self, to: f64) -> f64 {
        if to.is_finite() && to > 0.0 {
            let prev = f64::from_bits(self.0.fetch_max(to.to_bits(), Relaxed));
            prev.max(to)
        } else {
            self.now()
        }
    }
}

/// A counting gate bounding concurrently *executing* solves across the
/// inline path and the worker pool ([`ServiceConfig::max_inflight_solves`];
/// `0` disables it). Its mutex is a leaf: never held across a solve or
/// while acquiring any other lock.
struct Gate {
    free: Mutex<usize>,
    cv: Condvar,
    enabled: bool,
}

impl Gate {
    fn new(max: usize) -> Self {
        Gate {
            free: Mutex::new(max),
            cv: Condvar::new(),
            enabled: max > 0,
        }
    }

    /// Takes a slot without blocking; `false` when saturated.
    fn try_acquire(&self) -> bool {
        if !self.enabled {
            return true;
        }
        let mut free = lock(&self.free, "gate");
        if *free > 0 {
            *free -= 1;
            true
        } else {
            false
        }
    }

    /// Takes a slot, blocking until one frees up.
    fn acquire(&self) {
        if !self.enabled {
            return;
        }
        let mut free = lock(&self.free, "gate");
        while *free == 0 {
            free = self
                .cv
                .wait(free)
                .unwrap_or_else(|_| panic!("gate lock poisoned by a panicked thread"));
        }
        *free -= 1;
    }

    fn release(&self) {
        if !self.enabled {
            return;
        }
        *lock(&self.free, "gate") += 1;
        self.cv.notify_one();
    }
}

/// A service answer: the result plus the pins it is valid for and its
/// degraded-mode classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Epoch of the raw snapshot the answer was solved (or cached)
    /// against — through the residual view of the ledger version current
    /// at pin time.
    pub epoch: u64,
    /// Ledger version of the pin (the other half of the cache key the
    /// answer is bit-reproducible against).
    pub ledger_version: u64,
    /// Degraded-mode classification (always [`PlacementQuality::Fresh`]
    /// under the default [`DegradePolicy`]). A `Refused` quality carries
    /// `Err(`[`SelectError::DataTooStale`]`)` in `result`.
    pub quality: PlacementQuality,
    /// The selection, bit-identical to a fresh solve on that epoch's
    /// residual network.
    pub result: Result<Selection, SelectError>,
}

/// A successful admission: the job's ledger handle plus the placement it
/// received.
#[derive(Debug, Clone, PartialEq)]
pub struct Admission {
    /// Handle for `release`/`supervise`.
    pub job: JobId,
    /// Raw-snapshot epoch the placement was solved against.
    pub epoch: u64,
    /// Degraded-mode classification of the data the admission was
    /// decided on (never `Refused` — a refused admission is the typed
    /// error [`ServiceError::DegradedRefusal`] instead).
    pub quality: PlacementQuality,
    /// The granted placement.
    pub selection: Selection,
}

/// Acquires `m`, escalating poisoning to a panic.
///
/// Every mutex in this crate guards state whose consistency the
/// bit-identical answer contract depends on (the cache map, the ledger
/// aggregates, the queue). A poisoned lock means a thread panicked
/// mid-mutation; recovering would let the service keep answering from
/// state it cannot vouch for, so the panic is propagated. This is an
/// invariant assert, not a caller-reachable error: no request or
/// lifecycle input can poison these locks (caller-reachable failures are
/// typed [`ServiceError`]s before any lock is taken).
fn lock<'a, T>(m: &'a Mutex<T>, what: &'static str) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(_) => panic!("{what} lock poisoned by a panicked thread"),
    }
}

/// How an in-flight job ended.
#[derive(Debug, Clone)]
enum JobOutcome {
    /// A worker solved it: the answer to publish to every merged waiter.
    Solved(Result<Selection, SelectError>),
    /// Every merged waiter's deadline had passed at dequeue; the worker
    /// skipped the solve.
    Expired {
        /// The service clock when the job was abandoned.
        now: f64,
    },
}

/// One in-flight solve; merged requests block on `cv` until `done`.
struct Job {
    /// The pinned residual snapshot the solve runs against.
    snap: Arc<NetSnapshot>,
    /// Raw-snapshot epoch of the pin (the `Placement::epoch` to report).
    epoch: u64,
    /// Ledger version of the pin (cache-key half).
    version: u64,
    canon: CanonicalRequest,
    /// Latest deadline across every merged waiter; `None` (some waiter
    /// has no deadline) dominates. A leaf mutex taken *inside* the queue
    /// lock — both the merge relaxation and the worker's dequeue expiry
    /// check hold the queue lock, so neither can race the other.
    deadline: Mutex<Option<f64>>,
    done: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

/// Jobs are keyed by the identity of their pinned residual snapshot (the
/// `Arc`'s address — kept alive by the job itself) plus the canonical
/// request: merging is only sound onto a solve against the *same*
/// snapshot bits, and the `Arc` identity pins exactly that.
type JobKey = (usize, CanonicalRequest);

fn job_key(snap: &Arc<NetSnapshot>, canon: &CanonicalRequest) -> JobKey {
    (Arc::as_ptr(snap) as usize, canon.clone())
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Arc<Job>>,
    inflight: HashMap<JobKey, Arc<Job>>,
}

/// The ledger with the residual snapshot derived from it.
///
/// `residual` is the raw snapshot with every admitted claim applied —
/// or, when the ledger is invisible (no claims, or only zero-magnitude
/// ones), **the raw `Arc` itself**: pointer identity is the cheap proof
/// that an empty ledger changes no answer bits, and it lets single-flight
/// merging keep working across the oblivious and admitted paths.
struct LedgerCell {
    ledger: PlacementLedger,
    raw: Arc<NetSnapshot>,
    residual: Arc<NetSnapshot>,
    /// Service-clock instant the collector was last heard from (any
    /// publication or heartbeat).
    last_heard: f64,
    /// `raw`'s [`NetMetrics::min_confidence`] at publication time
    /// (computed outside the lock).
    confidence: f64,
}

impl LedgerCell {
    /// Re-derives `residual` from `raw` and the current claims.
    fn refresh_residual(&mut self) {
        self.residual = if self.ledger.state().is_invisible() {
            Arc::clone(&self.raw)
        } else {
            Arc::new(self.raw.apply(&self.ledger.state().to_delta(&self.raw)))
        };
    }
}

struct Shared {
    cell: EpochCell,
    cache: Mutex<SelectionCache>,
    ledger: Mutex<LedgerCell>,
    state: Mutex<QueueState>,
    /// Signals workers that the queue is non-empty (or shutdown).
    work_cv: Condvar,
    /// Signals producers that queue space freed up.
    space_cv: Condvar,
    stats: StatsInner,
    shutdown: AtomicBool,
    /// Baseline for [`PlacementService::ingest`] diffs.
    last_published: Mutex<Arc<NetSnapshot>>,
    /// The monotone service clock (lock-free watermark).
    clock: Clock,
    /// The in-flight solve gate.
    gate: Gate,
    config: ServiceConfig,
}

/// The answering context, captured atomically under one short ledger
/// lock. Everything downstream (cache key, solve input, reported epoch,
/// degraded-mode classification) derives from it.
struct Pin {
    snap: Arc<NetSnapshot>,
    epoch: u64,
    version: u64,
    last_heard: f64,
    confidence: f64,
}

impl Shared {
    fn pin(&self) -> Pin {
        let cell = lock(&self.ledger, "ledger");
        Pin {
            snap: Arc::clone(&cell.residual),
            epoch: cell.raw.epoch(),
            version: cell.ledger.version(),
            last_heard: cell.last_heard,
            confidence: cell.confidence,
        }
    }
}

/// A concurrent placement server over a published snapshot stream.
///
/// Created with [`PlacementService::new`]; the collector side feeds it
/// via [`PlacementService::publish`] (or [`PlacementService::ingest`]),
/// request threads call [`PlacementService::get`] freely from any number
/// of threads, and job owners drive [`PlacementService::admit`] /
/// [`PlacementService::release`] / [`PlacementService::supervise`].
/// Dropping the service joins its workers.
pub struct PlacementService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl PlacementService {
    /// A service answering against `initial` until the first publication.
    pub fn new(initial: Arc<NetSnapshot>, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            cell: EpochCell::new(Arc::clone(&initial)),
            cache: Mutex::new(SelectionCache::new(initial.epoch(), config.cache_capacity)),
            ledger: Mutex::new(LedgerCell {
                ledger: PlacementLedger::new(),
                raw: Arc::clone(&initial),
                residual: Arc::clone(&initial),
                last_heard: 0.0,
                confidence: initial.min_confidence(),
            }),
            state: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            stats: StatsInner::default(),
            shutdown: AtomicBool::new(false),
            last_published: Mutex::new(initial),
            clock: Clock::new(),
            gate: Gate::new(config.max_inflight_solves),
            config: config.clone(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nodesel-service-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // Invariant, not caller-reachable: spawn fails only
                    // on OS thread exhaustion, before any request runs.
                    .expect("spawn service worker")
            })
            .collect();
        PlacementService { shared, workers }
    }

    /// Publishes a new epoch. `delta` must describe every annotation
    /// change since the previously published snapshot; entries whose
    /// footprint it misses survive with stale bits. `None` (or a
    /// structure change, detected here) flushes the cache wholesale.
    /// The residual snapshot is re-derived against the new epoch; a
    /// structural change additionally re-derives every ledger claim
    /// along the new structure's routes ([`PlacementLedger`] rebind).
    /// The collector never blocks on readers: the snapshot swap is
    /// lock-free, the bookkeeping contends only with request threads'
    /// short ledger/cache accesses.
    pub fn publish(&self, snap: Arc<NetSnapshot>, delta: Option<&NetDelta>) {
        let now = self.shared.clock.now();
        self.publish_inner(snap, delta, now);
    }

    /// [`PlacementService::publish`] with the collector's clock attached:
    /// advances the monotone service clock to `now` and resets the data
    /// age the [`DegradePolicy`] measures. The chaos-facing publication
    /// entry point.
    pub fn publish_at(&self, snap: Arc<NetSnapshot>, delta: Option<&NetDelta>, now: f64) {
        let now = self.shared.clock.advance(now);
        self.publish_inner(snap, delta, now);
    }

    fn publish_inner(&self, snap: Arc<NetSnapshot>, delta: Option<&NetDelta>, heard_at: f64) {
        let shared = &self.shared;
        // Confidence is a full scan of the snapshot's entities — do it
        // before taking any lock.
        let confidence = snap.min_confidence();
        let structure_changed = {
            let mut last = lock(&shared.last_published, "last-published");
            let changed = !snap.same_structure(&last);
            *last = Arc::clone(&snap);
            changed
        };
        let epoch = snap.epoch();
        shared.cell.store(Arc::clone(&snap));
        let delta = if structure_changed { None } else { delta };
        let mut cell = lock(&shared.ledger, "ledger");
        cell.raw = snap;
        cell.last_heard = heard_at;
        cell.confidence = confidence;
        if structure_changed && !cell.ledger.is_empty() {
            let LedgerCell { ledger, raw, .. } = &mut *cell;
            ledger.rebind(raw.structure());
        }
        cell.refresh_residual();
        let ledger_version = cell.ledger.version();
        let mut cache = lock(&shared.cache, "cache");
        cache.advance(epoch, delta);
        if cache.ledger_version() != ledger_version {
            // A structural rebind bumped the version; the flush above
            // already emptied the map, so this only moves the pin.
            cache.advance_ledger(ledger_version, Some(&NetDelta::default()));
        }
        drop(cache);
        drop(cell);
        StatsInner::bump(&shared.stats.epochs_published);
    }

    /// Diffs `snap` against the last published snapshot and publishes it
    /// with the exact delta (a structure change publishes with a flush).
    /// The convenience hook for a collector pump that only has
    /// snapshots in hand. Returns the published epoch.
    pub fn ingest(&self, snap: NetSnapshot) -> u64 {
        let now = self.shared.clock.now();
        self.ingest_inner(snap, now)
    }

    /// [`PlacementService::ingest`] with the collector's clock attached
    /// (see [`PlacementService::publish_at`]).
    pub fn ingest_at(&self, snap: NetSnapshot, now: f64) -> u64 {
        let now = self.shared.clock.advance(now);
        self.ingest_inner(snap, now)
    }

    fn ingest_inner(&self, snap: NetSnapshot, heard_at: f64) -> u64 {
        let snap = Arc::new(snap);
        let epoch = snap.epoch();
        let last = Arc::clone(&lock(&self.shared.last_published, "last-published"));
        if snap.same_structure(&last) {
            let delta = snap.diff(&last);
            self.publish_inner(snap, Some(&delta), heard_at);
        } else {
            self.publish_inner(snap, None, heard_at);
        }
        epoch
    }

    /// Marks the collector alive at `now` without publishing anything:
    /// advances the service clock and resets the data age. A collector
    /// whose network is simply quiet (no changed epoch to publish) calls
    /// this each period so calm is not mistaken for death.
    pub fn heartbeat(&self, now: f64) {
        let now = self.shared.clock.advance(now);
        lock(&self.shared.ledger, "ledger").last_heard = now;
    }

    /// The monotone service clock: the largest instant any time-bearing
    /// call has presented (0.0 until the first).
    pub fn now(&self) -> f64 {
        self.shared.clock.now()
    }

    /// Seconds of service-clock time since the collector was last heard
    /// from — the age the [`DegradePolicy`] classifies against.
    pub fn data_age(&self) -> f64 {
        let last_heard = lock(&self.shared.ledger, "ledger").last_heard;
        (self.shared.clock.now() - last_heard).max(0.0)
    }

    /// The currently published raw snapshot (lock-free).
    pub fn snapshot(&self) -> Arc<NetSnapshot> {
        self.shared.cell.load()
    }

    /// The current residual snapshot: the raw snapshot with every
    /// admitted claim applied. With an empty ledger this is the raw
    /// snapshot itself (the same `Arc`).
    pub fn residual_snapshot(&self) -> Arc<NetSnapshot> {
        self.shared.pin().snap
    }

    /// The currently published epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.shared.cell.load().epoch()
    }

    /// The current ledger version (bumped per admit/release/move).
    pub fn ledger_version(&self) -> u64 {
        lock(&self.shared.ledger, "ledger").ledger.version()
    }

    /// Jobs currently admitted.
    pub fn active_jobs(&self) -> usize {
        lock(&self.shared.ledger, "ledger").ledger.len()
    }

    /// Answers `request` against the currently published epoch's
    /// residual network (without admitting anything).
    ///
    /// The returned placement's `result` is bit-identical to a fresh
    /// [`nodesel_core::select`] on the residual snapshot of
    /// `placement.epoch` at the pinned ledger version — whether it came
    /// from the cache, an in-flight merge, or a solve. With an empty
    /// ledger that is exactly the raw snapshot of `placement.epoch`.
    pub fn get(&self, request: &SelectionRequest) -> Placement {
        self.get_canonical(&CanonicalRequest::new(request))
    }

    /// [`PlacementService::get`] for a pre-canonicalized request.
    pub fn get_canonical(&self, canon: &CanonicalRequest) -> Placement {
        match self.get_canonical_with(canon, &GetOptions::blocking()) {
            Ok(placement) => placement,
            // Invariant, not caller-reachable: a blocking request with
            // no deadline can be neither shed nor expired.
            Err(e) => unreachable!("blocking no-deadline request failed: {e}"),
        }
    }

    /// [`PlacementService::get`] with overload options: an optional
    /// deadline, shed-instead-of-block behavior, and the caller's clock.
    ///
    /// `Err` means the service declined to answer —
    /// [`ServiceError::Shed`] (queue or solve gate full,
    /// [`GetOptions::block_when_full`] off) or
    /// [`ServiceError::DeadlineExceeded`] (expired at submission or at
    /// dequeue). A degraded-mode *refusal* is not an `Err`: it is an
    /// answer — `Ok` with [`PlacementQuality::Refused`] and
    /// [`SelectError::DataTooStale`] inside — because the service did
    /// respond, honestly.
    pub fn get_with(
        &self,
        request: &SelectionRequest,
        opts: &GetOptions,
    ) -> Result<Placement, ServiceError> {
        self.get_canonical_with(&CanonicalRequest::new(request), opts)
    }

    /// [`PlacementService::get_with`] for a pre-canonicalized request.
    pub fn get_canonical_with(
        &self,
        canon: &CanonicalRequest,
        opts: &GetOptions,
    ) -> Result<Placement, ServiceError> {
        let shared = &self.shared;
        let now = match opts.now {
            Some(t) => shared.clock.advance(t),
            None => shared.clock.now(),
        };
        StatsInner::bump(&shared.stats.requests);
        if let Some(deadline) = opts.deadline {
            if deadline <= now {
                StatsInner::bump(&shared.stats.shed);
                return Err(ServiceError::DeadlineExceeded { deadline, now });
            }
        }
        let pin = shared.pin();
        let quality = shared.config.degrade.classify(
            (now - pin.last_heard).max(0.0),
            pin.confidence,
            canon.bandwidth_sensitive(),
        );
        if let PlacementQuality::Refused { .. } = quality {
            StatsInner::bump(&shared.stats.refused);
            return Ok(Placement {
                epoch: pin.epoch,
                ledger_version: pin.version,
                quality,
                result: Err(SelectError::DataTooStale),
            });
        }
        let degraded = !quality.is_fresh();
        let Pin {
            snap,
            epoch,
            version,
            ..
        } = pin;
        if let Some(result) = lock(&shared.cache, "cache").lookup(epoch, version, canon) {
            StatsInner::bump(&shared.stats.cache_hits);
            if degraded {
                StatsInner::bump(&shared.stats.degraded_answers);
            }
            return Ok(Placement {
                epoch,
                ledger_version: version,
                quality,
                result,
            });
        }
        if shared.config.workers == 0 {
            // Inline solves share the executing-solve budget with the
            // pool: saturated gate sheds (or blocks) like a full queue.
            if !shared.gate.try_acquire() {
                if opts.block_when_full {
                    shared.gate.acquire();
                } else {
                    StatsInner::bump(&shared.stats.shed);
                    return Err(ServiceError::Shed { queued: 0 });
                }
            }
            let (result, footprint) = solve(&snap, canon);
            shared.gate.release();
            shared.stats.record_solve(epoch);
            lock(&shared.cache, "cache").insert(
                epoch,
                version,
                canon.clone(),
                result.clone(),
                footprint,
            );
            if degraded {
                StatsInner::bump(&shared.stats.degraded_answers);
            }
            return Ok(Placement {
                epoch,
                ledger_version: version,
                quality,
                result,
            });
        }
        let key = job_key(&snap, canon);
        let job = {
            let mut state = lock(&shared.state, "queue");
            loop {
                if let Some(job) = state.inflight.get(&key) {
                    StatsInner::bump(&shared.stats.single_flight_merges);
                    let job = Arc::clone(job);
                    // Relax the shared deadline to the latest waiter's
                    // (`None` dominates). Under the queue lock, so the
                    // worker's dequeue expiry check cannot race this
                    // merge and shed an in-deadline request.
                    let mut deadline = lock(&job.deadline, "job deadline");
                    *deadline = match (*deadline, opts.deadline) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    };
                    drop(deadline);
                    break job;
                }
                if state.queue.len() < shared.config.queue_capacity {
                    let job = Arc::new(Job {
                        snap: Arc::clone(&snap),
                        epoch,
                        version,
                        canon: canon.clone(),
                        deadline: Mutex::new(opts.deadline),
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    state.inflight.insert(key.clone(), Arc::clone(&job));
                    state.queue.push_back(Arc::clone(&job));
                    shared.work_cv.notify_one();
                    break job;
                }
                if !opts.block_when_full {
                    let queued = state.queue.len();
                    drop(state);
                    StatsInner::bump(&shared.stats.shed);
                    return Err(ServiceError::Shed { queued });
                }
                // Queue full: wait for workers to drain, then re-check
                // (an identical job may have appeared meanwhile).
                state = shared
                    .space_cv
                    .wait(state)
                    .unwrap_or_else(|_| panic!("queue lock poisoned by a panicked thread"));
            }
        };
        let mut done = lock(&job.done, "job");
        while done.is_none() {
            done = job
                .cv
                .wait(done)
                .unwrap_or_else(|_| panic!("job lock poisoned by a panicked thread"));
        }
        // Invariant, not caller-reachable: the wait above only exits
        // once a worker stored the outcome.
        let outcome = done
            .clone()
            .expect("in-flight job completed without an outcome");
        drop(done);
        match outcome {
            JobOutcome::Solved(result) => {
                if degraded {
                    StatsInner::bump(&shared.stats.degraded_answers);
                }
                Ok(Placement {
                    epoch,
                    ledger_version: version,
                    quality,
                    result,
                })
            }
            JobOutcome::Expired { now } => {
                // The worker only expires a job whose *every* waiter has
                // a passed deadline; a no-deadline waiter keeps the
                // shared deadline `None`, which never expires.
                let deadline = opts
                    .deadline
                    .expect("expired job had a waiter without a deadline");
                Err(ServiceError::DeadlineExceeded { deadline, now })
            }
        }
    }

    /// Admits `request` with the demand it implies
    /// ([`ResourceDemand::from_request`]): solves on the residual
    /// network, records the placement and its claim in the ledger, and
    /// returns the job handle. A selection failure admits nothing.
    pub fn admit(&self, request: &SelectionRequest) -> Result<Admission, ServiceError> {
        self.admit_with(request, ResourceDemand::from_request(request))
    }

    /// [`PlacementService::admit`] with an explicit declared demand.
    ///
    /// Admissions are serialized on the ledger lock *including their
    /// solve*: each admission must see every previously admitted claim,
    /// or two racing jobs would pick the same free capacity — the exact
    /// failure mode the ledger exists to close. The cache still
    /// short-circuits repeat specs at the same `(epoch, version)` pin.
    pub fn admit_with(
        &self,
        request: &SelectionRequest,
        demand: ResourceDemand,
    ) -> Result<Admission, ServiceError> {
        demand.validate()?;
        let shared = &self.shared;
        StatsInner::bump(&shared.stats.requests);
        let canon = CanonicalRequest::new(request);
        let now = shared.clock.now();
        let mut cell = lock(&shared.ledger, "ledger");
        let quality = shared.config.degrade.classify(
            (now - cell.last_heard).max(0.0),
            cell.confidence,
            canon.bandwidth_sensitive(),
        );
        if let PlacementQuality::Refused { age } = quality {
            // Admissions reserve real capacity: granting one on data the
            // policy calls untrustworthy would be a silent lie, so the
            // fallible path refuses with a typed error.
            drop(cell);
            StatsInner::bump(&shared.stats.refused);
            return Err(ServiceError::DegradedRefusal { age });
        }
        let epoch = cell.raw.epoch();
        let version = cell.ledger.version();
        let cached = lock(&shared.cache, "cache").lookup(epoch, version, &canon);
        let result = match cached {
            Some(result) => {
                StatsInner::bump(&shared.stats.cache_hits);
                result
            }
            None => {
                let (result, footprint) = solve(&cell.residual, &canon);
                shared.stats.record_solve(epoch);
                lock(&shared.cache, "cache").insert(
                    epoch,
                    version,
                    canon,
                    result.clone(),
                    footprint,
                );
                result
            }
        };
        let selection = result.map_err(ServiceError::Select)?;
        let LedgerCell { ledger, raw, .. } = &mut *cell;
        let (job, claim) = ledger.admit(
            request.clone(),
            demand,
            selection.nodes.clone(),
            raw.structure(),
        );
        cell.refresh_residual();
        lock(&shared.cache, "cache")
            .advance_ledger(cell.ledger.version(), Some(&claim.touched_delta()));
        drop(cell);
        StatsInner::bump(&shared.stats.admits);
        if !quality.is_fresh() {
            StatsInner::bump(&shared.stats.degraded_answers);
        }
        Ok(Admission {
            job,
            epoch,
            quality,
            selection,
        })
    }

    /// Releases an admitted job, un-charging its claim from the residual
    /// network.
    pub fn release(&self, job: JobId) -> Result<(), ServiceError> {
        let shared = &self.shared;
        let mut cell = lock(&shared.ledger, "ledger");
        let claim = cell.ledger.release(job)?;
        cell.refresh_residual();
        lock(&shared.cache, "cache")
            .advance_ledger(cell.ledger.version(), Some(&claim.touched_delta()));
        drop(cell);
        StatsInner::bump(&shared.stats.releases);
        Ok(())
    }

    /// One supervision epoch for an admitted job: runs the failure-aware
    /// [`Supervisor`] (policy from [`ServiceConfig::supervisor`]) against
    /// the residual network **excluding the job's own claim** — the
    /// job's reservation must not repel its own re-placement — and, when
    /// re-selection is advised, moves the ledger entry to the advised
    /// nodes atomically: one version bump swaps the old claim for the
    /// new, so concurrent admissions never see the job double-counted or
    /// missing. `now` is the caller's clock in seconds, monotone across
    /// calls for this job.
    ///
    /// Selection errors (e.g. too few live nodes) leave the ledger
    /// unchanged; the supervisor stays primed and a later epoch may
    /// recover.
    pub fn supervise(&self, job: JobId, now: f64) -> Result<SupervisorCheck, ServiceError> {
        let shared = &self.shared;
        let mut cell = lock(&shared.ledger, "ledger");
        let raw = Arc::clone(&cell.raw);
        let delta = cell.ledger.residual_delta_excluding(&raw, job);
        // Materialized residual-without-self; bit-identical to the view
        // (see `nodesel_topology::residual`). An invisible remainder
        // reuses the raw snapshot unchanged.
        let excl = if delta.is_empty() {
            Arc::clone(&raw)
        } else {
            Arc::new(raw.apply(&delta))
        };
        let policy = shared.config.supervisor;
        let entry = cell.ledger.entry_mut(job)?;
        let own = OwnUsage::one_process_per_node(&entry.nodes);
        let current = entry.nodes.clone();
        let supervisor = entry
            .supervisor
            .get_or_insert_with(|| Supervisor::new(entry.request.clone(), policy));
        let check = supervisor.check(now, &excl, &current, &own)?;
        if matches!(check.verdict, SupervisorVerdict::Reselect { .. }) {
            let next = check.advice.best.nodes.clone();
            let LedgerCell { ledger, raw, .. } = &mut *cell;
            let (old_claim, new_claim) = ledger.move_job(job, next, raw.structure())?;
            cell.refresh_residual();
            // Cached answers may depend on either the vacated or the
            // newly occupied entities: invalidate against the union.
            let mut touched = old_claim.touched_delta();
            let new_touched = new_claim.touched_delta();
            touched.nodes.extend(new_touched.nodes);
            touched.links.extend(new_touched.links);
            lock(&shared.cache, "cache").advance_ledger(cell.ledger.version(), Some(&touched));
            StatsInner::bump(&shared.stats.ledger_moves);
        }
        Ok(check)
    }

    /// One reconciliation sweep: walks **every** admitted job against
    /// the latest snapshot, repairing what chaos broke.
    ///
    /// Per job, in admission order:
    ///
    /// 1. **vanished** — a placement referencing a node absent from the
    ///    current structure (a shrinking structural publication) cannot
    ///    be supervised or charged; the claim is released and the job
    ///    reported in [`ReconcileReport::released`];
    /// 2. **supervise** — otherwise the job runs one supervision epoch
    ///    through the existing [`PlacementService::supervise`] machinery:
    ///    placements on dead/stale entities re-select immediately, mere
    ///    quality moves respect hysteresis and per-job exponential
    ///    backoff, and each executed move is one atomic ledger version
    ///    bump ([`ReconcileReport::repaired`]);
    /// 3. **deferred** — a job whose advised re-selection fails (e.g.
    ///    too few live nodes) keeps its entry unchanged and is reported
    ///    in [`ReconcileReport::deferred`]; a later sweep may recover it.
    ///
    /// Atomicity is **per job**, not per sweep: concurrent admissions
    /// and releases interleave safely between steps (a job released
    /// mid-sweep is skipped). `now` advances the monotone service clock.
    pub fn reconcile(&self, now: f64) -> ReconcileReport {
        let shared = &self.shared;
        let now = shared.clock.advance(now);
        let mut report = ReconcileReport::default();
        let jobs = lock(&shared.ledger, "ledger").ledger.job_ids();
        report.examined = jobs.len();
        for job in jobs {
            // The vanished check must precede supervise: supervising a
            // placement on an out-of-range node would index past the
            // structure's metric arrays.
            let vanished = {
                let cell = lock(&shared.ledger, "ledger");
                let node_count = cell.raw.structure().node_count();
                match cell.ledger.nodes(job) {
                    Ok(nodes) => nodes.iter().any(|n| n.index() >= node_count),
                    Err(_) => continue, // released since the sweep began
                }
            };
            if vanished {
                if self.release(job).is_ok() {
                    StatsInner::bump(&shared.stats.reconcile_releases);
                    report.released.push(job);
                }
                continue;
            }
            match self.supervise(job, now) {
                Ok(check) => match check.verdict {
                    SupervisorVerdict::Healthy => report.healthy += 1,
                    SupervisorVerdict::Hold { .. } => report.held += 1,
                    SupervisorVerdict::Reselect { .. } => {
                        StatsInner::bump(&shared.stats.reconcile_repairs);
                        report.repaired.push(job);
                    }
                },
                // Released between the vanished check and here.
                Err(ServiceError::UnknownJob(_)) => {}
                Err(ServiceError::Select(e)) => report.deferred.push((job, e)),
                // Invariant, not caller-reachable: supervise returns
                // only UnknownJob or Select errors.
                Err(e) => unreachable!("supervise returned {e}"),
            }
        }
        StatsInner::bump(&shared.stats.reconciles);
        report
    }

    /// The nodes an admitted job currently occupies.
    pub fn job_nodes(&self, job: JobId) -> Result<Vec<nodesel_topology::NodeId>, ServiceError> {
        let cell = lock(&self.shared.ledger, "ledger");
        cell.ledger.nodes(job).map(|n| n.to_vec())
    }

    /// A point-in-time view of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        use std::sync::atomic::Ordering::Relaxed;
        let shared = &self.shared;
        let cell = lock(&shared.ledger, "ledger");
        let active_jobs = cell.ledger.len() as u64;
        let ledger_version = cell.ledger.version();
        drop(cell);
        let cache = lock(&shared.cache, "cache");
        let counters = cache.counters;
        drop(cache);
        ServiceStats {
            requests: shared.stats.requests.load(Relaxed),
            cache_hits: shared.stats.cache_hits.load(Relaxed),
            single_flight_merges: shared.stats.single_flight_merges.load(Relaxed),
            solves: shared.stats.solves.load(Relaxed),
            shed: shared.stats.shed.load(Relaxed),
            refused: shared.stats.refused.load(Relaxed),
            degraded_answers: shared.stats.degraded_answers.load(Relaxed),
            epochs_published: shared.stats.epochs_published.load(Relaxed),
            delta_evictions: counters.delta_evictions,
            capacity_evictions: counters.capacity_evictions,
            carried_forward: counters.carried_forward,
            stale_inserts: counters.stale_inserts,
            flushes: counters.flushes,
            ledger_evictions: counters.ledger_evictions,
            admits: shared.stats.admits.load(Relaxed),
            releases: shared.stats.releases.load(Relaxed),
            ledger_moves: shared.stats.ledger_moves.load(Relaxed),
            reconciles: shared.stats.reconciles.load(Relaxed),
            reconcile_repairs: shared.stats.reconcile_repairs.load(Relaxed),
            reconcile_releases: shared.stats.reconcile_releases.load(Relaxed),
            active_jobs,
            ledger_version,
            solves_per_epoch: lock(&shared.stats.per_epoch, "stats")
                .iter()
                .copied()
                .collect(),
        }
    }

    /// Resident cache entries (test and observability hook).
    pub fn cached_entries(&self) -> usize {
        lock(&self.shared.cache, "cache").len()
    }
}

impl Drop for PlacementService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for PlacementService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementService")
            .field("epoch", &self.epoch())
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Solves `canon` against `snap`, returning the answer and the footprint
/// a cache entry for it must record.
fn solve(
    snap: &NetSnapshot,
    canon: &CanonicalRequest,
) -> (Result<Selection, SelectError>, SelectionFootprint) {
    let request = canon.to_request();
    let mut selector = selector_for(request.objective);
    let result = selector.select(snap, &request);
    (result, selector.footprint())
}

/// Scarcest-first batch order: tightest candidate pool first (smallest
/// `allowed`, unrestricted last), then pinned-node count (more first),
/// then larger requests first — the hardest-to-place specs claim their
/// answers before the flexible ones, mirroring the batched-matching
/// exemplar.
fn scarcity_key(
    canon: &CanonicalRequest,
) -> (usize, std::cmp::Reverse<usize>, std::cmp::Reverse<usize>) {
    (
        canon.allowed_len().unwrap_or(usize::MAX),
        std::cmp::Reverse(canon.required_len()),
        std::cmp::Reverse(canon.count()),
    )
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut batch: Vec<Arc<Job>> = {
            let mut state = lock(&shared.state, "queue");
            while state.queue.is_empty() && !shared.shutdown.load(SeqCst) {
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(|_| panic!("queue lock poisoned by a panicked thread"));
            }
            if state.queue.is_empty() {
                return; // shutdown with nothing left to solve
            }
            let take = state.queue.len().min(shared.config.batch_size.max(1));
            let batch = state.queue.drain(..take).collect();
            shared.space_cv.notify_all();
            batch
        };
        batch.sort_by_key(|a| scarcity_key(&a.canon));
        for job in batch {
            // Dead-work check, under the queue lock so no waiter can
            // merge (relaxing the deadline) between the decision and the
            // inflight removal: once removed, late arrivals enqueue a
            // fresh job instead of joining a corpse.
            let expired_at = {
                let mut state = lock(&shared.state, "queue");
                let deadline = *lock(&job.deadline, "job deadline");
                let now = shared.clock.now();
                match deadline {
                    Some(d) if d <= now => {
                        state.inflight.remove(&job_key(&job.snap, &job.canon));
                        Some(now)
                    }
                    _ => None,
                }
            };
            if let Some(now) = expired_at {
                // One shed on behalf of the enqueuing request; merged
                // waiters were already counted in the merge bucket.
                StatsInner::bump(&shared.stats.shed);
                *lock(&job.done, "job") = Some(JobOutcome::Expired { now });
                job.cv.notify_all();
                continue;
            }
            shared.gate.acquire();
            let (result, footprint) = solve(&job.snap, &job.canon);
            shared.gate.release();
            shared.stats.record_solve(job.epoch);
            lock(&shared.cache, "cache").insert(
                job.epoch,
                job.version,
                job.canon.clone(),
                result.clone(),
                footprint,
            );
            lock(&shared.state, "queue")
                .inflight
                .remove(&job_key(&job.snap, &job.canon));
            *lock(&job.done, "job") = Some(JobOutcome::Solved(result));
            job.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;
    use nodesel_topology::{NetDelta, NodeId};

    fn service(workers: usize) -> (PlacementService, Vec<NodeId>) {
        let (topo, ids) = star(8, 100.0 * MBPS);
        let snap = Arc::new(NetSnapshot::capture(Arc::new(topo)));
        (
            PlacementService::new(snap, ServiceConfig::pooled(workers)),
            ids,
        )
    }

    #[test]
    fn inline_hits_after_first_solve() {
        let (svc, _) = service(0);
        let request = SelectionRequest::balanced(3);
        let first = svc.get(&request);
        let second = svc.get(&request);
        assert_eq!(first, second);
        let stats = svc.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.solves_per_epoch, vec![(0, 1)]);
    }

    #[test]
    fn answers_match_fresh_select_across_epochs() {
        let (svc, ids) = service(0);
        let requests = [
            SelectionRequest::compute(2),
            SelectionRequest::communication(3),
            SelectionRequest::balanced(4),
        ];
        let mut snap = (*svc.snapshot()).clone();
        for round in 0..5 {
            for request in &requests {
                let placement = svc.get(request);
                assert_eq!(placement.epoch, snap.epoch());
                assert_eq!(
                    placement.result,
                    nodesel_core::select(&snap.to_topology(), request),
                    "round {round}"
                );
            }
            let delta = NetDelta {
                nodes: vec![(ids[round % ids.len()], round as f64 + 0.5)],
                ..NetDelta::default()
            };
            snap = snap.apply(&delta);
            svc.publish(Arc::new(snap.clone()), Some(&delta));
        }
        let stats = svc.stats();
        assert_eq!(
            stats.requests,
            stats.cache_hits + stats.single_flight_merges + stats.solves
        );
        assert_eq!(stats.epochs_published, 5);
    }

    #[test]
    fn pooled_answers_match_inline() {
        let (pooled, _) = service(2);
        let (inline, _) = service(0);
        let requests: Vec<SelectionRequest> = (2..6)
            .flat_map(|m| {
                [
                    SelectionRequest::compute(m),
                    SelectionRequest::communication(m),
                    SelectionRequest::balanced(m),
                ]
            })
            .collect();
        for request in &requests {
            assert_eq!(pooled.get(request), inline.get(request));
        }
        let stats = pooled.stats();
        assert_eq!(
            stats.requests,
            stats.cache_hits + stats.single_flight_merges + stats.solves
        );
    }

    #[test]
    fn pooled_concurrent_identical_requests_single_flight() {
        let (svc, _) = service(2);
        let svc = Arc::new(svc);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    let request = SelectionRequest::balanced(3);
                    let placement = svc.get(&request);
                    assert!(placement.result.is_ok());
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(
            stats.requests,
            stats.cache_hits + stats.single_flight_merges + stats.solves
        );
        // At least one request must have solved; the split between hits
        // and merges depends on timing.
        assert!(stats.solves >= 1);
    }

    #[test]
    fn structure_change_flushes_cache() {
        let (svc, _) = service(0);
        svc.get(&SelectionRequest::compute(2));
        assert_eq!(svc.cached_entries(), 1);
        let (other, _) = star(6, 100.0 * MBPS);
        let replacement = Arc::new(NetSnapshot::capture(Arc::new(other)));
        // Even with a (bogus) delta attached, the structure swap forces
        // a flush.
        svc.publish(replacement, Some(&NetDelta::default()));
        assert_eq!(svc.cached_entries(), 0);
        assert_eq!(svc.stats().flushes, 1);
    }

    #[test]
    fn ingest_diffs_and_carries_disjoint_entries() {
        let (svc, ids) = service(0);
        let compute = SelectionRequest::compute(2);
        let first = svc.get(&compute);
        // Load a node far from the answer: the compute entry's footprint
        // covers only its viable component members — here the whole
        // allowed pool, so pick the answer's own node to force eviction,
        // then a no-op delta to confirm carry.
        let snap = (*svc.snapshot()).clone();
        let next = snap.apply(&NetDelta::default());
        let epoch = svc.ingest(next);
        assert_eq!(epoch, 1);
        assert_eq!(svc.cached_entries(), 1, "empty diff carries the entry");
        let hit = svc.get(&compute);
        assert_eq!(hit.epoch, 1);
        assert_eq!(hit.result, first.result);
        assert_eq!(svc.stats().cache_hits, 1);
        // Now touch a chosen node: the entry must be evicted.
        let chosen = first.result.as_ref().unwrap().nodes[0];
        let delta = NetDelta {
            nodes: vec![(chosen, 9.0)],
            ..NetDelta::default()
        };
        let churned = svc.snapshot().apply(&delta);
        svc.ingest(churned);
        assert_eq!(svc.cached_entries(), 0);
        assert!(svc.stats().delta_evictions >= 1);
        let _ = ids;
    }

    #[test]
    fn scarcity_orders_tightest_first() {
        let mut tight = SelectionRequest::compute(2);
        tight.constraints.allowed = Some(
            [NodeId::from_index(0), NodeId::from_index(1)]
                .into_iter()
                .collect(),
        );
        let loose = SelectionRequest::compute(2);
        let big = SelectionRequest::compute(5);
        let k = |r: &SelectionRequest| scarcity_key(&CanonicalRequest::new(r));
        assert!(k(&tight) < k(&loose));
        assert!(k(&big) < k(&loose));
    }

    #[test]
    fn admitted_jobs_shift_later_placements() {
        let (svc, _) = service(0);
        let mut request = SelectionRequest::balanced(2);
        request.reference_bandwidth = Some(20.0 * MBPS);
        // Oblivious gets answer the same nodes every time.
        let oblivious = svc.get(&request).result.unwrap();
        assert_eq!(svc.get(&request).result.unwrap(), oblivious);
        // Admission charges the nodes; the next admission must avoid the
        // now-loaded ones (8 idle leaves, 2 claimed => 6 free remain
        // strictly better on effective CPU).
        let first = svc.admit(&request).unwrap();
        assert_eq!(first.selection, oblivious);
        assert_eq!(svc.active_jobs(), 1);
        let second = svc.admit(&request).unwrap();
        for n in &second.selection.nodes {
            assert!(
                !first.selection.nodes.contains(n),
                "second admission re-used a claimed node"
            );
        }
        assert_eq!(svc.active_jobs(), 2);
        let stats = svc.stats();
        assert_eq!(stats.admits, 2);
        assert_eq!(stats.active_jobs, 2);
        assert!(stats.ledger_version >= 2);
    }

    #[test]
    fn release_restores_oblivious_answers() {
        let (svc, _) = service(0);
        let request = SelectionRequest::balanced(2);
        let before = svc.get(&request);
        let admission = svc.admit(&request).unwrap();
        // With the claim charged, the same spec answers differently.
        let during = svc.get(&request);
        assert_ne!(before.result, during.result);
        svc.release(admission.job).unwrap();
        // Residual is the raw snapshot again: identical Arc, identical bits.
        assert!(Arc::ptr_eq(&svc.residual_snapshot(), &svc.snapshot()));
        let after = svc.get(&request);
        assert_eq!(before.result, after.result);
        assert_eq!(svc.active_jobs(), 0);
        assert_eq!(svc.stats().releases, 1);
        // Double release is a typed error, not a panic.
        assert_eq!(
            svc.release(admission.job),
            Err(ServiceError::UnknownJob(admission.job))
        );
    }

    #[test]
    fn admit_rejects_invalid_demand_and_failed_selection() {
        let (svc, _) = service(0);
        let request = SelectionRequest::balanced(2);
        let bad = ResourceDemand {
            cpu_load: f64::NAN,
            pair_bandwidth: 0.0,
        };
        assert!(matches!(
            svc.admit_with(&request, bad),
            Err(ServiceError::InvalidDemand {
                field: "cpu_load",
                ..
            })
        ));
        // An unsatisfiable selection admits nothing.
        let huge = SelectionRequest::balanced(100);
        assert!(matches!(
            svc.admit(&huge),
            Err(ServiceError::Select(SelectError::NotEnoughNodes { .. }))
        ));
        assert_eq!(svc.active_jobs(), 0);
        assert_eq!(svc.stats().admits, 0);
    }

    #[test]
    fn supervise_moves_job_off_dead_node_without_double_count() {
        let (svc, ids) = service(0);
        let request = SelectionRequest::balanced(2);
        let admission = svc.admit(&request).unwrap();
        let placed = admission.selection.nodes.clone();
        let healthy = svc.supervise(admission.job, 0.0).unwrap();
        assert_eq!(healthy.verdict, SupervisorVerdict::Healthy);
        // Kill one placed node.
        let dead = placed[0];
        let delta = NetDelta {
            avail_nodes: vec![(dead, false)],
            ..NetDelta::default()
        };
        let down = svc.snapshot().apply(&delta);
        svc.publish(Arc::new(down), Some(&delta));
        let check = svc.supervise(admission.job, 1.0).unwrap();
        assert_eq!(check.verdict, SupervisorVerdict::Reselect { failure: true });
        let moved = svc.job_nodes(admission.job).unwrap();
        assert!(!moved.contains(&dead));
        assert_eq!(svc.stats().ledger_moves, 1);
        // Exactly one job's claim in the ledger: the moved-to nodes are
        // charged, the vacated one is not (no double-count).
        let residual = svc.residual_snapshot();
        let raw = svc.snapshot();
        for &n in &moved {
            assert!(residual.load_avg(n) > raw.load_avg(n));
        }
        for &n in placed.iter().filter(|n| !moved.contains(n)) {
            assert_eq!(residual.load_avg(n).to_bits(), raw.load_avg(n).to_bits());
        }
        let _ = ids;
    }

    #[test]
    fn supervising_unknown_job_is_a_typed_error() {
        let (svc, _) = service(0);
        let admission = svc.admit(&SelectionRequest::balanced(2)).unwrap();
        svc.release(admission.job).unwrap();
        assert!(matches!(
            svc.supervise(admission.job, 0.0),
            Err(ServiceError::UnknownJob(_))
        ));
    }

    #[test]
    fn service_clock_is_monotone_and_nan_proof() {
        let (svc, _) = service(0);
        assert_eq!(svc.now(), 0.0);
        svc.heartbeat(5.0);
        assert_eq!(svc.now(), 5.0);
        svc.heartbeat(3.0); // rewind: clamped, never runs backwards
        assert_eq!(svc.now(), 5.0);
        svc.heartbeat(f64::NAN);
        assert_eq!(svc.now(), 5.0);
        svc.heartbeat(-1.0);
        assert_eq!(svc.now(), 5.0);
        assert_eq!(svc.data_age(), 0.0);
    }

    #[test]
    fn gate_counts_slots() {
        let bounded = Gate::new(1);
        assert!(bounded.try_acquire());
        assert!(!bounded.try_acquire());
        bounded.release();
        assert!(bounded.try_acquire());
        let unbounded = Gate::new(0);
        assert!(unbounded.try_acquire());
        assert!(unbounded.try_acquire());
    }

    #[test]
    fn expired_deadline_is_shed_at_the_door() {
        let (svc, _) = service(0);
        let request = SelectionRequest::balanced(3);
        let err = svc
            .get_with(
                &request,
                &GetOptions {
                    now: Some(10.0),
                    deadline: Some(10.0),
                    block_when_full: false,
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            ServiceError::DeadlineExceeded {
                deadline: 10.0,
                now: 10.0
            }
        );
        // An in-deadline request answers normally.
        let ok = svc
            .get_with(
                &request,
                &GetOptions {
                    now: Some(10.0),
                    deadline: Some(11.0),
                    block_when_full: false,
                },
            )
            .unwrap();
        assert!(ok.result.is_ok());
        assert_eq!(ok.quality, PlacementQuality::Fresh);
        let stats = svc.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.requests, 2);
        assert!(stats.balanced());
    }

    #[test]
    fn nonblocking_request_sheds_on_a_full_queue() {
        let (topo, _) = star(8, 100.0 * MBPS);
        let snap = Arc::new(NetSnapshot::capture(Arc::new(topo)));
        // capacity 0: nothing can ever enqueue, so a non-blocking
        // request must shed deterministically.
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 0,
            ..ServiceConfig::default()
        };
        let svc = PlacementService::new(snap, config);
        let err = svc
            .get_with(&SelectionRequest::balanced(3), &GetOptions::default())
            .unwrap_err();
        assert_eq!(err, ServiceError::Shed { queued: 0 });
        let stats = svc.stats();
        assert_eq!(stats.shed, 1);
        assert!(stats.balanced());
    }

    #[test]
    fn worker_skips_dead_requests_at_dequeue() {
        let (svc, _) = service(0); // no pool: we drive worker_loop by hand
        let shared = Arc::clone(&svc.shared);
        shared.clock.advance(10.0);
        let canon = CanonicalRequest::new(&SelectionRequest::balanced(3));
        let pin = shared.pin();
        let job = Arc::new(Job {
            snap: Arc::clone(&pin.snap),
            epoch: pin.epoch,
            version: pin.version,
            canon: canon.clone(),
            deadline: Mutex::new(Some(5.0)), // already past: clock is at 10
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        {
            let mut state = lock(&shared.state, "queue");
            state
                .inflight
                .insert(job_key(&job.snap, &job.canon), Arc::clone(&job));
            state.queue.push_back(Arc::clone(&job));
        }
        shared.shutdown.store(true, SeqCst);
        worker_loop(&shared); // drains the queue, then exits on shutdown
        let done = lock(&job.done, "job").clone().unwrap();
        assert!(matches!(done, JobOutcome::Expired { now } if now == 10.0));
        let stats = svc.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.solves, 0);
        assert!(
            lock(&shared.state, "queue").inflight.is_empty(),
            "expired job must leave the single-flight table"
        );
    }

    #[test]
    fn degrade_policy_flags_and_refuses_honestly() {
        let (topo, _) = star(8, 100.0 * MBPS);
        let snap = Arc::new(NetSnapshot::capture(Arc::new(topo)));
        let config = ServiceConfig {
            degrade: DegradePolicy {
                soft_staleness: 10.0,
                hard_staleness: 30.0,
                min_confidence: 0.0,
            },
            ..ServiceConfig::default()
        };
        let svc = PlacementService::new(snap, config);
        let bw = SelectionRequest::balanced(3); // bandwidth-sensitive
        let cpu = SelectionRequest::compute(3); // CPU-only
        let at = |t: f64| GetOptions {
            now: Some(t),
            deadline: None,
            block_when_full: true,
        };
        // Heard at 0.0 (construction); within bounds: Fresh.
        let fresh = svc.get_with(&bw, &at(5.0)).unwrap();
        assert_eq!(fresh.quality, PlacementQuality::Fresh);
        // Past the soft bound: served, flagged, bits unchanged.
        let stale = svc.get_with(&bw, &at(20.0)).unwrap();
        assert_eq!(stale.quality, PlacementQuality::Stale { age: 20.0 });
        assert_eq!(stale.result, fresh.result);
        // Past the hard bound: bandwidth-sensitive refused with the
        // typed staleness error; CPU-only still served, flagged.
        let refused = svc.get_with(&bw, &at(40.0)).unwrap();
        assert_eq!(refused.quality, PlacementQuality::Refused { age: 40.0 });
        assert_eq!(refused.result, Err(SelectError::DataTooStale));
        let served = svc.get_with(&cpu, &at(40.0)).unwrap();
        assert_eq!(served.quality, PlacementQuality::Stale { age: 40.0 });
        assert!(served.result.is_ok());
        // Admissions refuse with a typed error instead of an answer.
        assert_eq!(
            svc.admit(&bw).unwrap_err(),
            ServiceError::DegradedRefusal { age: 40.0 }
        );
        let cpu_admit = svc.admit(&cpu).unwrap();
        assert_eq!(cpu_admit.quality, PlacementQuality::Stale { age: 40.0 });
        svc.release(cpu_admit.job).unwrap();
        // A heartbeat proves the collector alive: quiet != dead.
        svc.heartbeat(41.0);
        assert_eq!(svc.data_age(), 0.0);
        assert_eq!(
            svc.get_with(&bw, &at(41.0)).unwrap().quality,
            PlacementQuality::Fresh
        );
        let stats = svc.stats();
        assert_eq!(stats.refused, 2); // one get, one admit
        assert!(stats.degraded_answers >= 3);
        assert!(stats.balanced());
    }

    #[test]
    fn low_confidence_flags_answers_stale_at_age_zero() {
        let (topo, ids) = star(8, 100.0 * MBPS);
        let snap = Arc::new(NetSnapshot::capture(Arc::new(topo)));
        let config = ServiceConfig {
            degrade: DegradePolicy {
                soft_staleness: f64::INFINITY,
                hard_staleness: f64::INFINITY,
                min_confidence: 0.9,
            },
            ..ServiceConfig::default()
        };
        let svc = PlacementService::new(snap, config);
        let request = SelectionRequest::balanced(3);
        let at = |t: f64| GetOptions {
            now: Some(t),
            deadline: None,
            block_when_full: true,
        };
        assert_eq!(
            svc.get_with(&request, &at(1.0)).unwrap().quality,
            PlacementQuality::Fresh
        );
        // Three missed samples on one node: published confidence drops to
        // 0.8^3 = 0.512 < 0.9 — answers flag Stale even at data age 0.
        let delta = NetDelta {
            stale_nodes: vec![(ids[1], 3)],
            ..NetDelta::default()
        };
        let aged = svc.snapshot().apply(&delta);
        svc.publish_at(Arc::new(aged), Some(&delta), 1.0);
        let flagged = svc.get_with(&request, &at(1.0)).unwrap();
        assert_eq!(flagged.quality, PlacementQuality::Stale { age: 0.0 });
        assert!(flagged.result.is_ok());
        assert!(svc.stats().balanced());
    }

    #[test]
    fn reconcile_repairs_failed_jobs_and_releases_vanished_ones() {
        let (svc, _) = service(0);
        let request = SelectionRequest::balanced(2);
        let a = svc.admit(&request).unwrap();
        let b = svc.admit(&request).unwrap();
        let calm = svc.reconcile(0.0);
        assert_eq!(calm.examined, 2);
        assert_eq!(calm.healthy, 2);
        assert!(calm.repaired.is_empty() && calm.released.is_empty());
        // Kill one of job a's nodes: the next sweep must repair it.
        let dead = a.selection.nodes[0];
        let delta = NetDelta {
            avail_nodes: vec![(dead, false)],
            ..NetDelta::default()
        };
        let down = svc.snapshot().apply(&delta);
        svc.publish_at(Arc::new(down), Some(&delta), 1.0);
        let repair = svc.reconcile(1.0);
        assert_eq!(repair.repaired, vec![a.job]);
        assert!(!svc.job_nodes(a.job).unwrap().contains(&dead));
        let stats = svc.stats();
        assert_eq!(stats.reconciles, 2);
        assert_eq!(stats.reconcile_repairs, 1);
        // Shrink the structure: claims on vanished nodes must be
        // released, surviving jobs must reference only live indices.
        let (small, _) = star(2, 100.0 * MBPS);
        svc.publish_at(Arc::new(NetSnapshot::capture(Arc::new(small))), None, 2.0);
        let sweep = svc.reconcile(2.0);
        let node_count = svc.snapshot().structure().node_count();
        for job in [a.job, b.job] {
            match svc.job_nodes(job) {
                Ok(nodes) => assert!(nodes.iter().all(|n| n.index() < node_count)),
                Err(ServiceError::UnknownJob(_)) => assert!(sweep.released.contains(&job)),
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(
            sweep.released.len() as u64,
            svc.stats().reconcile_releases,
            "every reconcile release is counted"
        );
        assert!(svc.stats().balanced());
    }

    #[test]
    fn pooled_overload_mix_stays_balanced() {
        let (topo, _) = star(8, 100.0 * MBPS);
        let snap = Arc::new(NetSnapshot::capture(Arc::new(topo)));
        let config = ServiceConfig {
            workers: 2,
            queue_capacity: 2,
            max_inflight_solves: 1,
            ..ServiceConfig::default()
        };
        let svc = Arc::new(PlacementService::new(snap, config));
        std::thread::scope(|scope| {
            for i in 0..16usize {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    let request = SelectionRequest::balanced(2 + (i % 4));
                    let opts = GetOptions {
                        now: Some(i as f64),
                        deadline: if i % 3 == 0 {
                            Some(i as f64 + 0.5)
                        } else {
                            None
                        },
                        block_when_full: i % 2 == 0,
                    };
                    match svc.get_with(&request, &opts) {
                        Ok(placement) => assert!(placement.result.is_ok()),
                        Err(ServiceError::Shed { .. })
                        | Err(ServiceError::DeadlineExceeded { .. }) => {}
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                });
            }
        });
        // Quiesced: every request must be in exactly one bucket.
        assert!(svc.stats().balanced(), "{:?}", svc.stats());
    }
}
