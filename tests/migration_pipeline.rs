//! Integration of the migration advisor with the live measurement
//! pipeline: a running application's placement is re-evaluated as the
//! network degrades, discounting the application's own footprint.

use nodesel_core::migration::{advise, OwnUsage};
use nodesel_core::SelectionRequest;
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;

#[test]
fn own_footprint_does_not_trigger_migration() {
    let tb = cmu_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    let placed = vec![tb.m(1), tb.m(2), tb.m(3), tb.m(4)];
    for &n in &placed {
        sim.start_compute(n, 1e9, |_| {});
    }
    sim.run_for(600.0);
    // The measured topology shows load ≈ 1.0 on our nodes — all of it
    // ours. After discounting, there is nothing to flee from.
    let snapshot = remos.snapshot(&sim).to_topology();
    assert!(snapshot.node(tb.m(1)).load_avg() > 0.9);
    let advice = advise(
        &snapshot,
        &placed,
        &OwnUsage::one_process_per_node(&placed),
        &SelectionRequest::balanced(4),
        0.1,
    )
    .unwrap();
    assert!(!advice.recommended, "advice: {advice:?}");
    assert!((advice.current_score - 1.0).abs() < 0.15);
}

#[test]
fn competing_load_triggers_migration_to_quiet_nodes() {
    let tb = cmu_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    let placed = vec![tb.m(1), tb.m(2), tb.m(3), tb.m(4)];
    for &n in &placed {
        sim.start_compute(n, 1e9, |_| {});
    }
    // Competitors pile on m-1 and m-2.
    for _ in 0..4 {
        sim.start_compute(tb.m(1), 1e9, |_| {});
        sim.start_compute(tb.m(2), 1e9, |_| {});
    }
    sim.run_for(600.0);
    let snapshot = remos.snapshot(&sim).to_topology();
    let advice = advise(
        &snapshot,
        &placed,
        &OwnUsage::one_process_per_node(&placed),
        &SelectionRequest::balanced(4),
        0.25,
    )
    .unwrap();
    assert!(advice.recommended);
    let vacated = advice.vacated(&placed);
    assert!(vacated.contains(&tb.m(1)) && vacated.contains(&tb.m(2)));
    // The replacement set must be strictly better on the discounted view.
    assert!(advice.best.score > advice.current_score * 1.25);
}
