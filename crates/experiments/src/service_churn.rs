//! A resident placement service over a churning network.
//!
//! The paper's experiments call selection once per application launch. A
//! placement *service* — the natural deployment of the algorithms — stays
//! resident and re-evaluates as the network changes underneath it. This
//! scenario exercises the incremental seam end to end: the service polls
//! the collector's versioned snapshot each period, feeds only the
//! epoch-to-epoch delta to a primed [`Selector`](nodesel_core::Selector),
//! and reports the measurement-layer counters
//! ([`QueryStats`]) that show how much of the
//! stream was shared rather than recomputed.

use nodesel_core::{selector_for, SelectionRequest};
use nodesel_loadgen::{install_load, install_traffic, LoadConfig, TrafficConfig};
use nodesel_remos::{CollectorConfig, QueryStats, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::{NetSnapshot, NodeId};

/// Configuration of a churn run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Seconds of warm-up before the service starts polling.
    pub warmup: f64,
    /// Poll period of the placement service, seconds.
    pub period: f64,
    /// Number of polls the service performs.
    pub checks: usize,
    /// Nodes requested per placement.
    pub count: usize,
    /// Background compute-load generator settings.
    pub load: LoadConfig,
    /// Background traffic generator settings.
    pub traffic: TrafficConfig,
    /// Seed for the background generators.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            warmup: 300.0,
            period: 60.0,
            checks: 10,
            count: 4,
            load: LoadConfig::paper_defaults(),
            traffic: TrafficConfig::paper_defaults(),
            seed: 42,
        }
    }
}

/// One poll of the placement service.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnCheck {
    /// Simulated time of the poll, seconds.
    pub time: f64,
    /// Epoch of the snapshot the decision was made on.
    pub epoch: u64,
    /// Whether the incremental [`refresh`](nodesel_core::Selector::refresh)
    /// path served this poll (the first poll always primes with a full
    /// solve).
    pub refreshed: bool,
    /// The selected placement.
    pub nodes: Vec<NodeId>,
    /// Its balanced score.
    pub score: f64,
}

/// Outcome of a full run, including the measurement-layer counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// Every poll, in order.
    pub checks: Vec<ChurnCheck>,
    /// How many polls changed the placement relative to the previous one.
    pub placement_changes: usize,
    /// Counters from the Remos handle: snapshot hits/misses and the
    /// cumulative size of the delta stream.
    pub stats: QueryStats,
}

/// Runs the resident service on the CMU testbed under the paper's
/// background generators. Deterministic in `config.seed`.
pub fn run_service_churn(config: &ChurnConfig) -> ChurnReport {
    let tb = cmu_testbed();
    let machines = tb.machines.clone();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    install_load(&mut sim, &machines, config.load, config.seed ^ 0x10AD);
    install_traffic(&mut sim, &machines, config.traffic, config.seed ^ 0x7AFF1C);
    sim.run_for(config.warmup);

    let request = SelectionRequest::balanced(config.count);
    let mut selector = selector_for(request.objective);
    let mut last_snap: Option<NetSnapshot> = None;
    let mut checks: Vec<ChurnCheck> = Vec::with_capacity(config.checks);
    let mut placement_changes = 0;
    for poll in 0..config.checks {
        if poll > 0 {
            sim.run_for(config.period);
        }
        let snap = remos.snapshot(&sim);
        let (selection, refreshed) = match &last_snap {
            Some(prev) if prev.same_structure(&snap) => {
                let delta = snap.diff(prev);
                let sel = selector
                    .refresh(&snap, &delta)
                    .expect("testbed keeps enough nodes");
                (sel, true)
            }
            _ => {
                let sel = selector
                    .select(&snap, &request)
                    .expect("testbed has enough nodes");
                (sel, false)
            }
        };
        if let Some(prev) = checks.last() {
            if prev.nodes != selection.nodes {
                placement_changes += 1;
            }
        }
        checks.push(ChurnCheck {
            time: sim.now().as_secs_f64(),
            epoch: snap.epoch(),
            refreshed,
            nodes: selection.nodes,
            score: selection.score,
        });
        last_snap = Some(snap);
    }
    ChurnReport {
        checks,
        placement_changes,
        stats: remos.query_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let config = ChurnConfig {
            checks: 4,
            ..ChurnConfig::default()
        };
        assert_eq!(run_service_churn(&config), run_service_churn(&config));
    }

    #[test]
    fn polls_after_the_first_take_the_refresh_path() {
        let config = ChurnConfig {
            checks: 5,
            ..ChurnConfig::default()
        };
        let report = run_service_churn(&config);
        assert_eq!(report.checks.len(), 5);
        assert!(!report.checks[0].refreshed);
        assert!(report.checks[1..].iter().all(|c| c.refreshed));
        // Epochs never go backwards along the stream.
        assert!(report.checks.windows(2).all(|w| w[0].epoch <= w[1].epoch));
    }

    #[test]
    fn stats_account_for_every_poll() {
        let config = ChurnConfig {
            checks: 6,
            ..ChurnConfig::default()
        };
        let report = run_service_churn(&config);
        let s = report.stats;
        assert_eq!(s.topology_queries, 6);
        assert_eq!(s.snapshot_hits + s.snapshot_misses, 6);
        // The background generators keep the network moving, so the
        // stream must have carried real changes.
        assert!(s.delta_node_entries + s.delta_link_entries > 0);
    }
}
