//! The placement server: epoch publication in, placements out.
//!
//! One [`PlacementService`] owns the latest published snapshot (in a
//! lock-free [`EpochCell`]), a delta-invalidated
//! [`SelectionCache`], and an optional worker pool. A request travels:
//!
//! 1. **canonicalize** — [`CanonicalRequest`] normalizes the spec so
//!    identically-shaped requests share one cache slot and one solve;
//! 2. **pin an epoch** — one lock-free [`EpochCell::load`]; the answer
//!    is then *for that epoch*, whatever the collector publishes next;
//! 3. **cache** — a hit returns the epoch's cached bits;
//! 4. **single-flight** — a miss joins an identical in-flight solve on
//!    the same snapshot if one exists, else enqueues its own;
//! 5. **batch-solve** — workers drain the bounded queue up to
//!    `batch_size` jobs at a time, scarcest-first (tightest candidate
//!    pool first, larger requests first), solve each against the job's
//!    own pinned snapshot, and publish answer + footprint to the cache.
//!
//! With `workers == 0` the service solves inline on the calling thread —
//! same cache, same accounting, fully deterministic (the configuration
//! the parity proptests drive).
//!
//! Every answer is bit-identical to a fresh [`nodesel_core::select`] on
//! the same epoch: hits by the footprint soundness contract, merged and
//! batched solves because they run the very same solver against the very
//! same pinned snapshot.

use crate::cache::SelectionCache;
use crate::epoch::EpochCell;
use crate::stats::{ServiceStats, StatsInner};
use nodesel_core::SelectionRequest;
use nodesel_core::{selector_for, CanonicalRequest, SelectError, Selection, SelectionFootprint};
use nodesel_topology::{NetDelta, NetSnapshot};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for a [`PlacementService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Solver threads. `0` solves inline on the calling thread
    /// (deterministic; single-flight merges never occur).
    pub workers: usize,
    /// Maximum jobs a worker drains per wakeup; each drained batch is
    /// ordered scarcest-first before solving.
    pub batch_size: usize,
    /// Queued-job bound; producers block when it is reached.
    pub queue_capacity: usize,
    /// Selection-cache entry bound (LRU beyond it; `0` disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            batch_size: 32,
            queue_capacity: 1024,
            cache_capacity: 65536,
        }
    }
}

impl ServiceConfig {
    /// The default configuration with a pool of `workers` solver threads.
    pub fn pooled(workers: usize) -> Self {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }
}

/// A service answer: the result plus the epoch it is valid for.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Epoch of the snapshot the answer was solved (or cached) against.
    pub epoch: u64,
    /// The selection, bit-identical to a fresh solve on that epoch.
    pub result: Result<Selection, SelectError>,
}

/// One in-flight solve; merged requests block on `cv` until `done`.
struct Job {
    snap: Arc<NetSnapshot>,
    canon: CanonicalRequest,
    done: Mutex<Option<Result<Selection, SelectError>>>,
    cv: Condvar,
}

/// Jobs are keyed by the identity of their pinned snapshot (the `Arc`'s
/// address — kept alive by the job itself) plus the canonical request:
/// merging is only sound onto a solve against the *same* snapshot.
type JobKey = (usize, CanonicalRequest);

fn job_key(snap: &Arc<NetSnapshot>, canon: &CanonicalRequest) -> JobKey {
    (Arc::as_ptr(snap) as usize, canon.clone())
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Arc<Job>>,
    inflight: HashMap<JobKey, Arc<Job>>,
}

struct Shared {
    cell: EpochCell,
    cache: Mutex<SelectionCache>,
    state: Mutex<QueueState>,
    /// Signals workers that the queue is non-empty (or shutdown).
    work_cv: Condvar,
    /// Signals producers that queue space freed up.
    space_cv: Condvar,
    stats: StatsInner,
    shutdown: AtomicBool,
    /// Baseline for [`PlacementService::ingest`] diffs.
    last_published: Mutex<Arc<NetSnapshot>>,
    config: ServiceConfig,
}

/// A concurrent placement server over a published snapshot stream.
///
/// Created with [`PlacementService::new`]; the collector side feeds it
/// via [`PlacementService::publish`] (or [`PlacementService::ingest`]),
/// request threads call [`PlacementService::get`] freely from any number
/// of threads. Dropping the service joins its workers.
pub struct PlacementService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl PlacementService {
    /// A service answering against `initial` until the first publication.
    pub fn new(initial: Arc<NetSnapshot>, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            cell: EpochCell::new(Arc::clone(&initial)),
            cache: Mutex::new(SelectionCache::new(initial.epoch(), config.cache_capacity)),
            state: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            stats: StatsInner::default(),
            shutdown: AtomicBool::new(false),
            last_published: Mutex::new(initial),
            config: config.clone(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nodesel-service-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        PlacementService { shared, workers }
    }

    /// Publishes a new epoch. `delta` must describe every annotation
    /// change since the previously published snapshot; entries whose
    /// footprint it misses survive with stale bits. `None` (or a
    /// structure change, detected here) flushes the cache wholesale.
    /// The collector never blocks on readers: the snapshot swap is
    /// lock-free, the cache sweep contends only with request threads'
    /// cache accesses.
    pub fn publish(&self, snap: Arc<NetSnapshot>, delta: Option<&NetDelta>) {
        let shared = &self.shared;
        let structure_changed = {
            let mut last = shared
                .last_published
                .lock()
                .expect("last-published lock poisoned");
            let changed = !snap.same_structure(&last);
            *last = Arc::clone(&snap);
            changed
        };
        let epoch = snap.epoch();
        shared.cell.store(snap);
        let delta = if structure_changed { None } else { delta };
        shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .advance(epoch, delta);
        StatsInner::bump(&shared.stats.epochs_published);
    }

    /// Diffs `snap` against the last published snapshot and publishes it
    /// with the exact delta (a structure change publishes with a flush).
    /// The convenience hook for a collector pump that only has
    /// snapshots in hand. Returns the published epoch.
    pub fn ingest(&self, snap: NetSnapshot) -> u64 {
        let snap = Arc::new(snap);
        let epoch = snap.epoch();
        let last = Arc::clone(
            &self
                .shared
                .last_published
                .lock()
                .expect("last-published lock poisoned"),
        );
        if snap.same_structure(&last) {
            let delta = snap.diff(&last);
            self.publish(snap, Some(&delta));
        } else {
            self.publish(snap, None);
        }
        epoch
    }

    /// The currently published snapshot (lock-free).
    pub fn snapshot(&self) -> Arc<NetSnapshot> {
        self.shared.cell.load()
    }

    /// The currently published epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.shared.cell.load().epoch()
    }

    /// Answers `request` against the currently published epoch.
    ///
    /// The returned placement's `result` is bit-identical to a fresh
    /// [`nodesel_core::select`] on the snapshot of `placement.epoch` —
    /// whether it came from the cache, an in-flight merge, or a solve.
    pub fn get(&self, request: &SelectionRequest) -> Placement {
        self.get_canonical(&CanonicalRequest::new(request))
    }

    /// [`PlacementService::get`] for a pre-canonicalized request.
    pub fn get_canonical(&self, canon: &CanonicalRequest) -> Placement {
        let shared = &self.shared;
        StatsInner::bump(&shared.stats.requests);
        let snap = shared.cell.load();
        let epoch = snap.epoch();
        if let Some(result) = shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .lookup(epoch, canon)
        {
            StatsInner::bump(&shared.stats.cache_hits);
            return Placement { epoch, result };
        }
        if shared.config.workers == 0 {
            let (result, footprint) = solve(&snap, canon);
            shared.stats.record_solve(epoch);
            shared.cache.lock().expect("cache lock poisoned").insert(
                epoch,
                canon.clone(),
                result.clone(),
                footprint,
            );
            return Placement { epoch, result };
        }
        let key = job_key(&snap, canon);
        let job = {
            let mut state = shared.state.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = state.inflight.get(&key) {
                    StatsInner::bump(&shared.stats.single_flight_merges);
                    break Arc::clone(job);
                }
                if state.queue.len() < shared.config.queue_capacity {
                    let job = Arc::new(Job {
                        snap: Arc::clone(&snap),
                        canon: canon.clone(),
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    state.inflight.insert(key.clone(), Arc::clone(&job));
                    state.queue.push_back(Arc::clone(&job));
                    shared.work_cv.notify_one();
                    break job;
                }
                // Queue full: wait for workers to drain, then re-check
                // (an identical job may have appeared meanwhile).
                state = shared.space_cv.wait(state).expect("queue lock poisoned");
            }
        };
        let mut done = job.done.lock().expect("job lock poisoned");
        while done.is_none() {
            done = job.cv.wait(done).expect("job lock poisoned");
        }
        Placement {
            epoch,
            result: done.clone().expect("job completed"),
        }
    }

    /// A point-in-time view of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        use std::sync::atomic::Ordering::Relaxed;
        let shared = &self.shared;
        let cache = shared.cache.lock().expect("cache lock poisoned");
        let counters = cache.counters;
        drop(cache);
        ServiceStats {
            requests: shared.stats.requests.load(Relaxed),
            cache_hits: shared.stats.cache_hits.load(Relaxed),
            single_flight_merges: shared.stats.single_flight_merges.load(Relaxed),
            solves: shared.stats.solves.load(Relaxed),
            epochs_published: shared.stats.epochs_published.load(Relaxed),
            delta_evictions: counters.delta_evictions,
            capacity_evictions: counters.capacity_evictions,
            carried_forward: counters.carried_forward,
            stale_inserts: counters.stale_inserts,
            flushes: counters.flushes,
            solves_per_epoch: shared
                .stats
                .per_epoch
                .lock()
                .expect("stats lock poisoned")
                .iter()
                .copied()
                .collect(),
        }
    }

    /// Resident cache entries (test and observability hook).
    pub fn cached_entries(&self) -> usize {
        self.shared.cache.lock().expect("cache lock poisoned").len()
    }
}

impl Drop for PlacementService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for PlacementService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementService")
            .field("epoch", &self.epoch())
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Solves `canon` against `snap`, returning the answer and the footprint
/// a cache entry for it must record.
fn solve(
    snap: &NetSnapshot,
    canon: &CanonicalRequest,
) -> (Result<Selection, SelectError>, SelectionFootprint) {
    let request = canon.to_request();
    let mut selector = selector_for(request.objective);
    let result = selector.select(snap, &request);
    (result, selector.footprint())
}

/// Scarcest-first batch order: tightest candidate pool first (smallest
/// `allowed`, unrestricted last), then pinned-node count (more first),
/// then larger requests first — the hardest-to-place specs claim their
/// answers before the flexible ones, mirroring the batched-matching
/// exemplar.
fn scarcity_key(
    canon: &CanonicalRequest,
) -> (usize, std::cmp::Reverse<usize>, std::cmp::Reverse<usize>) {
    (
        canon.allowed_len().unwrap_or(usize::MAX),
        std::cmp::Reverse(canon.required_len()),
        std::cmp::Reverse(canon.count()),
    )
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut batch: Vec<Arc<Job>> = {
            let mut state = shared.state.lock().expect("queue lock poisoned");
            while state.queue.is_empty() && !shared.shutdown.load(SeqCst) {
                state = shared.work_cv.wait(state).expect("queue lock poisoned");
            }
            if state.queue.is_empty() {
                return; // shutdown with nothing left to solve
            }
            let take = state.queue.len().min(shared.config.batch_size.max(1));
            let batch = state.queue.drain(..take).collect();
            shared.space_cv.notify_all();
            batch
        };
        batch.sort_by_key(|a| scarcity_key(&a.canon));
        for job in batch {
            let (result, footprint) = solve(&job.snap, &job.canon);
            let epoch = job.snap.epoch();
            shared.stats.record_solve(epoch);
            shared.cache.lock().expect("cache lock poisoned").insert(
                epoch,
                job.canon.clone(),
                result.clone(),
                footprint,
            );
            shared
                .state
                .lock()
                .expect("queue lock poisoned")
                .inflight
                .remove(&job_key(&job.snap, &job.canon));
            *job.done.lock().expect("job lock poisoned") = Some(result);
            job.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;
    use nodesel_topology::{NetDelta, NodeId};

    fn service(workers: usize) -> (PlacementService, Vec<NodeId>) {
        let (topo, ids) = star(8, 100.0 * MBPS);
        let snap = Arc::new(NetSnapshot::capture(Arc::new(topo)));
        (
            PlacementService::new(snap, ServiceConfig::pooled(workers)),
            ids,
        )
    }

    #[test]
    fn inline_hits_after_first_solve() {
        let (svc, _) = service(0);
        let request = SelectionRequest::balanced(3);
        let first = svc.get(&request);
        let second = svc.get(&request);
        assert_eq!(first, second);
        let stats = svc.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.solves_per_epoch, vec![(0, 1)]);
    }

    #[test]
    fn answers_match_fresh_select_across_epochs() {
        let (svc, ids) = service(0);
        let requests = [
            SelectionRequest::compute(2),
            SelectionRequest::communication(3),
            SelectionRequest::balanced(4),
        ];
        let mut snap = (*svc.snapshot()).clone();
        for round in 0..5 {
            for request in &requests {
                let placement = svc.get(request);
                assert_eq!(placement.epoch, snap.epoch());
                assert_eq!(
                    placement.result,
                    nodesel_core::select(&snap.to_topology(), request),
                    "round {round}"
                );
            }
            let delta = NetDelta {
                nodes: vec![(ids[round % ids.len()], round as f64 + 0.5)],
                ..NetDelta::default()
            };
            snap = snap.apply(&delta);
            svc.publish(Arc::new(snap.clone()), Some(&delta));
        }
        let stats = svc.stats();
        assert_eq!(
            stats.requests,
            stats.cache_hits + stats.single_flight_merges + stats.solves
        );
        assert_eq!(stats.epochs_published, 5);
    }

    #[test]
    fn pooled_answers_match_inline() {
        let (pooled, _) = service(2);
        let (inline, _) = service(0);
        let requests: Vec<SelectionRequest> = (2..6)
            .flat_map(|m| {
                [
                    SelectionRequest::compute(m),
                    SelectionRequest::communication(m),
                    SelectionRequest::balanced(m),
                ]
            })
            .collect();
        for request in &requests {
            assert_eq!(pooled.get(request), inline.get(request));
        }
        let stats = pooled.stats();
        assert_eq!(
            stats.requests,
            stats.cache_hits + stats.single_flight_merges + stats.solves
        );
    }

    #[test]
    fn pooled_concurrent_identical_requests_single_flight() {
        let (svc, _) = service(2);
        let svc = Arc::new(svc);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    let request = SelectionRequest::balanced(3);
                    let placement = svc.get(&request);
                    assert!(placement.result.is_ok());
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(
            stats.requests,
            stats.cache_hits + stats.single_flight_merges + stats.solves
        );
        // At least one request must have solved; the split between hits
        // and merges depends on timing.
        assert!(stats.solves >= 1);
    }

    #[test]
    fn structure_change_flushes_cache() {
        let (svc, _) = service(0);
        svc.get(&SelectionRequest::compute(2));
        assert_eq!(svc.cached_entries(), 1);
        let (other, _) = star(6, 100.0 * MBPS);
        let replacement = Arc::new(NetSnapshot::capture(Arc::new(other)));
        // Even with a (bogus) delta attached, the structure swap forces
        // a flush.
        svc.publish(replacement, Some(&NetDelta::default()));
        assert_eq!(svc.cached_entries(), 0);
        assert_eq!(svc.stats().flushes, 1);
    }

    #[test]
    fn ingest_diffs_and_carries_disjoint_entries() {
        let (svc, ids) = service(0);
        let compute = SelectionRequest::compute(2);
        let first = svc.get(&compute);
        // Load a node far from the answer: the compute entry's footprint
        // covers only its viable component members — here the whole
        // allowed pool, so pick the answer's own node to force eviction,
        // then a no-op delta to confirm carry.
        let snap = (*svc.snapshot()).clone();
        let next = snap.apply(&NetDelta::default());
        let epoch = svc.ingest(next);
        assert_eq!(epoch, 1);
        assert_eq!(svc.cached_entries(), 1, "empty diff carries the entry");
        let hit = svc.get(&compute);
        assert_eq!(hit.epoch, 1);
        assert_eq!(hit.result, first.result);
        assert_eq!(svc.stats().cache_hits, 1);
        // Now touch a chosen node: the entry must be evicted.
        let chosen = first.result.as_ref().unwrap().nodes[0];
        let delta = NetDelta {
            nodes: vec![(chosen, 9.0)],
            ..NetDelta::default()
        };
        let churned = svc.snapshot().apply(&delta);
        svc.ingest(churned);
        assert_eq!(svc.cached_entries(), 0);
        assert!(svc.stats().delta_evictions >= 1);
        let _ = ids;
    }

    #[test]
    fn scarcity_orders_tightest_first() {
        let mut tight = SelectionRequest::compute(2);
        tight.constraints.allowed = Some(
            [NodeId::from_index(0), NodeId::from_index(1)]
                .into_iter()
                .collect(),
        );
        let loose = SelectionRequest::compute(2);
        let big = SelectionRequest::compute(5);
        let k = |r: &SelectionRequest| scarcity_key(&CanonicalRequest::new(r));
        assert!(k(&tight) < k(&loose));
        assert!(k(&big) < k(&loose));
    }
}
