//! Typed errors for the placement lifecycle and the overload path.
//!
//! The answer-only path (`get`) is infallible by design — a selection
//! that cannot be satisfied is itself an answer
//! ([`nodesel_core::SelectError`] travels *inside* the
//! [`crate::Placement`]). The deadline-aware path
//! ([`crate::PlacementService::get_with`]) adds two ways to *not*
//! answer, both typed: [`ServiceError::Shed`] (the bounded queue or the
//! solve gate was full and the request declined to block) and
//! [`ServiceError::DeadlineExceeded`] (the request's deadline passed
//! before a worker reached it). The lifecycle path (`admit` / `release`
//! / `supervise`) validates caller-held state (a demand, a job handle),
//! so failures there are typed and returned, never panicked; under the
//! degraded-mode policy an admission of a bandwidth-sensitive job past
//! the hard staleness bound is refused with
//! [`ServiceError::DegradedRefusal`]. Lock poisoning remains a panic
//! throughout the crate — see [`crate::service`]'s locking notes.

use crate::ledger::JobId;
use nodesel_core::SelectError;

/// Why a placement-lifecycle call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The job handle does not name a live ledger entry — never admitted
    /// here, or already released.
    UnknownJob(JobId),
    /// A demand magnitude was not a finite, non-negative number.
    InvalidDemand {
        /// Which magnitude was rejected (`"cpu_load"` or
        /// `"pair_bandwidth"`).
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The underlying selection failed; the ledger was not changed.
    Select(SelectError),
    /// The service shed the request instead of queueing or solving it:
    /// the bounded request queue (or the in-flight solve gate) was full
    /// and the request declined to block
    /// ([`crate::GetOptions::block_when_full`] was `false`). No answer
    /// was produced and nothing was cached; the caller may retry.
    Shed {
        /// Jobs sitting in the bounded queue at the moment of shedding
        /// (0 when the solve gate, not the queue, was the full resource).
        queued: usize,
    },
    /// The request's deadline passed before an answer was produced:
    /// either it was already expired on arrival, or every waiter's
    /// deadline had passed by the time a worker dequeued the job
    /// (workers skip dead work instead of solving it).
    DeadlineExceeded {
        /// The request's absolute deadline, service-clock seconds.
        deadline: f64,
        /// The service clock when the request was abandoned.
        now: f64,
    },
    /// The degraded-mode policy refused the operation: the collector has
    /// not been heard from for longer than the hard staleness bound and
    /// the request is bandwidth-sensitive, so any answer would be a
    /// fabrication. CPU-only requests are still served (flagged stale).
    DegradedRefusal {
        /// Seconds since the service last heard from the collector.
        age: f64,
    },
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::UnknownJob(job) => {
                write!(
                    f,
                    "job {job:?} is not admitted (unknown or already released)"
                )
            }
            ServiceError::InvalidDemand { field, value } => {
                write!(
                    f,
                    "demand {field} = {value} is not a finite non-negative number"
                )
            }
            ServiceError::Select(e) => write!(f, "selection failed: {e}"),
            ServiceError::Shed { queued } => {
                write!(f, "request shed: service at capacity ({queued} queued)")
            }
            ServiceError::DeadlineExceeded { deadline, now } => {
                write!(
                    f,
                    "deadline {deadline:.3}s passed before an answer (now {now:.3}s)"
                )
            }
            ServiceError::DegradedRefusal { age } => {
                write!(
                    f,
                    "refused: measurements {age:.1}s old exceed the hard staleness \
                     bound for a bandwidth-sensitive request"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Select(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SelectError> for ServiceError {
    fn from(e: SelectError) -> Self {
        ServiceError::Select(e)
    }
}
