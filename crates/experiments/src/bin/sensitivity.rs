//! Sensitivity sweeps (§4.4): how the benefit of automatic selection
//! varies with offered load, offered traffic, and application length.
//!
//! Usage: `sensitivity [repetitions]` (default 12).

use nodesel_apps::{fft::fft_program, AppModel};
use nodesel_experiments::sensitivity::{length_sensitivity, load_sensitivity, traffic_sensitivity};

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let app = AppModel::Phased(fft_program(32));

    println!("=== Load-intensity sweep (FFT, 4 nodes, {reps} reps/point) ===");
    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>10}",
        "factor", "random", "auto", "ref", "remaining"
    );
    for p in load_sensitivity(&app, 4, &[0.25, 0.5, 1.0, 2.0, 4.0], reps, 101) {
        println!(
            "{:>7.2} {:>9.1} {:>9.1} {:>9.1} {:>10.2}",
            p.factor,
            p.random,
            p.auto,
            p.reference,
            p.remaining_increase()
        );
    }

    println!("\n=== Traffic-intensity sweep (FFT, 4 nodes, {reps} reps/point) ===");
    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>10}",
        "factor", "random", "auto", "ref", "remaining"
    );
    for p in traffic_sensitivity(&app, 4, &[0.25, 0.5, 1.0, 1.5, 2.0], reps, 202) {
        println!(
            "{:>7.2} {:>9.1} {:>9.1} {:>9.1} {:>10.2}",
            p.factor,
            p.random,
            p.auto,
            p.reference,
            p.remaining_increase()
        );
    }

    println!("\n=== Application-length sweep (FFT iterations, load+traffic) ===");
    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>10}",
        "iters", "random", "auto", "ref", "remaining"
    );
    for p in length_sensitivity(4, &[8, 32, 128, 512], reps, 303) {
        println!(
            "{:>7.0} {:>9.1} {:>9.1} {:>9.1} {:>10.2}",
            p.factor,
            p.random,
            p.auto,
            p.reference,
            p.remaining_increase()
        );
    }
    println!("\n('remaining' = fraction of the induced slowdown surviving automatic selection)");
}
