//! Dynamic migration advice (§3.3, "Dynamic migration").
//!
//! "The solution procedure can be applied directly to the problem of
//! dynamic migration to avoid network congestion and busy nodes. One
//! important consideration is that the load and traffic caused by the
//! application itself must be captured separately as it is not due to a
//! competing process."
//!
//! [`discount_own_usage`] removes the application's own footprint from a
//! measured topology snapshot; [`advise`] then compares the quality of the
//! current placement against a fresh selection and recommends migration
//! when the improvement clears a hysteresis threshold (migration is not
//! free, so marginal gains should not trigger it).
//!
//! A periodic advisor re-runs this every measurement epoch against a
//! nearly unchanged network. [`Advisor`] is the persistent form: it keeps
//! a [`Selector`] primed on the discounted snapshot stream (own footprint
//! applied as a [`NetDelta`] via [`discount_delta`], preserving structural
//! sharing) so each epoch costs an incremental `refresh` instead of a
//! from-scratch solve.

use crate::quality::{evaluate, evaluate_in, Quality};
use crate::request::SelectionRequest;
use crate::selector::{selector_for, Selector};
use crate::weights::Weights;
use crate::{select, Objective, SelectError, Selection};
use nodesel_topology::{
    Direction, EdgeId, NetDelta, NetMetrics, NetSnapshot, NodeId, RouteTable, Topology,
};

/// The application's own resource footprint, to be subtracted from
/// measurements before deciding on migration.
#[derive(Debug, Clone, Default)]
pub struct OwnUsage {
    /// Load-average contribution per node (typically 1.0 for each node
    /// running one application process).
    pub load: Vec<(NodeId, f64)>,
    /// Average bandwidth the application itself drives over each directed
    /// link, bits/s.
    pub traffic: Vec<(EdgeId, Direction, f64)>,
}

impl OwnUsage {
    /// The common case: one CPU-bound process on each currently used node
    /// (no attributed traffic).
    pub fn one_process_per_node(nodes: &[NodeId]) -> Self {
        OwnUsage {
            load: nodes.iter().map(|&n| (n, 1.0)).collect(),
            traffic: Vec::new(),
        }
    }
}

/// Returns a copy of the snapshot with the application's own load and
/// traffic removed (clamped at zero).
pub fn discount_own_usage(topo: &Topology, own: &OwnUsage) -> Topology {
    let mut t = topo.clone();
    for &(n, load) in &own.load {
        let current = t.node(n).load_avg();
        t.set_load_avg(n, (current - load).max(0.0));
    }
    for &(e, dir, bits) in &own.traffic {
        let current = t.link(e).used(dir);
        t.set_link_used(e, dir, (current - bits).max(0.0));
    }
    t
}

/// The [`NetDelta`] that removes `own` from `snap`'s annotations, each
/// clamped at zero — the snapshot-world [`discount_own_usage`]. Repeated
/// entries for the same node or directed link subtract cumulatively,
/// matching the topology-mutating form.
pub fn discount_delta(snap: &NetSnapshot, own: &OwnUsage) -> NetDelta {
    let mut delta = NetDelta::default();
    for &(n, load) in &own.load {
        let current = delta
            .nodes
            .iter()
            .rev()
            .find(|&&(m, _)| m == n)
            .map_or_else(|| snap.load_avg(n), |&(_, v)| v);
        delta.nodes.push((n, (current - load).max(0.0)));
    }
    for &(e, dir, bits) in &own.traffic {
        let current = delta
            .links
            .iter()
            .rev()
            .find(|&&(e2, d2, _)| e2 == e && d2 == dir)
            .map_or_else(|| snap.used(e, dir), |&(_, _, v)| v);
        delta.links.push((e, dir, (current - bits).max(0.0)));
    }
    delta
}

/// Migration recommendation.
#[derive(Debug, Clone)]
pub struct MigrationAdvice {
    /// Quality of the current placement, measured on the discounted
    /// snapshot.
    pub current_quality: Quality,
    /// Balanced score of the current placement.
    pub current_score: f64,
    /// The best placement available right now.
    pub best: Selection,
    /// True when moving is worth it: `best.score > current_score * (1 +
    /// threshold)`.
    pub recommended: bool,
}

impl MigrationAdvice {
    /// Nodes that would be vacated by the recommended move.
    pub fn vacated(&self, current: &[NodeId]) -> Vec<NodeId> {
        current
            .iter()
            .copied()
            .filter(|n| !self.best.nodes.contains(n))
            .collect()
    }

    /// Nodes that would be newly occupied.
    pub fn occupied(&self, current: &[NodeId]) -> Vec<NodeId> {
        self.best
            .nodes
            .iter()
            .copied()
            .filter(|n| !current.contains(n))
            .collect()
    }
}

/// Evaluates whether a running application should migrate.
///
/// `snapshot` is the measured topology *including* the application's own
/// footprint; `own` describes that footprint so it can be discounted.
/// `improvement_threshold` is the relative score gain required to
/// recommend a move (e.g. `0.25` = "only migrate for a ≥25% better
/// score").
pub fn advise(
    snapshot: &Topology,
    current: &[NodeId],
    own: &OwnUsage,
    request: &SelectionRequest,
    improvement_threshold: f64,
) -> Result<MigrationAdvice, SelectError> {
    assert!(improvement_threshold >= 0.0);
    assert_eq!(
        current.len(),
        request.count,
        "request count must match the current placement size"
    );
    // An empty footprint would clone the whole snapshot only to change
    // nothing; borrow it instead (periodic advisors often poll with no
    // attributed traffic).
    let storage;
    let discounted: &Topology = if own.load.is_empty() && own.traffic.is_empty() {
        snapshot
    } else {
        storage = discount_own_usage(snapshot, own);
        &storage
    };
    let routes = discounted.routes();
    let current_quality = evaluate(discounted, &routes, current, request.reference_bandwidth);
    let weights = match request.objective {
        Objective::Balanced(w) => w,
        _ => Weights::EQUAL,
    };
    let current_score = current_quality.score(weights);
    let best = select(discounted, request)?;
    let recommended = best.score > current_score * (1.0 + improvement_threshold)
        && best.nodes != current.to_vec();
    Ok(MigrationAdvice {
        current_quality,
        current_score,
        best,
        recommended,
    })
}

/// A persistent migration advisor over a stream of snapshot epochs.
///
/// Functionally identical to calling [`advise`] per epoch, but the
/// underlying selection is served by a [`Selector`] kept primed on the
/// discounted snapshots: epochs whose churn leaves the solve skeleton
/// intact cost a cheap replay instead of a full re-solve.
pub struct Advisor {
    request: SelectionRequest,
    improvement_threshold: f64,
    selector: Box<dyn Selector>,
    /// The discounted snapshot the selector last saw, diffed against to
    /// produce the refresh delta.
    seen: Option<NetSnapshot>,
}

impl Advisor {
    /// An advisor for `request` with the given hysteresis threshold (see
    /// [`advise`]).
    pub fn new(request: SelectionRequest, improvement_threshold: f64) -> Advisor {
        assert!(improvement_threshold >= 0.0);
        let selector = selector_for(request.objective);
        Advisor {
            request,
            improvement_threshold,
            selector,
            seen: None,
        }
    }

    /// One epoch of [`advise`]: discounts `own` from `snapshot`, refreshes
    /// the persistent selector, and scores the `current` placement.
    pub fn advise(
        &mut self,
        snapshot: &NetSnapshot,
        current: &[NodeId],
        own: &OwnUsage,
    ) -> Result<MigrationAdvice, SelectError> {
        assert_eq!(
            current.len(),
            self.request.count,
            "request count must match the current placement size"
        );
        let discount = discount_delta(snapshot, own);
        let discounted = if discount.is_empty() {
            snapshot.clone()
        } else {
            snapshot.apply(&discount)
        };
        let best = match &self.seen {
            Some(prev) if prev.same_structure(&discounted) => {
                let delta = discounted.diff(prev);
                self.selector.refresh(&discounted, &delta)
            }
            _ => self.selector.select(&discounted, &self.request),
        };
        // Record what the selector saw even when selection failed: the
        // next epoch's delta must be relative to this one.
        self.seen = Some(discounted.clone());
        let best = best?;
        let table =
            RouteTable::build_for_sources(discounted.structure_arc(), current.iter().copied());
        let current_quality = evaluate_in(
            &discounted,
            &table,
            current,
            self.request.reference_bandwidth,
        );
        let weights = match self.request.objective {
            Objective::Balanced(w) => w,
            _ => Weights::EQUAL,
        };
        let current_score = current_quality.score(weights);
        let recommended = best.score > current_score * (1.0 + self.improvement_threshold)
            && best.nodes != current;
        Ok(MigrationAdvice {
            current_quality,
            current_score,
            best,
            recommended,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SelectionRequest;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;
    use std::sync::Arc;

    #[test]
    fn discount_delta_matches_topology_discount() {
        let (mut topo, ids) = star(3, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 1.0);
        topo.set_load_avg(ids[1], 2.0);
        let own = OwnUsage::one_process_per_node(&[ids[0], ids[1]]);
        let snap = NetSnapshot::capture(Arc::new(topo.clone()));
        let discounted = snap.apply(&discount_delta(&snap, &own));
        let reference = discount_own_usage(&topo, &own);
        for n in topo.node_ids() {
            assert_eq!(discounted.load_avg(n), reference.node(n).load_avg());
        }
    }

    #[test]
    fn discount_delta_is_cumulative_per_node() {
        let (mut topo, ids) = star(2, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 3.0);
        // Two of our processes on the same node.
        let own = OwnUsage::one_process_per_node(&[ids[0], ids[0]]);
        let snap = NetSnapshot::capture(Arc::new(topo));
        let discounted = snap.apply(&discount_delta(&snap, &own));
        assert_eq!(discounted.load_avg(ids[0]), 1.0);
    }

    #[test]
    fn advisor_tracks_epochs_incrementally() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 1.0);
        topo.set_load_avg(ids[1], 1.0);
        let own = OwnUsage::one_process_per_node(&[ids[0], ids[1]]);
        let snap = NetSnapshot::capture(Arc::new(topo));
        let req = SelectionRequest::balanced(2);
        let mut advisor = Advisor::new(req.clone(), 0.25);
        let first = advisor.advise(&snap, &[ids[0], ids[1]], &own).unwrap();
        assert!(!first.recommended);
        // Three competing jobs pile onto the first node.
        let churn = NetDelta {
            nodes: vec![(ids[0], 4.0)],
            ..NetDelta::default()
        };
        let next = snap.apply(&churn);
        let second = advisor.advise(&next, &[ids[0], ids[1]], &own).unwrap();
        let oneshot = advise(&next.to_topology(), &[ids[0], ids[1]], &own, &req, 0.25).unwrap();
        assert!(second.recommended);
        assert_eq!(second.best, oneshot.best);
        assert_eq!(second.current_score, oneshot.current_score);
        assert_eq!(second.vacated(&[ids[0], ids[1]]), vec![ids[0]]);
    }

    #[test]
    fn discount_removes_own_footprint() {
        let (mut topo, ids) = star(3, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 1.0); // entirely our own process
        topo.set_load_avg(ids[1], 2.0); // ours + one competitor
        let own = OwnUsage::one_process_per_node(&[ids[0], ids[1]]);
        let clean = discount_own_usage(&topo, &own);
        assert_eq!(clean.node(ids[0]).load_avg(), 0.0);
        assert_eq!(clean.node(ids[1]).load_avg(), 1.0);
        assert_eq!(clean.node(ids[2]).load_avg(), 0.0);
    }

    #[test]
    fn discount_clamps_at_zero() {
        let (mut topo, ids) = star(2, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 0.5);
        let own = OwnUsage::one_process_per_node(&[ids[0]]);
        let clean = discount_own_usage(&topo, &own);
        assert_eq!(clean.node(ids[0]).load_avg(), 0.0);
    }

    #[test]
    fn no_migration_when_placement_is_fine() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        // We run on n0, n1 (own load only); n2, n3 idle: no reason to move.
        topo.set_load_avg(ids[0], 1.0);
        topo.set_load_avg(ids[1], 1.0);
        let own = OwnUsage::one_process_per_node(&[ids[0], ids[1]]);
        let advice = advise(
            &topo,
            &[ids[0], ids[1]],
            &own,
            &SelectionRequest::balanced(2),
            0.1,
        )
        .unwrap();
        assert!(!advice.recommended);
        assert_eq!(advice.current_score, 1.0);
    }

    #[test]
    fn migration_recommended_away_from_competitors() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        // We run on n0, n1; n0 also hosts three competing jobs.
        topo.set_load_avg(ids[0], 4.0); // 1 ours + 3 competitors
        topo.set_load_avg(ids[1], 1.0); // ours only
        let own = OwnUsage::one_process_per_node(&[ids[0], ids[1]]);
        let advice = advise(
            &topo,
            &[ids[0], ids[1]],
            &own,
            &SelectionRequest::balanced(2),
            0.25,
        )
        .unwrap();
        assert!(advice.recommended);
        // The move vacates the busy node, not the quiet one.
        assert_eq!(advice.vacated(&[ids[0], ids[1]]), vec![ids[0]]);
        assert!(!advice.occupied(&[ids[0], ids[1]]).is_empty());
        assert!(advice.best.score > advice.current_score);
    }

    #[test]
    fn empty_footprint_skips_discounting() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 3.0);
        // No attributed load or traffic: the snapshot is used as measured.
        let advice = advise(
            &topo,
            &[ids[0], ids[1]],
            &OwnUsage::default(),
            &SelectionRequest::balanced(2),
            0.1,
        )
        .unwrap();
        assert_eq!(advice.current_quality.min_cpu, 0.25);
        assert!(advice.recommended);
    }

    #[test]
    fn threshold_suppresses_marginal_moves() {
        let (mut topo, ids) = star(3, 100.0 * MBPS);
        // Slightly better node available: score 1/1.2 vs 1/(1+0.1).
        topo.set_load_avg(ids[0], 1.2); // ours + 0.2 competitors
        let own = OwnUsage::one_process_per_node(&[ids[0]]);
        let req = SelectionRequest::balanced(1);
        let strict = advise(&topo, &[ids[0]], &own, &req, 0.5).unwrap();
        assert!(!strict.recommended);
        let eager = advise(&topo, &[ids[0]], &own, &req, 0.0).unwrap();
        assert!(eager.recommended);
    }
}
