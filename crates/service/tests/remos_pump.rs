//! End-to-end pump: simulated network → Remos collector →
//! [`Remos::snapshot_if_new`] → [`PlacementService::ingest`] → `get`.
//!
//! The loop a deployment runs: a pump thread polls the collector, feeds
//! only *new* epochs to the service (diffed into exact deltas by
//! `ingest`), and request threads ask for placements. Parity is checked
//! at every round against a fresh solve on the published snapshot, and
//! the accounting on both sides (snapshot hit/miss, epochs published,
//! hit + merge + solve = requests) must line up.

use std::sync::Arc;

use nodesel_core::{selector_for, SelectionRequest};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_service::{PlacementService, ServiceConfig};
use nodesel_simnet::{Sim, SimTime};
use nodesel_topology::builders::star;
use nodesel_topology::units::MBPS;

#[test]
fn pump_feeds_service_and_answers_track_epochs() {
    let (topo, ids) = star(6, 100.0 * MBPS);
    let mut sim = Sim::new(topo);
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    sim.run_until(SimTime::from_secs(30));
    let initial = remos.snapshot(&sim);
    let svc = PlacementService::new(Arc::new(initial), ServiceConfig::default());
    let requests = [
        SelectionRequest::compute(2),
        SelectionRequest::communication(3),
        SelectionRequest::balanced(2),
    ];
    let mut pumped = 0u64;
    let mut skipped = 0u64;
    for round in 0..20usize {
        // Keep the network churning: short compute bursts on rotating
        // nodes, so some collector samples change estimates and some
        // don't (exercising both pump branches).
        if round % 3 == 0 {
            sim.start_compute_detached(ids[round % ids.len()], 40.0);
        }
        sim.run_until(SimTime::from_secs(30 + 30 * (round as u64 + 1)));
        match remos.snapshot_if_new(&sim) {
            Some(snap) => {
                svc.ingest(snap);
                pumped += 1;
            }
            None => skipped += 1,
        }
        let snap = svc.snapshot();
        for request in &requests {
            let placement = svc.get(request);
            assert_eq!(placement.epoch, snap.epoch());
            let fresh = selector_for(request.objective).select(&snap, request);
            assert_eq!(
                placement.result, fresh,
                "round {round}: served answer drifted from a fresh solve"
            );
        }
    }
    assert!(pumped >= 2, "the churn must have published new epochs");
    let stats = svc.stats();
    assert_eq!(
        stats.requests,
        stats.cache_hits + stats.single_flight_merges + stats.solves
    );
    assert_eq!(stats.epochs_published, pumped);
    assert!(
        stats.cache_hits > 0,
        "repeated specs across quiet rounds must hit: {stats:?}"
    );
    // The remos side of the ledger: every skipped round was a snapshot
    // hit on the handle, every pumped round a miss.
    let qs = remos.query_stats();
    assert_eq!(qs.snapshot_hits, skipped);
    assert_eq!(qs.snapshot_misses, pumped + 1); // + the initial snapshot
}
