//! Integration of the measurement layer with live generators: Remos
//! snapshots must track the simulator's ground truth closely enough for
//! selection, while exhibiting the staleness the collector period implies.

use nodesel_loadgen::{install_load, install_traffic, LoadConfig, TrafficConfig};
use nodesel_remos::{CollectorConfig, Estimator, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::{Direction, NetMetrics};

#[test]
fn measured_topology_tracks_oracle_under_generators() {
    let tb = cmu_testbed();
    let machines = tb.machines.clone();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    install_load(&mut sim, &machines, LoadConfig::paper_defaults(), 42);
    install_traffic(&mut sim, &machines, TrafficConfig::paper_defaults(), 43);
    sim.run_for(1_500.0);

    let measured = remos.snapshot(&sim);
    let oracle = sim.oracle_snapshot();

    // Load averages: within an absolute band (the collector samples the
    // same damped quantity, so only inter-sample drift separates them).
    for n in oracle.compute_nodes() {
        let diff = (measured.load_avg(n) - oracle.node(n).load_avg()).abs();
        assert!(
            diff < 0.75,
            "load mismatch on {}: measured {}, oracle {}",
            oracle.node(n).name(),
            measured.load_avg(n),
            oracle.node(n).load_avg()
        );
    }

    // Link utilization: measured values are bounded by capacity and
    // correlate with the oracle's currently allocated rates.
    for e in oracle.edge_ids() {
        for dir in [Direction::AtoB, Direction::BtoA] {
            let cap = oracle.link(e).capacity(dir);
            assert!(measured.used(e, dir) <= cap * (1.0 + 1e-9));
        }
    }
}

#[test]
fn longer_periods_mean_staler_views() {
    let build = |period: f64| {
        let tb = cmu_testbed();
        let mut sim = Sim::new(tb.topo.clone());
        let remos = Remos::install(
            &mut sim,
            CollectorConfig {
                period,
                ..CollectorConfig::default()
            },
        );
        // Quiet for a while, then a sudden burst of load on m-1.
        sim.run_for(600.0);
        for _ in 0..4 {
            sim.start_compute(tb.m(1), 1e9, |_| {});
        }
        sim.run_for(30.0);
        remos.snapshot(&sim).load_avg(tb.m(1))
    };
    // A 5 s collector has seen the burst; a 600 s collector has not.
    let fresh = build(5.0);
    let stale = build(600.0);
    assert!(fresh > 0.5, "fresh collector saw the burst: {fresh}");
    assert!(stale < 0.1, "stale collector still reports idle: {stale}");
}

#[test]
fn window_mean_smooths_but_lags() {
    // The collector's snapshot stream follows the configured estimator;
    // run the identical deterministic scenario under each.
    let view = |estimator: Estimator| {
        let tb = cmu_testbed();
        let mut sim = Sim::new(tb.topo.clone());
        let remos = Remos::install(
            &mut sim,
            CollectorConfig {
                estimator,
                ..CollectorConfig::default()
            },
        );
        // Load appears at t=300 and persists.
        sim.run_for(300.0);
        for _ in 0..3 {
            sim.start_compute(tb.m(5), 1e9, |_| {});
        }
        sim.run_for(45.0);
        remos.snapshot(&sim).load_avg(tb.m(5))
    };
    let latest = view(Estimator::Latest);
    let meaned = view(Estimator::WindowMean);
    // Both see load, but the windowed view lags the step change.
    assert!(latest > meaned);
    assert!(meaned > 0.0);
}

#[test]
fn flow_queries_account_for_background_traffic() {
    let tb = cmu_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    // Persistent stream congesting the panama-gibraltar trunk.
    sim.start_transfer(tb.m(1), tb.m(8), 1e15, |_| {});
    sim.run_for(60.0);
    let infos = remos
        .flow_query(
            &sim,
            &[(tb.m(2), tb.m(9)), (tb.m(9), tb.m(10))],
            Estimator::Latest,
        )
        .unwrap();
    // The cross-trunk pair sees the stream; the intra-gibraltar pair does
    // not.
    assert!(
        infos[0].available_bw < 20e6,
        "trunk path should look congested: {}",
        infos[0].available_bw
    );
    assert!(
        infos[1].available_bw > 90e6,
        "local path should look clean: {}",
        infos[1].available_bw
    );
}
