//! Selection-as-a-service: a concurrent placement server over the
//! epoch/delta snapshot stream.
//!
//! The paper's selection procedure answers one query against one
//! topology; this crate turns it into a long-running, multi-tenant
//! **placement service**:
//!
//! * [`EpochCell`] — lock-free publication of `Arc<NetSnapshot>` epochs:
//!   the collector swaps in each new epoch without ever blocking on (or
//!   being blocked by) request threads.
//! * [`CanonicalRequest`] (from `nodesel-core`) — normalized, hashable
//!   request specs, so identically-shaped requests share cache slots and
//!   in-flight solves.
//! * [`SelectionCache`] — answers keyed by `(epoch, ledger version,
//!   canonical request)` whose recorded
//!   [`nodesel_core::SelectionFootprint`]s let a
//!   [`nodesel_topology::NetDelta`] — or an admitted claim's
//!   touched-entity set — evict exactly the entries it could have
//!   changed, carrying every other answer forward.
//! * [`PlacementLedger`] — the registry of admitted jobs: each carries a
//!   [`ResourceDemand`]-derived claim (CPU share per placed node,
//!   bandwidth per route link) that is subtracted from subsequent
//!   answers via the residual view (`nodesel_topology::residual`).
//! * [`PlacementService`] — the server: request canonicalization,
//!   cache lookup, single-flight merging of identical concurrent
//!   requests, scarcest-first batched solving on a worker pool, the
//!   admit/release/supervise placement lifecycle, and honest
//!   [`ServiceStats`].
//! * **Chaos hardening** — per-request deadlines and load shedding
//!   ([`GetOptions`], typed [`ServiceError::Shed`] /
//!   [`ServiceError::DeadlineExceeded`]), degraded-mode serving under a
//!   [`DegradePolicy`] (answers flagged [`PlacementQuality::Stale`] past
//!   the soft staleness bound, bandwidth-sensitive work refused past the
//!   hard bound — never a silent lie), and
//!   [`PlacementService::reconcile`] — a whole-ledger sweep that
//!   releases claims on vanished entities and re-selects failed
//!   placements with per-job backoff ([`ReconcileReport`]).
//!
//! The load-bearing invariant, proptest-guarded in
//! `tests/cache_parity.rs`: **every answer is bit-identical to a fresh
//! [`nodesel_core::select`] against the residual snapshot of the
//! answer's epoch and ledger version** — cached, merged, batched, or
//! solved inline. With an empty ledger the residual snapshot *is* the
//! raw snapshot (same `Arc`), so the lifecycle machinery is invisible
//! until the first admission.

#![warn(missing_docs)]

mod cache;
mod epoch;
mod error;
mod ledger;
mod service;
mod stats;

pub use cache::SelectionCache;
pub use epoch::EpochCell;
pub use error::ServiceError;
pub use ledger::{JobId, PlacementLedger, ResourceDemand};
pub use nodesel_core::CanonicalRequest;
pub use service::{
    Admission, DegradePolicy, GetOptions, Placement, PlacementQuality, PlacementService,
    ReconcileReport, ServiceConfig,
};
pub use stats::{CacheCounters, ServiceStats};
