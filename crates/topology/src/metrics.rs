//! Structural metrics of a topology.
//!
//! Used by reports and benches to characterize generated networks
//! (diameter, path lengths, bandwidth distribution) and by the CLI's
//! `inspect` command.

use crate::{NodeId, Topology};
use std::collections::VecDeque;

/// Summary statistics of a topology's structure and current conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyMetrics {
    /// Total nodes.
    pub nodes: usize,
    /// Compute nodes.
    pub compute_nodes: usize,
    /// Links.
    pub links: usize,
    /// True when the graph is connected.
    pub connected: bool,
    /// True when the graph is a forest.
    pub acyclic: bool,
    /// Hop-count diameter over compute-node pairs (`None` when
    /// disconnected or fewer than two compute nodes).
    pub diameter_hops: Option<usize>,
    /// Mean hop count over connected compute-node pairs.
    pub mean_path_hops: f64,
    /// Minimum / mean / maximum link `bw` (available bandwidth), bits/s.
    pub bw_min: f64,
    /// Mean available link bandwidth, bits/s.
    pub bw_mean: f64,
    /// Maximum available link bandwidth, bits/s.
    pub bw_max: f64,
    /// Mean compute-node load average.
    pub mean_load: f64,
}

/// BFS hop distances from `src` to every node (`usize::MAX` =
/// unreachable).
pub fn hop_distances(topo: &Topology, src: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; topo.node_count()];
    dist[src.index()] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(v) = q.pop_front() {
        for &(_, w) in topo.neighbors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                q.push_back(w);
            }
        }
    }
    dist
}

/// Computes [`TopologyMetrics`] for a topology snapshot.
pub fn metrics(topo: &Topology) -> TopologyMetrics {
    let computes: Vec<NodeId> = topo.compute_nodes().collect();
    let mut diameter: Option<usize> = None;
    let mut hop_sum = 0usize;
    let mut hop_pairs = 0usize;
    for &a in &computes {
        let dist = hop_distances(topo, a);
        for &b in &computes {
            if b <= a {
                continue;
            }
            let d = dist[b.index()];
            if d != usize::MAX {
                diameter = Some(diameter.map_or(d, |cur| cur.max(d)));
                hop_sum += d;
                hop_pairs += 1;
            }
        }
    }
    let (mut bw_min, mut bw_max, mut bw_sum) = (f64::INFINITY, 0.0f64, 0.0f64);
    for e in topo.edge_ids() {
        let bw = topo.link(e).bw();
        bw_min = bw_min.min(bw);
        bw_max = bw_max.max(bw);
        bw_sum += bw;
    }
    if topo.link_count() == 0 {
        bw_min = 0.0;
    }
    let mean_load = if computes.is_empty() {
        0.0
    } else {
        computes
            .iter()
            .map(|&n| topo.node(n).load_avg())
            .sum::<f64>()
            / computes.len() as f64
    };
    TopologyMetrics {
        nodes: topo.node_count(),
        compute_nodes: computes.len(),
        links: topo.link_count(),
        connected: topo.is_connected(),
        acyclic: topo.is_acyclic(),
        diameter_hops: diameter,
        mean_path_hops: if hop_pairs > 0 {
            hop_sum as f64 / hop_pairs as f64
        } else {
            0.0
        },
        bw_min,
        bw_mean: if topo.link_count() > 0 {
            bw_sum / topo.link_count() as f64
        } else {
            0.0
        },
        bw_max,
        mean_load,
    }
}

impl core::fmt::Display for TopologyMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "nodes: {} ({} compute), links: {}",
            self.nodes, self.compute_nodes, self.links
        )?;
        writeln!(
            f,
            "connected: {}, acyclic: {}",
            self.connected, self.acyclic
        )?;
        match self.diameter_hops {
            Some(d) => writeln!(
                f,
                "compute-pair hops: diameter {}, mean {:.2}",
                d, self.mean_path_hops
            )?,
            None => writeln!(f, "compute-pair hops: n/a")?,
        }
        writeln!(
            f,
            "available bandwidth (Mbps): min {:.1}, mean {:.1}, max {:.1}",
            self.bw_min / 1e6,
            self.bw_mean / 1e6,
            self.bw_max / 1e6
        )?;
        write!(f, "mean compute load average: {:.2}", self.mean_load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{chain, dumbbell, star};
    use crate::testbeds::cmu_testbed;
    use crate::units::MBPS;

    #[test]
    fn star_metrics() {
        let (t, _) = star(4, 100.0 * MBPS);
        let m = metrics(&t);
        assert_eq!(m.nodes, 5);
        assert_eq!(m.compute_nodes, 4);
        assert!(m.connected && m.acyclic);
        assert_eq!(m.diameter_hops, Some(2));
        assert_eq!(m.mean_path_hops, 2.0);
        assert_eq!(m.bw_mean, 100.0 * MBPS);
    }

    #[test]
    fn chain_diameter() {
        let (t, _) = chain(5, 100.0 * MBPS);
        let m = metrics(&t);
        assert_eq!(m.diameter_hops, Some(4));
    }

    #[test]
    fn testbed_metrics() {
        let tb = cmu_testbed();
        let m = metrics(&tb.topo);
        assert_eq!(m.compute_nodes, 18);
        // Worst pair: panama host to suez host = 4 hops.
        assert_eq!(m.diameter_hops, Some(4));
        assert!(m.mean_path_hops > 2.0 && m.mean_path_hops < 4.0);
    }

    #[test]
    fn disconnected_and_empty_cases() {
        let t = Topology::new();
        let m = metrics(&t);
        assert_eq!(m.diameter_hops, None);
        assert_eq!(m.bw_min, 0.0);
        let mut t = Topology::new();
        t.add_compute_node("a", 1.0);
        t.add_compute_node("b", 1.0);
        let m = metrics(&t);
        assert!(!m.connected);
        assert_eq!(m.diameter_hops, None);
    }

    #[test]
    fn conditions_feed_through() {
        let (mut t, ids) = dumbbell(2, 100.0 * MBPS, 10.0 * MBPS);
        t.set_load_avg(ids[0], 2.0);
        let m = metrics(&t);
        assert_eq!(m.bw_min, 10.0 * MBPS);
        assert_eq!(m.bw_max, 100.0 * MBPS);
        assert!((m.mean_load - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_renders() {
        let (t, _) = star(3, 100.0 * MBPS);
        let s = metrics(&t).to_string();
        assert!(s.contains("3 compute"));
        assert!(s.contains("diameter 2"));
    }
}
