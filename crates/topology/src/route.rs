//! Static routing over the topology graph.
//!
//! The paper's algorithms assume a unique path between node pairs. On trees
//! this holds structurally; for cyclic topologies the paper observes that
//! "networks typically use static routing implying that a fixed path is
//! actually taken for all communication between a pair of nodes" (§3.3).
//! [`RouteTable`] realizes that model: it fixes one deterministic
//! shortest-hop path per ordered pair (BFS with insertion-order
//! tie-breaking) and answers path, bottleneck-bandwidth and latency queries
//! against it.

use crate::link::Direction;
use crate::snapshot::NetMetrics;
use crate::{EdgeId, NodeId, Topology, TopologyError};
use std::collections::VecDeque;

/// A fixed route between two nodes: the hops in travel order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Hops in order from `src` to `dst`: the link and the direction
    /// traffic takes across it.
    pub hops: Vec<(EdgeId, Direction)>,
}

impl Path {
    /// Number of links traversed.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True for the degenerate `src == dst` path.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The node sequence `src, ..., dst` implied by the hops.
    pub fn nodes(&self, topo: &Topology) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.hops.len() + 1);
        let mut cur = self.src;
        nodes.push(cur);
        for &(e, _) in &self.hops {
            cur = topo.link(e).opposite(cur);
            nodes.push(cur);
        }
        debug_assert_eq!(cur, self.dst);
        nodes
    }
}

/// Precomputed static routes from a set of source nodes.
///
/// [`RouteTable::build`] runs BFS from every node — O(n · (n + e)) — and
/// answers queries for every ordered pair. When only a small node set will
/// ever be queried (e.g. scoring one selection of `m` nodes),
/// [`RouteTable::build_for_sources`] builds just those BFS rows in
/// O(|sources| · (n + e)). Queries are O(path length).
#[derive(Debug, Clone)]
pub struct RouteTable {
    n: usize,
    /// `row_of[v]` = BFS row index for source `v`, or `u32::MAX` when the
    /// row was not built (partial table).
    row_of: Vec<u32>,
    /// `parent[row_of[s] * n + v]` = edge by which BFS from `s` first
    /// reached `v`.
    parent: Vec<Option<EdgeId>>,
}

/// Reusable BFS working memory for [`RouteTable::build_for_sources_with`].
///
/// Mirrors [`crate::maxmin::MaxMinScratch`]: a caller that builds many
/// partial route tables (per-domain scoring, pairwise caches, repeated
/// selections) holds one scratch so the distance slab and BFS queue are
/// reused across every queried source and every call — after warm-up a
/// build allocates only the table it returns, never per-row working
/// memory.
#[derive(Debug, Default, Clone)]
pub struct RouteScratch {
    dist: Vec<u32>,
    queue: VecDeque<NodeId>,
}

impl RouteScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RouteTable {
    /// Builds the full table: one BFS row per node.
    pub fn build(topo: &Topology) -> Self {
        Self::build_for_sources(topo, topo.node_ids())
    }

    /// Builds BFS rows only for `sources` (duplicates are ignored).
    ///
    /// The resulting table answers queries whose `src` is one of the
    /// sources exactly as the full table would — including paths through
    /// arbitrary intermediate nodes — and panics on any other `src`.
    pub fn build_for_sources(topo: &Topology, sources: impl IntoIterator<Item = NodeId>) -> Self {
        Self::build_for_sources_with(topo, sources, &mut RouteScratch::new())
    }

    /// [`RouteTable::build_for_sources`] with caller-provided working
    /// memory; the returned table is identical. Rows reuse `scratch`'s
    /// distance slab and BFS queue instead of reallocating per source.
    pub fn build_for_sources_with(
        topo: &Topology,
        sources: impl IntoIterator<Item = NodeId>,
        scratch: &mut RouteScratch,
    ) -> Self {
        let n = topo.node_count();
        let mut row_of = vec![u32::MAX; n];
        let mut srcs: Vec<NodeId> = Vec::new();
        for s in sources {
            if row_of[s.index()] == u32::MAX {
                row_of[s.index()] = srcs.len() as u32;
                srcs.push(s);
            }
        }
        let mut parent = vec![None; srcs.len() * n];
        scratch.dist.resize(n, u32::MAX);
        let dist = &mut scratch.dist[..n];
        let queue = &mut scratch.queue;
        for (row, &s) in srcs.iter().enumerate() {
            for d in dist.iter_mut() {
                *d = u32::MAX;
            }
            dist[s.index()] = 0;
            queue.clear();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for &(e, w) in topo.neighbors(v) {
                    if dist[w.index()] == u32::MAX {
                        dist[w.index()] = dist[v.index()] + 1;
                        parent[row * n + w.index()] = Some(e);
                        queue.push_back(w);
                    }
                }
            }
        }
        RouteTable { n, row_of, parent }
    }

    /// The BFS row for `src`; panics when the row was not built.
    fn row(&self, src: NodeId) -> usize {
        let row = self.row_of[src.index()];
        assert!(
            row != u32::MAX,
            "no BFS row for {src:?}: it was not listed as a source of this partial route table"
        );
        row as usize
    }

    /// Resolves the path from `src` to `dst` against `topo` (directions and
    /// hop order require endpoint information).
    pub fn resolve(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Path, TopologyError> {
        if src == dst {
            return Ok(Path {
                src,
                dst,
                hops: Vec::new(),
            });
        }
        let row = self.row(src);
        let mut rev: Vec<(EdgeId, Direction)> = Vec::new();
        let mut cur = dst;
        while cur != src {
            let Some(e) = self.parent[row * self.n + cur.index()] else {
                return Err(TopologyError::Disconnected(src, dst));
            };
            let prev = topo.link(e).opposite(cur);
            rev.push((e, topo.link(e).direction_from(prev)));
            cur = prev;
        }
        rev.reverse();
        Ok(Path {
            src,
            dst,
            hops: rev,
        })
    }

    /// True when a route exists from `src` to `dst`.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        src == dst || self.parent[self.row(src) * self.n + dst.index()].is_some()
    }

    /// Directional available bandwidth from `src` to `dst` under `net`'s
    /// metrics: the minimum over the fixed route of each link's available
    /// capacity in the traversal direction.
    ///
    /// Generic over [`NetMetrics`] so the same fold runs on an owned
    /// annotated [`Topology`] and on a [`crate::NetSnapshot`] — results
    /// are bit-identical across representations by construction.
    pub fn available_bandwidth_in<T: NetMetrics>(
        &self,
        net: &T,
        src: NodeId,
        dst: NodeId,
    ) -> Result<f64, TopologyError> {
        let path = self.resolve(net.structure(), src, dst)?;
        if path.is_empty() {
            return Ok(f64::INFINITY);
        }
        Ok(path
            .hops
            .iter()
            .map(|&(e, d)| net.available(e, d))
            .fold(f64::INFINITY, f64::min))
    }

    /// Symmetric bottleneck `bw` from `src` to `dst` under `net`'s
    /// metrics (see [`RouteTable::available_bandwidth_in`] for the
    /// genericity rationale).
    pub fn bottleneck_bw_in<T: NetMetrics>(
        &self,
        net: &T,
        src: NodeId,
        dst: NodeId,
    ) -> Result<f64, TopologyError> {
        let path = self.resolve(net.structure(), src, dst)?;
        if path.is_empty() {
            return Ok(f64::INFINITY);
        }
        Ok(path
            .hops
            .iter()
            .map(|&(e, _)| net.bw(e))
            .fold(f64::INFINITY, f64::min))
    }

    /// Symmetric bottleneck `bwfactor` from `src` to `dst` under `net`'s
    /// metrics.
    pub fn bottleneck_bwfactor_in<T: NetMetrics>(
        &self,
        net: &T,
        src: NodeId,
        dst: NodeId,
    ) -> Result<f64, TopologyError> {
        let path = self.resolve(net.structure(), src, dst)?;
        if path.is_empty() {
            return Ok(1.0);
        }
        Ok(path
            .hops
            .iter()
            .map(|&(e, _)| net.bwfactor(e))
            .fold(f64::INFINITY, f64::min))
    }
}

/// Convenience bundle of a topology and its route table.
///
/// Most callers want the pair together; `Routes` keeps the borrow ergonomic
/// and hosts the measurement-style queries (bottleneck bandwidth, latency).
#[derive(Debug)]
pub struct Routes<'a> {
    topo: &'a Topology,
    table: RouteTable,
}

impl<'a> Routes<'a> {
    /// Builds routes for `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        Routes {
            topo,
            table: RouteTable::build(topo),
        }
    }

    /// Builds routes only from the given `sources`
    /// ([`RouteTable::build_for_sources`]): enough for queries *from* that
    /// set — e.g. pairwise metrics of one selection — at a fraction of the
    /// all-pairs build cost.
    pub fn for_sources(topo: &'a Topology, sources: impl IntoIterator<Item = NodeId>) -> Self {
        Routes {
            topo,
            table: RouteTable::build_for_sources(topo, sources),
        }
    }

    /// [`Routes::for_sources`] with caller-provided BFS working memory
    /// ([`RouteScratch`]): identical routes, no per-row allocations.
    pub fn for_sources_with(
        topo: &'a Topology,
        sources: impl IntoIterator<Item = NodeId>,
        scratch: &mut RouteScratch,
    ) -> Self {
        Routes {
            topo,
            table: RouteTable::build_for_sources_with(topo, sources, scratch),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// The underlying route table.
    pub fn table(&self) -> &RouteTable {
        &self.table
    }

    /// Fixed path between two nodes.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Result<Path, TopologyError> {
        self.table.resolve(self.topo, src, dst)
    }

    /// Directional available bandwidth from `src` to `dst`: the minimum,
    /// over the fixed route, of each link's available capacity in the
    /// traversal direction. This is the Remos *flow query* primitive.
    pub fn available_bandwidth(&self, src: NodeId, dst: NodeId) -> Result<f64, TopologyError> {
        self.table.available_bandwidth_in(self.topo, src, dst)
    }

    /// Symmetric bottleneck `bw` between two nodes: minimum of [`crate::Link::bw`]
    /// over the route. This is the quantity the §3.2 algorithms optimize.
    pub fn bottleneck_bw(&self, src: NodeId, dst: NodeId) -> Result<f64, TopologyError> {
        self.table.bottleneck_bw_in(self.topo, src, dst)
    }

    /// Symmetric bottleneck `bwfactor` between two nodes.
    pub fn bottleneck_bwfactor(&self, src: NodeId, dst: NodeId) -> Result<f64, TopologyError> {
        self.table.bottleneck_bwfactor_in(self.topo, src, dst)
    }

    /// One-way latency along the fixed route, in seconds.
    pub fn latency(&self, src: NodeId, dst: NodeId) -> Result<f64, TopologyError> {
        let path = self.path(src, dst)?;
        Ok(path
            .hops
            .iter()
            .map(|&(e, _)| self.topo.link(e).latency())
            .sum())
    }
}

impl Topology {
    /// Builds a [`Routes`] bundle for this topology.
    pub fn routes(&self) -> Routes<'_> {
        Routes::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MBPS;
    use crate::{Direction, Topology};

    /// a - s1 - s2 - b, plus c hanging off s2.
    fn chain() -> (Topology, [NodeId; 5], [EdgeId; 4]) {
        let mut t = Topology::new();
        let a = t.add_compute_node("a", 1.0);
        let s1 = t.add_network_node("s1");
        let s2 = t.add_network_node("s2");
        let b = t.add_compute_node("b", 1.0);
        let c = t.add_compute_node("c", 1.0);
        let e0 = t.add_link(a, s1, 100.0 * MBPS);
        let e1 = t.add_link(s1, s2, 10.0 * MBPS);
        let e2 = t.add_link(s2, b, 100.0 * MBPS);
        let e3 = t.add_link(s2, c, 100.0 * MBPS);
        (t, [a, s1, s2, b, c], [e0, e1, e2, e3])
    }

    #[test]
    fn path_on_tree_is_unique_route() {
        let (t, n, e) = chain();
        let r = t.routes();
        let p = r.path(n[0], n[3]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.hops.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
            vec![e[0], e[1], e[2]]
        );
        assert_eq!(p.nodes(&t), vec![n[0], n[1], n[2], n[3]]);
    }

    #[test]
    fn self_path_is_empty_and_infinite() {
        let (t, n, _) = chain();
        let r = t.routes();
        assert!(r.path(n[0], n[0]).unwrap().is_empty());
        assert!(r.available_bandwidth(n[0], n[0]).unwrap().is_infinite());
    }

    #[test]
    fn bottleneck_is_thin_middle_link() {
        let (t, n, _) = chain();
        let r = t.routes();
        assert_eq!(r.bottleneck_bw(n[0], n[3]).unwrap(), 10.0 * MBPS);
        assert_eq!(r.bottleneck_bw(n[3], n[4]).unwrap(), 100.0 * MBPS);
    }

    #[test]
    fn directional_available_bandwidth_sees_direction() {
        let (mut t, n, e) = chain();
        // Congest only the s1->s2 direction.
        t.set_link_used(e[1], Direction::AtoB, 8.0 * MBPS);
        let r = t.routes();
        assert!((r.available_bandwidth(n[0], n[3]).unwrap() - 2.0 * MBPS).abs() < 1.0);
        // Reverse direction unaffected.
        assert_eq!(r.available_bandwidth(n[3], n[0]).unwrap(), 10.0 * MBPS);
        // Symmetric bw takes the min.
        assert!((r.bottleneck_bw(n[0], n[3]).unwrap() - 2.0 * MBPS).abs() < 1.0);
    }

    #[test]
    fn disconnected_pairs_error() {
        let mut t = Topology::new();
        let a = t.add_compute_node("a", 1.0);
        let b = t.add_compute_node("b", 1.0);
        let r = t.routes();
        assert!(matches!(
            r.path(a, b),
            Err(TopologyError::Disconnected(_, _))
        ));
        assert!(r.available_bandwidth(a, b).is_err());
    }

    #[test]
    fn cyclic_graph_gets_fixed_shortest_route() {
        // Square a-b-c-d-a plus diagonal shortcut a-c.
        let mut t = Topology::new();
        let a = t.add_compute_node("a", 1.0);
        let b = t.add_compute_node("b", 1.0);
        let c = t.add_compute_node("c", 1.0);
        let d = t.add_compute_node("d", 1.0);
        t.add_link(a, b, MBPS);
        t.add_link(b, c, MBPS);
        t.add_link(c, d, MBPS);
        t.add_link(d, a, MBPS);
        let diag = t.add_link(a, c, MBPS);
        let r = t.routes();
        let p = r.path(a, c).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.hops[0].0, diag);
        // Routes are stable: asking twice gives the identical path.
        assert_eq!(r.path(a, c).unwrap(), p);
    }

    #[test]
    fn reused_scratch_builds_identical_tables() {
        let (t, n, _) = chain();
        let mut scratch = RouteScratch::new();
        // Several builds over the same scratch, different source sets and
        // (via a second topology) a different node count.
        for sources in [vec![n[0]], vec![n[2], n[1]], n.to_vec()] {
            let fresh = Routes::for_sources(&t, sources.iter().copied());
            let reused = Routes::for_sources_with(&t, sources.iter().copied(), &mut scratch);
            for &src in &sources {
                for dst in n {
                    assert_eq!(
                        reused.path(src, dst).unwrap(),
                        fresh.path(src, dst).unwrap()
                    );
                }
            }
        }
        let mut small = Topology::new();
        let a = small.add_compute_node("a", 1.0);
        let b = small.add_compute_node("b", 1.0);
        small.add_link(a, b, MBPS);
        let r = Routes::for_sources_with(&small, [a], &mut scratch);
        assert_eq!(r.path(a, b).unwrap().len(), 1);
    }

    #[test]
    fn partial_table_matches_full_table_for_its_sources() {
        let (t, n, _) = chain();
        let full = t.routes();
        let partial = Routes::for_sources(&t, [n[0], n[3], n[0]]); // dup ignored
        for src in [n[0], n[3]] {
            for dst in n {
                assert_eq!(
                    partial.path(src, dst).unwrap(),
                    full.path(src, dst).unwrap()
                );
                assert_eq!(
                    partial.bottleneck_bw(src, dst).unwrap(),
                    full.bottleneck_bw(src, dst).unwrap()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not listed as a source")]
    fn partial_table_rejects_foreign_sources() {
        let (t, n, _) = chain();
        let partial = Routes::for_sources(&t, [n[0]]);
        let _ = partial.path(n[3], n[0]);
    }

    #[test]
    fn latency_sums_over_route() {
        let mut t = Topology::new();
        let a = t.add_compute_node("a", 1.0);
        let s = t.add_network_node("s");
        let b = t.add_compute_node("b", 1.0);
        t.add_link_full(a, s, MBPS, MBPS, 0.002);
        t.add_link_full(s, b, MBPS, MBPS, 0.003);
        let r = t.routes();
        assert!((r.latency(a, b).unwrap() - 0.005).abs() < 1e-12);
    }
}
