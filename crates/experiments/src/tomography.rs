//! Logical topology vs. end-to-end tomography (§2.2 / §5).
//!
//! The paper's case for Remos over NWS-style pairwise measurement is that
//! the logical topology "offers a more efficient and scalable solution"
//! and lets the algorithm "directly eliminate busy links". This
//! experiment measures that gap: identical trials where the automatic
//! strategy selects either from the collector's logical topology or from
//! a topology *inferred* from `O(n²)` pairwise flow measurements
//! ([`nodesel_remos::inference`]), across increasing measurement noise.

use crate::driver::{Condition, TrialConfig};
use nodesel_apps::AppModel;
use nodesel_core::{
    balanced, BalancedSelector, Constraints, GreedyPolicy, SelectionRequest, Selector, Weights,
};
use nodesel_loadgen::{install_load, install_traffic};
use nodesel_remos::inference::{infer_topology, measure_all_pairs};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::units::MBPS;
use nodesel_topology::NodeId;

/// How the automatic selection sees the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum View {
    /// The collector's logical topology (the paper's approach).
    LogicalTopology,
    /// A topology inferred from pairwise end-to-end measurements
    /// (what an NWS-style system could build).
    Tomography,
}

/// Runs one trial with the chosen network view; returns the turnaround.
pub fn run_view_trial(
    app: &AppModel,
    m: usize,
    view: View,
    condition: Condition,
    config: &TrialConfig,
    seed: u64,
) -> f64 {
    let tb = cmu_testbed();
    let machines = tb.machines.clone();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(
        &mut sim,
        CollectorConfig {
            estimator: config.estimator,
            ..config.collector
        },
    );
    if matches!(condition, Condition::Load | Condition::Both) {
        install_load(&mut sim, &machines, config.load, seed ^ 0x10AD);
    }
    if matches!(condition, Condition::Traffic | Condition::Both) {
        install_traffic(&mut sim, &machines, config.traffic, seed ^ 0x7AFF1C);
    }
    sim.run_for(config.warmup);

    let nodes: Vec<NodeId> = match view {
        View::LogicalTopology => {
            let mut selector = BalancedSelector::new();
            selector
                .select(&remos.snapshot(&sim), &SelectionRequest::balanced(m))
                .expect("nodes")
                .nodes
        }
        View::Tomography => {
            let (obs, pairs) =
                measure_all_pairs(&remos, &sim, &machines, config.estimator).expect("measurable");
            let inferred = infer_topology(&obs, &pairs).expect("inferable");
            // Fractional bandwidth needs a reference: peak capacities are
            // not observable end-to-end.
            let sel = balanced(
                &inferred,
                m,
                Weights::EQUAL,
                &Constraints::none(),
                Some(100.0 * MBPS),
                GreedyPolicy::Sweep,
            )
            .expect("nodes");
            // Map inferred node ids back to testbed ids by name.
            sel.nodes
                .iter()
                .map(|&n| {
                    tb.topo
                        .node_by_name(inferred.node(n).name())
                        .expect("same names")
                })
                .collect()
        }
    };

    let handle = app.launch(&mut sim, &nodes);
    while !handle.is_finished() {
        assert!(sim.step(), "drained early");
    }
    handle.elapsed().expect("finished")
}

/// Mean over seeded repetitions.
pub fn run_view_trials(
    app: &AppModel,
    m: usize,
    view: View,
    condition: Condition,
    config: &TrialConfig,
    base_seed: u64,
    reps: usize,
) -> f64 {
    (0..reps)
        .map(|rep| {
            run_view_trial(
                app,
                m,
                view,
                condition,
                config,
                base_seed.wrapping_add(104_729 * rep as u64),
            )
        })
        .sum::<f64>()
        / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_apps::fft::fft_program;

    #[test]
    fn both_views_produce_valid_runs() {
        let cfg = TrialConfig::default();
        let app = AppModel::Phased(fft_program(4));
        let a = run_view_trial(&app, 4, View::LogicalTopology, Condition::Load, &cfg, 3);
        let b = run_view_trial(&app, 4, View::Tomography, Condition::Load, &cfg, 3);
        assert!(a > 0.0 && b > 0.0);
    }

    #[test]
    fn tomography_is_competitive_without_noise() {
        // With exact measurements the ultrametric reconstruction carries
        // the same information; quality should be in the same ballpark.
        let cfg = TrialConfig::default();
        let app = AppModel::Phased(fft_program(12));
        let reps = 6;
        let logical = run_view_trials(
            &app,
            4,
            View::LogicalTopology,
            Condition::Both,
            &cfg,
            17,
            reps,
        );
        let tomo = run_view_trials(&app, 4, View::Tomography, Condition::Both, &cfg, 17, reps);
        assert!(
            tomo < logical * 1.5,
            "noise-free tomography should be competitive: {tomo} vs {logical}"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = TrialConfig::default();
        let app = AppModel::Phased(fft_program(4));
        let a = run_view_trial(&app, 4, View::Tomography, Condition::Both, &cfg, 5);
        let b = run_view_trial(&app, 4, View::Tomography, Condition::Both, &cfg, 5);
        assert_eq!(a, b);
    }
}
