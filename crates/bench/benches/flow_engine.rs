//! Flow-engine bench: incremental max-min engine vs the full-recompute
//! reference, measured as simulator events/sec under background traffic on
//! the CMU testbed at three intensities (multiples of the paper's Poisson
//! arrival rate), plus *federated* scenarios (many independent subnets in
//! one simulator) where the sharing graph actually decomposes and
//! cluster-scoped reallocation pays off. A speedup table is printed before
//! measurement and a machine-readable `BENCH_simnet.json` (events/sec per
//! setting plus a Table-1 trial wall-clock) is written to the workspace
//! root so the perf trajectory is comparable across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nodesel_apps::AppModel;
use nodesel_bench::federated;
use nodesel_experiments::{run_trial, Condition, Strategy, Testbed, TrialConfig};
use nodesel_loadgen::{install_load, install_traffic, LoadConfig, TrafficConfig};
use nodesel_simnet::{FlowEngine, Sim};
use nodesel_topology::testbeds::cmu_testbed;
use std::hint::black_box;
use std::time::Instant;

const SIM_SECONDS: f64 = 600.0;

/// Background-traffic settings: multiples of the paper's arrival rate.
const INTENSITIES: [(&str, f64); 3] = [("low", 1.0), ("med", 4.0), ("high", 16.0)];

/// Federated settings: (label, subnet count, arrival-rate multiple).
const FEDERATED: [(&str, usize, f64); 2] = [("fed8", 8, 4.0), ("fed32", 32, 4.0)];

fn traffic_at(mult: f64) -> TrafficConfig {
    let mut t = TrafficConfig::paper_defaults();
    t.arrival_rate *= mult;
    t
}

/// One busy-testbed run; returns the number of events dispatched.
fn run_busy(engine: FlowEngine, mult: f64) -> u64 {
    let tb = cmu_testbed();
    let mut sim = Sim::with_flow_engine(tb.topo.clone(), engine);
    install_load(&mut sim, &tb.machines, LoadConfig::paper_defaults(), 1);
    install_traffic(&mut sim, &tb.machines, traffic_at(mult), 2);
    sim.run_for(SIM_SECONDS);
    sim.stats().events
}

/// One federated run; returns the number of events dispatched.
fn run_federated(engine: FlowEngine, k: usize, mult: f64) -> u64 {
    let (topo, subnets) = federated(k, None);
    let mut sim = Sim::with_flow_engine(topo, engine);
    for (s, hosts) in subnets.iter().enumerate() {
        install_traffic(&mut sim, hosts, traffic_at(mult), 100 + s as u64);
    }
    sim.run_for(SIM_SECONDS);
    sim.stats().events
}

/// (events dispatched, median wall seconds over `iters` runs).
fn measure(run: impl Fn() -> u64, iters: usize) -> (u64, f64) {
    let mut events = 0;
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            events = run();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    (events, samples[samples.len() / 2])
}

fn emit_summary(c: &mut Criterion) {
    eprintln!("\n=== simnet flow engines: busy CMU testbed, {SIM_SECONDS} simulated seconds ===");
    eprintln!(
        "{:<6} {:>10} {:>16} {:>16} {:>9}",
        "load", "events", "reference ev/s", "incremental ev/s", "speedup"
    );
    let mut rows = Vec::new();
    for (label, mult) in INTENSITIES {
        let (events, slow) = measure(|| run_busy(FlowEngine::Reference, mult), 3);
        let (ev2, fast) = measure(|| run_busy(FlowEngine::Incremental, mult), 3);
        assert_eq!(events, ev2, "engines dispatched different event counts");
        let (ref_eps, inc_eps) = (events as f64 / slow, events as f64 / fast);
        eprintln!(
            "{label:<6} {events:>10} {ref_eps:>16.0} {inc_eps:>16.0} {:>8.1}x",
            slow / fast
        );
        rows.push(serde_json::json!({
            "label": label,
            "arrival_rate_multiple": mult,
            "events": events,
            "reference_events_per_sec": ref_eps,
            "incremental_events_per_sec": inc_eps,
            "speedup": slow / fast,
        }));
    }
    let mut fed_rows = Vec::new();
    for (label, k, mult) in FEDERATED {
        let (events, slow) = measure(|| run_federated(FlowEngine::Reference, k, mult), 3);
        let (ev2, fast) = measure(|| run_federated(FlowEngine::Incremental, k, mult), 3);
        assert_eq!(events, ev2, "engines dispatched different event counts");
        let (ref_eps, inc_eps) = (events as f64 / slow, events as f64 / fast);
        eprintln!(
            "{label:<6} {events:>10} {ref_eps:>16.0} {inc_eps:>16.0} {:>8.1}x",
            slow / fast
        );
        fed_rows.push(serde_json::json!({
            "label": label,
            "subnets": k,
            "arrival_rate_multiple": mult,
            "events": events,
            "reference_events_per_sec": ref_eps,
            "incremental_events_per_sec": inc_eps,
            "speedup": slow / fast,
        }));
    }

    // One full Table-1 trial (warmup + generators + selection + app run):
    // the end-to-end wall-clock unit the sweeps are built from.
    let suite = AppModel::paper_suite();
    let (app, m) = &suite[0];
    let testbed = Testbed::cmu();
    let t = Instant::now();
    black_box(run_trial(
        &testbed,
        app,
        *m,
        Strategy::Automatic,
        Condition::Both,
        &TrialConfig::default(),
        1,
    ));
    let trial_wall = t.elapsed().as_secs_f64();
    eprintln!("table1 trial ({}): {trial_wall:.3} s wall", app.name());

    let summary = serde_json::json!({
        "bench": "flow_engine",
        "testbed": "cmu",
        "sim_seconds": SIM_SECONDS,
        "intensities": rows,
        "federated": fed_rows,
        "table1_trial": { "app": app.name(), "wall_secs": trial_wall },
    });
    // Read-modify-write: this bench owns its keys only, so sections
    // written by other benches (`throughput` from simnet_throughput)
    // survive a re-run.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simnet.json");
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .filter(|v| v.as_object().is_some())
        .unwrap_or_else(|| serde_json::json!({}));
    for (k, v) in summary.as_object().expect("summary is an object") {
        doc[k.as_str()] = v.clone();
    }
    match std::fs::write(path, format!("{:#}\n", doc)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // Criterion groups: per-setting, both engines, throughput-labelled.
    for (label, mult) in INTENSITIES {
        let events = run_busy(FlowEngine::Incremental, mult);
        let mut group = c.benchmark_group(format!("flow_engine/{label}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(events));
        for (name, engine) in [
            ("incremental", FlowEngine::Incremental),
            ("reference", FlowEngine::Reference),
        ] {
            group.bench_with_input(BenchmarkId::new(name, label), &mult, |b, &mult| {
                b.iter(|| black_box(run_busy(engine, mult)))
            });
        }
        group.finish();
    }
    for (label, k, mult) in FEDERATED {
        let events = run_federated(FlowEngine::Incremental, k, mult);
        let mut group = c.benchmark_group(format!("flow_engine/{label}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(events));
        for (name, engine) in [
            ("incremental", FlowEngine::Incremental),
            ("reference", FlowEngine::Reference),
        ] {
            group.bench_with_input(BenchmarkId::new(name, label), &mult, |b, &mult| {
                b.iter(|| black_box(run_federated(engine, k, mult)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, emit_summary);
criterion_main!(benches);
