//! Sampling distributions implemented from first principles.
//!
//! The generators of §4.2 need exponential interarrival times (Poisson
//! processes), exponential + Pareto job durations (Harchol-Balter & Downey's
//! process-lifetime model) and LogNormal message sizes. We implement the
//! samplers directly — inverse-CDF for exponential and Pareto, Box–Muller
//! for the normal underlying LogNormal — so their exact behaviour is pinned
//! by this crate's tests rather than an external dependency.

use rand::Rng;

/// Exponential distribution with the given rate λ (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate` (events per
    /// unit time). Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }

    /// Creates from the mean instead of the rate.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Exponential::new(1.0 / mean)
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one sample by inverse CDF: `-ln(1-U)/λ`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // random() yields U in [0,1); 1-U is in (0,1] so ln is finite.
        let u: f64 = rng.random();
        -(1.0 - u).ln() / self.rate
    }
}

/// Pareto distribution with scale `x_m` and shape `α`:
/// `Pr[X > x] = (x_m / x)^α` for `x ≥ x_m`.
///
/// Process-lifetime studies (Harchol-Balter & Downey, SIGMETRICS '96)
/// report shapes near `α = 1`, i.e. extremely heavy tails; callers should
/// truncate (see [`Pareto::sample_truncated`]) when a finite mean matters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution. Panics unless both parameters are
    /// positive.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(
            scale > 0.0 && shape > 0.0,
            "Pareto parameters must be positive"
        );
        Pareto { scale, shape }
    }

    /// Minimum value (the scale `x_m`).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Tail index `α`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Draws one sample by inverse CDF: `x_m * (1-U)^{-1/α}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        self.scale * (1.0 - u).powf(-1.0 / self.shape)
    }

    /// Draws a sample capped at `max` (rejection-free truncation by
    /// clamping, which preserves the body of the distribution and lumps the
    /// extreme tail at the cap).
    pub fn sample_truncated<R: Rng + ?Sized>(&self, rng: &mut R, max: f64) -> f64 {
        self.sample(rng).min(max)
    }
}

/// Standard normal sampler using the Box–Muller transform, caching the
/// second variate of each pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdNormal {
    spare: Option<f64>,
}

impl StdNormal {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        StdNormal::default()
    }

    /// Draws one N(0,1) sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 in (0,1] to keep ln finite.
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// LogNormal distribution: `exp(μ + σ Z)` with `Z ~ N(0,1)`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
    normal: StdNormal,
}

impl LogNormal {
    /// Creates from the underlying normal's location `μ` and scale `σ ≥ 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be non-negative"
        );
        LogNormal {
            mu,
            sigma,
            normal: StdNormal::new(),
        }
    }

    /// Creates the LogNormal whose *distribution* mean and median are as
    /// given (`median = exp(μ)`, `mean = exp(μ + σ²/2)`); a convenient
    /// parameterization for message sizes ("typical size X, mean pulled up
    /// by a heavy tail"). Panics unless `mean ≥ median > 0`.
    pub fn from_median_mean(median: f64, mean: f64) -> Self {
        assert!(median > 0.0 && mean >= median, "need mean >= median > 0");
        let mu = median.ln();
        let sigma = (2.0 * (mean.ln() - mu)).sqrt();
        LogNormal::new(mu, sigma)
    }

    /// Distribution mean `exp(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Distribution median `exp(μ)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * self.normal.sample(rng)).exp()
    }
}

/// SplitMix64: derives independent sub-seeds from a master seed, so each
/// host/generator gets its own deterministic stream.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 200_000;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let d = Exponential::with_mean(4.0);
        assert_eq!(d.mean(), 4.0);
        let mut r = rng();
        let mut sum = 0.0;
        for _ in 0..N {
            let x = d.sample(&mut r);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn exponential_memoryless_tail() {
        // Pr[X > mean] should be e^-1 ≈ 0.3679.
        let d = Exponential::new(1.0);
        let mut r = rng();
        let over = (0..N).filter(|_| d.sample(&mut r) > 1.0).count();
        let frac = over as f64 / N as f64;
        assert!((frac - (-1.0f64).exp()).abs() < 0.01, "tail {frac}");
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let d = Pareto::new(2.0, 1.5);
        let mut r = rng();
        let mut over4 = 0usize;
        for _ in 0..N {
            let x = d.sample(&mut r);
            assert!(x >= 2.0);
            if x > 4.0 {
                over4 += 1;
            }
        }
        // Pr[X > 4] = (2/4)^1.5 ≈ 0.3536.
        let frac = over4 as f64 / N as f64;
        assert!((frac - 0.5f64.powf(1.5)).abs() < 0.01, "tail {frac}");
    }

    #[test]
    fn pareto_truncation_caps_samples() {
        let d = Pareto::new(1.0, 1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample_truncated(&mut r, 100.0) <= 100.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut n = StdNormal::new();
        let mut r = rng();
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..N {
            let z = n.sample(&mut r);
            sum += z;
            sq += z * z;
        }
        let mean = sum / N as f64;
        let var = sq / N as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn lognormal_median_and_mean() {
        let mut d = LogNormal::from_median_mean(10.0, 20.0);
        assert!((d.median() - 10.0).abs() < 1e-9);
        assert!((d.mean() - 20.0).abs() < 1e-9);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..N).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(f64::total_cmp);
        let med = samples[N / 2];
        let mean = samples.iter().sum::<f64>() / N as f64;
        assert!((med - 10.0).abs() < 0.2, "median {med}");
        assert!((mean - 20.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn zero_sigma_lognormal_is_constant() {
        let mut d = LogNormal::new(2.0_f64.ln(), 0.0);
        let mut r = rng();
        for _ in 0..100 {
            assert!((d.sample(&mut r) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn split_seed_streams_differ() {
        let a = split_seed(42, 0);
        let b = split_seed(42, 1);
        let c = split_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, split_seed(42, 0));
    }
}
