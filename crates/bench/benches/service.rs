//! Placement-service throughput: solve-per-request vs the selection
//! cache vs cache + batched worker pool, on an n = 1000 fabric under
//! delta churn.
//!
//! The workload models a busy scheduler front-end: a pool of 10k+
//! distinct request specs (45% compute, 45% communication, 10% balanced;
//! each restricted to a random ~16–32-host allowed pool), a request
//! stream that re-asks a hot set of specs 95% of the time, and a
//! collector that republishes a new epoch every `churn_every` requests
//! with fresh load averages on a few random nodes (the small
//! steady-state deltas a change-driven collector publishes).
//!
//! Three modes answer the *same* stream against the *same* epoch
//! schedule, and their answers are digest-checked against each other —
//! the speedups below are for bit-identical outputs, not approximations:
//!
//! * **serial** — a fresh solver per request (`selector_for` +
//!   `select`), the solve-per-request baseline (measured on a prefix of
//!   the stream, long enough to cover several epochs);
//! * **cache** — an inline [`PlacementService`] (no workers): canonical
//!   request → delta-invalidated cache → solve on miss;
//! * **cache_batch** — a pooled service driven by 4 client threads:
//!   cache plus single-flight merging and scarcest-first batch drains.
//!
//! Results land in `BENCH_service.json` under `"service"`, including the
//! honest counters (hits, merges, solves, carry-forwards, evictions)
//! behind each mode's req/s. `--test`/`--smoke` shrinks every axis.

use nodesel_bench::conditioned_tree;
use nodesel_core::{selector_for, CanonicalRequest, SelectError, Selection, SelectionRequest};
use nodesel_service::{PlacementService, ServiceConfig, ServiceStats};
use nodesel_topology::{NetDelta, NetSnapshot, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Clients driving the pooled mode.
const CLIENTS: usize = 4;

/// Nodes whose load average moves at every churn point.
const CHURN_NODES: usize = 4;

struct Axes {
    n: usize,
    pool: usize,
    hot: usize,
    stream_len: usize,
    churn_every: usize,
    serial_requests: usize,
}

impl Axes {
    fn new(smoke: bool) -> Axes {
        if smoke {
            Axes {
                n: 200,
                pool: 600,
                hot: 100,
                stream_len: 1500,
                churn_every: 100,
                serial_requests: 300,
            }
        } else {
            Axes {
                n: 1000,
                pool: 12_000,
                hot: 100,
                stream_len: 40_000,
                churn_every: 250,
                serial_requests: 2000,
            }
        }
    }
}

/// One random spec: objective mix 45/45/10, a random small allowed pool,
/// and an occasional CPU floor.
fn spec(rng: &mut StdRng, ids: &[NodeId]) -> SelectionRequest {
    let kind = rng.random_range(0..100);
    let count = 2 + rng.random_range(0..6usize);
    let mut req = if kind < 45 {
        SelectionRequest::compute(count)
    } else if kind < 90 {
        SelectionRequest::communication(count)
    } else {
        SelectionRequest::balanced(count)
    };
    let k = 16 + rng.random_range(0..17usize);
    let mut allowed = HashSet::with_capacity(k);
    while allowed.len() < k {
        allowed.insert(ids[rng.random_range(0..ids.len())]);
    }
    req.constraints.allowed = Some(allowed);
    if rng.random_range(0..5) == 0 {
        req.constraints.min_cpu = Some(rng.random_range(0.05..0.3));
    }
    req
}

/// Order-independent digest contribution of one answered request; XOR of
/// these over a stream is mode-order-insensitive, so the threaded mode
/// folds the same value.
fn mix(pos: usize, result: &Result<Selection, SelectError>) -> u64 {
    let h = match result {
        Ok(sel) => {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for n in &sel.nodes {
                h = h.wrapping_mul(0x0000_0100_0000_01b3) ^ (n.index() as u64);
            }
            h ^ sel.score.to_bits()
        }
        Err(_) => 0xdead_beef,
    };
    h.wrapping_mul(pos as u64 + 1)
}

struct ModeResult {
    requests: usize,
    elapsed_s: f64,
    digest: u64,
    prefix_digest: u64,
    stats: Option<ServiceStats>,
}

impl ModeResult {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed_s
    }
}

fn stats_json(stats: &Option<ServiceStats>) -> serde_json::Value {
    match stats {
        None => serde_json::Value::Null,
        Some(s) => serde_json::json!({
            "cache_hits": s.cache_hits,
            "single_flight_merges": s.single_flight_merges,
            "solves": s.solves,
            "shed": s.shed,
            "refused": s.refused,
            "carried_forward": s.carried_forward,
            "delta_evictions": s.delta_evictions,
            "capacity_evictions": s.capacity_evictions,
            "epochs_published": s.epochs_published,
        }),
    }
}

/// Panics unless `doc` carries the service section this bench (and the
/// CI smoke step) promises: the schema-drift tripwire.
fn validate_schema(doc: &serde_json::Value) {
    let s = doc
        .get("service")
        .expect("BENCH_service.json lost its service section");
    for key in [
        "smoke",
        "n",
        "distinct_specs",
        "hot_set",
        "stream_len",
        "churn_every",
        "churn_nodes",
        "modes",
        "speedup_cache",
        "speedup_cache_batch",
    ] {
        assert!(s.get(key).is_some(), "service section lost `{key}`");
    }
    let modes = s["modes"].as_array().expect("service modes is an array");
    assert_eq!(modes.len(), 3, "service modes must cover all three modes");
    for mode in modes {
        for key in ["mode", "requests", "elapsed_s", "rps", "counters"] {
            assert!(mode.get(key).is_some(), "service mode lost `{key}`: {mode}");
        }
        let label = mode["mode"].as_str().expect("mode label is a string");
        assert!(
            ["serial", "cache", "cache_batch"].contains(&label),
            "unknown service mode {label:?}"
        );
    }
    assert!(
        s["distinct_specs"].as_u64().unwrap_or(0) >= s["hot_set"].as_u64().unwrap_or(u64::MAX),
        "spec pool must cover at least the hot set"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let axes = Axes::new(smoke);
    let mut rng = StdRng::seed_from_u64(42);

    let (topo, ids) = conditioned_tree(11, axes.n);
    let pool: Vec<SelectionRequest> = (0..axes.pool).map(|_| spec(&mut rng, &ids)).collect();
    let distinct: HashSet<CanonicalRequest> = pool.iter().map(CanonicalRequest::new).collect();
    let stream: Vec<usize> = (0..axes.stream_len)
        .map(|_| {
            if rng.random_range(0..100) < 95 {
                rng.random_range(0..axes.hot)
            } else {
                rng.random_range(axes.hot..pool.len())
            }
        })
        .collect();

    // The epoch chain: chunk c of the stream is answered against
    // chain[c]; the delta into it moves CHURN_NODES load averages.
    let chunks = axes.stream_len / axes.churn_every;
    let mut chain = vec![NetSnapshot::capture(Arc::new(topo))];
    let mut deltas = vec![NetDelta::default()];
    for c in 1..chunks {
        let mut delta = NetDelta::default();
        for _ in 0..CHURN_NODES {
            delta.nodes.push((
                ids[rng.random_range(0..ids.len())],
                rng.random_range(0.0..4.0),
            ));
        }
        chain.push(chain[c - 1].apply(&delta));
        deltas.push(delta);
    }

    // --- serial: a fresh solve per request. ---
    let t = Instant::now();
    let mut serial_digest = 0u64;
    for pos in 0..axes.serial_requests {
        let req = &pool[stream[pos]];
        let result = selector_for(req.objective).select(&chain[pos / axes.churn_every], req);
        serial_digest ^= mix(pos, &result);
    }
    let serial = ModeResult {
        requests: axes.serial_requests,
        elapsed_s: t.elapsed().as_secs_f64(),
        digest: serial_digest,
        prefix_digest: serial_digest,
        stats: None,
    };

    // --- cache: inline service, same stream end to end. ---
    let svc = PlacementService::new(Arc::new(chain[0].clone()), ServiceConfig::default());
    let t = Instant::now();
    let mut digest = 0u64;
    let mut prefix_digest = 0u64;
    for c in 0..chunks {
        if c > 0 {
            svc.publish(Arc::new(chain[c].clone()), Some(&deltas[c]));
        }
        for pos in c * axes.churn_every..(c + 1) * axes.churn_every {
            let m = mix(pos, &svc.get(&pool[stream[pos]]).result);
            digest ^= m;
            if pos < axes.serial_requests {
                prefix_digest ^= m;
            }
        }
    }
    let cache = ModeResult {
        requests: axes.stream_len,
        elapsed_s: t.elapsed().as_secs_f64(),
        digest,
        prefix_digest,
        stats: Some(svc.stats()),
    };
    drop(svc);

    // --- cache_batch: pooled service, CLIENTS driver threads. ---
    let svc = PlacementService::new(
        Arc::new(chain[0].clone()),
        ServiceConfig {
            workers: 2,
            batch_size: 32,
            queue_capacity: 256,
            cache_capacity: 65536,
            ..ServiceConfig::default()
        },
    );
    let t = Instant::now();
    let mut digest = 0u64;
    let mut prefix_digest = 0u64;
    for c in 0..chunks {
        if c > 0 {
            svc.publish(Arc::new(chain[c].clone()), Some(&deltas[c]));
        }
        let partials = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    let svc = &svc;
                    let pool = &pool;
                    let stream = &stream;
                    scope.spawn(move || {
                        let (mut d, mut p) = (0u64, 0u64);
                        for pos in (c * axes.churn_every..(c + 1) * axes.churn_every)
                            .filter(|pos| pos % CLIENTS == client)
                        {
                            let m = mix(pos, &svc.get(&pool[stream[pos]]).result);
                            d ^= m;
                            if pos < axes.serial_requests {
                                p ^= m;
                            }
                        }
                        (d, p)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect::<Vec<_>>()
        });
        for (d, p) in partials {
            digest ^= d;
            prefix_digest ^= p;
        }
    }
    let batch = ModeResult {
        requests: axes.stream_len,
        elapsed_s: t.elapsed().as_secs_f64(),
        digest,
        prefix_digest,
        stats: Some(svc.stats()),
    };
    drop(svc);

    // The whole point: same bits, different bill.
    assert_eq!(
        serial.digest, cache.prefix_digest,
        "cache-mode answers drifted from solve-per-request"
    );
    assert_eq!(
        serial.digest, batch.prefix_digest,
        "batched answers drifted from solve-per-request"
    );
    assert_eq!(
        cache.digest, batch.digest,
        "batched answers drifted from inline-cache answers"
    );
    // This bench runs the infallible blocking path under the default
    // (disabled) degrade policy: the accounting identity must balance
    // with the overload buckets empty — a tripwire that the chaos
    // hardening stays invisible until it is asked for.
    for (label, mode) in [("cache", &cache), ("cache_batch", &batch)] {
        let s = mode.stats.as_ref().expect("service modes carry counters");
        assert!(s.balanced(), "{label} counters no longer balance");
        assert_eq!(
            (s.shed, s.refused),
            (0, 0),
            "{label} shed or refused on the blocking path"
        );
    }

    eprintln!("\n=== Placement service throughput (n = {}, {} distinct specs, churn every {} requests) ===",
        axes.n, distinct.len(), axes.churn_every);
    eprintln!(
        "{:<12} {:>9} {:>10} {:>11} {:>9} {:>8} {:>8}",
        "mode", "requests", "elapsed_s", "req/s", "hits", "merges", "solves"
    );
    for (label, mode) in [
        ("serial", &serial),
        ("cache", &cache),
        ("cache_batch", &batch),
    ] {
        let (hits, merges, solves) = mode
            .stats
            .as_ref()
            .map_or((0, 0, mode.requests as u64), |s| {
                (s.cache_hits, s.single_flight_merges, s.solves)
            });
        eprintln!(
            "{label:<12} {:>9} {:>10.3} {:>11.0} {hits:>9} {merges:>8} {solves:>8}",
            mode.requests,
            mode.elapsed_s,
            mode.rps(),
        );
    }
    let speedup_cache = cache.rps() / serial.rps();
    let speedup_batch = batch.rps() / serial.rps();
    eprintln!("  speedup: cache {speedup_cache:.1}x, cache+batch {speedup_batch:.1}x over solve-per-request");

    let mode_json = |label: &str, mode: &ModeResult| {
        serde_json::json!({
            "mode": label,
            "requests": mode.requests,
            "elapsed_s": mode.elapsed_s,
            "rps": mode.rps(),
            "counters": stats_json(&mode.stats),
        })
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .filter(|v| v.as_object().is_some())
        .unwrap_or_else(|| serde_json::json!({}));
    doc["service"] = serde_json::json!({
        "smoke": smoke,
        "n": axes.n,
        "distinct_specs": distinct.len(),
        "hot_set": axes.hot,
        "stream_len": axes.stream_len,
        "churn_every": axes.churn_every,
        "churn_nodes": CHURN_NODES,
        "clients": CLIENTS,
        "modes": [
            mode_json("serial", &serial),
            mode_json("cache", &cache),
            mode_json("cache_batch", &batch),
        ],
        "speedup_cache": speedup_cache,
        "speedup_cache_batch": speedup_batch,
    });
    validate_schema(&doc);
    match std::fs::write(path, format!("{:#}\n", doc)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let reread: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(path).expect("just wrote the bench summary"))
            .expect("bench summary is valid JSON");
    validate_schema(&reread);
}
