//! Compact, type-safe identifiers for graph elements.

use serde::{Deserialize, Serialize};

/// Identifier of a node within a [`crate::Topology`].
///
/// `NodeId`s are dense indices assigned in insertion order, which gives the
/// deterministic iteration order the selection algorithms rely on for
/// reproducible tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// Intended for consumers (simulator, benches) that maintain parallel
    /// per-node arrays; passing an index that is out of range for the
    /// topology it is used with will cause a panic at the use site.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

/// Identifier of a link (edge) within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Returns the dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        EdgeId(u32::try_from(i).expect("edge index exceeds u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn edge_id_round_trips_index() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(EdgeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }
}
