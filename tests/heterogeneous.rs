//! Integration tests of the §3.3 heterogeneity mechanisms on the mixed
//! testbed: node speeds and the reference-link rule must change decisions
//! exactly as the paper describes.

use nodesel_core::{balanced, Constraints, GreedyPolicy, Weights};
use nodesel_topology::testbeds::heterogeneous_testbed;
use nodesel_topology::units::MBPS;

#[test]
fn reference_link_flips_the_selection() {
    let tb = heterogeneous_testbed();
    let mut topo = tb.topo.clone();
    for i in 1..=6 {
        topo.set_load_avg(tb.m(i), 1.2);
    }
    for i in 7..=16 {
        topo.set_load_avg(tb.m(i), 0.5);
    }
    // Per-link fractions: the idle legacy pair looks perfect.
    let per_link = balanced(
        &topo,
        2,
        Weights::EQUAL,
        &Constraints::none(),
        None,
        GreedyPolicy::Sweep,
    )
    .unwrap();
    assert_eq!(per_link.nodes, vec![tb.m(17), tb.m(18)]);
    // Against a 100 Mbps reference, 10 Mbps is only 10% availability: the
    // fast panama machines win despite their load.
    let referenced = balanced(
        &topo,
        2,
        Weights::EQUAL,
        &Constraints::none(),
        Some(100.0 * MBPS),
        GreedyPolicy::Sweep,
    )
    .unwrap();
    assert_eq!(referenced.nodes, vec![tb.m(1), tb.m(2)]);
    assert!(referenced.quality.min_cpu > 0.9);
}

#[test]
fn fast_nodes_absorb_load() {
    // The paper's heterogeneous-node rule: capacities are relative to a
    // reference node type. A double-speed node with one competitor offers
    // exactly one reference node's worth of compute.
    let tb = heterogeneous_testbed();
    let mut topo = tb.topo.clone();
    for i in 1..=6 {
        topo.set_load_avg(tb.m(i), 1.0); // effective cpu = 2.0 / 2 = 1.0
    }
    for i in 7..=16 {
        topo.set_load_avg(tb.m(i), 0.05); // effective cpu ≈ 0.95
    }
    let sel = balanced(
        &topo,
        4,
        Weights::EQUAL,
        &Constraints::none(),
        Some(100.0 * MBPS),
        GreedyPolicy::Sweep,
    )
    .unwrap();
    // The loaded fast nodes still beat the nearly idle reference nodes.
    assert_eq!(
        sel.nodes,
        vec![tb.m(1), tb.m(2), tb.m(3), tb.m(4)],
        "effective cpu must rank 2x-speed loaded nodes above 1x idle ones"
    );
    assert_eq!(sel.quality.min_cpu, 1.0);
}

#[test]
fn legacy_links_bound_simulated_transfers() {
    // The heterogeneous capacities are physical in the simulator too.
    use nodesel_simnet::Sim;
    use std::{cell::RefCell, rc::Rc};
    let tb = heterogeneous_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    let done = Rc::new(RefCell::new(0.0));
    let d = done.clone();
    // 10 Mbit from m-17 to m-18 over two 10 Mbps access links: 1 s.
    sim.start_transfer(tb.m(17), tb.m(18), 10.0 * MBPS, move |s| {
        *d.borrow_mut() = s.now().as_secs_f64();
    });
    sim.run();
    assert!((*done.borrow() - 1.0).abs() < 1e-3, "{}", done.borrow());
}
