//! Bulk-transfer flows with max-min fair bandwidth sharing.
//!
//! Transfers are modeled as fluid flows over their fixed route. Whenever the
//! flow set changes, link bandwidth is (re)divided by **progressive
//! filling**: repeatedly find the directed link with the smallest fair share
//! among its unfrozen flows, freeze those flows at that rate, subtract, and
//! continue. The result is the unique max-min fair allocation — the standard
//! fluid abstraction for competing TCP-like bulk transfers, and the
//! mechanism by which background traffic slows application communication in
//! the Table 1 experiments.
//!
//! The table also keeps per-directed-link byte counters (advanced in
//! [`FlowTable::settle`]) so the measurement layer can sample SNMP-style
//! octet counts.

use crate::time::SimTime;
use nodesel_topology::{Direction, EdgeId, NodeId, Path, Topology};

/// Identifier of a flow within a [`FlowTable`]. Unique per engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A directed link: the unit of capacity in the fluid model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirLink {
    /// The undirected edge.
    pub edge: EdgeId,
    /// Travel direction across it.
    pub dir: Direction,
}

impl DirLink {
    fn slot(self) -> usize {
        self.edge.index() * 2 + self.dir as usize
    }
}

#[derive(Debug, Clone)]
struct Flow {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    /// Remaining payload in bits.
    remaining: f64,
    /// Current max-min fair rate in bits/s.
    rate: f64,
    /// Directed links traversed, in order.
    hops: Vec<DirLink>,
}

/// All live flows plus the derived per-link state.
#[derive(Debug)]
pub struct FlowTable {
    flows: Vec<Flow>,
    /// Peak capacity per directed link (indexed by [`DirLink::slot`]).
    capacity: Vec<f64>,
    /// Aggregate allocated rate per directed link.
    link_rate: Vec<f64>,
    /// Cumulative bits carried per directed link.
    link_bits: Vec<f64>,
    last_update: SimTime,
}

impl FlowTable {
    /// Creates an empty table for the given topology's link capacities.
    pub fn new(topo: &Topology) -> Self {
        let mut capacity = vec![0.0; topo.link_count() * 2];
        for e in topo.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                capacity[DirLink { edge: e, dir }.slot()] = topo.link(e).capacity(dir);
            }
        }
        let slots = capacity.len();
        FlowTable {
            flows: Vec::new(),
            capacity,
            link_rate: vec![0.0; slots],
            link_bits: vec![0.0; slots],
            last_update: SimTime::ZERO,
        }
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flow is live.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Aggregate allocated rate (bits/s) on a directed link.
    pub fn link_rate(&self, edge: EdgeId, dir: Direction) -> f64 {
        self.link_rate[DirLink { edge, dir }.slot()]
    }

    /// Cumulative bits carried by a directed link up to the last settle.
    pub fn link_bits(&self, edge: EdgeId, dir: Direction) -> f64 {
        self.link_bits[DirLink { edge, dir }.slot()]
    }

    /// The time up to which flow progress has been accounted.
    pub fn last_update(&self) -> SimTime {
        self.last_update
    }

    /// Current rate of a flow, if live.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.iter().find(|f| f.id == id).map(|f| f.rate)
    }

    /// Remaining bits of a flow, if live.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.iter().find(|f| f.id == id).map(|f| f.remaining)
    }

    /// Source and destination of a flow, if live.
    pub fn endpoints(&self, id: FlowId) -> Option<(NodeId, NodeId)> {
        self.flows
            .iter()
            .find(|f| f.id == id)
            .map(|f| (f.src, f.dst))
    }

    /// Advances all flows to `now` at their current rates and accumulates
    /// link byte counters. Must be called before any mutation or query at
    /// `now`.
    pub fn settle(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "time went backwards");
        let dt = now.seconds_since(self.last_update);
        if dt > 0.0 {
            for f in &mut self.flows {
                let moved = f.rate * dt;
                f.remaining = (f.remaining - moved).max(0.0);
                for h in &f.hops {
                    self.link_bits[h.slot()] += moved;
                }
            }
        }
        self.last_update = now;
    }

    /// Adds a flow over `path` carrying `bits`, then reallocates. The caller
    /// must have settled to the current time first.
    pub fn add_flow(&mut self, id: FlowId, path: &Path, bits: f64) {
        assert!(bits >= 0.0, "flow size must be non-negative");
        assert!(!path.is_empty(), "flows require src != dst");
        let hops = path
            .hops
            .iter()
            .map(|&(edge, dir)| DirLink { edge, dir })
            .collect();
        self.flows.push(Flow {
            id,
            src: path.src,
            dst: path.dst,
            remaining: bits,
            rate: 0.0,
            hops,
        });
        self.reallocate();
    }

    /// Removes a flow (finished or cancelled), then reallocates. Returns
    /// true when the flow was live.
    pub fn remove_flow(&mut self, id: FlowId) -> bool {
        let before = self.flows.len();
        self.flows.retain(|f| f.id != id);
        let removed = self.flows.len() != before;
        if removed {
            self.reallocate();
        }
        removed
    }

    /// Pops every flow whose payload has fully drained (id order), then
    /// reallocates if any finished.
    pub fn take_finished(&mut self) -> Vec<FlowId> {
        let mut done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|f| f.remaining <= 0.0)
            .map(|f| f.id)
            .collect();
        done.sort_unstable();
        if !done.is_empty() {
            self.flows.retain(|f| f.remaining > 0.0);
            self.reallocate();
        }
        done
    }

    /// Absolute time of the earliest flow completion at current rates, or
    /// [`SimTime::NEVER`] when there are no flows.
    pub fn next_completion(&self) -> SimTime {
        let mut soonest = f64::INFINITY;
        for f in &self.flows {
            let eta = if f.rate > 0.0 {
                f.remaining / f.rate
            } else if f.remaining <= 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
            soonest = soonest.min(eta);
        }
        if soonest.is_infinite() {
            SimTime::NEVER
        } else {
            self.last_update.after_secs_f64(soonest)
        }
    }

    /// Recomputes the max-min fair allocation by progressive filling
    /// (delegated to [`nodesel_topology::maxmin`], which the measurement
    /// layer shares for its sharing-aware flow predictions).
    fn reallocate(&mut self) {
        for r in self.link_rate.iter_mut() {
            *r = 0.0;
        }
        if self.flows.is_empty() {
            return;
        }
        let flow_slots: Vec<Vec<usize>> = self
            .flows
            .iter()
            .map(|f| f.hops.iter().map(|h| h.slot()).collect())
            .collect();
        let rates = nodesel_topology::maxmin::max_min_allocate(&self.capacity, &flow_slots);
        for (f, rate) in self.flows.iter_mut().zip(rates) {
            debug_assert!(rate.is_finite(), "flows always have at least one hop");
            f.rate = rate;
            for h in &f.hops {
                self.link_rate[h.slot()] += rate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::{chain, dumbbell, star};
    use nodesel_topology::units::MBPS;
    use nodesel_topology::Routes;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn path(r: &Routes<'_>, a: NodeId, b: NodeId) -> Path {
        r.path(a, b).unwrap()
    }

    #[test]
    fn lone_flow_gets_bottleneck_bandwidth() {
        let (topo, ids) = chain(3, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[2]), 100.0 * MBPS);
        assert_eq!(ft.flow_rate(FlowId(1)), Some(100.0 * MBPS));
        // 100 Mbit at 100 Mbps => 1 second.
        assert_eq!(ft.next_completion(), t(1.0));
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        // Both flows converge on n2's access link (hub -> n2).
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[2]), 1e9);
        ft.add_flow(FlowId(2), &path(&r, ids[1], ids[2]), 1e9);
        assert_eq!(ft.flow_rate(FlowId(1)), Some(50.0 * MBPS));
        assert_eq!(ft.flow_rate(FlowId(2)), Some(50.0 * MBPS));
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let (topo, ids) = dumbbell(2, 100.0 * MBPS, 10.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        // Within the left side and within the right side.
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[1]), 1e9);
        ft.add_flow(FlowId(2), &path(&r, ids[2], ids[3]), 1e9);
        assert_eq!(ft.flow_rate(FlowId(1)), Some(100.0 * MBPS));
        assert_eq!(ft.flow_rate(FlowId(2)), Some(100.0 * MBPS));
    }

    #[test]
    fn max_min_gives_unbottlenecked_flow_the_slack() {
        let (topo, ids) = dumbbell(2, 100.0 * MBPS, 30.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        // Two cross flows share the 30 Mbps backbone (15 each); one local
        // flow shares l0's access link with cross flow 1.
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[2]), 1e12);
        ft.add_flow(FlowId(2), &path(&r, ids[1], ids[3]), 1e12);
        ft.add_flow(FlowId(3), &path(&r, ids[0], ids[1]), 1e12);
        let r1 = ft.flow_rate(FlowId(1)).unwrap();
        let r2 = ft.flow_rate(FlowId(2)).unwrap();
        let r3 = ft.flow_rate(FlowId(3)).unwrap();
        assert!((r1 - 15.0 * MBPS).abs() < 1.0);
        assert!((r2 - 15.0 * MBPS).abs() < 1.0);
        // Flow 3 picks up the remaining 85 Mbps on the shared access link.
        assert!((r3 - 85.0 * MBPS).abs() < 1.0);
    }

    #[test]
    fn opposite_directions_use_separate_capacity() {
        let (topo, ids) = chain(2, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[1]), 1e12);
        ft.add_flow(FlowId(2), &path(&r, ids[1], ids[0]), 1e12);
        // Full-duplex: each direction carries its flow at line rate.
        assert_eq!(ft.flow_rate(FlowId(1)), Some(100.0 * MBPS));
        assert_eq!(ft.flow_rate(FlowId(2)), Some(100.0 * MBPS));
    }

    #[test]
    fn settle_and_finish_lifecycle() {
        let (topo, ids) = chain(2, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[1]), 50.0 * MBPS);
        let eta = ft.next_completion();
        assert_eq!(eta, t(0.5));
        ft.settle(eta);
        assert_eq!(ft.take_finished(), vec![FlowId(1)]);
        assert!(ft.is_empty());
        // Counters recorded the carried bits on the forward direction only.
        let e = topo.edge_ids().next().unwrap();
        let fwd = ft.link_bits(e, topo.link(e).direction_from(ids[0]));
        let back = ft.link_bits(e, topo.link(e).direction_from(ids[1]));
        assert!((fwd - 50.0 * MBPS).abs() < 1e-3);
        assert_eq!(back, 0.0);
    }

    #[test]
    fn departure_speeds_up_survivor() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[2]), 100.0 * MBPS);
        ft.add_flow(FlowId(2), &path(&r, ids[1], ids[2]), 100.0 * MBPS);
        // Both run at 50 Mbps. After 1s, half of each remains.
        ft.settle(t(1.0));
        assert!(ft.remove_flow(FlowId(2)));
        assert_eq!(ft.flow_rate(FlowId(1)), Some(100.0 * MBPS));
        // Remaining 50 Mbit at 100 Mbps: finishes at 1.5s.
        assert_eq!(ft.next_completion(), t(1.5));
    }

    #[test]
    fn zero_size_flow_completes_immediately() {
        let (topo, ids) = chain(2, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        ft.add_flow(FlowId(1), &path(&r, ids[0], ids[1]), 0.0);
        assert_eq!(ft.next_completion(), ft.next_completion());
        ft.settle(SimTime::ZERO);
        assert_eq!(ft.take_finished(), vec![FlowId(1)]);
    }

    #[test]
    fn link_rates_never_exceed_capacity() {
        // Heavily loaded star: all pairs exchanging.
        let (topo, ids) = star(4, 100.0 * MBPS);
        let r = topo.routes();
        let mut ft = FlowTable::new(&topo);
        let mut next = 0u64;
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    ft.add_flow(FlowId(next), &path(&r, a, b), 1e12);
                    next += 1;
                }
            }
        }
        for e in topo.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                assert!(ft.link_rate(e, dir) <= topo.link(e).capacity(dir) * (1.0 + 1e-9));
            }
        }
        // Every flow got a strictly positive rate.
        for f in 0..next {
            assert!(ft.flow_rate(FlowId(f)).unwrap() > 0.0);
        }
    }
}
