//! Dynamic migration of a long-running job (§3.3, "Dynamic migration").
//!
//! A job is placed well, then the network changes underneath it: heavy
//! compute load lands on one of its nodes and a bulk stream congests one
//! of its paths. The migration advisor discounts the job's own footprint,
//! re-runs selection, and recommends a move only when the gain clears a
//! hysteresis threshold.
//!
//! Run with: `cargo run -p nodesel-experiments --example migration`

use nodesel_core::migration::{Advisor, OwnUsage};
use nodesel_core::{BalancedSelector, SelectionRequest, Selector};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;

fn main() {
    let tb = cmu_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());

    // Initial placement on the idle testbed, from the collector's
    // versioned snapshot.
    let request = SelectionRequest::balanced(4);
    let mut selector = BalancedSelector::new();
    let initial = selector.select(&remos.snapshot(&sim), &request).unwrap();
    let name = |n| tb.topo.node(n).name().to_string();
    let placed: Vec<String> = initial.nodes.iter().map(|&n| name(n)).collect();
    println!("initial placement: {placed:?} (score {:.2})", initial.score);

    // The job runs: one process per node.
    for &n in &initial.nodes {
        sim.start_compute(n, 1e9, |_| {});
    }
    let own = OwnUsage::one_process_per_node(&initial.nodes);

    // Check periodically while the environment degrades. The advisor
    // keeps its selector primed across epochs: checks where only node
    // loads moved are replayed incrementally, not re-solved.
    let mut advisor = Advisor::new(request.clone(), 0.25);
    println!("\n t(s)  current  best   recommend  move");
    for step in 0..6 {
        sim.run_for(120.0);
        if step == 1 {
            // Competing jobs land on the first two placed nodes.
            for &n in &initial.nodes[..2] {
                for _ in 0..3 {
                    sim.start_compute(n, 1e9, |_| {});
                }
            }
        }
        let snapshot = remos.snapshot(&sim);
        let advice = advisor.advise(&snapshot, &initial.nodes, &own).unwrap();
        let vacated: Vec<String> = advice
            .vacated(&initial.nodes)
            .iter()
            .map(|&n| name(n))
            .collect();
        println!(
            "{:>5.0}  {:>7.2}  {:>5.2}  {:>9}  {}",
            sim.now().as_secs_f64(),
            advice.current_score,
            advice.best.score,
            advice.recommended,
            if advice.recommended {
                format!("vacate {vacated:?}")
            } else {
                "stay".to_string()
            }
        );
    }
}
