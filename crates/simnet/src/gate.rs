//! The window barrier of the parallel engine.
//!
//! Conservative window synchronization needs one primitive: all workers
//! rendezvous between windows, one of them computes the next window
//! boundary from everyone's published next-event times, and nobody runs
//! ahead until that boundary is visible to all. [`WindowGate::arrive`]
//! packs the whole handshake into a generation barrier whose *last*
//! arriver runs the leader closure under the gate lock — so anything the
//! leader publishes happens-before every worker's return from `arrive`.
//!
//! Built with `--cfg loom` the gate uses loom's model-checked `Mutex` and
//! `Condvar` instead of std's, so the handshake can be exhaustively
//! verified (`RUSTFLAGS="--cfg loom" cargo test -p nodesel-simnet loom`
//! on a machine with the `loom` crate available); the normal build never
//! compiles any loom code.

#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex};

/// A reusable generation barrier electing one leader per generation.
#[derive(Debug)]
pub(crate) struct WindowGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Debug)]
struct GateState {
    workers: usize,
    arrived: usize,
    generation: u64,
}

impl WindowGate {
    pub(crate) fn new(workers: usize) -> WindowGate {
        assert!(workers >= 1, "a gate needs at least one worker");
        WindowGate {
            state: Mutex::new(GateState {
                workers,
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all workers of the current generation have arrived.
    /// The last arriver — the generation's leader — runs `leader_work`
    /// under the gate lock before releasing the others, so whatever it
    /// publishes (even with relaxed atomics) is visible to every worker
    /// when its `arrive` returns. Returns `true` to the leader only.
    pub(crate) fn arrive(&self, leader_work: impl FnOnce()) -> bool {
        let mut st = self.state.lock().unwrap();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == st.workers {
            st.arrived = 0;
            leader_work();
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            true
        } else {
            while st.generation == gen {
                st = self.cv.wait(st).unwrap();
            }
            false
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn one_leader_per_round_and_publication_precedes_release() {
        const WORKERS: usize = 4;
        const ROUNDS: u64 = 300;
        let gate = WindowGate::new(WORKERS);
        let slot = AtomicU64::new(0);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                s.spawn(|| {
                    for round in 1..=ROUNDS {
                        gate.arrive(|| {
                            slot.store(round, Ordering::Relaxed);
                            leaders.fetch_add(1, Ordering::Relaxed);
                        });
                        // The leader's store is visible to every worker as
                        // soon as its own arrive returns.
                        assert_eq!(slot.load(Ordering::Relaxed), round);
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS);
    }

    #[test]
    fn single_worker_always_leads() {
        let gate = WindowGate::new(1);
        for _ in 0..10 {
            assert!(gate.arrive(|| {}));
        }
    }
}

/// Loom model of the handshake the parallel engine relies on: workers
/// publish next-event times with relaxed atomics, one leader folds them
/// into a window boundary, and every worker observes that boundary after
/// the barrier. Exhaustively checked under loom's memory model.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use loom::sync::atomic::{AtomicU64, Ordering};
    use loom::sync::Arc;
    use loom::thread;

    #[test]
    fn window_handshake_publishes_and_elects_one_leader() {
        loom::model(|| {
            let gate = Arc::new(WindowGate::new(2));
            let nexts = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
            let window = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2u64)
                .map(|w| {
                    let gate = Arc::clone(&gate);
                    let nexts = Arc::clone(&nexts);
                    let window = Arc::clone(&window);
                    thread::spawn(move || {
                        nexts[w as usize].store(w + 1, Ordering::Relaxed);
                        let led = gate.arrive(|| {
                            let m = nexts[0]
                                .load(Ordering::Relaxed)
                                .min(nexts[1].load(Ordering::Relaxed));
                            window.store(m + 10, Ordering::Relaxed);
                        });
                        // Both publications and the fold are visible.
                        assert_eq!(window.load(Ordering::Relaxed), 11);
                        led as u64
                    })
                })
                .collect();
            let leaders: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(leaders, 1);
        });
    }
}
