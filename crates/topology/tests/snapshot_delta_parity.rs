//! Properties of the versioned snapshot layer: `apply`/`diff` round-trip
//! exactly, and a snapshot's derived metrics agree bitwise with the
//! equivalent mutated [`Topology`].
//!
//! Random connected topologies (trees plus chords) with random
//! annotations, random deltas touching a subset of nodes and directed
//! links, and chains of several epochs.

use std::sync::Arc;

use nodesel_topology::builders::random_tree;
use nodesel_topology::units::MBPS;
use nodesel_topology::{Direction, NetDelta, NetMetrics, NetSnapshot, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random connected topology: a random tree plus up to four chords, with
/// random loads and per-direction link utilization.
fn random_topology(seed: u64, computes: usize, networks: usize, chords: usize) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut topo, compute_ids) = random_tree(&mut rng, computes, networks, 100.0 * MBPS);
    let all: Vec<NodeId> = topo.node_ids().collect();
    for _ in 0..chords {
        let a = all[rng.random_range(0..all.len())];
        let b = all[rng.random_range(0..all.len())];
        if a != b {
            topo.add_link(a, b, 100.0 * MBPS);
        }
    }
    for n in compute_ids {
        topo.set_load_avg(n, rng.random_range(0.0..4.0));
    }
    for e in topo.edge_ids().collect::<Vec<_>>() {
        for dir in [Direction::AtoB, Direction::BtoA] {
            let cap = topo.link(e).capacity(dir);
            topo.set_link_used(e, dir, cap * rng.random_range(0.0..0.95));
        }
    }
    topo
}

/// Random delta in the collector's contract: compute-node loads and
/// directed-link utilizations, in ascending id / slot order.
fn random_delta(seed: u64, topo: &Topology) -> NetDelta {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut delta = NetDelta::default();
    for n in topo.compute_nodes() {
        if rng.random_range(0..3) == 0 {
            delta.nodes.push((n, rng.random_range(0.0..4.0)));
        }
    }
    for e in topo.edge_ids() {
        for dir in [Direction::AtoB, Direction::BtoA] {
            if rng.random_range(0..3) == 0 {
                let cap = topo.link(e).capacity(dir);
                delta
                    .links
                    .push((e, dir, cap * rng.random_range(0.0..0.95)));
            }
        }
    }
    delta
}

/// The subset of `delta` whose values actually differ bitwise from what
/// `base` already holds — the entries `diff` is specified to emit.
fn effective(delta: &NetDelta, base: &NetSnapshot) -> NetDelta {
    NetDelta {
        nodes: delta
            .nodes
            .iter()
            .copied()
            .filter(|&(n, l)| l.to_bits() != base.load_values()[n.index()].to_bits())
            .collect(),
        links: delta
            .links
            .iter()
            .copied()
            .filter(|&(e, dir, u)| {
                let slot = e.index() * 2 + dir as usize;
                u.to_bits() != base.used_values()[slot].to_bits()
            })
            .collect(),
        ..NetDelta::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn apply_then_diff_recovers_the_delta(
        seed in 0u64..100_000,
        computes in 2usize..12,
        networks in 0usize..8,
        chords in 0usize..4,
    ) {
        let topo = random_topology(seed, computes, networks, chords);
        let base = NetSnapshot::capture(Arc::new(topo));
        let delta = random_delta(seed, base.structure());
        let next = base.apply(&delta);
        prop_assert_eq!(next.epoch(), base.epoch() + 1);
        prop_assert!(next.same_structure(&base));
        prop_assert_eq!(next.diff(&base), effective(&delta, &base));
    }

    #[test]
    fn snapshot_metrics_match_the_mutated_topology(
        seed in 0u64..100_000,
        computes in 2usize..12,
        networks in 0usize..8,
        chords in 0usize..4,
    ) {
        let topo = random_topology(seed, computes, networks, chords);
        let base = NetSnapshot::capture(Arc::new(topo.clone()));
        let delta = random_delta(seed, &topo);

        // Reference: the same changes applied to an owned Topology.
        let mut mutated = topo;
        for &(n, l) in &delta.nodes {
            mutated.set_load_avg(n, l);
        }
        for &(e, dir, u) in &delta.links {
            mutated.set_link_used(e, dir, u);
        }

        let next = base.apply(&delta);
        for n in mutated.node_ids() {
            prop_assert_eq!(next.load_avg(n).to_bits(), mutated.load_avg(n).to_bits());
            prop_assert_eq!(next.cpu(n).to_bits(), mutated.cpu(n).to_bits());
            prop_assert_eq!(
                next.effective_cpu(n).to_bits(),
                mutated.effective_cpu(n).to_bits()
            );
        }
        for e in mutated.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                prop_assert_eq!(next.used(e, dir).to_bits(), mutated.used(e, dir).to_bits());
                prop_assert_eq!(
                    next.available(e, dir).to_bits(),
                    mutated.available(e, dir).to_bits()
                );
            }
            prop_assert_eq!(next.bw(e).to_bits(), mutated.bw(e).to_bits());
            prop_assert_eq!(next.bwfactor(e).to_bits(), mutated.bwfactor(e).to_bits());
        }

        // Materialization agrees with the mutated reference everywhere.
        let owned = next.to_topology();
        for n in mutated.node_ids() {
            prop_assert_eq!(
                owned.node(n).load_avg().to_bits(),
                mutated.node(n).load_avg().to_bits()
            );
        }
        for e in mutated.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                prop_assert_eq!(
                    owned.link(e).used(dir).to_bits(),
                    mutated.link(e).used(dir).to_bits()
                );
            }
        }
    }

    #[test]
    fn chained_epochs_diff_and_replay_exactly(
        seed in 0u64..100_000,
        computes in 2usize..10,
        networks in 0usize..6,
        chords in 0usize..3,
        steps in 1usize..5,
    ) {
        let topo = random_topology(seed, computes, networks, chords);
        let base = NetSnapshot::capture(Arc::new(topo));
        let mut tip = base.clone();
        for step in 0..steps {
            let delta = random_delta(seed.wrapping_add(step as u64), tip.structure());
            tip = tip.apply(&delta);
        }
        prop_assert_eq!(tip.epoch(), steps as u64);
        // Replaying the cumulative diff onto the base reproduces every
        // annotation bitwise.
        let replayed = base.apply(&tip.diff(&base));
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(replayed.load_values()), bits(tip.load_values()));
        prop_assert_eq!(bits(replayed.used_values()), bits(tip.used_values()));
    }
}
