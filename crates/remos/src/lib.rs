//! A Remos-like resource measurement layer over the simulator.
//!
//! Remos (REsource MOnitoring System, Lowekamp et al., HPDC '98) is the
//! query interface to network information the PPoPP '99 node-selection
//! framework is built on. This crate reproduces its externally visible
//! behaviour against `nodesel-simnet`:
//!
//! * a periodic **SNMP-style collector** samples host load averages and
//!   per-directed-link octet counters into bounded history windows
//!   ([`CollectorConfig`]);
//! * the **query API** exposes the paper's two abstraction levels —
//!   [`Remos::flow_query`] (available bandwidth between node pairs) and
//!   [`Remos::snapshot`] (a versioned [`nodesel_topology::NetSnapshot`] of
//!   the network annotated with measured conditions, re-published by the
//!   collector only when an estimate actually changed);
//! * [`Estimator`] selects between history-window, current-conditions and
//!   future-estimate answers, mirroring the Remos API's query modes.
//!
//! Selection algorithms consume the annotated snapshot returned by
//! `snapshot` (materialize with [`nodesel_topology::NetSnapshot::to_topology`]
//! when an owned graph is needed; [`Remos::snapshot_if_new`] skips the
//! return entirely when the epoch a handle last saw is still current);
//! because it is built purely from sampled data, staleness and measurement
//! noise propagate into selection quality exactly as they would on a real
//! network. Because successive epochs share structure, a consumer can diff
//! them ([`nodesel_topology::NetSnapshot::diff`]) and drive an incremental
//! `nodesel_core` selector instead of re-solving per epoch.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod collector;
mod estimator;
pub mod inference;
mod queries;
mod window;

pub use collector::CollectorConfig;
pub use estimator::Estimator;
pub use queries::{FlowInfo, HostInfo, QueryStats, Remos};
pub use window::Window;
