//! Single-trial experiment driver.
//!
//! One *trial* reproduces one execution from the paper's methodology
//! (§4.3): bring the testbed to a steady state under the configured
//! background load/traffic, select nodes (randomly or automatically from
//! Remos measurements), run the application, and record its turnaround
//! time.
//!
//! A trial splits at the warm-up boundary into [`warm_trial`] (build the
//! simulator, install generators and collector, reach steady state) and
//! [`WarmTrial::finish`] (select, launch, drain). Because everything that
//! runs during warm-up is a data-driven driver, the warm state is
//! [`Sim::fork`]-able: one warm-up can seed several strategy
//! continuations, each bit-identical to a straight-through run with the
//! same seed. The batch runners exploit this — cells that share a
//! `(condition, seed)` pair share one warm-up, and all cells across all
//! groups drain through a single flat work queue over scoped threads.

use nodesel_apps::AppModel;
use nodesel_core::{
    balanced, random_selection, selector_for, Constraints, GreedyPolicy, SelectionRequest, Weights,
};
use nodesel_loadgen::{install_load, install_traffic, LoadConfig, TrafficConfig};
use nodesel_remos::{CollectorConfig, Estimator, Remos};
use nodesel_simnet::{FlowEngine, ParallelSim, Sim, DEFAULT_LOAD_AVG_TAU};
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::{NodeId, RouteTable, ShardPlan, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which background generators run during a trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Condition {
    /// Unloaded testbed (the paper's reference column).
    None,
    /// Compute-load generator only.
    Load,
    /// Network-traffic generator only.
    Traffic,
    /// Both generators.
    Both,
}

impl Condition {
    /// All four conditions in table order.
    pub const ALL: [Condition; 4] = [
        Condition::None,
        Condition::Load,
        Condition::Traffic,
        Condition::Both,
    ];

    /// Column label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Condition::None => "unloaded",
            Condition::Load => "load",
            Condition::Traffic => "traffic",
            Condition::Both => "load+traffic",
        }
    }

    fn has_load(self) -> bool {
        matches!(self, Condition::Load | Condition::Both)
    }

    fn has_traffic(self) -> bool {
        matches!(self, Condition::Traffic | Condition::Both)
    }
}

/// How nodes are picked for the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Uniformly random compute nodes (the paper's baseline, which it
    /// argues also stands in for static selection on this testbed).
    Random,
    /// The paper's framework: balanced selection on the Remos-measured
    /// logical topology.
    Automatic,
    /// Balanced selection on the simulator's ground truth (no measurement
    /// staleness) — an upper bound used by ablations.
    Oracle,
    /// Balanced selection on the unloaded topology (structure only).
    Static,
}

impl Strategy {
    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Random => "random",
            Strategy::Automatic => "automatic",
            Strategy::Oracle => "oracle",
            Strategy::Static => "static",
        }
    }
}

/// Tunables shared by every trial.
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Background-load model (used when the condition includes load).
    pub load: LoadConfig,
    /// Background-traffic model (used when the condition includes traffic).
    pub traffic: TrafficConfig,
    /// Remos collector settings.
    pub collector: CollectorConfig,
    /// Estimator the automatic strategy queries with.
    pub estimator: Estimator,
    /// Seconds of warm-up before selection + launch.
    pub warmup: f64,
    /// Flow engine the simulator runs on. Both engines produce
    /// bit-identical trials; `Reference` exists for oracle checks and
    /// benchmarking.
    pub engine: FlowEngine,
    /// Worker threads for the warm-up phase. With more than one thread
    /// the warm-up runs on the parallel engine, sharded by the
    /// topology's connected components; results are bit-identical to a
    /// single-threaded run at any setting. On a single-domain testbed
    /// (like the paper's CMU network) the engine falls back to serial,
    /// so extra threads buy nothing there — the speedup comes on
    /// federated multi-subnet topologies.
    pub threads: usize,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            load: LoadConfig::paper_defaults(),
            traffic: TrafficConfig::paper_defaults(),
            collector: CollectorConfig::default(),
            estimator: Estimator::Latest,
            warmup: 1800.0,
            engine: FlowEngine::default(),
            threads: 1,
        }
    }
}

/// Result of one trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialResult {
    /// Application turnaround time, seconds.
    pub elapsed: f64,
    /// The node names that were selected.
    pub nodes: Vec<String>,
}

/// The CMU testbed with its topology and route table behind `Arc`s,
/// prebuilt once and shared by every trial simulator (and every fork)
/// instead of being reconstructed per trial.
#[derive(Debug, Clone)]
pub struct Testbed {
    topo: Arc<Topology>,
    routes: Arc<RouteTable>,
    /// Compute nodes `m-1` .. `m-18`, in order.
    pub machines: Vec<NodeId>,
}

impl Testbed {
    /// Builds the paper's CMU testbed; routes are computed once, here.
    pub fn cmu() -> Testbed {
        let tb = cmu_testbed();
        let routes = Arc::new(RouteTable::build(&tb.topo));
        Testbed {
            topo: Arc::new(tb.topo),
            routes,
            machines: tb.machines,
        }
    }

    /// A fresh simulator over the shared graph. O(nodes): the topology
    /// and route table are reference-counted, not copied.
    pub fn sim(&self, engine: FlowEngine) -> Sim {
        Sim::with_shared(
            Arc::clone(&self.topo),
            Arc::clone(&self.routes),
            DEFAULT_LOAD_AVG_TAU,
            engine,
        )
    }
}

/// A simulator brought to steady state under one `(condition, seed)`
/// pair, with the Remos handle watching it. Forking replays the warm-up
/// for free: each continuation starts from bit-identical warm state.
pub struct WarmTrial {
    sim: Sim,
    remos: Remos,
    seed: u64,
}

/// Warms a fresh simulator to steady state: installs the collector and
/// the condition's generators, then runs `config.warmup` seconds.
pub fn warm_trial(
    testbed: &Testbed,
    condition: Condition,
    config: &TrialConfig,
    seed: u64,
) -> WarmTrial {
    let mut sim = testbed.sim(config.engine);
    // Sharding by connected component must be decided on a pristine
    // simulator: domains govern id minting from the first action.
    let plan = (config.threads > 1).then(|| ShardPlan::components(sim.topology()));
    if let Some(plan) = &plan {
        sim.set_partition(plan.node_domain());
    }
    // The maintained snapshot stream follows the trial's estimator, so
    // the automatic strategy sees exactly what the per-query path would.
    let remos = Remos::install(
        &mut sim,
        CollectorConfig {
            estimator: config.estimator,
            ..config.collector
        },
    );
    if condition.has_load() {
        install_load(&mut sim, &testbed.machines, config.load, seed ^ 0x10AD);
    }
    if condition.has_traffic() {
        install_traffic(&mut sim, &testbed.machines, config.traffic, seed ^ 0x7AFF1C);
    }
    match plan {
        Some(plan) => {
            // Parallel warm-up; bit-identical to serial by the engine's
            // contract, and a silent serial fallback on degenerate
            // plans (single domain, zero lookahead).
            let mut par = ParallelSim::new(sim, &plan, config.threads);
            par.run_for(config.warmup);
            sim = par.into_sim();
        }
        None => sim.run_for(config.warmup),
    }
    debug_assert!(sim.can_fork(), "warm-up left a user closure pending");
    WarmTrial { sim, remos, seed }
}

impl WarmTrial {
    /// An independent copy of the warm state (background generators,
    /// collector history, in-flight work). Legal because warm-up runs
    /// only data-driven drivers — [`Sim::can_fork`] holds here.
    pub fn fork(&self) -> WarmTrial {
        WarmTrial {
            sim: self.sim.fork(),
            remos: self.remos.clone(),
            seed: self.seed,
        }
    }

    /// Selects `m` nodes with `strategy`, launches `app` on them and
    /// runs it to completion.
    pub fn finish(self, app: &AppModel, m: usize, strategy: Strategy) -> TrialResult {
        let WarmTrial {
            mut sim,
            remos,
            seed,
        } = self;
        let nodes: Vec<NodeId> = match strategy {
            Strategy::Random => {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5E1EC7);
                random_selection(sim.topology(), m, &mut rng)
                    .expect("testbed has enough nodes")
                    .nodes
            }
            Strategy::Automatic => {
                let snapshot = remos.snapshot(&sim);
                let request = SelectionRequest::balanced(m);
                let mut selector = selector_for(request.objective);
                selector
                    .select(&snapshot, &request)
                    .expect("testbed has enough nodes")
                    .nodes
            }
            Strategy::Oracle => {
                let snapshot = sim.oracle_snapshot();
                balanced(
                    &snapshot,
                    m,
                    Weights::EQUAL,
                    &Constraints::none(),
                    None,
                    GreedyPolicy::Sweep,
                )
                .expect("testbed has enough nodes")
                .nodes
            }
            Strategy::Static => {
                nodesel_core::static_selection(sim.topology(), m)
                    .expect("testbed has enough nodes")
                    .nodes
            }
        };
        let handle = app.launch(&mut sim, &nodes);
        while !handle.is_finished() {
            assert!(sim.step(), "simulation drained before the app finished");
        }
        let names = {
            let topo = sim.topology();
            nodes
                .iter()
                .map(|&n| topo.node(n).name().to_string())
                .collect()
        };
        TrialResult {
            elapsed: handle.elapsed().expect("finished"),
            nodes: names,
        }
    }
}

/// Runs one trial of `app` on `m` nodes of `testbed`.
///
/// `seed` drives every random choice (generators and random selection);
/// equal seeds give bit-identical trials, whether run straight through
/// like this or continued from a forked warm-up.
pub fn run_trial(
    testbed: &Testbed,
    app: &AppModel,
    m: usize,
    strategy: Strategy,
    condition: Condition,
    config: &TrialConfig,
    seed: u64,
) -> TrialResult {
    warm_trial(testbed, condition, config, seed).finish(app, m, strategy)
}

/// The `rep`-th trial seed derived from a cell's base seed.
pub(crate) fn trial_seed(base_seed: u64, rep: usize) -> u64 {
    base_seed.wrapping_add(1_000_003 * rep as u64)
}

/// One `(app, strategy)` continuation of a shared warm state; `slot`
/// indexes the flat result vector.
pub(crate) struct CellSpec<'a> {
    pub(crate) app: &'a AppModel,
    pub(crate) m: usize,
    pub(crate) strategy: Strategy,
    pub(crate) slot: usize,
}

/// All cells sharing one warmed simulator (same condition, same seed).
pub(crate) struct WarmGroup<'a> {
    pub(crate) condition: Condition,
    pub(crate) seed: u64,
    pub(crate) cells: Vec<CellSpec<'a>>,
}

/// Drains every cell of every group through one flat work queue over
/// scoped threads. A worker claims a whole group, warms once, forks the
/// warm state for each cell but the last (which consumes it), and moves
/// straight on to the next unclaimed group — no barrier between cells,
/// groups, or result rows. Returns elapsed times indexed by cell slot.
pub(crate) fn run_cells(
    testbed: &Testbed,
    config: &TrialConfig,
    groups: &[WarmGroup<'_>],
    slots: usize,
) -> Vec<f64> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(groups.len().max(1));
    let next = AtomicUsize::new(0);
    let mut results = vec![0.0f64; slots];
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(group) = groups.get(i) else { break };
                        let mut warm =
                            Some(warm_trial(testbed, group.condition, config, group.seed));
                        for (k, cell) in group.cells.iter().enumerate() {
                            let w = if k + 1 == group.cells.len() {
                                warm.take().expect("warm state consumed early")
                            } else {
                                warm.as_ref().expect("warm state consumed early").fork()
                            };
                            let r = w.finish(cell.app, cell.m, cell.strategy);
                            out.push((cell.slot, r.elapsed));
                        }
                    }
                    out
                })
            })
            .collect();
        for w in workers {
            for (slot, elapsed) in w.join().expect("trial worker panicked") {
                results[slot] = elapsed;
            }
        }
    });
    results
}

/// Runs `repetitions` independent trials of one cell and returns the
/// per-trial turnaround times in seed order. Repetitions drain through
/// the flat work queue — idle workers pull the next trial as they
/// finish, instead of the old barrier-per-chunk split.
#[allow(clippy::too_many_arguments)]
pub fn run_trials(
    testbed: &Testbed,
    app: &AppModel,
    m: usize,
    strategy: Strategy,
    condition: Condition,
    config: &TrialConfig,
    base_seed: u64,
    repetitions: usize,
) -> Vec<f64> {
    let groups: Vec<WarmGroup<'_>> = (0..repetitions)
        .map(|rep| WarmGroup {
            condition,
            seed: trial_seed(base_seed, rep),
            cells: vec![CellSpec {
                app,
                m,
                strategy,
                slot: rep,
            }],
        })
        .collect();
    run_cells(testbed, config, &groups, repetitions)
}

/// Mean of a slice; 0 for an empty slice (debug builds assert instead of
/// quietly propagating NaN into reports).
pub fn mean(xs: &[f64]) -> f64 {
    debug_assert!(!xs.is_empty(), "mean of an empty sample set");
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (Bessel-corrected); 0 for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Half-width of the ~95% confidence interval for the mean
/// (`1.96 σ / √n`); the paper's "statistically relevant results" caveat,
/// quantified.
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * std_dev(xs) / (xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_apps::fft::fft_program;

    fn tiny_app() -> AppModel {
        AppModel::Phased(fft_program(2))
    }

    #[test]
    fn unloaded_trial_is_deterministic() {
        let tb = Testbed::cmu();
        let cfg = TrialConfig {
            warmup: 10.0,
            ..TrialConfig::default()
        };
        let a = run_trial(
            &tb,
            &tiny_app(),
            4,
            Strategy::Random,
            Condition::None,
            &cfg,
            1,
        );
        let b = run_trial(
            &tb,
            &tiny_app(),
            4,
            Strategy::Random,
            Condition::None,
            &cfg,
            1,
        );
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.nodes.len(), 4);
    }

    #[test]
    fn forked_finish_matches_straight_through() {
        let tb = Testbed::cmu();
        let cfg = TrialConfig {
            warmup: 120.0,
            ..TrialConfig::default()
        };
        let warm = warm_trial(&tb, Condition::Both, &cfg, 5);
        let forked = warm.fork().finish(&tiny_app(), 4, Strategy::Automatic);
        let extra = warm.finish(&tiny_app(), 4, Strategy::Random);
        let straight = run_trial(
            &tb,
            &tiny_app(),
            4,
            Strategy::Automatic,
            Condition::Both,
            &cfg,
            5,
        );
        assert_eq!(forked.elapsed.to_bits(), straight.elapsed.to_bits());
        assert_eq!(forked.nodes, straight.nodes);
        let rand_straight = run_trial(
            &tb,
            &tiny_app(),
            4,
            Strategy::Random,
            Condition::Both,
            &cfg,
            5,
        );
        assert_eq!(extra.elapsed.to_bits(), rand_straight.elapsed.to_bits());
    }

    #[test]
    fn load_slows_random_placement() {
        let tb = Testbed::cmu();
        // The paper-default load (ρ ≈ 0.35) leaves most machines idle, so
        // at a fixed seed all five random placements can dodge every
        // background job and the loaded times come out bit-identical to
        // the unloaded ones. Drive arrivals hard enough that essentially
        // every machine is busy at warm-up end: the property under test
        // is "contended CPUs slow the barrier", not the seed lottery.
        let cfg = TrialConfig {
            warmup: 300.0,
            load: LoadConfig {
                arrival_rate: 1.0 / 100.0,
                ..LoadConfig::paper_defaults()
            },
            ..TrialConfig::default()
        };
        let app = AppModel::Phased(fft_program(12));
        let unloaded = run_trials(&tb, &app, 4, Strategy::Random, Condition::None, &cfg, 3, 5);
        let loaded = run_trials(&tb, &app, 4, Strategy::Random, Condition::Load, &cfg, 3, 5);
        assert!(
            mean(&loaded) > mean(&unloaded) * 1.05,
            "load {loaded:?} vs unloaded {unloaded:?}"
        );
    }

    #[test]
    fn automatic_beats_random_under_load_on_average() {
        let tb = Testbed::cmu();
        let cfg = TrialConfig {
            warmup: 300.0,
            ..TrialConfig::default()
        };
        let app = tiny_app();
        let random = run_trials(&tb, &app, 4, Strategy::Random, Condition::Load, &cfg, 11, 6);
        let auto = run_trials(
            &tb,
            &app,
            4,
            Strategy::Automatic,
            Condition::Load,
            &cfg,
            11,
            6,
        );
        assert!(
            mean(&auto) < mean(&random),
            "auto {:?} vs random {:?}",
            auto,
            random
        );
    }

    #[test]
    fn run_trials_is_seed_stable() {
        let tb = Testbed::cmu();
        let cfg = TrialConfig {
            warmup: 20.0,
            ..TrialConfig::default()
        };
        let app = tiny_app();
        let a = run_trials(&tb, &app, 4, Strategy::Random, Condition::None, &cfg, 7, 4);
        let b = run_trials(&tb, &app, 4, Strategy::Random, Condition::None, &cfg, 7, 4);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn std_dev_and_ci() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(ci95_half_width(&[5.0]), 0.0);
        // Known sample: {2, 4, 4, 4, 5, 5, 7, 9} has sample std ≈ 2.138.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.138).abs() < 1e-3);
        let ci = ci95_half_width(&xs);
        assert!((ci - 1.96 * 2.138 / 8f64.sqrt()).abs() < 1e-3);
    }
}
