//! Empirically checks the §3.2 complexity claim: the selection algorithms
//! run in O(n²) on the topology size. Prints a node-count sweep with
//! per-size timings and the fitted growth exponent.

use nodesel_core::{balanced, max_bandwidth, Constraints, GreedyPolicy, Weights};
use nodesel_topology::builders::{random_tree, randomize_conditions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let sizes = [50usize, 100, 200, 400, 800];
    let mut times = Vec::new();
    println!(
        "{:>6} {:>14} {:>14}",
        "nodes", "balanced (ms)", "maxbw (ms)"
    );
    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(42);
        let computes = n / 2;
        let (mut topo, _) = random_tree(&mut rng, computes, n - computes, 1e8);
        randomize_conditions(&mut topo, &mut rng, 3.0, 0.9);
        let m = 8.min(computes);
        let reps = 5;

        let t0 = Instant::now();
        for _ in 0..reps {
            balanced(
                &topo,
                m,
                Weights::EQUAL,
                &Constraints::none(),
                None,
                GreedyPolicy::Sweep,
            )
            .unwrap();
        }
        let balanced_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

        let t1 = Instant::now();
        for _ in 0..reps {
            max_bandwidth(&topo, m, &Constraints::none()).unwrap();
        }
        let maxbw_ms = t1.elapsed().as_secs_f64() * 1e3 / reps as f64;

        println!("{n:>6} {balanced_ms:>14.3} {maxbw_ms:>14.3}");
        times.push((n as f64, balanced_ms));
    }
    // Log-log slope between the smallest and largest size.
    let (n0, t0) = times[0];
    let (n1, t1) = times[times.len() - 1];
    let slope = (t1 / t0).ln() / (n1 / n0).ln();
    println!("fitted growth exponent (balanced): {slope:.2} (paper claims O(n^2))");
}
