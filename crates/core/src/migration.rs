//! Dynamic migration advice (§3.3, "Dynamic migration").
//!
//! "The solution procedure can be applied directly to the problem of
//! dynamic migration to avoid network congestion and busy nodes. One
//! important consideration is that the load and traffic caused by the
//! application itself must be captured separately as it is not due to a
//! competing process."
//!
//! [`discount_own_usage`] removes the application's own footprint from a
//! measured topology snapshot; [`advise`] then compares the quality of the
//! current placement against a fresh selection and recommends migration
//! when the improvement clears a hysteresis threshold (migration is not
//! free, so marginal gains should not trigger it).

use crate::quality::{evaluate, Quality};
use crate::request::SelectionRequest;
use crate::weights::Weights;
use crate::{select, Objective, SelectError, Selection};
use nodesel_topology::{Direction, EdgeId, NodeId, Topology};

/// The application's own resource footprint, to be subtracted from
/// measurements before deciding on migration.
#[derive(Debug, Clone, Default)]
pub struct OwnUsage {
    /// Load-average contribution per node (typically 1.0 for each node
    /// running one application process).
    pub load: Vec<(NodeId, f64)>,
    /// Average bandwidth the application itself drives over each directed
    /// link, bits/s.
    pub traffic: Vec<(EdgeId, Direction, f64)>,
}

impl OwnUsage {
    /// The common case: one CPU-bound process on each currently used node
    /// (no attributed traffic).
    pub fn one_process_per_node(nodes: &[NodeId]) -> Self {
        OwnUsage {
            load: nodes.iter().map(|&n| (n, 1.0)).collect(),
            traffic: Vec::new(),
        }
    }
}

/// Returns a copy of the snapshot with the application's own load and
/// traffic removed (clamped at zero).
pub fn discount_own_usage(topo: &Topology, own: &OwnUsage) -> Topology {
    let mut t = topo.clone();
    for &(n, load) in &own.load {
        let current = t.node(n).load_avg();
        t.set_load_avg(n, (current - load).max(0.0));
    }
    for &(e, dir, bits) in &own.traffic {
        let current = t.link(e).used(dir);
        t.set_link_used(e, dir, (current - bits).max(0.0));
    }
    t
}

/// Migration recommendation.
#[derive(Debug, Clone)]
pub struct MigrationAdvice {
    /// Quality of the current placement, measured on the discounted
    /// snapshot.
    pub current_quality: Quality,
    /// Balanced score of the current placement.
    pub current_score: f64,
    /// The best placement available right now.
    pub best: Selection,
    /// True when moving is worth it: `best.score > current_score * (1 +
    /// threshold)`.
    pub recommended: bool,
}

impl MigrationAdvice {
    /// Nodes that would be vacated by the recommended move.
    pub fn vacated(&self, current: &[NodeId]) -> Vec<NodeId> {
        current
            .iter()
            .copied()
            .filter(|n| !self.best.nodes.contains(n))
            .collect()
    }

    /// Nodes that would be newly occupied.
    pub fn occupied(&self, current: &[NodeId]) -> Vec<NodeId> {
        self.best
            .nodes
            .iter()
            .copied()
            .filter(|n| !current.contains(n))
            .collect()
    }
}

/// Evaluates whether a running application should migrate.
///
/// `snapshot` is the measured topology *including* the application's own
/// footprint; `own` describes that footprint so it can be discounted.
/// `improvement_threshold` is the relative score gain required to
/// recommend a move (e.g. `0.25` = "only migrate for a ≥25% better
/// score").
pub fn advise(
    snapshot: &Topology,
    current: &[NodeId],
    own: &OwnUsage,
    request: &SelectionRequest,
    improvement_threshold: f64,
) -> Result<MigrationAdvice, SelectError> {
    assert!(improvement_threshold >= 0.0);
    assert_eq!(
        current.len(),
        request.count,
        "request count must match the current placement size"
    );
    // An empty footprint would clone the whole snapshot only to change
    // nothing; borrow it instead (periodic advisors often poll with no
    // attributed traffic).
    let storage;
    let discounted: &Topology = if own.load.is_empty() && own.traffic.is_empty() {
        snapshot
    } else {
        storage = discount_own_usage(snapshot, own);
        &storage
    };
    let routes = discounted.routes();
    let current_quality = evaluate(discounted, &routes, current, request.reference_bandwidth);
    let weights = match request.objective {
        Objective::Balanced(w) => w,
        _ => Weights::EQUAL,
    };
    let current_score = current_quality.score(weights);
    let best = select(discounted, request)?;
    let recommended = best.score > current_score * (1.0 + improvement_threshold)
        && best.nodes != current.to_vec();
    Ok(MigrationAdvice {
        current_quality,
        current_score,
        best,
        recommended,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SelectionRequest;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    #[test]
    fn discount_removes_own_footprint() {
        let (mut topo, ids) = star(3, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 1.0); // entirely our own process
        topo.set_load_avg(ids[1], 2.0); // ours + one competitor
        let own = OwnUsage::one_process_per_node(&[ids[0], ids[1]]);
        let clean = discount_own_usage(&topo, &own);
        assert_eq!(clean.node(ids[0]).load_avg(), 0.0);
        assert_eq!(clean.node(ids[1]).load_avg(), 1.0);
        assert_eq!(clean.node(ids[2]).load_avg(), 0.0);
    }

    #[test]
    fn discount_clamps_at_zero() {
        let (mut topo, ids) = star(2, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 0.5);
        let own = OwnUsage::one_process_per_node(&[ids[0]]);
        let clean = discount_own_usage(&topo, &own);
        assert_eq!(clean.node(ids[0]).load_avg(), 0.0);
    }

    #[test]
    fn no_migration_when_placement_is_fine() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        // We run on n0, n1 (own load only); n2, n3 idle: no reason to move.
        topo.set_load_avg(ids[0], 1.0);
        topo.set_load_avg(ids[1], 1.0);
        let own = OwnUsage::one_process_per_node(&[ids[0], ids[1]]);
        let advice = advise(
            &topo,
            &[ids[0], ids[1]],
            &own,
            &SelectionRequest::balanced(2),
            0.1,
        )
        .unwrap();
        assert!(!advice.recommended);
        assert_eq!(advice.current_score, 1.0);
    }

    #[test]
    fn migration_recommended_away_from_competitors() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        // We run on n0, n1; n0 also hosts three competing jobs.
        topo.set_load_avg(ids[0], 4.0); // 1 ours + 3 competitors
        topo.set_load_avg(ids[1], 1.0); // ours only
        let own = OwnUsage::one_process_per_node(&[ids[0], ids[1]]);
        let advice = advise(
            &topo,
            &[ids[0], ids[1]],
            &own,
            &SelectionRequest::balanced(2),
            0.25,
        )
        .unwrap();
        assert!(advice.recommended);
        // The move vacates the busy node, not the quiet one.
        assert_eq!(advice.vacated(&[ids[0], ids[1]]), vec![ids[0]]);
        assert!(!advice.occupied(&[ids[0], ids[1]]).is_empty());
        assert!(advice.best.score > advice.current_score);
    }

    #[test]
    fn empty_footprint_skips_discounting() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 3.0);
        // No attributed load or traffic: the snapshot is used as measured.
        let advice = advise(
            &topo,
            &[ids[0], ids[1]],
            &OwnUsage::default(),
            &SelectionRequest::balanced(2),
            0.1,
        )
        .unwrap();
        assert_eq!(advice.current_quality.min_cpu, 0.25);
        assert!(advice.recommended);
    }

    #[test]
    fn threshold_suppresses_marginal_moves() {
        let (mut topo, ids) = star(3, 100.0 * MBPS);
        // Slightly better node available: score 1/1.2 vs 1/(1+0.1).
        topo.set_load_avg(ids[0], 1.2); // ours + 0.2 competitors
        let own = OwnUsage::one_process_per_node(&[ids[0]]);
        let req = SelectionRequest::balanced(1);
        let strict = advise(&topo, &[ids[0]], &own, &req, 0.5).unwrap();
        assert!(!strict.recommended);
        let eager = advise(&topo, &[ids[0]], &own, &req, 0.0).unwrap();
        assert!(eager.recommended);
    }
}
