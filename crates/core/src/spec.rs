//! The application specification interface (§2.1).
//!
//! "A uniform external interface for specification of application behavior
//! is an important component of the node selection framework as it allows
//! unmodified applications to use automatic node selection." The interface
//! carries: the number of nodes, "the nature of main computation and
//! communication patterns (e.g. all-to-all or master-slave)", the
//! "relative priority of communication and computation", node groups
//! (client/server) and per-group requirements.
//!
//! [`AppSpec`] is that interface. [`select_for_spec`] compiles the
//! specification to the right engine call — the balanced algorithm, a
//! grouped request, or pure compute selection — and orders the returned
//! nodes so they can be passed directly to a launcher that assigns roles
//! positionally (master first for master–slave, stage order for
//! pipelines).

use crate::groups::{select_groups, GroupSpec, GroupedRequest, GroupedSelection};
use crate::latency::select_within_latency;
use crate::request::{Constraints, GreedyPolicy};
use crate::weights::Weights;
use crate::{balanced, max_compute, SelectError, Selection};
use nodesel_topology::{NodeId, Topology};
use std::collections::HashSet;

/// The application's dominant communication pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum CommPattern {
    /// No significant communication (embarrassingly parallel).
    Independent,
    /// Every pair exchanges data (e.g. transposes): all paths matter
    /// equally.
    AllToAll,
    /// One coordinator communicates with every worker; workers do not
    /// talk to each other. The first returned node is the master.
    MasterSlave,
    /// Data streams through a chain of stages; only adjacent stages
    /// communicate. Returned nodes are ordered along a high-bandwidth
    /// chain.
    Pipeline,
    /// Distinct server and client groups with their own placement rules.
    ClientServer {
        /// Number of server nodes.
        servers: usize,
        /// Pool the servers must come from (e.g. machines with the right
        /// binaries), or `None` for any compute node.
        server_pool: Option<HashSet<NodeId>>,
    },
}

/// A declarative application requirement set (§2.1).
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name (reports only).
    pub name: String,
    /// Number of nodes required.
    pub nodes: usize,
    /// Dominant communication pattern.
    pub pattern: CommPattern,
    /// Fraction of execution time spent communicating, in `[0, 1]`:
    /// `0.0` = pure computation, `0.5` = balanced, `1.0` = pure
    /// communication. Maps to the §3.3 priority factor.
    pub comm_fraction: f64,
    /// Placement constraints (allowed pool, pinned nodes, floors).
    pub placement: Constraints,
    /// Optional pairwise latency bound, seconds.
    pub max_latency: Option<f64>,
}

impl AppSpec {
    /// A balanced spec with no constraints.
    pub fn new(name: impl Into<String>, nodes: usize, pattern: CommPattern) -> Self {
        AppSpec {
            name: name.into(),
            nodes,
            pattern,
            comm_fraction: 0.5,
            placement: Constraints::none(),
            max_latency: None,
        }
    }

    /// Priority weights implied by [`AppSpec::comm_fraction`]: a program
    /// spending fraction `c` of its time communicating weights
    /// communication by `c / (1 - c)` relative to computation (clamped to
    /// a sane range so extreme specs stay numerically stable).
    pub fn weights(&self) -> Weights {
        assert!(
            (0.0..=1.0).contains(&self.comm_fraction),
            "comm_fraction must be in [0, 1]"
        );
        let c = self.comm_fraction.clamp(0.01, 0.99);
        let ratio = c / (1.0 - c);
        if ratio >= 1.0 {
            Weights::comm_priority(ratio)
        } else {
            Weights::compute_priority(1.0 / ratio)
        }
    }
}

/// A selection resolved from an [`AppSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpecSelection {
    /// Nodes ordered for positional role assignment (master first for
    /// master–slave; chain order for pipelines; servers first for
    /// client–server).
    pub ordered_nodes: Vec<NodeId>,
    /// The underlying flat selection (quality is over the whole set).
    pub selection: Selection,
    /// Group assignments for client–server specs.
    pub groups: Option<GroupedSelection>,
}

/// Orders nodes for a master–slave program: the node with the best
/// aggregate bandwidth to the others first, breaking ties by centrality
/// (fewest total hops to the others), then CPU, then id. The master
/// terminates every transfer, so its connectivity dominates.
fn order_master_first(topo: &Topology, nodes: &[NodeId]) -> Vec<NodeId> {
    let routes = topo.routes();
    let mut scored: Vec<(f64, usize, f64, NodeId)> = nodes
        .iter()
        .map(|&candidate| {
            let mut agg_bw = 0.0;
            let mut hops = 0usize;
            for &other in nodes {
                if other == candidate {
                    continue;
                }
                agg_bw += routes.bottleneck_bw(candidate, other).unwrap_or(0.0);
                hops += routes
                    .path(candidate, other)
                    .map(|p| p.len())
                    .unwrap_or(usize::MAX / 2);
            }
            (
                agg_bw,
                hops,
                topo.node(candidate).effective_cpu(),
                candidate,
            )
        })
        .collect();
    scored.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then(a.1.cmp(&b.1))
            .then(b.2.total_cmp(&a.2))
            .then(a.3.cmp(&b.3))
    });
    scored.into_iter().map(|(_, _, _, n)| n).collect()
}

/// Orders nodes along a high-bandwidth chain for a pipeline: greedy
/// nearest-neighbour by pairwise bottleneck bandwidth, starting from the
/// best-CPU node.
fn order_chain(topo: &Topology, nodes: &[NodeId]) -> Vec<NodeId> {
    if nodes.len() <= 2 {
        return nodes.to_vec();
    }
    let routes = topo.routes();
    let mut remaining: Vec<NodeId> = nodes.to_vec();
    remaining.sort_by(|&a, &b| {
        topo.node(b)
            .effective_cpu()
            .total_cmp(&topo.node(a).effective_cpu())
            .then(a.cmp(&b))
    });
    let mut chain = vec![remaining.remove(0)];
    while !remaining.is_empty() {
        let last = *chain.last().expect("nonempty");
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &n)| (i, routes.bottleneck_bw(last, n).unwrap_or(0.0)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("nonempty");
        chain.push(remaining.remove(idx));
    }
    chain
}

/// Resolves a specification against a measured topology snapshot.
pub fn select_for_spec(topo: &Topology, spec: &AppSpec) -> Result<SpecSelection, SelectError> {
    let weights = spec.weights();
    let policy = GreedyPolicy::Sweep;

    // Client–server compiles to a grouped request.
    if let CommPattern::ClientServer {
        servers,
        server_pool,
    } = &spec.pattern
    {
        if *servers == 0 || *servers >= spec.nodes {
            return Err(SelectError::ZeroCount);
        }
        let request = GroupedRequest {
            groups: vec![
                GroupSpec {
                    name: "servers".into(),
                    count: *servers,
                    constraints: Constraints {
                        allowed: server_pool.clone(),
                        required: spec.placement.required.clone(),
                        min_cpu: spec.placement.min_cpu,
                        min_bandwidth: None,
                        ..Constraints::none()
                    },
                },
                GroupSpec {
                    name: "clients".into(),
                    count: spec.nodes - servers,
                    constraints: Constraints {
                        allowed: spec.placement.allowed.clone(),
                        required: Vec::new(),
                        min_cpu: spec.placement.min_cpu,
                        min_bandwidth: None,
                        ..Constraints::none()
                    },
                },
            ],
            min_bandwidth: spec.placement.min_bandwidth,
            weights,
            reference_bandwidth: None,
            policy,
        };
        let grouped = select_groups(topo, &request)?;
        let mut ordered = grouped.group("servers").expect("servers").to_vec();
        ordered.extend_from_slice(grouped.group("clients").expect("clients"));
        return Ok(SpecSelection {
            ordered_nodes: ordered,
            selection: grouped.combined.clone(),
            groups: Some(grouped),
        });
    }

    // Flat patterns.
    let selection = if let Some(bound) = spec.max_latency {
        select_within_latency(topo, spec.nodes, bound, weights, &spec.placement, policy)?
    } else {
        match spec.pattern {
            CommPattern::Independent => max_compute(topo, spec.nodes, &spec.placement)?,
            _ => balanced(topo, spec.nodes, weights, &spec.placement, None, policy)?,
        }
    };
    let ordered_nodes = match spec.pattern {
        CommPattern::MasterSlave => order_master_first(topo, &selection.nodes),
        CommPattern::Pipeline => order_chain(topo, &selection.nodes),
        _ => selection.nodes.clone(),
    };
    Ok(SpecSelection {
        ordered_nodes,
        selection,
        groups: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::{chain, dumbbell, star};
    use nodesel_topology::units::MBPS;
    use nodesel_topology::Direction;

    #[test]
    fn weights_follow_comm_fraction() {
        let mut spec = AppSpec::new("x", 4, CommPattern::AllToAll);
        spec.comm_fraction = 0.5;
        let w = spec.weights();
        assert!((w.comm - w.compute).abs() < 1e-9);
        spec.comm_fraction = 0.8; // comm 4x more important
        let w = spec.weights();
        assert!((w.comm / w.compute - 4.0).abs() < 1e-9);
        spec.comm_fraction = 0.2;
        let w = spec.weights();
        assert!((w.compute / w.comm - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "comm_fraction")]
    fn invalid_comm_fraction_panics() {
        let mut spec = AppSpec::new("x", 2, CommPattern::AllToAll);
        spec.comm_fraction = 1.5;
        let _ = spec.weights();
    }

    #[test]
    fn independent_ignores_congestion() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        // Congest everything; load n3 only.
        for e in topo.edge_ids().collect::<Vec<_>>() {
            topo.set_link_used(e, Direction::AtoB, 99.0 * MBPS);
            topo.set_link_used(e, Direction::BtoA, 99.0 * MBPS);
        }
        topo.set_load_avg(ids[3], 5.0);
        let spec = AppSpec::new("mc", 3, CommPattern::Independent);
        let sel = select_for_spec(&topo, &spec).unwrap();
        assert_eq!(sel.ordered_nodes, vec![ids[0], ids[1], ids[2]]);
    }

    #[test]
    fn master_slave_puts_best_connected_node_first() {
        // Chain: the middle node has the best aggregate bandwidth.
        let (topo, ids) = chain(3, 100.0 * MBPS);
        let spec = AppSpec::new("ms", 3, CommPattern::MasterSlave);
        let sel = select_for_spec(&topo, &spec).unwrap();
        assert_eq!(sel.ordered_nodes[0], ids[1]);
        assert_eq!(sel.ordered_nodes.len(), 3);
    }

    #[test]
    fn pipeline_orders_a_sensible_chain() {
        let (topo, ids) = chain(4, 100.0 * MBPS);
        let spec = AppSpec::new("pipe", 4, CommPattern::Pipeline);
        let sel = select_for_spec(&topo, &spec).unwrap();
        // Adjacent chain positions should be adjacent in the ordering:
        // successive bottlenecks are all 100 Mbps only if the order walks
        // the chain without jumps.
        let routes = topo.routes();
        for w in sel.ordered_nodes.windows(2) {
            assert_eq!(routes.bottleneck_bw(w[0], w[1]).unwrap(), 100.0 * MBPS);
        }
        assert_eq!(sel.ordered_nodes.len(), ids.len());
    }

    #[test]
    fn client_server_resolves_groups() {
        let (mut topo, ids) = star(6, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 4.0);
        let pool: HashSet<NodeId> = [ids[0], ids[1]].into_iter().collect();
        let spec = AppSpec {
            name: "cs".into(),
            nodes: 4,
            pattern: CommPattern::ClientServer {
                servers: 1,
                server_pool: Some(pool),
            },
            comm_fraction: 0.5,
            placement: Constraints::none(),
            max_latency: None,
        };
        let sel = select_for_spec(&topo, &spec).unwrap();
        let groups = sel.groups.as_ref().unwrap();
        // The idle pool member serves.
        assert_eq!(groups.group("servers").unwrap(), &[ids[1]]);
        assert_eq!(sel.ordered_nodes[0], ids[1]);
        assert_eq!(sel.ordered_nodes.len(), 4);
        // Clients avoid the loaded node too (plenty of idle ones).
        assert!(!sel.ordered_nodes.contains(&ids[0]));
    }

    #[test]
    fn client_server_rejects_degenerate_split() {
        let (topo, _) = star(4, 100.0 * MBPS);
        for servers in [0, 4] {
            let spec = AppSpec {
                name: "cs".into(),
                nodes: 4,
                pattern: CommPattern::ClientServer {
                    servers,
                    server_pool: None,
                },
                comm_fraction: 0.5,
                placement: Constraints::none(),
                max_latency: None,
            };
            assert!(select_for_spec(&topo, &spec).is_err());
        }
    }

    #[test]
    fn latency_bound_flows_through() {
        let mut topo = Topology::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| topo.add_compute_node(format!("n{i}"), 1.0))
            .collect();
        for w in ids.windows(2) {
            topo.add_link_full(w[0], w[1], 100.0 * MBPS, 100.0 * MBPS, 1e-3);
        }
        let mut spec = AppSpec::new("lat", 2, CommPattern::AllToAll);
        spec.max_latency = Some(1e-3);
        let sel = select_for_spec(&topo, &spec).unwrap();
        let routes = topo.routes();
        assert!(crate::pairwise_latency(&routes, &sel.selection.nodes) <= 1e-3 + 1e-12);
    }

    #[test]
    fn all_to_all_prefers_local_cluster() {
        let (mut topo, ids) = dumbbell(3, 100.0 * MBPS, 100.0 * MBPS);
        let trunk = topo.edge_ids().next().unwrap();
        topo.set_link_used(trunk, Direction::AtoB, 90.0 * MBPS);
        topo.set_link_used(trunk, Direction::BtoA, 90.0 * MBPS);
        let mut spec = AppSpec::new("fft", 3, CommPattern::AllToAll);
        spec.comm_fraction = 0.8;
        let sel = select_for_spec(&topo, &spec).unwrap();
        // One side only.
        let left = &ids[..3];
        let right = &ids[3..];
        assert!(
            sel.ordered_nodes.iter().all(|n| left.contains(n))
                || sel.ordered_nodes.iter().all(|n| right.contains(n))
        );
    }
}
