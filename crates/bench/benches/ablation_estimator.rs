//! Ablation A2: how the Remos estimator and collector staleness affect
//! selection effectiveness.
//!
//! The paper "simply uses the most recent measurements as a forecast for
//! the future" and defers forecasting to future work. This ablation
//! quantifies that choice on the Table 1 FFT workload: selection quality
//! under different estimators (latest / window mean / EWMA / trend), a
//! ground-truth oracle, and a sweep of collector periods.

use criterion::{criterion_group, criterion_main, Criterion};
use nodesel_apps::{fft::fft_program, AppModel};
use nodesel_experiments::{mean, run_trials, Condition, Strategy, Testbed, TrialConfig};
use nodesel_remos::{CollectorConfig, Estimator};
use std::hint::black_box;

fn config_with(estimator: Estimator, period: f64) -> TrialConfig {
    TrialConfig {
        estimator,
        collector: CollectorConfig {
            period,
            ..CollectorConfig::default()
        },
        ..TrialConfig::default()
    }
}

fn bench_ablation(c: &mut Criterion) {
    let testbed = Testbed::cmu();
    let app = AppModel::Phased(fft_program(32));
    let reps = 12;

    eprintln!("\n=== Ablation: estimator choice (FFT, load+traffic, {reps} reps) ===");
    let estimators = [
        ("latest", Estimator::Latest),
        ("window_mean", Estimator::WindowMean),
        ("ewma_0.5", Estimator::Ewma { alpha: 0.5 }),
        ("trend", Estimator::Trend),
        ("p90_conservative", Estimator::Quantile { q: 0.9 }),
    ];
    for (name, est) in estimators {
        let cfg = config_with(est, 5.0);
        let t = mean(&run_trials(
            &testbed,
            &app,
            4,
            Strategy::Automatic,
            Condition::Both,
            &cfg,
            77,
            reps,
        ));
        eprintln!("  {name:<12} mean {t:>7.1} s");
    }
    let cfg = config_with(Estimator::Latest, 5.0);
    let oracle = mean(&run_trials(
        &testbed,
        &app,
        4,
        Strategy::Oracle,
        Condition::Both,
        &cfg,
        77,
        reps,
    ));
    let random = mean(&run_trials(
        &testbed,
        &app,
        4,
        Strategy::Random,
        Condition::Both,
        &cfg,
        77,
        reps,
    ));
    eprintln!("  {:<12} mean {oracle:>7.1} s", "oracle");
    eprintln!("  {:<12} mean {random:>7.1} s", "random");

    eprintln!("=== Ablation: collector staleness (period sweep) ===");
    for period in [1.0, 5.0, 15.0, 60.0, 300.0] {
        let cfg = config_with(Estimator::Latest, period);
        let t = mean(&run_trials(
            &testbed,
            &app,
            4,
            Strategy::Automatic,
            Condition::Both,
            &cfg,
            77,
            reps,
        ));
        eprintln!("  period {period:>6.0} s: mean {t:>7.1} s");
    }

    // Criterion measurement: a single automatic trial per estimator.
    let mut group = c.benchmark_group("ablation_estimator");
    group.sample_size(10);
    for (name, est) in estimators {
        let cfg = config_with(est, 5.0);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(nodesel_experiments::run_trial(
                    &testbed,
                    &app,
                    4,
                    Strategy::Automatic,
                    Condition::Both,
                    &cfg,
                    seed,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
