//! Bandwidth and time unit conventions.
//!
//! All bandwidths in this workspace are `f64` values in **bits per second**.
//! The constants here keep call sites legible (`100.0 * MBPS`) and make the
//! convention greppable. Simulation time is carried separately as `u64`
//! nanoseconds by `nodesel-simnet`.

/// One kilobit per second, in bits per second.
pub const KBPS: f64 = 1_000.0;

/// One megabit per second, in bits per second.
pub const MBPS: f64 = 1_000_000.0;

/// One gigabit per second, in bits per second.
pub const GBPS: f64 = 1_000_000_000.0;

/// One kilobyte, in bits (transfer sizes are expressed in bits).
pub const KILOBYTE: f64 = 8.0 * 1_000.0;

/// One megabyte, in bits.
pub const MEGABYTE: f64 = 8.0 * 1_000_000.0;

/// Converts bytes to bits.
#[inline]
pub fn bytes(n: f64) -> f64 {
    n * 8.0
}

/// Time (seconds) to move `bits` over a path sustaining `bits_per_sec`.
///
/// Returns `f64::INFINITY` when the available bandwidth is zero, which the
/// simulator treats as "stalled until more bandwidth frees up".
#[inline]
pub fn transfer_seconds(bits: f64, bits_per_sec: f64) -> f64 {
    if bits_per_sec <= 0.0 {
        f64::INFINITY
    } else {
        bits / bits_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_scale() {
        assert_eq!(MBPS, 1_000.0 * KBPS);
        assert_eq!(GBPS, 1_000.0 * MBPS);
        assert_eq!(bytes(1.0), 8.0);
        assert_eq!(MEGABYTE, bytes(1_000_000.0));
    }

    #[test]
    fn transfer_time_basics() {
        // 100 Mbit over a 100 Mbps link takes one second.
        assert!((transfer_seconds(100.0 * MBPS, 100.0 * MBPS) - 1.0).abs() < 1e-12);
        assert!(transfer_seconds(1.0, 0.0).is_infinite());
    }
}
