//! Regenerates the Figure 4 scenario: automatic selection of 4 nodes that
//! avoid a bulk traffic stream from m-16 to m-18 on the CMU testbed.

use nodesel_experiments::run_fig4_scenario;

fn main() {
    let outcome = run_fig4_scenario();
    println!("stream: m-16 -> m-18 (persistent bulk transfer)");
    println!("automatically selected nodes: {:?}", outcome.selected);
    println!(
        "all selected routes avoid the stream's links: {}",
        outcome.avoids_stream
    );
    println!();
    println!("{}", outcome.dot);
}
