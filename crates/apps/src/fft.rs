//! The 2-D FFT workload (paper §4.3, "FFT (1K), 32 iterations").
//!
//! A distributed 2-D FFT over an `N × N` complex matrix alternates local
//! 1-D FFTs over rows with a full matrix transpose (all-to-all), then 1-D
//! FFTs over columns — a textbook loosely-synchronous computation where
//! every phase ends in a barrier.
//!
//! # Calibration
//!
//! The paper reports 48 s for 32 iterations of the 1K problem on 4 unloaded
//! testbed nodes. We size one iteration as two compute phases plus one
//! transpose of the 1024×1024 double-precision complex matrix (16 MB =
//! 128 Mbit), and set the compute volume so the 4-node unloaded runtime on
//! the Figure 4 testbed reproduces the paper's 48 s reference. The
//! compute:communication ratio that falls out (~84:16 on 4 nodes) drives the
//! workload's measured sensitivity to load vs. traffic, which is what
//! Table 1 probes.

use crate::phased::{Phase, PhaseProgram};
use nodesel_topology::units::MBPS;

/// Iterations the paper ran.
pub const PAPER_ITERATIONS: usize = 32;

/// Bits of the 1K × 1K double-precision complex matrix (16 MB).
pub const MATRIX_BITS: f64 = 128.0 * MBPS; // 128 Mbit

/// Total reference-CPU-seconds of one compute phase (row or column FFTs)
/// across all nodes, calibrated to the paper's 48 s / 4-node reference.
pub const PHASE_WORK: f64 = 2.50;

/// The FFT (1K) program: `iterations × [rows, transpose, cols]`.
pub fn fft_program(iterations: usize) -> PhaseProgram {
    PhaseProgram {
        name: "FFT (1K)",
        iterations,
        phases: vec![
            Phase::Compute { work: PHASE_WORK },
            Phase::AllToAll { bits: MATRIX_BITS },
            Phase::Compute { work: PHASE_WORK },
        ],
    }
}

/// The paper's configuration: 32 iterations.
pub fn fft_1k() -> PhaseProgram {
    fft_program(PAPER_ITERATIONS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phased::launch_phased;
    use nodesel_simnet::Sim;
    use nodesel_topology::testbeds::cmu_testbed;

    #[test]
    fn unloaded_reference_time_matches_paper() {
        let tb = cmu_testbed();
        let nodes = [tb.m(1), tb.m(2), tb.m(3), tb.m(4)];
        let mut sim = Sim::new(tb.topo);
        let h = launch_phased(&mut sim, fft_1k(), &nodes);
        sim.run();
        let t = h.elapsed().unwrap();
        // Paper reference: 48 s on the unloaded testbed. Calibration must
        // land within a few percent.
        assert!((t - 48.0).abs() < 2.0, "unloaded FFT took {t}");
    }

    #[test]
    fn program_shape() {
        let p = fft_1k();
        assert_eq!(p.iterations, 32);
        assert_eq!(p.phases.len(), 3);
        assert!(p.total_work() > 0.0);
        assert_eq!(p.total_bits(), 32.0 * MATRIX_BITS);
    }
}
