//! Processor-sharing host model.
//!
//! Each compute node is a host running an arbitrary set of CPU tasks under
//! egalitarian processor sharing: with `n` active tasks on a host of speed
//! `s`, every task progresses at `s / n` reference-seconds per second. This
//! is exactly the model behind the paper's `cpu = 1/(1 + loadavg)` formula —
//! a new process joining `loadavg` equal-priority competitors gets that
//! fraction of the machine.
//!
//! Hosts also maintain a UNIX-style exponentially damped **load average** of
//! the run-queue length, which is what the measurement layer samples. The
//! damping is computed in closed form on every state change, so the load
//! average is exact for piecewise-constant run queues regardless of event
//! spacing.

use crate::time::SimTime;

/// Identifier of a CPU task within a [`Host`]. Unique per engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

#[derive(Debug, Clone)]
struct Task {
    id: TaskId,
    /// Remaining work in reference-seconds (seconds on an unloaded host of
    /// speed 1.0).
    remaining: f64,
}

/// Processor-sharing host state.
#[derive(Debug, Clone)]
pub struct Host {
    /// Relative speed; 1.0 is the reference node type.
    speed: f64,
    tasks: Vec<Task>,
    last_update: SimTime,
    load_avg: f64,
    /// Load-average damping time constant in seconds (UNIX 1-minute: 60).
    tau: f64,
    /// Cumulative reference-seconds of work completed (for accounting).
    completed_work: f64,
}

impl Host {
    /// Creates an idle host of the given relative speed.
    pub fn new(speed: f64, load_avg_tau: f64) -> Self {
        assert!(speed > 0.0, "host speed must be positive");
        assert!(
            load_avg_tau > 0.0,
            "load-average time constant must be positive"
        );
        Host {
            speed,
            tasks: Vec::new(),
            last_update: SimTime::ZERO,
            load_avg: 0.0,
            tau: load_avg_tau,
            completed_work: 0.0,
        }
    }

    /// Relative speed of the host.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Number of currently running tasks (instantaneous run-queue length).
    pub fn run_queue(&self) -> usize {
        self.tasks.len()
    }

    /// Exponentially damped load average as of the last settle.
    pub fn load_avg(&self) -> f64 {
        self.load_avg
    }

    /// Cumulative reference-seconds of completed work.
    pub fn completed_work(&self) -> f64 {
        self.completed_work
    }

    /// Per-task progress rate (reference-seconds per second) at the current
    /// run-queue length; zero when idle.
    pub fn task_rate(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.speed / self.tasks.len() as f64
        }
    }

    /// Advances internal accounting to `now`: applies progress to all tasks
    /// at the processor-sharing rate and damps the load average. Must be
    /// called (by the engine) before any state change or query at `now`.
    pub fn settle(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "time went backwards");
        let dt = now.seconds_since(self.last_update);
        if dt > 0.0 {
            let n = self.tasks.len();
            if n > 0 {
                let progress = dt * self.speed / n as f64;
                for t in &mut self.tasks {
                    t.remaining = (t.remaining - progress).max(0.0);
                }
                self.completed_work += dt * self.speed;
            }
            // Exact EWMA for a constant run queue over [last_update, now]:
            // la(t + dt) = n + (la(t) - n) * exp(-dt / tau).
            let n = n as f64;
            self.load_avg = n + (self.load_avg - n) * (-dt / self.tau).exp();
        }
        self.last_update = now;
    }

    /// Adds a task with `work` reference-seconds of demand. The caller must
    /// have settled the host to the current time first.
    pub fn add_task(&mut self, id: TaskId, work: f64) {
        assert!(work >= 0.0, "task work must be non-negative");
        self.tasks.push(Task {
            id,
            remaining: work,
        });
    }

    /// Removes a task (e.g. a cancelled background job). Returns true if it
    /// was present.
    pub fn remove_task(&mut self, id: TaskId) -> bool {
        let before = self.tasks.len();
        self.tasks.retain(|t| t.id != id);
        self.tasks.len() != before
    }

    /// Removes every task at once (a host crash): the run queue empties
    /// and the load average starts decaying from its current value.
    /// Returns the killed task ids in ascending order. The caller must
    /// have settled the host to the current time first.
    pub fn kill_all(&mut self) -> Vec<TaskId> {
        let mut killed: Vec<TaskId> = self.tasks.iter().map(|t| t.id).collect();
        killed.sort_unstable();
        self.tasks.clear();
        killed
    }

    /// Remaining work of a task, if present.
    pub fn remaining(&self, id: TaskId) -> Option<f64> {
        self.tasks.iter().find(|t| t.id == id).map(|t| t.remaining)
    }

    /// Pops every task whose remaining work has reached zero (ties resolved
    /// in task-id order for determinism).
    pub fn take_finished(&mut self) -> Vec<TaskId> {
        let mut done: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|t| t.remaining <= 0.0)
            .map(|t| t.id)
            .collect();
        done.sort_unstable();
        self.tasks.retain(|t| t.remaining > 0.0);
        done
    }

    /// Absolute time at which the next task will finish if the task set
    /// stays unchanged, or [`SimTime::NEVER`] when idle.
    pub fn next_completion(&self) -> SimTime {
        let Some(min_remaining) = self
            .tasks
            .iter()
            .map(|t| t.remaining)
            .fold(None, |acc: Option<f64>, r| {
                Some(acc.map_or(r, |a| a.min(r)))
            })
        else {
            return SimTime::NEVER;
        };
        let rate = self.task_rate();
        self.last_update.after_secs_f64(min_remaining / rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn single_task_runs_at_full_speed() {
        let mut h = Host::new(1.0, 60.0);
        h.add_task(TaskId(1), 10.0);
        assert_eq!(h.next_completion(), t(10.0));
        h.settle(t(10.0));
        assert_eq!(h.take_finished(), vec![TaskId(1)]);
        assert_eq!(h.run_queue(), 0);
        assert!((h.completed_work() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_tasks_share_the_processor() {
        let mut h = Host::new(1.0, 60.0);
        h.add_task(TaskId(1), 10.0);
        h.add_task(TaskId(2), 10.0);
        // Each runs at 0.5 => both complete at 20s.
        assert_eq!(h.next_completion(), t(20.0));
        h.settle(t(20.0));
        assert_eq!(h.take_finished(), vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn joining_task_slows_existing_one() {
        let mut h = Host::new(1.0, 60.0);
        h.add_task(TaskId(1), 10.0);
        h.settle(t(5.0)); // 5 of 10 done
        h.add_task(TaskId(2), 100.0);
        // Remaining 5 units at rate 0.5 => completes at 5 + 10 = 15.
        assert_eq!(h.next_completion(), t(15.0));
        h.settle(t(15.0));
        assert_eq!(h.take_finished(), vec![TaskId(1)]);
        // Task 2 progressed 5 units in those 10 seconds.
        assert!((h.remaining(TaskId(2)).unwrap() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn fast_host_scales_rates() {
        let mut h = Host::new(2.0, 60.0);
        h.add_task(TaskId(1), 10.0);
        assert_eq!(h.next_completion(), t(5.0));
        h.add_task(TaskId(2), 10.0);
        // Two tasks at speed 2 => rate 1 each.
        assert_eq!(h.task_rate(), 1.0);
    }

    #[test]
    fn remove_task_restores_speed() {
        let mut h = Host::new(1.0, 60.0);
        h.add_task(TaskId(1), 10.0);
        h.add_task(TaskId(2), 10.0);
        h.settle(t(2.0));
        assert!(h.remove_task(TaskId(2)));
        assert!(!h.remove_task(TaskId(2)));
        // 9 units left at full speed.
        assert_eq!(h.next_completion(), t(11.0));
    }

    #[test]
    fn load_average_converges_to_run_queue() {
        let mut h = Host::new(1.0, 60.0);
        for i in 0..3 {
            h.add_task(TaskId(i), 1e9);
        }
        assert_eq!(h.load_avg(), 0.0);
        h.settle(t(60.0));
        // After one time constant: 3 * (1 - e^-1) ≈ 1.90.
        assert!((h.load_avg() - 3.0 * (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        h.settle(t(1200.0));
        assert!((h.load_avg() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn load_average_decays_when_idle() {
        let mut h = Host::new(1.0, 60.0);
        h.add_task(TaskId(1), 1e9);
        h.settle(t(600.0));
        assert!(h.load_avg() > 0.99);
        h.remove_task(TaskId(1));
        h.settle(t(1200.0));
        assert!(h.load_avg() < 1e-4);
    }

    #[test]
    fn zero_work_task_finishes_immediately() {
        let mut h = Host::new(1.0, 60.0);
        h.add_task(TaskId(1), 0.0);
        assert_eq!(h.next_completion(), h.next_completion());
        h.settle(SimTime::ZERO);
        assert_eq!(h.take_finished(), vec![TaskId(1)]);
    }

    #[test]
    fn idle_host_never_completes() {
        let h = Host::new(1.0, 60.0);
        assert_eq!(h.next_completion(), SimTime::NEVER);
        assert_eq!(h.task_rate(), 0.0);
    }
}
