//! Trial-level engine parity: a full `run_trial` (warm-up, generators,
//! Remos collection, selection, application run) must produce
//! bit-identical results for a fixed seed whichever flow engine the
//! simulator runs on. This is the end-to-end face of the `flow_parity`
//! suite in `nodesel-simnet`.

use nodesel_apps::AppModel;
use nodesel_experiments::{run_trial, Condition, Strategy, Testbed, TrialConfig};
use nodesel_simnet::FlowEngine;

#[test]
fn trials_are_engine_independent() {
    let testbed = Testbed::cmu();
    let suite = AppModel::paper_suite();
    let (app, m) = &suite[0];
    for strategy in [Strategy::Random, Strategy::Automatic] {
        for condition in [Condition::None, Condition::Both] {
            for seed in [1u64, 7] {
                let run = |engine| {
                    let cfg = TrialConfig {
                        warmup: 300.0,
                        engine,
                        ..TrialConfig::default()
                    };
                    run_trial(&testbed, app, *m, strategy, condition, &cfg, seed)
                };
                let a = run(FlowEngine::Incremental);
                let b = run(FlowEngine::Reference);
                assert_eq!(
                    a.elapsed.to_bits(),
                    b.elapsed.to_bits(),
                    "elapsed diverged: {} {strategy:?} {condition:?} seed {seed}",
                    app.name()
                );
                assert_eq!(a.nodes, b.nodes, "selection diverged");
            }
        }
    }
}
