//! Persistent selectors: incremental re-selection across snapshot epochs.
//!
//! The one-shot entry points ([`crate::select`] and friends) treat every
//! call as a fresh problem. A long-lived service re-selecting against a
//! stream of [`NetSnapshot`] epochs mostly sees *metric* churn — load
//! averages and link utilizations move, the structure does not — and the
//! deletion-loop skeleton of the paper's algorithms is invariant under
//! most of that churn. A [`Selector`] exploits this: `select` solves from
//! scratch and records the replayable structure of the run, `refresh`
//! re-derives the answer from that record plus a [`NetDelta`], falling
//! back to a full re-solve whenever the delta could bend the skeleton.
//!
//! # What is invariant under which churn
//!
//! * [`MaxComputeSelector`] — candidate components are fixed by the graph
//!   (and the bandwidth floor, which reads link metrics): node churn only
//!   re-ranks CPUs within components, link churn re-scores the answer.
//! * [`MaxBandwidthSelector`] — the Figure 2 stop component is determined
//!   by the edge order (link metrics) and eligibility alone, so node
//!   churn only re-ranks the pick inside the cached stop component.
//! * [`BalancedSelector`] — the Figure 3 deletion history (edge order,
//!   component splits, round numbers, per-state fractional-bandwidth
//!   steps) reads only link metrics; node churn moves just the CPU term
//!   of each historical state's score, so the sweep is replayed with
//!   cheap float folds instead of re-run.
//!
//! # Fallback to a full re-solve
//!
//! `refresh` re-primes (bit-identical to a fresh `select` by
//! construction) when the snapshot's structure `Arc` changed, when the
//! delta touches link metrics the cached skeleton depends on, when the
//! delta carries any availability or staleness transition (dead links
//! leave the starting view and dead or too-stale nodes leave the
//! eligible set, so the skeleton itself moves), or when the request
//! itself makes the skeleton metric-dependent: a `required` set
//! or a `min_cpu` floor (eligibility then moves with the metrics), the
//! [`GreedyPolicy::Faithful`] stopping rule (score-dependent), or a
//! non-finite/non-positive reference bandwidth.
//!
//! Debug builds assert every `refresh` result byte-identical to a fresh
//! one-shot solve on the same snapshot; `tests/selector_refresh_parity.rs`
//! does the same over random topologies and churn in release builds.

use crate::algorithms::{
    balanced_in, max_bandwidth_in, max_compute_in, BalancedHistory, BandwidthHistory,
    ComputeHistory, Context, HistState, Selection,
};
use crate::request::{Constraints, GreedyPolicy, Objective, SelectionRequest};
use crate::weights::Weights;
use crate::SelectError;
use nodesel_topology::{
    EdgeId, NetDelta, NetSnapshot, NodeId, ResourceClaim, RouteTable, Topology,
};
use std::sync::Arc;

/// A persistent selection engine for one request across snapshot epochs.
///
/// Obtain one from [`selector_for`] (or construct the concrete type
/// matching the request's [`Objective`] directly), call
/// [`Selector::select`] once, then [`Selector::refresh`] per epoch.
///
/// Selectors are `Send`: the placement service parks them inside ledger
/// entries (one supervisor per admitted job) that outlive any single
/// thread's borrow. They are *not* required to be `Sync` — a selector is
/// a mutable solver, always driven behind exclusive access.
pub trait Selector: Send {
    /// Solves `request` from scratch on `snap` and primes the incremental
    /// caches. May be called again at any time (e.g. for a new request).
    ///
    /// # Panics
    ///
    /// Panics when the request's objective does not match the selector's
    /// algorithm.
    fn select(
        &mut self,
        snap: &NetSnapshot,
        request: &SelectionRequest,
    ) -> Result<Selection, SelectError>;

    /// Re-solves the primed request on `snap`, where `delta` lists every
    /// annotation that changed since the snapshot `refresh` (or `select`)
    /// last saw. The result is bit-identical to a fresh
    /// [`Selector::select`] on `snap`; a delta that omits a changed
    /// entry breaks that contract.
    ///
    /// # Panics
    ///
    /// Panics when called before [`Selector::select`].
    fn refresh(&mut self, snap: &NetSnapshot, delta: &NetDelta) -> Result<Selection, SelectError>;

    /// The entities the last [`Selector::select`] answer depends on: a
    /// [`NetDelta`] disjoint from this footprint provably leaves a fresh
    /// solve on the patched snapshot bit-identical, so a cache may keep
    /// the answer across the epoch. The default is fully conservative
    /// (everything invalidates); implementors derive a tight footprint
    /// from their replay history. Unprimed selectors and requests the
    /// incremental path rejects report [`SelectionFootprint::conservative`].
    fn footprint(&self) -> SelectionFootprint {
        SelectionFootprint::conservative()
    }
}

/// The link half of a [`SelectionFootprint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkFootprint {
    /// Any link-metric change may move the answer (the deletion-loop
    /// skeletons read every edge's order).
    All,
    /// Only these edges' metrics are read (sorted, deduplicated): the
    /// route edges the final quality evaluation walks, or a bandwidth
    /// floor's filtered set.
    Edges(Vec<EdgeId>),
}

/// The set of entities a cached selection's bits depend on.
///
/// Produced by [`Selector::footprint`] after a successful `select`;
/// consumed by epoch caches deciding which entries a [`NetDelta`]
/// invalidates. Soundness contract: if [`SelectionFootprint::invalidated_by`]
/// returns `false`, a fresh solve of the same request on
/// `snapshot.apply(delta)` is bit-identical to the cached answer
/// (including reproduced errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionFootprint {
    /// False when the footprint is a conservative stand-in (unprimed, or
    /// the request's skeleton moves with the metrics): every non-empty
    /// delta then invalidates.
    pub replayable: bool,
    /// Nodes whose load average the answer reads (sorted, deduplicated).
    pub nodes: Vec<NodeId>,
    /// Links whose traffic metrics the answer reads.
    pub links: LinkFootprint,
}

impl SelectionFootprint {
    /// The everything-invalidates footprint.
    pub fn conservative() -> Self {
        SelectionFootprint {
            replayable: false,
            nodes: Vec::new(),
            links: LinkFootprint::All,
        }
    }

    /// The footprint of an admitted placement's [`ResourceClaim`]: the
    /// nodes and route edges whose annotations the claim perturbs. This
    /// is the bridge from PR 8's footprint-intersection machinery to the
    /// ledger — admitting or releasing a job produces a delta over
    /// exactly this set, so [`SelectionFootprint::invalidated_by`]
    /// decides which cached answers a ledger change can move, with
    /// magnitudes carried by the claim itself.
    pub fn of_claim(claim: &ResourceClaim) -> Self {
        let mut nodes: Vec<NodeId> = claim.nodes.iter().map(|&(n, _)| n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let mut edges: Vec<EdgeId> = claim.links.iter().map(|&(e, _, _)| e).collect();
        edges.sort_unstable();
        edges.dedup();
        SelectionFootprint {
            replayable: true,
            nodes,
            links: LinkFootprint::Edges(edges),
        }
    }

    /// True when `delta` may change the answer's bits.
    ///
    /// Health transitions (availability or staleness, on any entity)
    /// always invalidate: an entity entering the eligible set or the
    /// starting view is by construction absent from the footprint.
    pub fn invalidated_by(&self, delta: &NetDelta) -> bool {
        if delta.is_empty() {
            return false;
        }
        if !self.replayable || delta.has_health_changes() {
            return true;
        }
        if delta
            .nodes
            .iter()
            .any(|&(n, _)| self.nodes.binary_search(&n).is_ok())
        {
            return true;
        }
        match &self.links {
            LinkFootprint::All => !delta.links.is_empty(),
            LinkFootprint::Edges(edges) => delta
                .links
                .iter()
                .any(|&(e, _, _)| edges.binary_search(&e).is_ok()),
        }
    }
}

/// The edges the final quality evaluation reads for `nodes`: every hop on
/// the pairwise routes of the same [`RouteTable`] that
/// [`Context::finish`] builds. `None` when some pair is unroutable (the
/// caller falls back to [`LinkFootprint::All`]).
fn route_edges(structure: &Topology, nodes: &[NodeId]) -> Option<Vec<EdgeId>> {
    let table = RouteTable::build_for_sources(structure, nodes.iter().copied());
    let mut edges = Vec::new();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(i + 1) {
            let path = table.resolve(structure, a, b).ok()?;
            edges.extend(path.hops.iter().map(|&(e, _)| e));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Some(edges)
}

/// Sorted, deduplicated union of the node lists yielded by `lists`.
fn sorted_union<'a>(lists: impl Iterator<Item = &'a [NodeId]>) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = lists.flat_map(|l| l.iter().copied()).collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// The selector implementing the algorithm of `objective`.
pub fn selector_for(objective: Objective) -> Box<dyn Selector> {
    match objective {
        Objective::Compute => Box::new(MaxComputeSelector::new()),
        Objective::Communication => Box::new(MaxBandwidthSelector::new()),
        Objective::Balanced(_) => Box::new(BalancedSelector::new()),
    }
}

/// True when eligibility cannot move with the metrics: no pinned nodes,
/// no CPU floor. The common precondition of every incremental path.
fn metrics_static_eligibility(constraints: &Constraints) -> bool {
    constraints.required.is_empty() && constraints.min_cpu.is_none()
}

const REFRESH_BEFORE_SELECT: &str = "Selector::refresh called before Selector::select";

/// Incremental [`crate::max_compute`]: see the module docs.
#[derive(Debug, Default)]
pub struct MaxComputeSelector {
    primed: Option<ComputePrimed>,
}

#[derive(Debug)]
struct ComputePrimed {
    request: SelectionRequest,
    structure: Arc<Topology>,
    incremental: bool,
    history: ComputeHistory,
    /// Current minimum effective CPU of each component's pick.
    min_cpu: Vec<f64>,
    /// Node index → component index (`u32::MAX` for non-members).
    comp_of: Vec<u32>,
    last: Result<Selection, SelectError>,
}

impl MaxComputeSelector {
    /// An unprimed selector.
    pub fn new() -> Self {
        Self::default()
    }

    fn prime(snap: &NetSnapshot, request: &SelectionRequest) -> ComputePrimed {
        assert!(
            matches!(request.objective, Objective::Compute),
            "MaxComputeSelector drives Objective::Compute requests"
        );
        let incremental = metrics_static_eligibility(&request.constraints);
        let mut history = ComputeHistory::default();
        let last = max_compute_in(
            snap,
            request.count,
            &request.constraints,
            incremental.then_some(&mut history),
        );
        let mut comp_of = vec![u32::MAX; snap.structure_arc().node_count()];
        let mut min_cpu = Vec::with_capacity(history.comps.len());
        for (i, comp) in history.comps.iter().enumerate() {
            for &n in &comp.computes {
                comp_of[n.index()] = i as u32;
            }
            min_cpu.push(comp.min_cpu);
        }
        ComputePrimed {
            request: request.clone(),
            structure: Arc::clone(snap.structure_arc()),
            incremental,
            history,
            min_cpu,
            comp_of,
            last,
        }
    }

    fn replay(
        p: &mut ComputePrimed,
        snap: &NetSnapshot,
        delta: &NetDelta,
    ) -> Result<Selection, SelectError> {
        let ctx = Context::new(snap, p.request.count, &p.request.constraints, None)?;
        let mut touched: Vec<u32> = delta
            .nodes
            .iter()
            .map(|&(n, _)| p.comp_of[n.index()])
            .filter(|&c| c != u32::MAX)
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for &c in &touched {
            let comp = &p.history.comps[c as usize];
            if !comp.viable {
                continue;
            }
            let (_, mc) = ctx
                .pick_from_parts(&[], &comp.computes)
                .expect("component viability is static under metric churn");
            p.min_cpu[c as usize] = mc;
        }
        // The same keep-first-on-ties scan as the one-shot path, over the
        // cached components in their original order.
        let mut best: Option<(usize, f64)> = None;
        for (i, comp) in p.history.comps.iter().enumerate() {
            if !comp.viable {
                continue;
            }
            let mc = p.min_cpu[i];
            match &best {
                Some((_, b)) if *b >= mc => {}
                _ => best = Some((i, mc)),
            }
        }
        let (win, _) = best.ok_or(SelectError::Unsatisfiable)?;
        let (chosen, _) = ctx
            .pick_from_parts(&[], &p.history.comps[win].computes)
            .expect("winning component is viable");
        Ok(ctx.finish(chosen, Weights::EQUAL, 1))
    }
}

impl Selector for MaxComputeSelector {
    fn select(
        &mut self,
        snap: &NetSnapshot,
        request: &SelectionRequest,
    ) -> Result<Selection, SelectError> {
        let primed = Self::prime(snap, request);
        let result = primed.last.clone();
        self.primed = Some(primed);
        result
    }

    fn refresh(&mut self, snap: &NetSnapshot, delta: &NetDelta) -> Result<Selection, SelectError> {
        let p = self.primed.as_mut().expect(REFRESH_BEFORE_SELECT);
        // Link churn leaves the components and picks alone unless a
        // bandwidth floor filters the starting view by link metrics.
        // Health transitions always re-solve: they move eligibility and
        // the starting view.
        let fallback = !Arc::ptr_eq(&p.structure, snap.structure_arc())
            || !p.incremental
            || delta.has_health_changes()
            || (delta.link_changes() > 0 && p.request.constraints.min_bandwidth.is_some());
        if fallback {
            let request = p.request.clone();
            return self.select(snap, &request);
        }
        if delta.is_empty() {
            return p.last.clone();
        }
        let result = Self::replay(p, snap, delta);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            result,
            max_compute_in(snap, p.request.count, &p.request.constraints, None),
            "MaxComputeSelector::refresh diverged from a fresh solve"
        );
        p.last = result.clone();
        result
    }

    fn footprint(&self) -> SelectionFootprint {
        let Some(p) = self.primed.as_ref() else {
            return SelectionFootprint::conservative();
        };
        if !p.incremental {
            return SelectionFootprint::conservative();
        }
        // The components are structure-only, so only the viable ones'
        // members can re-rank the answer. Link metrics reach the bits
        // through the bandwidth floor's view filter (if any) or the final
        // quality walk over the chosen set's pairwise routes.
        let nodes = sorted_union(
            p.history
                .comps
                .iter()
                .filter(|c| c.viable)
                .map(|c| c.computes.as_slice()),
        );
        let links = if p.request.constraints.min_bandwidth.is_some() {
            LinkFootprint::All
        } else {
            match &p.last {
                Ok(sel) => match route_edges(&p.structure, &sel.nodes) {
                    Some(edges) => LinkFootprint::Edges(edges),
                    None => LinkFootprint::All,
                },
                // A reproduced error reads no link metrics.
                Err(_) => LinkFootprint::Edges(Vec::new()),
            }
        };
        SelectionFootprint {
            replayable: true,
            nodes,
            links,
        }
    }
}

/// Incremental [`crate::max_bandwidth`]: see the module docs.
#[derive(Debug, Default)]
pub struct MaxBandwidthSelector {
    primed: Option<BandwidthPrimed>,
}

#[derive(Debug)]
struct BandwidthPrimed {
    request: SelectionRequest,
    structure: Arc<Topology>,
    incremental: bool,
    history: BandwidthHistory,
    last: Result<Selection, SelectError>,
}

impl MaxBandwidthSelector {
    /// An unprimed selector.
    pub fn new() -> Self {
        Self::default()
    }

    fn prime(snap: &NetSnapshot, request: &SelectionRequest) -> BandwidthPrimed {
        assert!(
            matches!(request.objective, Objective::Communication),
            "MaxBandwidthSelector drives Objective::Communication requests"
        );
        let incremental = metrics_static_eligibility(&request.constraints);
        let mut history = BandwidthHistory::default();
        let last = max_bandwidth_in(
            snap,
            request.count,
            &request.constraints,
            incremental.then_some(&mut history),
        );
        BandwidthPrimed {
            request: request.clone(),
            structure: Arc::clone(snap.structure_arc()),
            incremental,
            history,
            last,
        }
    }

    fn replay(p: &BandwidthPrimed, snap: &NetSnapshot) -> Result<Selection, SelectError> {
        let ctx = Context::new(snap, p.request.count, &p.request.constraints, None)?;
        if !p.history.satisfiable {
            return Err(SelectError::Unsatisfiable);
        }
        let chosen = if p.request.count == 1 {
            // The fully-deleted graph's answer is the highest-id eligible
            // node — static, cached verbatim.
            p.history.computes.clone()
        } else {
            ctx.pick_from_parts(&[], &p.history.computes)
                .expect("stop component holds at least m eligible nodes")
                .0
        };
        Ok(ctx.finish(chosen, Weights::EQUAL, p.history.iterations))
    }
}

impl Selector for MaxBandwidthSelector {
    fn select(
        &mut self,
        snap: &NetSnapshot,
        request: &SelectionRequest,
    ) -> Result<Selection, SelectError> {
        let primed = Self::prime(snap, request);
        let result = primed.last.clone();
        self.primed = Some(primed);
        result
    }

    fn refresh(&mut self, snap: &NetSnapshot, delta: &NetDelta) -> Result<Selection, SelectError> {
        let p = self.primed.as_mut().expect(REFRESH_BEFORE_SELECT);
        // Any link churn can reorder the deletion sequence, and any
        // health transition moves eligibility or the starting view:
        // re-solve.
        let fallback = !Arc::ptr_eq(&p.structure, snap.structure_arc())
            || !p.incremental
            || delta.link_changes() > 0
            || delta.has_health_changes();
        if fallback {
            let request = p.request.clone();
            return self.select(snap, &request);
        }
        if delta.is_empty() {
            return p.last.clone();
        }
        let result = Self::replay(p, snap);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            result,
            max_bandwidth_in(snap, p.request.count, &p.request.constraints, None),
            "MaxBandwidthSelector::refresh diverged from a fresh solve"
        );
        p.last = result.clone();
        result
    }

    fn footprint(&self) -> SelectionFootprint {
        let Some(p) = self.primed.as_ref() else {
            return SelectionFootprint::conservative();
        };
        if !p.incremental {
            return SelectionFootprint::conservative();
        }
        // Node churn only re-ranks the pick inside the cached stop
        // component; any link churn can reorder the whole deletion
        // sequence.
        SelectionFootprint {
            replayable: true,
            nodes: sorted_union(std::iter::once(p.history.computes.as_slice())),
            links: LinkFootprint::All,
        }
    }
}

/// Incremental [`crate::balanced`]: see the module docs.
#[derive(Debug, Default)]
pub struct BalancedSelector {
    primed: Option<BalancedPrimed>,
}

#[derive(Debug)]
struct BalancedPrimed {
    request: SelectionRequest,
    structure: Arc<Topology>,
    incremental: bool,
    weights: Weights,
    history: BalancedHistory,
    /// Current minimum effective CPU of each historical state's pick.
    min_cpu: Vec<f64>,
    /// Current `(best score, first round achieving it)` of each state.
    state_best: Vec<(f64, usize)>,
    /// Node index → indices of the viable states it belongs to.
    states_of: Vec<Vec<u32>>,
    last: Result<Selection, SelectError>,
}

impl BalancedSelector {
    /// An unprimed selector.
    pub fn new() -> Self {
        Self::default()
    }

    fn prime(snap: &NetSnapshot, request: &SelectionRequest) -> BalancedPrimed {
        let Objective::Balanced(weights) = request.objective else {
            panic!("BalancedSelector drives Objective::Balanced requests");
        };
        let reference_ok = request
            .reference_bandwidth
            .is_none_or(|r| r.is_finite() && r > 0.0);
        let incremental = metrics_static_eligibility(&request.constraints)
            && request.policy == GreedyPolicy::Sweep
            && reference_ok;
        let mut history = BalancedHistory::default();
        let last = balanced_in(
            snap,
            request.count,
            weights,
            &request.constraints,
            request.reference_bandwidth,
            request.policy,
            incremental.then_some(&mut history),
        );
        let mut states_of = vec![Vec::new(); snap.structure_arc().node_count()];
        let mut min_cpu = Vec::with_capacity(history.states.len());
        let mut state_best = Vec::with_capacity(history.states.len());
        for (i, s) in history.states.iter().enumerate() {
            min_cpu.push(s.min_cpu);
            if s.viable {
                state_best.push(state_score(s, s.min_cpu, weights));
                for &n in &s.computes {
                    states_of[n.index()].push(i as u32);
                }
            } else {
                state_best.push((f64::NEG_INFINITY, 0));
            }
        }
        BalancedPrimed {
            request: request.clone(),
            structure: Arc::clone(snap.structure_arc()),
            incremental,
            weights,
            history,
            min_cpu,
            state_best,
            states_of,
            last,
        }
    }

    fn replay(
        p: &mut BalancedPrimed,
        snap: &NetSnapshot,
        delta: &NetDelta,
    ) -> Result<Selection, SelectError> {
        let ctx = Context::new(
            snap,
            p.request.count,
            &p.request.constraints,
            p.request.reference_bandwidth,
        )?;
        let mut touched: Vec<u32> = delta
            .nodes
            .iter()
            .flat_map(|&(n, _)| p.states_of[n.index()].iter().copied())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for &i in &touched {
            let s = &p.history.states[i as usize];
            let (_, mc) = ctx
                .pick_from_parts(&[], &s.computes)
                .expect("state viability is static under metric churn");
            p.min_cpu[i as usize] = mc;
            p.state_best[i as usize] = state_score(s, mc, p.weights);
        }
        if !p.history.satisfiable {
            return Err(SelectError::Unsatisfiable);
        }
        // The sweep keeps the first strict improvement: maximum score,
        // earliest round, then the reference loop's smallest-first-node
        // round tie-break.
        let mut winner: Option<(f64, usize, NodeId, usize)> = None;
        for (i, s) in p.history.states.iter().enumerate() {
            if !s.viable {
                continue;
            }
            let (score, round) = p.state_best[i];
            let replace = match winner {
                None => true,
                Some((bs, br, bn, _)) => {
                    score > bs
                        || (score == bs && (round < br || (round == br && s.first_node < bn)))
                }
            };
            if replace {
                winner = Some((score, round, s.first_node, i));
            }
        }
        let (_, _, _, win) = winner.expect("a satisfiable history has a viable state");
        let (chosen, _) = ctx
            .pick_from_parts(&[], &p.history.states[win].computes)
            .expect("winning state is viable");
        Ok(ctx.finish(chosen, p.weights, p.history.iterations))
    }
}

/// A state's best score over its recorded lifetime, with the first round
/// achieving it — exactly the strict-improvement fold the sweep performs
/// round by round, with the CPU term re-derived from `min_cpu`.
fn state_score(state: &HistState, min_cpu: f64, weights: Weights) -> (f64, usize) {
    let cpu_term = min_cpu / weights.compute;
    let mut events = state
        .events
        .iter()
        .take_while(|&&(round, _)| round <= state.last_round);
    let &(first_round, first_frac) = events
        .next()
        .expect("a viable state is evaluated in at least one round");
    let mut best = (cpu_term.min(first_frac / weights.comm), first_round);
    for &(round, frac) in events {
        let score = cpu_term.min(frac / weights.comm);
        if score > best.0 {
            best = (score, round);
        }
    }
    best
}

impl Selector for BalancedSelector {
    fn select(
        &mut self,
        snap: &NetSnapshot,
        request: &SelectionRequest,
    ) -> Result<Selection, SelectError> {
        let primed = Self::prime(snap, request);
        let result = primed.last.clone();
        self.primed = Some(primed);
        result
    }

    fn refresh(&mut self, snap: &NetSnapshot, delta: &NetDelta) -> Result<Selection, SelectError> {
        let p = self.primed.as_mut().expect(REFRESH_BEFORE_SELECT);
        // Link churn moves edge fractions, hence the deletion order and
        // the whole recorded history; health transitions move eligibility
        // or the starting view: re-solve.
        let fallback = !Arc::ptr_eq(&p.structure, snap.structure_arc())
            || !p.incremental
            || delta.link_changes() > 0
            || delta.has_health_changes();
        if fallback {
            let request = p.request.clone();
            return self.select(snap, &request);
        }
        if delta.is_empty() {
            return p.last.clone();
        }
        let result = Self::replay(p, snap, delta);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            result,
            balanced_in(
                snap,
                p.request.count,
                p.weights,
                &p.request.constraints,
                p.request.reference_bandwidth,
                p.request.policy,
                None,
            ),
            "BalancedSelector::refresh diverged from a fresh solve"
        );
        p.last = result.clone();
        result
    }

    fn footprint(&self) -> SelectionFootprint {
        let Some(p) = self.primed.as_ref() else {
            return SelectionFootprint::conservative();
        };
        if !p.incremental {
            return SelectionFootprint::conservative();
        }
        // Every viable historical state competes in the sweep, so any of
        // its members' CPU can move the winner; the deletion history
        // itself reads every edge's fraction.
        SelectionFootprint {
            replayable: true,
            nodes: sorted_union(
                p.history
                    .states
                    .iter()
                    .filter(|s| s.viable)
                    .map(|s| s.computes.as_slice()),
            ),
            links: LinkFootprint::All,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;
    use nodesel_topology::Direction;

    fn snapshot_of(topo: Topology) -> NetSnapshot {
        NetSnapshot::capture(Arc::new(topo))
    }

    #[test]
    fn refresh_tracks_node_churn() {
        let (topo, ids) = star(6, 100.0 * MBPS);
        let snap = snapshot_of(topo);
        for request in [
            SelectionRequest::compute(3),
            SelectionRequest::communication(3),
            SelectionRequest::balanced(3),
        ] {
            let mut sel = selector_for(request.objective);
            let first = sel.select(&snap, &request).unwrap();
            assert_eq!(first, crate::select(&snap.to_topology(), &request).unwrap());
            // Load the picked nodes: the refreshed answer must match a
            // fresh solve on the churned snapshot exactly.
            let delta = NetDelta {
                nodes: first.nodes.iter().map(|&n| (n, 4.0)).collect(),
                ..NetDelta::default()
            };
            let next = snap.apply(&delta);
            let refreshed = sel.refresh(&next, &delta).unwrap();
            assert_eq!(
                refreshed,
                crate::select(&next.to_topology(), &request).unwrap()
            );
            if request.objective == Objective::Compute {
                // Three idle leaves remain: the pick moves off the loaded ones.
                assert!(refreshed.nodes.iter().all(|n| !first.nodes.contains(n)));
                assert!(refreshed.nodes.iter().all(|n| ids.contains(n)));
            }
        }
    }

    #[test]
    fn refresh_tracks_link_churn() {
        let (topo, ids) = star(5, 100.0 * MBPS);
        let snap = snapshot_of(topo);
        let request = SelectionRequest::communication(2);
        let mut sel = MaxBandwidthSelector::new();
        sel.select(&snap, &request).unwrap();
        // Congest the access links of the first two nodes.
        let edges: Vec<_> = snap.structure_arc().edge_ids().collect();
        let delta = NetDelta {
            links: vec![
                (edges[0], Direction::AtoB, 90.0 * MBPS),
                (edges[0], Direction::BtoA, 90.0 * MBPS),
                (edges[1], Direction::AtoB, 90.0 * MBPS),
                (edges[1], Direction::BtoA, 90.0 * MBPS),
            ],
            ..NetDelta::default()
        };
        let next = snap.apply(&delta);
        let refreshed = sel.refresh(&next, &delta).unwrap();
        assert!(!refreshed.nodes.contains(&ids[0]));
        assert!(!refreshed.nodes.contains(&ids[1]));
        assert_eq!(
            refreshed,
            crate::select(&next.to_topology(), &request).unwrap()
        );
    }

    #[test]
    fn empty_delta_returns_cached_selection() {
        let (topo, _) = star(4, 100.0 * MBPS);
        let snap = snapshot_of(topo);
        let request = SelectionRequest::balanced(2);
        let mut sel = BalancedSelector::new();
        let first = sel.select(&snap, &request).unwrap();
        let again = sel.refresh(&snap, &NetDelta::default()).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn errors_are_reproduced_across_epochs() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let snap = snapshot_of(topo);
        let request = SelectionRequest::compute(9);
        let mut sel = MaxComputeSelector::new();
        assert!(matches!(
            sel.select(&snap, &request),
            Err(SelectError::NotEnoughNodes { .. })
        ));
        let delta = NetDelta {
            nodes: vec![(ids[0], 1.0)],
            ..NetDelta::default()
        };
        let next = snap.apply(&delta);
        assert!(matches!(
            sel.refresh(&next, &delta),
            Err(SelectError::NotEnoughNodes { .. })
        ));
    }

    #[test]
    fn unprimed_footprint_is_conservative() {
        let sel = MaxComputeSelector::new();
        let fp = sel.footprint();
        assert!(!fp.replayable);
        assert!(fp.invalidated_by(&NetDelta {
            nodes: vec![(NodeId::from_index(0), 1.0)],
            ..NetDelta::default()
        }));
        assert!(!fp.invalidated_by(&NetDelta::default()));
    }

    #[test]
    fn footprint_disjoint_deltas_preserve_answers() {
        // Two stars bridged at the hubs: load the far star's leaves, the
        // near star's answer must not be invalidated — and a fresh solve
        // on the churned snapshot must agree bit for bit.
        let (mut topo, ids) = star(8, 100.0 * MBPS);
        let allowed: std::collections::HashSet<NodeId> = ids[..4].iter().copied().collect();
        topo.set_load_avg(ids[5], 2.0);
        let snap = snapshot_of(topo);
        for request in [
            SelectionRequest::compute(2),
            SelectionRequest::communication(2),
            SelectionRequest::balanced(2),
        ] {
            let mut request = request;
            request.constraints.allowed = Some(allowed.clone());
            let mut sel = selector_for(request.objective);
            let first = sel.select(&snap, &request).unwrap();
            let fp = sel.footprint();
            assert!(fp.replayable);
            // Outside the allowed pool: never in any footprint.
            let disjoint = NetDelta {
                nodes: vec![(ids[6], 5.0)],
                ..NetDelta::default()
            };
            assert!(!fp.invalidated_by(&disjoint));
            let next = snap.apply(&disjoint);
            assert_eq!(
                first,
                crate::select(&next.to_topology(), &request).unwrap(),
                "footprint claimed invariance but the answer moved"
            );
            // A member of the answer itself is always in the footprint.
            let touching = NetDelta {
                nodes: vec![(first.nodes[0], 5.0)],
                ..NetDelta::default()
            };
            assert!(fp.invalidated_by(&touching));
        }
    }

    #[test]
    fn health_changes_always_invalidate() {
        let (topo, ids) = star(5, 100.0 * MBPS);
        let snap = snapshot_of(topo);
        let request = SelectionRequest::compute(2);
        let mut sel = MaxComputeSelector::new();
        sel.select(&snap, &request).unwrap();
        let fp = sel.footprint();
        let delta = NetDelta {
            avail_nodes: vec![(ids[4], false)],
            ..NetDelta::default()
        };
        assert!(fp.invalidated_by(&delta));
    }

    #[test]
    #[should_panic(expected = "refresh called before")]
    fn refresh_before_select_panics() {
        let (topo, _) = star(3, 100.0 * MBPS);
        let snap = snapshot_of(topo);
        BalancedSelector::new()
            .refresh(&snap, &NetDelta::default())
            .ok();
    }
}
