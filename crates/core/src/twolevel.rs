//! Two-level hierarchical selection: domains first, then nodes.
//!
//! The flat engines are near-linear, but near-linear over 100 000 nodes
//! is still milliseconds per call. A [`TwoLevelSelector`] splits the
//! work along a [`Hierarchy`]:
//!
//! 1. **Domain choice** on the aggregated inter-domain graph. Each
//!    domain is summarized by cheap per-node statistics (descending
//!    effective CPU, best incident available bandwidth, best incident
//!    fractional bandwidth of its available compute nodes), cached per
//!    snapshot epoch. Feasible domains (at least `m` eligible nodes)
//!    are ranked by the `m`-th best statistic for the request's
//!    objective — *scarcest-first* among ties (fewest eligible nodes
//!    first, preserving large domains for large requests), then by mean
//!    inter-domain latency from the [`RouteSketch`] (central domains
//!    first), then by id.
//! 2. **Node choice** runs the unmodified flat engine *inside* each
//!    probed domain through a [`NetMetrics`] adapter that maps the
//!    domain's extracted sub-topology onto the live snapshot metrics —
//!    the same monomorphic arithmetic, so a single-domain hierarchy
//!    reproduces the flat answer bit for bit (the selector simply
//!    delegates to the flat incremental selector in that case, and for
//!    constrained requests, whose pinned/allowed sets are global).
//!
//! When no single domain can host the request, adjacent domains are
//! greedily merged along the widest trunks until the union can, and as
//! a last resort the flat engine runs on the whole snapshot — the
//! two-level path never *loses* answers, it only finds the common ones
//! faster.
//!
//! # Error bound
//!
//! Restricting a selection to one domain can miss a better cross-domain
//! set, so every two-level result carries a [`TwoLevelOutcome`] with a
//! sound upper bound on the flat optimum: the minimum over any chosen
//! set of a per-node statistic is at most the `m`-th largest value of
//! that statistic (a route's bottleneck is never better than either
//! endpoint's best incident link), and a set that must span domains is
//! further capped by the best boundary-link bandwidth.
//! `error_bound = upper_bound - achieved` therefore bounds the true
//! regret of the domain restriction; benches report it at sizes where
//! exact flat selection is still feasible.
//!
//! `refresh` keeps the incremental contract of [`Selector`]: results are
//! bit-identical to a fresh `select` on the same snapshot (debug builds
//! assert it), with per-epoch work proportional to the *touched*
//! domains, not the graph.

use crate::algorithms::{balanced_in, max_bandwidth_in, max_compute_in, Selection};
use crate::request::{Objective, SelectionRequest};
use crate::selector::{selector_for, Selector};
use crate::SelectError;
use nodesel_topology::hierarchy::Extract;
use nodesel_topology::{
    Direction, EdgeId, Hierarchy, NetDelta, NetMetrics, NetSnapshot, NodeId, RouteSketch, Topology,
};
use std::sync::Arc;

/// Tuning knobs for the two-level strategy.
#[derive(Debug, Clone)]
pub struct TwoLevelConfig {
    /// Number of top-ranked feasible domains to solve flat before
    /// keeping the best in-domain answer. More probes cost more flat
    /// solves per selection and recover more ranking mistakes.
    pub probe_domains: usize,
}

impl Default for TwoLevelConfig {
    fn default() -> Self {
        TwoLevelConfig { probe_domains: 2 }
    }
}

/// Diagnostics of one two-level solve (absent when the selector
/// delegated to a flat engine).
#[derive(Debug, Clone)]
pub struct TwoLevelOutcome {
    /// Objective value achieved by the returned selection, measured
    /// within the solved (sub-)topology: `min_cpu` for compute, `min_bw`
    /// for communication, the balanced score otherwise.
    pub achieved: f64,
    /// Sound upper bound on the flat optimum of the same objective.
    pub upper_bound: f64,
    /// `upper_bound - achieved`, clamped to zero: the reported cap on
    /// the regret of not having searched the whole graph.
    pub error_bound: f64,
    /// Domains solved flat, in probe order.
    pub probed: Vec<u16>,
    /// Whether the merge/whole-graph fallback produced the answer.
    pub merged: bool,
}

/// Per-domain selection statistics, recomputed per epoch (and only for
/// the domains a delta touches). Vectors are sorted descending over the
/// domain's *available* compute nodes, so the `m`-th entry of each is
/// both the ranking key and a sound per-domain optimum bound.
#[derive(Debug, Clone)]
struct DomainSummary {
    eligible: usize,
    cpu: Vec<f64>,
    inc_bw: Vec<f64>,
    inc_frac: Vec<f64>,
}

/// The flat engines over a domain extract, metrics served by the live
/// global view. `structure()` is the extracted sub-topology (its copied
/// capacities, speeds and names equal the global ones by construction),
/// while every dynamic reading is delegated through the id maps — so
/// in-domain solves track the current snapshot without re-extracting.
struct DomainNet<'a, T: NetMetrics> {
    net: &'a T,
    ext: &'a Extract,
}

impl<T: NetMetrics> NetMetrics for DomainNet<'_, T> {
    fn structure(&self) -> &Topology {
        &self.ext.sub
    }
    fn load_avg(&self, n: NodeId) -> f64 {
        self.net.load_avg(self.ext.nodes[n.index()])
    }
    fn used(&self, e: EdgeId, dir: Direction) -> f64 {
        self.net.used(self.ext.edges[e.index()], dir)
    }
    fn node_available(&self, n: NodeId) -> bool {
        self.net.node_available(self.ext.nodes[n.index()])
    }
    fn link_available(&self, e: EdgeId) -> bool {
        self.net.link_available(self.ext.edges[e.index()])
    }
    fn node_staleness(&self, n: NodeId) -> u32 {
        self.net.node_staleness(self.ext.nodes[n.index()])
    }
    fn link_staleness(&self, e: EdgeId) -> u32 {
        self.net.link_staleness(self.ext.edges[e.index()])
    }
}

/// A [`Selector`] that places requests through a domain hierarchy.
///
/// On single-domain topologies and for constrained requests it holds an
/// inner flat selector and is bit-identical to it; otherwise it runs
/// the two-level strategy and exposes its diagnostics through
/// [`TwoLevelSelector::last_outcome`].
#[derive(Default)]
pub struct TwoLevelSelector {
    config: TwoLevelConfig,
    cache: Option<HierCache>,
    primed: Option<Primed>,
}

/// Structure-keyed hierarchy state: rebuilt only when the snapshot's
/// structure `Arc` changes.
struct HierCache {
    structure: Arc<Topology>,
    hier: Hierarchy,
    /// Mean inter-domain latency per domain (static: latencies are
    /// structure, not metrics).
    mean_lat: Vec<f64>,
}

enum Primed {
    /// Delegating: single-domain hierarchy or constrained request.
    Flat {
        selector: Box<dyn Selector>,
        request: SelectionRequest,
        structure: Arc<Topology>,
    },
    Two(TwoPrimed),
}

struct TwoPrimed {
    request: SelectionRequest,
    structure: Arc<Topology>,
    epoch: u64,
    summaries: Vec<DomainSummary>,
    outcome: Option<TwoLevelOutcome>,
    last: Result<Selection, SelectError>,
}

const REFRESH_BEFORE_SELECT: &str = "Selector::refresh called before Selector::select";

impl TwoLevelSelector {
    /// A selector with the default [`TwoLevelConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A selector with explicit tuning.
    pub fn with_config(config: TwoLevelConfig) -> Self {
        TwoLevelSelector {
            config,
            cache: None,
            primed: None,
        }
    }

    /// Diagnostics of the last `select`/`refresh`, when the two-level
    /// path ran and succeeded (`None` while delegating to a flat engine
    /// or after an error).
    pub fn last_outcome(&self) -> Option<&TwoLevelOutcome> {
        match &self.primed {
            Some(Primed::Two(p)) => p.outcome.as_ref(),
            _ => None,
        }
    }

    /// Number of domains in the current hierarchy, once primed.
    pub fn num_domains(&self) -> Option<u16> {
        self.cache.as_ref().map(|c| c.hier.num_domains())
    }

    fn ensure_cache(&mut self, snap: &NetSnapshot) {
        let structure = snap.structure_arc();
        if self
            .cache
            .as_ref()
            .is_some_and(|c| Arc::ptr_eq(&c.structure, structure))
        {
            return;
        }
        let hier = Hierarchy::new(structure);
        let sketch = RouteSketch::build(&hier, snap);
        let mean_lat = (0..hier.num_domains())
            .map(|d| sketch.mean_inter_latency(d))
            .collect();
        self.cache = Some(HierCache {
            structure: Arc::clone(structure),
            hier,
            mean_lat,
        });
    }
}

impl Selector for TwoLevelSelector {
    fn select(
        &mut self,
        snap: &NetSnapshot,
        request: &SelectionRequest,
    ) -> Result<Selection, SelectError> {
        self.ensure_cache(snap);
        let cache = self.cache.as_ref().expect("cache just ensured");
        if cache.hier.num_domains() == 1 || !request.constraints.is_empty() {
            // Degenerate or constrained: the flat incremental selector is
            // both bit-exact and already near-linear at domain scale.
            let mut selector = match self.primed.take() {
                Some(Primed::Flat {
                    selector,
                    request: prev,
                    ..
                }) if core::mem::discriminant(&prev.objective)
                    == core::mem::discriminant(&request.objective) =>
                {
                    selector
                }
                _ => selector_for(request.objective),
            };
            let result = selector.select(snap, request);
            self.primed = Some(Primed::Flat {
                selector,
                request: request.clone(),
                structure: Arc::clone(snap.structure_arc()),
            });
            return result;
        }
        // Reuse the epoch's summaries when only the request changed.
        let summaries = match self.primed.take() {
            Some(Primed::Two(p))
                if Arc::ptr_eq(&p.structure, snap.structure_arc())
                    && p.epoch == snap.epoch()
                    && p.request.reference_bandwidth == request.reference_bandwidth =>
            {
                p.summaries
            }
            _ => summarize_all(&cache.hier, snap, request.reference_bandwidth),
        };
        let (last, outcome) = solve_two_level(cache, &summaries, &self.config, snap, request);
        let result = last.clone();
        self.primed = Some(Primed::Two(TwoPrimed {
            request: request.clone(),
            structure: Arc::clone(snap.structure_arc()),
            epoch: snap.epoch(),
            summaries,
            outcome,
            last,
        }));
        result
    }

    fn refresh(&mut self, snap: &NetSnapshot, delta: &NetDelta) -> Result<Selection, SelectError> {
        let reselect = match self.primed.as_ref().expect(REFRESH_BEFORE_SELECT) {
            // A new structure Arc can change the domain decomposition
            // itself, so delegation must be re-decided from scratch.
            Primed::Flat {
                structure, request, ..
            }
            | Primed::Two(TwoPrimed {
                structure, request, ..
            }) if !Arc::ptr_eq(structure, snap.structure_arc()) => Some(request.clone()),
            _ => None,
        };
        if let Some(request) = reselect {
            return self.select(snap, &request);
        }
        match self.primed.as_mut().expect(REFRESH_BEFORE_SELECT) {
            Primed::Flat { selector, .. } => selector.refresh(snap, delta),
            Primed::Two(p) => {
                if delta.is_empty() {
                    return p.last.clone();
                }
                let cache = self
                    .cache
                    .as_ref()
                    .expect("primed implies cached hierarchy");
                // Re-summarize only the touched domains; a link touches
                // the domains of both endpoints.
                let structure = snap.structure_arc();
                let mut touched: Vec<u16> = Vec::new();
                for &(n, _) in &delta.nodes {
                    touched.push(cache.hier.domain_of(n));
                }
                for &(n, _) in &delta.avail_nodes {
                    touched.push(cache.hier.domain_of(n));
                }
                for &(n, _) in &delta.stale_nodes {
                    touched.push(cache.hier.domain_of(n));
                }
                let touch_edge = |e: EdgeId, touched: &mut Vec<u16>| {
                    let l = structure.link(e);
                    touched.push(cache.hier.domain_of(l.a()));
                    touched.push(cache.hier.domain_of(l.b()));
                };
                for &(e, _, _) in &delta.links {
                    touch_edge(e, &mut touched);
                }
                for &(e, _) in &delta.avail_links {
                    touch_edge(e, &mut touched);
                }
                for &(e, _) in &delta.stale_links {
                    touch_edge(e, &mut touched);
                }
                touched.sort_unstable();
                touched.dedup();
                for &d in &touched {
                    p.summaries[d as usize] =
                        summarize_domain(&cache.hier, d, snap, p.request.reference_bandwidth);
                }
                p.epoch = snap.epoch();
                let (result, outcome) =
                    solve_two_level(cache, &p.summaries, &self.config, snap, &p.request);
                #[cfg(debug_assertions)]
                {
                    let fresh = summarize_all(&cache.hier, snap, p.request.reference_bandwidth);
                    let (fresh_result, _) =
                        solve_two_level(cache, &fresh, &self.config, snap, &p.request);
                    debug_assert_eq!(
                        result, fresh_result,
                        "TwoLevelSelector::refresh diverged from a fresh solve"
                    );
                }
                p.last = result.clone();
                p.outcome = outcome;
                result
            }
        }
    }
}

/// Below this many domains the per-domain summaries are built on the
/// calling thread: the spawn overhead would dominate the scans.
const PARALLEL_SUMMARY_THRESHOLD: usize = 32;

/// Summaries for every domain, from scratch. Domains are independent, so
/// the scans fan out over the machine's available parallelism
/// ([`nodesel_topology::fan_out`] keeps slot order, making the result
/// identical to the serial loop).
fn summarize_all(
    hier: &Hierarchy,
    net: &NetSnapshot,
    reference: Option<f64>,
) -> Vec<DomainSummary> {
    let k = hier.num_domains() as usize;
    let workers = if k >= PARALLEL_SUMMARY_THRESHOLD {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(k)
    } else {
        1
    };
    nodesel_topology::fan_out(k, workers, |d| {
        summarize_domain(hier, d as u16, net, reference)
    })
}

/// One domain's statistics under the current metrics. Eligibility here
/// mirrors [`crate::algorithms`] for an unconstrained request: a compute
/// node that is reported available (constrained requests never reach the
/// two-level path).
fn summarize_domain(
    hier: &Hierarchy,
    d: u16,
    net: &NetSnapshot,
    reference: Option<f64>,
) -> DomainSummary {
    let dom = hier.domain(d);
    let structure = net.structure();
    let mut cpu = Vec::with_capacity(dom.computes().len());
    let mut inc_bw = Vec::with_capacity(dom.computes().len());
    let mut inc_frac = Vec::with_capacity(dom.computes().len());
    for &n in dom.computes() {
        if !net.node_available(n) {
            continue;
        }
        cpu.push(net.effective_cpu(n));
        let mut best_bw = 0.0f64;
        let mut best_frac = 0.0f64;
        for &(e, _) in structure.neighbors(n) {
            let bw = net.bw(e);
            best_bw = best_bw.max(bw);
            best_frac = best_frac.max(match reference {
                Some(r) => bw / r,
                None => net.bwfactor(e),
            });
        }
        inc_bw.push(best_bw);
        inc_frac.push(best_frac);
    }
    let desc = |v: &mut Vec<f64>| v.sort_unstable_by(|a, b| b.total_cmp(a));
    desc(&mut cpu);
    desc(&mut inc_bw);
    desc(&mut inc_frac);
    DomainSummary {
        eligible: cpu.len(),
        cpu,
        inc_bw,
        inc_frac,
    }
}

/// The `m`-th-best ranking key of a feasible domain for the objective.
fn domain_key(objective: Objective, s: &DomainSummary, m: usize) -> f64 {
    match objective {
        Objective::Compute => s.cpu[m - 1],
        Objective::Communication => s.inc_bw[m - 1],
        Objective::Balanced(w) => (s.cpu[m - 1] / w.compute).min(s.inc_frac[m - 1] / w.comm),
    }
}

/// Feasible domains in probe order: best key first, scarcest (fewest
/// eligible) first on ties, then central (lowest mean inter-domain
/// latency), then lowest id — all total orders, so the ranking is
/// deterministic.
fn rank_domains(
    request: &SelectionRequest,
    summaries: &[DomainSummary],
    mean_lat: &[f64],
) -> Vec<u16> {
    let m = request.count;
    let mut ranked: Vec<(u16, f64)> = summaries
        .iter()
        .enumerate()
        .filter(|(_, s)| s.eligible >= m)
        .map(|(d, s)| (d as u16, domain_key(request.objective, s, m)))
        .collect();
    ranked.sort_by(|&(da, ka), &(db, kb)| {
        kb.total_cmp(&ka)
            .then_with(|| {
                summaries[da as usize]
                    .eligible
                    .cmp(&summaries[db as usize].eligible)
            })
            .then_with(|| mean_lat[da as usize].total_cmp(&mean_lat[db as usize]))
            .then(da.cmp(&db))
    });
    ranked.into_iter().map(|(d, _)| d).collect()
}

/// Runs the flat engine matching the request on any metric view.
fn solve_flat<T: NetMetrics>(
    net: &T,
    request: &SelectionRequest,
) -> Result<Selection, SelectError> {
    match request.objective {
        Objective::Compute => max_compute_in(net, request.count, &request.constraints, None),
        Objective::Communication => {
            max_bandwidth_in(net, request.count, &request.constraints, None)
        }
        Objective::Balanced(w) => balanced_in(
            net,
            request.count,
            w,
            &request.constraints,
            request.reference_bandwidth,
            request.policy,
            None,
        ),
    }
}

/// Flat solve inside an extract, mapped back to global node ids (local
/// ascending order maps to global ascending order by construction).
fn solve_in_extract(
    snap: &NetSnapshot,
    ext: &Extract,
    request: &SelectionRequest,
) -> Result<Selection, SelectError> {
    let net = DomainNet { net: snap, ext };
    let mut sel = solve_flat(&net, request)?;
    sel.nodes = sel.nodes.iter().map(|n| ext.nodes[n.index()]).collect();
    Ok(sel)
}

/// The objective value a selection achieved.
fn objective_value(objective: Objective, sel: &Selection) -> f64 {
    match objective {
        Objective::Compute => sel.quality.min_cpu,
        Objective::Communication => sel.quality.min_bw,
        Objective::Balanced(_) => sel.score,
    }
}

/// Sound upper bound on the flat optimum: the minimum over any `m`-set
/// of a per-node statistic is at most the `m`-th largest value of that
/// statistic over the whole graph (for bandwidth, a route's bottleneck
/// is capped by either endpoint's best incident link), and when no
/// single domain is feasible every set spans a boundary, capping
/// bandwidth terms at the best boundary link.
fn upper_bound(
    request: &SelectionRequest,
    summaries: &[DomainSummary],
    hier: &Hierarchy,
    net: &NetSnapshot,
    single_feasible: bool,
) -> f64 {
    let m = request.count;
    let mth = |field: fn(&DomainSummary) -> &[f64]| -> f64 {
        let mut all: Vec<f64> = summaries
            .iter()
            .flat_map(|s| field(s).iter().take(m).copied())
            .collect();
        if all.len() < m {
            return f64::NEG_INFINITY;
        }
        // O(k·m) selection of the m-th largest: a full sort here is the
        // dominant per-select cost at thousands of domains.
        *all.select_nth_unstable_by(m - 1, |a, b| b.total_cmp(a)).1
    };
    let best_boundary = |frac: bool| -> f64 {
        hier.boundary_links()
            .iter()
            .map(|&e| {
                if !frac {
                    net.bw(e)
                } else {
                    match request.reference_bandwidth {
                        Some(r) => net.bw(e) / r,
                        None => net.bwfactor(e),
                    }
                }
            })
            .fold(0.0, f64::max)
    };
    match request.objective {
        Objective::Compute => mth(|s| &s.cpu),
        Objective::Communication => {
            if m == 1 {
                // A singleton has no pairs: min_bw is vacuously infinite.
                return f64::INFINITY;
            }
            let mut ub = mth(|s| &s.inc_bw);
            if !single_feasible {
                ub = ub.min(best_boundary(false));
            }
            ub
        }
        Objective::Balanced(w) => {
            let cpu_term = mth(|s| &s.cpu) / w.compute;
            // `min_bwfraction` starts at 1.0 and only decreases, so 1.0
            // caps the fraction term; a singleton keeps it exactly there.
            let frac = if m == 1 {
                1.0
            } else {
                let mut f = mth(|s| &s.inc_frac);
                if !single_feasible {
                    f = f.min(best_boundary(true));
                }
                f.min(1.0)
            };
            cpu_term.min(frac / w.comm)
        }
    }
}

/// Greedy domain merging: start from the domain with the most eligible
/// nodes, repeatedly annex the aggregate-adjacent domain behind the
/// widest trunk, and try a flat solve on the union whenever it could
/// host the request. Falls back to the whole snapshot when the
/// reachable union never suffices (e.g. a disconnected aggregate).
fn solve_merged(
    cache: &HierCache,
    summaries: &[DomainSummary],
    snap: &NetSnapshot,
    request: &SelectionRequest,
) -> Result<Selection, SelectError> {
    let hier = &cache.hier;
    let k = hier.num_domains() as usize;
    let start = (0..k)
        .max_by(|&a, &b| {
            summaries[a]
                .eligible
                .cmp(&summaries[b].eligible)
                .then(b.cmp(&a))
        })
        .expect("at least one domain");
    let mut in_set = vec![false; k];
    in_set[start] = true;
    let mut set: Vec<u16> = vec![start as u16];
    let mut eligible = summaries[start].eligible;
    loop {
        if eligible >= request.count && set.len() > 1 {
            let ext = hier.merged(&cache.structure, &set);
            if let Ok(sel) = solve_in_extract(snap, &ext, request) {
                return Ok(sel);
            }
        }
        // Widest trunk leaving the current set (first such edge on ties,
        // for determinism).
        let mut best: Option<(f64, u16)> = None;
        for e in hier.aggregate().edges() {
            let (ina, inb) = (in_set[e.a as usize], in_set[e.b as usize]);
            if ina == inb {
                continue;
            }
            let next = if ina { e.b } else { e.a };
            let bw = e.best_bw(snap);
            if best.is_none_or(|(bbw, _)| bw > bbw) {
                best = Some((bw, next));
            }
        }
        match best {
            Some((_, next)) => {
                in_set[next as usize] = true;
                set.push(next);
                eligible += summaries[next as usize].eligible;
            }
            None => break,
        }
    }
    solve_flat(snap, request)
}

/// One full two-level solve over cached hierarchy state.
fn solve_two_level(
    cache: &HierCache,
    summaries: &[DomainSummary],
    config: &TwoLevelConfig,
    snap: &NetSnapshot,
    request: &SelectionRequest,
) -> (Result<Selection, SelectError>, Option<TwoLevelOutcome>) {
    let ranked = rank_domains(request, summaries, &cache.mean_lat);
    let mut probed = Vec::new();
    let mut best: Option<(Selection, f64)> = None;
    for &d in ranked.iter().take(config.probe_domains.max(1)) {
        probed.push(d);
        let ext = cache.hier.domain(d).extract();
        if let Ok(sel) = solve_in_extract(snap, ext, request) {
            let value = objective_value(request.objective, &sel);
            if best.as_ref().is_none_or(|&(_, b)| value > b) {
                best = Some((sel, value));
            }
        }
    }
    let merged = best.is_none();
    let result = match best {
        Some((sel, _)) => Ok(sel),
        None => solve_merged(cache, summaries, snap, request),
    };
    let outcome = result.as_ref().ok().map(|sel| {
        let achieved = objective_value(request.objective, sel);
        let ub = upper_bound(request, summaries, &cache.hier, snap, !ranked.is_empty());
        let error_bound = if achieved >= ub { 0.0 } else { ub - achieved };
        TwoLevelOutcome {
            achieved,
            upper_bound: ub,
            error_bound,
            probed: probed.clone(),
            merged,
        }
    });
    (result, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SelectionRequest;
    use nodesel_topology::builders::hierarchical;
    use nodesel_topology::units::MBPS;
    use nodesel_topology::Direction;
    use std::sync::Arc;

    fn conditioned(domains: usize, hosts: usize) -> NetSnapshot {
        let (mut t, hosts_by_domain) =
            hierarchical(domains, hosts, 100.0 * MBPS, 40.0 * MBPS, 2e-3);
        for (d, members) in hosts_by_domain.iter().enumerate() {
            for (i, &h) in members.iter().enumerate() {
                t.set_load_avg(h, ((d * 7 + i * 3) % 11) as f64 * 0.35);
            }
        }
        for (i, e) in t.edge_ids().collect::<Vec<_>>().into_iter().enumerate() {
            let cap = t.link(e).capacity(Direction::AtoB);
            t.set_link_used(e, Direction::AtoB, cap * ((i % 7) as f64) * 0.1);
        }
        NetSnapshot::capture(Arc::new(t))
    }

    #[test]
    fn selects_within_one_domain_when_possible() {
        let snap = conditioned(4, 6);
        let mut sel = TwoLevelSelector::new();
        for request in [
            SelectionRequest::compute(3),
            SelectionRequest::communication(3),
            SelectionRequest::balanced(3),
        ] {
            let s = sel.select(&snap, &request).unwrap();
            assert_eq!(s.nodes.len(), 3);
            let outcome = sel.last_outcome().unwrap();
            assert!(!outcome.merged, "4 domains of 6 hosts fit m=3 directly");
            assert!(outcome.error_bound >= 0.0);
            assert!(outcome.achieved <= outcome.upper_bound + 1e-9);
            // All chosen nodes share a domain.
            let hier = Hierarchy::new(snap.structure_arc());
            let d0 = hier.domain_of(s.nodes[0]);
            assert!(s.nodes.iter().all(|&n| hier.domain_of(n) == d0));
        }
    }

    #[test]
    fn merges_domains_for_oversized_requests() {
        let snap = conditioned(3, 4);
        let mut sel = TwoLevelSelector::new();
        // m=9 > 4 hosts per domain: must merge across trunks.
        let s = sel
            .select(&snap, &SelectionRequest::communication(9))
            .unwrap();
        assert_eq!(s.nodes.len(), 9);
        assert!(sel.last_outcome().unwrap().merged);
        // Cross-domain min bandwidth is trunk-capped.
        assert!(s.quality.min_bw <= 40.0 * MBPS);
    }

    #[test]
    fn refresh_matches_fresh_select() {
        let snap = conditioned(4, 5);
        let request = SelectionRequest::balanced(3);
        let mut sel = TwoLevelSelector::new();
        let first = sel.select(&snap, &request).unwrap();
        // Empty delta: cached answer.
        assert_eq!(sel.refresh(&snap, &NetDelta::default()).unwrap(), first);
        // Load churn on the chosen nodes: refresh must equal a fresh
        // selector's answer on the churned snapshot (debug builds also
        // assert this internally).
        let delta = NetDelta {
            nodes: first.nodes.iter().map(|&n| (n, 5.0)).collect(),
            ..NetDelta::default()
        };
        let next = snap.apply(&delta);
        let refreshed = sel.refresh(&next, &delta).unwrap();
        let fresh = TwoLevelSelector::new().select(&next, &request).unwrap();
        assert_eq!(refreshed, fresh);
        assert!(refreshed.nodes.iter().all(|n| !first.nodes.contains(n)));
    }

    #[test]
    fn single_domain_is_bit_identical_to_flat() {
        // One domain: the selector must delegate and agree exactly.
        let snap = conditioned(1, 8);
        for request in [
            SelectionRequest::compute(3),
            SelectionRequest::communication(3),
            SelectionRequest::balanced(3),
        ] {
            let mut two = TwoLevelSelector::new();
            let mut flat = selector_for(request.objective);
            assert_eq!(two.select(&snap, &request), flat.select(&snap, &request));
            assert!(two.last_outcome().is_none(), "delegation has no outcome");
        }
    }

    #[test]
    fn constrained_requests_delegate_to_flat() {
        let snap = conditioned(3, 4);
        let some_node = Hierarchy::new(snap.structure_arc()).domain(1).computes()[0];
        let mut request = SelectionRequest::balanced(3);
        request.constraints.required = vec![some_node];
        let mut two = TwoLevelSelector::new();
        let mut flat = selector_for(request.objective);
        assert_eq!(two.select(&snap, &request), flat.select(&snap, &request));
        assert!(two.last_outcome().is_none());
    }

    #[test]
    #[should_panic(expected = "refresh called before")]
    fn refresh_before_select_panics() {
        let snap = conditioned(2, 2);
        TwoLevelSelector::new()
            .refresh(&snap, &NetDelta::default())
            .ok();
    }
}
