//! The discrete-event engine tying hosts, flows and user events together.

use crate::flows::{FlowEngine, FlowId, FlowTable};
use crate::host::{Host, TaskId};
use crate::time::{EventKey, SimTime};
use crate::trace::{TraceEvent, Tracer};
use nodesel_topology::{Direction, EdgeId, NodeId, RouteTable, Topology};
use std::any::Any;
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Default UNIX-style load-average damping constant (1-minute average).
pub const DEFAULT_LOAD_AVG_TAU: f64 = 60.0;

/// A deferred action executed by the engine at its scheduled time.
pub type Callback = Box<dyn FnOnce(&mut Sim)>;

/// Identifier of a driver installed with [`Sim::install_driver`]. Stable
/// across [`Sim::fork`]: the same id addresses the forked copy of the
/// driver in the forked simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DriverId(u32);

/// Cloneable state machine behind a recurring *data-driven* event.
///
/// Where one-off actions are scheduled as opaque [`Callback`] closures,
/// self-rescheduling processes (background generators, periodic
/// collectors) implement `DriverLogic` and live **inside** the simulator:
/// their state — RNG, counters, sample stores — is part of [`Sim`] and is
/// cloned by [`Sim::fork`], so a forked run continues bit-identically.
///
/// [`DriverLogic::fire`] runs at each scheduled time with the driver
/// temporarily removed from the registry (it may freely mutate the
/// simulator, including scheduling its next firing via
/// [`Sim::schedule_driver_in`], but cannot re-enter itself).
///
/// Drivers must be `Send`: the parallel engine moves shards — including
/// their cloned driver state — onto worker threads. Driver state is plain
/// data (RNGs, counters, sample windows), so this costs implementors
/// nothing; it rules out thread-bound handles like `Rc`, which would be
/// unsoundly shared between sibling shards after a fork.
pub trait DriverLogic: Clone + Send + 'static {
    /// Handles one scheduled firing. `me` is the driver's own id, for
    /// rescheduling.
    fn fire(&mut self, sim: &mut Sim, me: DriverId);
}

/// Object-safe adapter over [`DriverLogic`] (clone + downcast).
trait DriverObj: Any {
    fn fire_obj(&mut self, sim: &mut Sim, me: DriverId);
    fn clone_box(&self) -> Box<dyn DriverObj>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: DriverLogic> DriverObj for T {
    fn fire_obj(&mut self, sim: &mut Sim, me: DriverId) {
        self.fire(sim, me);
    }
    fn clone_box(&self) -> Box<dyn DriverObj> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

enum EventKind {
    HostWake { host: usize, generation: u64 },
    NetWake { domain: u16, generation: u64 },
    Driver { slot: u32 },
    User(Callback),
}

struct QueuedEvent {
    key: EventKey,
    kind: EventKind,
}

impl QueuedEvent {
    /// Clones a data-driven event for [`Sim::fork`]. Opaque user closures
    /// cannot be cloned; [`Sim::can_fork`] guarantees none are pending.
    fn clone_data(&self) -> QueuedEvent {
        let kind = match self.kind {
            EventKind::HostWake { host, generation } => EventKind::HostWake { host, generation },
            EventKind::NetWake { domain, generation } => EventKind::NetWake { domain, generation },
            EventKind::Driver { slot } => EventKind::Driver { slot },
            EventKind::User(_) => unreachable!("fork with a pending user closure"),
        };
        QueuedEvent {
            key: self.key,
            kind,
        }
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// CPU tasks completed (application + background).
    pub completed_tasks: u64,
    /// Flows fully delivered (application + background).
    pub completed_flows: u64,
    /// Events dispatched.
    pub events: u64,
}

/// The simulator.
///
/// `Sim` owns a [`Topology`] (capacities, speeds, structure), a
/// processor-sharing [`Host`] per compute node, and a max-min fair
/// [`FlowTable`]. All activity — application phases, background load,
/// background traffic, measurement sampling — is expressed as events.
///
/// # Determinism
///
/// Events dispatch in [`EventKey`] order: time first, then the owning
/// partition domain, then that domain's strictly monotone sequence
/// number. Every internal algorithm iterates in dense-index order, so a
/// run is a pure function of the topology and the scheduled events —
/// *independent of the order unrelated domains were populated in*. An
/// unpartitioned simulator homes everything in domain 0, which
/// reproduces the historical global-insertion-order tie-break
/// bit-for-bit.
///
/// # Partitioning
///
/// [`Sim::set_partition`] assigns every node a *domain* (shard) index.
/// Each event is homed in the domain of the entity it targets: a host
/// wake in its node's domain, a driver firing in the domain it was
/// installed at ([`Sim::install_driver_at`]), a flow in its source
/// node's domain. Task and flow ids are minted from per-domain counters
/// (`domain << 48 | counter`), so ids, sequence numbers, and therefore
/// the whole dispatch order are per-domain properties — the foundation
/// the parallel engine's bit-exactness rests on.
///
/// # Checkpointing
///
/// All recurring activity can be expressed as *data*: [`DriverLogic`]
/// state machines (generators, collectors) live inside the simulator and
/// detached tasks/transfers ([`Sim::start_compute_detached`],
/// [`Sim::start_transfer_detached`]) carry no completion closure. When no
/// opaque closure is pending anywhere ([`Sim::can_fork`]), [`Sim::fork`]
/// clones the complete simulation state — clock, event queue, hosts,
/// flows, drivers, RNGs — into an independent simulator that continues
/// bit-identically to the original. The immutable [`Topology`] and
/// [`RouteTable`] are shared by `Arc`, so a fork costs O(live state), not
/// O(V·(V+E)).
pub struct Sim {
    topo: Arc<Topology>,
    routes: Arc<RouteTable>,
    time: SimTime,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    /// Per-domain event sequence counters (index = domain).
    seqs: Vec<u64>,
    /// Domain of each node (empty when unpartitioned: everything is
    /// domain 0).
    node_domain: Vec<u16>,
    /// Number of partition domains (1 when unpartitioned).
    num_domains: u16,
    /// Home domain of each installed driver slot.
    driver_home: Vec<u16>,
    hosts: Vec<Option<Host>>,
    host_generation: Vec<u64>,
    flows: FlowTable,
    /// Per-domain network-wake generation counters: each domain's wake
    /// event tracks only that domain's flows, so one domain's churn never
    /// invalidates another's scheduled wake.
    net_generation: Vec<u64>,
    /// Per-domain task-id counters; ids are `domain << 48 | counter`.
    next_task: Vec<u64>,
    /// Per-domain flow-id counters; ids are `domain << 48 | counter`.
    next_flow: Vec<u64>,
    task_done: HashMap<TaskId, Callback>,
    flow_done: HashMap<FlowId, (f64, Callback)>,
    /// Reused drain buffer for finished flows (no per-event allocation).
    finished_flows: Vec<FlowId>,
    /// Installed recurring drivers; a slot is `None` only while its
    /// driver is firing.
    drivers: Vec<Option<Box<dyn DriverObj>>>,
    /// Number of queued [`EventKind::User`] events (fork legality).
    user_events: usize,
    /// Per-node liveness (fault injection); all true in a healthy run.
    node_up: Vec<bool>,
    /// Per-link administrative state (fault injection); all true in a
    /// healthy run. A link carries traffic only when it *and* both its
    /// endpoint nodes are up ([`Sim::link_effective_up`]).
    link_up: Vec<bool>,
    /// Tasks killed by node crashes, awaiting [`Sim::take_killed_tasks`].
    killed_tasks: Vec<(NodeId, TaskId)>,
    /// Flows aborted by endpoint crashes, awaiting
    /// [`Sim::take_aborted_flows`].
    aborted_flows: Vec<FlowId>,
    stats: SimStats,
    tracer: Option<Tracer>,
    /// Key of the event currently dispatching (stale outside
    /// [`Sim::step`]). Trace records carry it so per-shard traces can be
    /// merged back into exact serial dispatch order.
    dispatch_key: EventKey,
    /// Domains this simulator executes (`None` = all of them). A shard
    /// produced by [`Sim::shard_fork`] owns a subset; touching anything
    /// outside it trips `escalated` instead of silently diverging.
    owned: Option<Box<[bool]>>,
    /// Set when a foreign-domain interaction happened: the shard's state
    /// is no longer a faithful slice of the serial execution and must be
    /// discarded (the parallel engine replays serially instead).
    escalated: Cell<bool>,
    /// Reused buffer for the homes rescheduled after a flow mutation.
    resched_buf: Vec<u16>,
}

impl Sim {
    /// Builds a simulator over a topology snapshot. Load averages and link
    /// utilizations stored in `topo` are ignored: the simulator derives
    /// them from actual activity.
    pub fn new(topo: Topology) -> Self {
        Self::with_load_avg_tau(topo, DEFAULT_LOAD_AVG_TAU)
    }

    /// Like [`Sim::new`] with an explicit load-average time constant.
    pub fn with_load_avg_tau(topo: Topology, tau: f64) -> Self {
        Self::with_config(topo, tau, FlowEngine::default())
    }

    /// Like [`Sim::new`] with an explicit flow-engine choice — used by the
    /// parity tests and the `flow_engine` bench to pit the incremental
    /// engine against the full-recompute reference.
    pub fn with_flow_engine(topo: Topology, engine: FlowEngine) -> Self {
        Self::with_config(topo, DEFAULT_LOAD_AVG_TAU, engine)
    }

    fn with_config(topo: Topology, tau: f64, engine: FlowEngine) -> Self {
        let routes = Arc::new(RouteTable::build(&topo));
        Self::with_shared(Arc::new(topo), routes, tau, engine)
    }

    /// Builds a simulator over an `Arc`-shared topology and prebuilt route
    /// table, sharing both instead of copying. This is the cheap
    /// constructor for trial sweeps: the testbed and its all-pairs routes
    /// are derived once and shared by every simulator (and every
    /// [`Sim::fork`]).
    ///
    /// `routes` must have been built from `topo` (all route resolution
    /// goes through it).
    pub fn with_shared(
        topo: Arc<Topology>,
        routes: Arc<RouteTable>,
        tau: f64,
        engine: FlowEngine,
    ) -> Self {
        let hosts: Vec<Option<Host>> = topo
            .node_ids()
            .map(|id| {
                let n = topo.node(id);
                n.is_compute().then(|| Host::new(n.speed(), tau))
            })
            .collect();
        let host_generation = vec![0; hosts.len()];
        let flows = FlowTable::with_engine(&topo, engine);
        let node_up = vec![true; hosts.len()];
        let link_up = vec![true; topo.link_count()];
        Sim {
            topo,
            routes,
            time: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seqs: vec![0],
            node_domain: Vec::new(),
            num_domains: 1,
            driver_home: Vec::new(),
            hosts,
            host_generation,
            flows,
            net_generation: vec![0],
            next_task: vec![1],
            next_flow: vec![1],
            task_done: HashMap::new(),
            flow_done: HashMap::new(),
            finished_flows: Vec::new(),
            drivers: Vec::new(),
            user_events: 0,
            node_up,
            link_up,
            killed_tasks: Vec::new(),
            aborted_flows: Vec::new(),
            stats: SimStats::default(),
            tracer: None,
            dispatch_key: EventKey {
                at: SimTime::ZERO,
                domain: 0,
                seq: 0,
            },
            owned: None,
            escalated: Cell::new(false),
            resched_buf: Vec::new(),
        }
    }

    // ----- Checkpoint / fork ----------------------------------------------

    /// True when the simulator holds no opaque closure anywhere — no
    /// queued [`Sim::schedule_at`]/[`Sim::schedule_in`] event and no
    /// pending task/transfer completion callback — so its entire state is
    /// data and [`Sim::fork`] is legal.
    ///
    /// A warmed-up simulator driven purely by [`DriverLogic`] drivers and
    /// detached work is always forkable; launching an application (which
    /// registers completion closures) makes it unforkable until that work
    /// drains.
    pub fn can_fork(&self) -> bool {
        self.user_events == 0 && self.task_done.is_empty() && self.flow_done.is_empty()
    }

    /// Forks the simulation: returns an independent simulator whose
    /// continuation is bit-identical to this one's. The topology and
    /// route table are shared (`Arc`), everything mutable — clock, event
    /// queue, hosts, flow table, driver state (RNGs, counters, sample
    /// stores), stats, trace buffer — is cloned.
    ///
    /// # Panics
    ///
    /// Panics when [`Sim::can_fork`] is false (an opaque closure is
    /// pending; closures cannot be cloned).
    pub fn fork(&self) -> Sim {
        assert!(
            self.can_fork(),
            "Sim::fork with a pending user closure (schedule a fork only at \
             quiescent boundaries, e.g. after warm-up and before launch)"
        );
        let forked = Sim {
            topo: Arc::clone(&self.topo),
            routes: Arc::clone(&self.routes),
            time: self.time,
            queue: self
                .queue
                .iter()
                .map(|Reverse(e)| Reverse(e.clone_data()))
                .collect(),
            seqs: self.seqs.clone(),
            node_domain: self.node_domain.clone(),
            num_domains: self.num_domains,
            driver_home: self.driver_home.clone(),
            hosts: self.hosts.clone(),
            host_generation: self.host_generation.clone(),
            flows: self.flows.clone(),
            net_generation: self.net_generation.clone(),
            next_task: self.next_task.clone(),
            next_flow: self.next_flow.clone(),
            task_done: HashMap::new(),
            flow_done: HashMap::new(),
            finished_flows: Vec::new(),
            drivers: self
                .drivers
                .iter()
                .map(|d| {
                    Some(
                        d.as_ref()
                            .expect("fork while a driver is firing")
                            .clone_box(),
                    )
                })
                .collect(),
            user_events: 0,
            node_up: self.node_up.clone(),
            link_up: self.link_up.clone(),
            killed_tasks: self.killed_tasks.clone(),
            aborted_flows: self.aborted_flows.clone(),
            stats: self.stats,
            tracer: self.tracer.clone(),
            dispatch_key: self.dispatch_key,
            owned: self.owned.clone(),
            escalated: Cell::new(self.escalated.get()),
            resched_buf: Vec::new(),
        };
        debug_assert_eq!(forked.queue.len(), self.queue.len());
        debug_assert_eq!(
            forked.queue.peek().map(|Reverse(e)| e.key),
            self.queue.peek().map(|Reverse(e)| e.key),
            "fork perturbed the event order"
        );
        forked
    }

    // ----- Partitioning ---------------------------------------------------

    /// Partitions the simulator into event-ordering domains: `node_domain`
    /// assigns every node (by index) a domain id. Must be called on a
    /// pristine simulator — before any event is scheduled, any driver is
    /// installed, or any task/flow is started — because domains govern
    /// sequence numbering and id minting from the very first action.
    ///
    /// Two runs that install the same per-domain drivers in *different*
    /// orders produce bit-identical traces, because every tie-break and
    /// every minted id is derived from per-domain counters rather than
    /// global program order.
    pub fn set_partition(&mut self, node_domain: &[u16]) {
        assert_eq!(
            node_domain.len(),
            self.hosts.len(),
            "partition must assign every node a domain"
        );
        assert!(
            self.time == SimTime::ZERO
                && self.queue.is_empty()
                && self.drivers.is_empty()
                && self.flows.is_empty()
                && self.seqs.iter().all(|&s| s == 0),
            "set_partition requires a pristine simulator"
        );
        let num_domains = node_domain.iter().copied().max().unwrap_or(0) + 1;
        self.node_domain = node_domain.to_vec();
        self.num_domains = num_domains;
        let n = num_domains as usize;
        self.seqs = vec![0; n];
        self.next_task = vec![1; n];
        self.next_flow = vec![1; n];
        self.net_generation = vec![0; n];
        self.flows.set_num_homes(num_domains);
    }

    /// Forks this simulator into a *shard* that executes only
    /// `owned_domains`: the event queue is filtered to those domains'
    /// events, the trace buffer starts empty (records before the split
    /// belong to the parent), and the crash/abort drain lists are
    /// cleared. Any interaction with a foreign domain — scheduling into
    /// it, starting a transfer touching it, reading its state — trips the
    /// shard's escalation flag (see [`Sim::run_until_or_escalate`])
    /// instead of silently computing with stale foreign state.
    ///
    /// Same legality rule as [`Sim::fork`]: panics while a user closure
    /// is pending.
    pub(crate) fn shard_fork(&self, owned_domains: &[u16]) -> Sim {
        let mut mask = vec![false; self.num_domains as usize];
        for &d in owned_domains {
            mask[d as usize] = true;
        }
        let mut shard = self.fork();
        shard.queue = self
            .queue
            .iter()
            .filter(|Reverse(e)| mask[e.key.domain as usize])
            .map(|Reverse(e)| Reverse(e.clone_data()))
            .collect();
        shard.killed_tasks.clear();
        shard.aborted_flows.clear();
        shard.tracer = self.tracer.as_ref().map(|t| Tracer::new(t.limit()));
        shard.owned = Some(mask.into_boxed_slice());
        shard.escalated = Cell::new(false);
        shard
    }

    /// True when this simulator executes `domain` (always true outside
    /// shards).
    #[inline]
    fn owns(&self, domain: u16) -> bool {
        match &self.owned {
            None => true,
            Some(mask) => mask[domain as usize],
        }
    }

    /// Records that `domain` was touched; in a shard that does not own
    /// it, this trips escalation.
    #[inline]
    fn note_domain(&self, domain: u16) {
        if !self.owns(domain) {
            self.escalated.set(true);
        }
    }

    /// Records that both endpoint domains of `edge` were touched.
    #[inline]
    fn note_link(&self, edge: EdgeId) {
        if self.owned.is_some() {
            let l = self.topo.link(edge);
            self.note_domain(self.domain_of(l.a()));
            self.note_domain(self.domain_of(l.b()));
        }
    }

    /// Records a whole-network observation (oracle snapshots, global flow
    /// counts): escalates unless this simulator owns every domain.
    #[inline]
    fn note_global(&self) {
        if let Some(mask) = &self.owned {
            if mask.iter().any(|&o| !o) {
                self.escalated.set(true);
            }
        }
    }

    /// True when a foreign-domain interaction has invalidated this shard.
    pub(crate) fn escalated(&self) -> bool {
        self.escalated.get()
    }

    /// Home domain of a flow id (its top 16 bits).
    #[inline]
    fn flow_home(id: FlowId) -> u16 {
        (id.0 >> 48) as u16
    }

    /// Number of partition domains (1 when unpartitioned).
    pub fn num_domains(&self) -> u16 {
        self.num_domains
    }

    /// Domain of a node (0 when unpartitioned).
    pub fn domain_of(&self, node: NodeId) -> u16 {
        self.node_domain.get(node.index()).copied().unwrap_or(0)
    }

    fn mint_task(&mut self, domain: u16) -> TaskId {
        let ctr = &mut self.next_task[domain as usize];
        debug_assert!(*ctr < 1 << 48, "task-id counter overflow");
        let id = TaskId((u64::from(domain) << 48) | *ctr);
        *ctr += 1;
        id
    }

    fn mint_flow(&mut self, domain: u16) -> FlowId {
        let ctr = &mut self.next_flow[domain as usize];
        debug_assert!(*ctr < 1 << 48, "flow-id counter overflow");
        let id = FlowId((u64::from(domain) << 48) | *ctr);
        *ctr += 1;
        id
    }

    // ----- Drivers --------------------------------------------------------

    /// Installs a recurring data-driven event source and returns its id.
    /// The driver fires only when scheduled (see
    /// [`Sim::schedule_driver_in`]); installation alone schedules nothing.
    /// The driver is homed in domain 0; partition-aware callers should
    /// use [`Sim::install_driver_at`].
    pub fn install_driver<T: DriverLogic>(&mut self, driver: T) -> DriverId {
        let slot = u32::try_from(self.drivers.len()).expect("too many drivers");
        self.drivers.push(Some(Box::new(driver)));
        self.driver_home.push(0);
        DriverId(slot)
    }

    /// Installs a driver *homed at a node*: its firings are sequenced in
    /// (and, under the parallel engine, executed by) that node's
    /// partition domain. On an unpartitioned simulator this is identical
    /// to [`Sim::install_driver`].
    pub fn install_driver_at<T: DriverLogic>(&mut self, home: NodeId, driver: T) -> DriverId {
        let slot = u32::try_from(self.drivers.len()).expect("too many drivers");
        let domain = self.domain_of(home);
        self.drivers.push(Some(Box::new(driver)));
        self.driver_home.push(domain);
        DriverId(slot)
    }

    /// Schedules driver `id` to fire `delay_secs` from now. A driver may
    /// hold any number of scheduled firings; each dispatch calls
    /// [`DriverLogic::fire`] once.
    pub fn schedule_driver_in(&mut self, delay_secs: f64, id: DriverId) {
        let at = self.time.after_secs_f64(delay_secs);
        let domain = self.driver_home[id.0 as usize];
        self.push(at, domain, EventKind::Driver { slot: id.0 });
    }

    /// Immutable access to an installed driver's state.
    ///
    /// # Panics
    ///
    /// Panics when `id` is unknown, holds a different type, or is
    /// currently firing.
    pub fn driver<T: DriverLogic>(&self, id: DriverId) -> &T {
        self.drivers[id.0 as usize]
            .as_deref()
            .expect("driver is currently firing")
            .as_any()
            .downcast_ref::<T>()
            .expect("driver type mismatch")
    }

    /// Mutable access to an installed driver's state (see [`Sim::driver`]).
    pub fn driver_mut<T: DriverLogic>(&mut self, id: DriverId) -> &mut T {
        self.drivers[id.0 as usize]
            .as_deref_mut()
            .expect("driver is currently firing")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("driver type mismatch")
    }

    /// Enables event tracing with a buffer of up to `limit` events (use
    /// `usize::MAX` for unbounded). Call [`Sim::take_trace`] to drain.
    pub fn enable_trace(&mut self, limit: usize) {
        self.tracer = Some(Tracer::new(limit));
    }

    /// Drains the trace buffer, returning the recorded events and the
    /// number of events dropped because the buffer was full.
    pub fn take_trace(&mut self) -> (Vec<TraceEvent>, u64) {
        self.tracer.as_mut().map(Tracer::take).unwrap_or_default()
    }

    #[inline]
    fn trace(&mut self, make: impl FnOnce(SimTime) -> TraceEvent) {
        if let Some(t) = self.tracer.as_mut() {
            let at = self.time;
            let key = self.dispatch_key;
            t.record(key, make(at));
        }
    }

    /// Drains the trace buffer with each record's dispatch key attached.
    /// Keys are unique per dispatch and strictly increasing within one
    /// simulator, so shard traces merge back into exact serial order.
    pub(crate) fn take_keyed_trace(&mut self) -> (Vec<(EventKey, TraceEvent)>, u64) {
        self.tracer
            .as_mut()
            .map(Tracer::take_keyed)
            .unwrap_or_default()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The topology as a shareable handle (cheap to clone; used by
    /// measurement layers that keep a structural reference).
    pub fn topology_shared(&self) -> Arc<Topology> {
        Arc::clone(&self.topo)
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    fn push(&mut self, at: SimTime, domain: u16, kind: EventKind) {
        debug_assert!(at >= self.time);
        if !self.owns(domain) {
            // A shard scheduling into a foreign domain: the event would
            // execute elsewhere. Drop it and mark the shard invalid.
            self.escalated.set(true);
            return;
        }
        let seq = self.seqs[domain as usize];
        self.seqs[domain as usize] += 1;
        self.queue.push(Reverse(QueuedEvent {
            key: EventKey { at, domain, seq },
            kind,
        }));
    }

    /// Schedules `f` to run at absolute time `at` (clamped to now). User
    /// closures are homed in domain 0: they exist only in serial phases
    /// (application launch and drain), never under the parallel engine.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) {
        let at = at.max(self.time);
        self.user_events += 1;
        self.push(at, 0, EventKind::User(Box::new(f)));
    }

    /// Schedules `f` to run `delay_secs` from now.
    pub fn schedule_in(&mut self, delay_secs: f64, f: impl FnOnce(&mut Sim) + 'static) {
        let at = self.time.after_secs_f64(delay_secs);
        self.user_events += 1;
        self.push(at, 0, EventKind::User(Box::new(f)));
    }

    // ----- CPU tasks ------------------------------------------------------

    fn host_mut(&mut self, node: NodeId) -> &mut Host {
        self.hosts[node.index()]
            .as_mut()
            .expect("CPU operations require a compute node")
    }

    fn reschedule_host(&mut self, node: NodeId) {
        let idx = node.index();
        self.host_generation[idx] += 1;
        let generation = self.host_generation[idx];
        let at = self.hosts[idx]
            .as_ref()
            .expect("compute node")
            .next_completion();
        if at != SimTime::NEVER {
            let domain = self.domain_of(node);
            self.push(
                at.max(self.time),
                domain,
                EventKind::HostWake {
                    host: idx,
                    generation,
                },
            );
        }
    }

    /// Starts a CPU task of `work` reference-seconds on `node`; `on_done`
    /// fires when it completes. Returns the task id.
    pub fn start_compute(
        &mut self,
        node: NodeId,
        work: f64,
        on_done: impl FnOnce(&mut Sim) + 'static,
    ) -> TaskId {
        self.note_domain(self.domain_of(node));
        let id = self.mint_task(self.domain_of(node));
        if !self.node_up[node.index()] {
            // A crashed host refuses work: the task is killed on arrival
            // and surfaced through `take_killed_tasks`; `on_done` never
            // fires.
            self.killed_tasks.push((node, id));
            self.trace(|at| TraceEvent::TaskKilled { at, node, id });
            return id;
        }
        let now = self.time;
        let host = self.host_mut(node);
        host.settle(now);
        host.add_task(id, work);
        self.task_done.insert(id, Box::new(on_done));
        self.reschedule_host(node);
        self.trace(|at| TraceEvent::TaskStarted { at, node, id, work });
        id
    }

    /// Starts a *detached* CPU task: like [`Sim::start_compute`] but with
    /// no completion callback, so it leaves no closure behind and keeps
    /// the simulator forkable. Background load generators use this.
    pub fn start_compute_detached(&mut self, node: NodeId, work: f64) -> TaskId {
        self.note_domain(self.domain_of(node));
        let id = self.mint_task(self.domain_of(node));
        if !self.node_up[node.index()] {
            self.killed_tasks.push((node, id));
            self.trace(|at| TraceEvent::TaskKilled { at, node, id });
            return id;
        }
        let now = self.time;
        let host = self.host_mut(node);
        host.settle(now);
        host.add_task(id, work);
        self.reschedule_host(node);
        self.trace(|at| TraceEvent::TaskStarted { at, node, id, work });
        id
    }

    /// Cancels a running CPU task; its completion callback is dropped.
    /// Returns true when the task was live on `node`.
    pub fn cancel_compute(&mut self, node: NodeId, id: TaskId) -> bool {
        self.note_domain(self.domain_of(node));
        let now = self.time;
        let host = self.host_mut(node);
        host.settle(now);
        let removed = host.remove_task(id);
        if removed {
            self.task_done.remove(&id);
            self.reschedule_host(node);
            self.trace(|at| TraceEvent::TaskCancelled { at, node, id });
        }
        removed
    }

    // ----- Flows ----------------------------------------------------------

    fn reschedule_net(&mut self, domain: u16) {
        let g = &mut self.net_generation[domain as usize];
        *g += 1;
        let generation = *g;
        // O(log heap) via the domain's completion heap; flows starved by
        // a zero-capacity link report NEVER and schedule nothing.
        let at = self.flows.next_wake_home(domain);
        if at != SimTime::NEVER {
            self.push(
                at.max(self.time),
                domain,
                EventKind::NetWake { domain, generation },
            );
        }
    }

    /// Reschedules the network wake of every home the last flow mutation
    /// touched (rate changes reported by the flow table) plus `extras`
    /// (the homes of the flows added/removed/finished by the mutation
    /// itself, whose rates may be unchanged). Each home is rescheduled
    /// once, in ascending order. Unpartitioned this is exactly one
    /// reschedule of domain 0 — the historical behaviour.
    fn resched_net_homes(&mut self, extras: &[u16]) {
        let mut homes = std::mem::take(&mut self.resched_buf);
        self.flows.drain_touched_into(&mut homes);
        for &d in extras {
            if !homes.contains(&d) {
                homes.push(d);
            }
        }
        homes.sort_unstable();
        for &d in &homes {
            self.reschedule_net(d);
        }
        homes.clear();
        self.resched_buf = homes;
    }

    fn resched_net(&mut self, trigger: u16) {
        self.resched_net_homes(&[trigger]);
    }

    /// Starts a bulk transfer of `bits` from `src` to `dst` along the fixed
    /// route; `on_done` fires when the last bit has arrived (transfer time
    /// plus one-way path latency). Panics when the nodes are disconnected.
    ///
    /// A transfer to self delivers after zero time (the paper's node set is
    /// connected through the network; local communication is free).
    pub fn start_transfer(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bits: f64,
        on_done: impl FnOnce(&mut Sim) + 'static,
    ) -> FlowId {
        if self.owned.is_some() {
            self.note_domain(self.domain_of(src));
            self.note_domain(self.domain_of(dst));
        }
        let id = self.mint_flow(self.domain_of(src));
        if !self.node_up[src.index()] || !self.node_up[dst.index()] {
            // A crashed endpoint aborts the transfer on arrival; `on_done`
            // never fires. Surfaced through `take_aborted_flows`.
            self.aborted_flows.push(id);
            self.trace(|at| TraceEvent::FlowAborted { at, id });
            return id;
        }
        if src == dst {
            self.stats.completed_flows += 1;
            self.schedule_in(0.0, on_done);
            return id;
        }
        let path = self
            .routes
            .resolve(&self.topo, src, dst)
            .expect("transfer endpoints must be connected");
        if self.owned.is_some() {
            for &(e, _) in &path.hops {
                self.note_link(e);
            }
        }
        let latency: f64 = path
            .hops
            .iter()
            .map(|&(e, _)| self.topo.link(e).latency())
            .sum();
        self.flows.settle(self.time);
        self.flows.add_flow(id, &path, bits);
        self.flow_done.insert(id, (latency, Box::new(on_done)));
        self.resched_net(Self::flow_home(id));
        self.trace(|at| TraceEvent::FlowStarted {
            at,
            id,
            src,
            dst,
            bits,
        });
        id
    }

    /// Starts a *detached* bulk transfer: like [`Sim::start_transfer`] but
    /// with no completion callback — the flow drains, frees its bandwidth
    /// and counts toward [`SimStats::completed_flows`], leaving no closure
    /// behind so the simulator stays forkable. Background traffic
    /// generators use this.
    pub fn start_transfer_detached(&mut self, src: NodeId, dst: NodeId, bits: f64) -> FlowId {
        if self.owned.is_some() {
            self.note_domain(self.domain_of(src));
            self.note_domain(self.domain_of(dst));
        }
        let id = self.mint_flow(self.domain_of(src));
        if !self.node_up[src.index()] || !self.node_up[dst.index()] {
            self.aborted_flows.push(id);
            self.trace(|at| TraceEvent::FlowAborted { at, id });
            return id;
        }
        if src == dst {
            self.stats.completed_flows += 1;
            return id;
        }
        let path = self
            .routes
            .resolve(&self.topo, src, dst)
            .expect("transfer endpoints must be connected");
        if self.owned.is_some() {
            for &(e, _) in &path.hops {
                self.note_link(e);
            }
        }
        self.flows.settle(self.time);
        self.flows.add_flow(id, &path, bits);
        self.resched_net(Self::flow_home(id));
        self.trace(|at| TraceEvent::FlowStarted {
            at,
            id,
            src,
            dst,
            bits,
        });
        id
    }

    /// Cancels a live flow, dropping its callback. Returns true when live.
    pub fn cancel_transfer(&mut self, id: FlowId) -> bool {
        self.note_domain(Self::flow_home(id));
        self.flows.settle(self.time);
        let removed = self.flows.remove_flow(id);
        if removed {
            self.flow_done.remove(&id);
            self.resched_net(Self::flow_home(id));
            self.trace(|at| TraceEvent::FlowCancelled { at, id });
        }
        removed
    }

    // ----- Fault injection ------------------------------------------------

    /// True when `node` has not crashed.
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.note_domain(self.domain_of(node));
        self.node_up[node.index()]
    }

    /// True when `edge` is administratively up. Its endpoints may still
    /// be down; see [`Sim::link_effective_up`].
    pub fn link_is_up(&self, edge: EdgeId) -> bool {
        self.note_link(edge);
        self.link_up[edge.index()]
    }

    /// True when traffic can actually cross `edge`: the link itself and
    /// both endpoint nodes are up.
    pub fn link_effective_up(&self, edge: EdgeId) -> bool {
        self.note_link(edge);
        let l = self.topo.link(edge);
        self.link_up[edge.index()] && self.node_up[l.a().index()] && self.node_up[l.b().index()]
    }

    /// Re-derives the effective capacity of `edges` from the current
    /// up/down state and applies any changes to the flow table in one
    /// cluster re-solve. Flows crossing a dead link starve at rate zero
    /// (they predict no completion and schedule nothing — the
    /// administratively-down path); restored links resume at their
    /// engineered rates.
    fn refresh_capacities(&mut self, trigger: u16, edges: &[EdgeId]) {
        let mut changes: Vec<(EdgeId, Direction, f64)> = Vec::with_capacity(edges.len() * 2);
        for &e in edges {
            let up = self.link_effective_up(e);
            let l = self.topo.link(e);
            for dir in [Direction::AtoB, Direction::BtoA] {
                let cap = if up { l.capacity(dir) } else { 0.0 };
                changes.push((e, dir, cap));
            }
        }
        self.flows.settle(self.time);
        if self.flows.set_capacities(&changes) {
            self.resched_net(trigger);
        }
    }

    /// Takes a link down (`up == false`) or restores it. Flows crossing
    /// a downed link stall (bytes already carried stay settled) and
    /// resume when the link returns. Returns true when the state
    /// actually changed.
    pub fn set_link_up(&mut self, edge: EdgeId, up: bool) -> bool {
        self.note_link(edge);
        if self.link_up[edge.index()] == up {
            return false;
        }
        self.link_up[edge.index()] = up;
        self.trace(|at| {
            if up {
                TraceEvent::LinkUp { at, edge }
            } else {
                TraceEvent::LinkDown { at, edge }
            }
        });
        let trigger = self.domain_of(self.topo.link(edge).a());
        self.refresh_capacities(trigger, &[edge]);
        true
    }

    /// Crashes a node: every task on its host is killed (surfaced via
    /// [`Sim::take_killed_tasks`], completion callbacks dropped), every
    /// flow terminating at it is aborted with its carried bytes settled
    /// (surfaced via [`Sim::take_aborted_flows`]), and all its incident
    /// links drop to zero effective capacity so flows routed *through*
    /// it stall. Returns true when the node was up.
    pub fn crash_node(&mut self, node: NodeId) -> bool {
        self.note_domain(self.domain_of(node));
        if !self.node_up[node.index()] {
            return false;
        }
        self.node_up[node.index()] = false;
        self.trace(|at| TraceEvent::NodeDown { at, node });
        if self.hosts[node.index()].is_some() {
            let now = self.time;
            let host = self.host_mut(node);
            host.settle(now);
            let killed = host.kill_all();
            self.reschedule_host(node);
            for id in killed {
                self.task_done.remove(&id);
                self.killed_tasks.push((node, id));
                self.trace(|at| TraceEvent::TaskKilled { at, node, id });
            }
        }
        self.flows.settle(self.time);
        let aborted = self.flows.flows_with_endpoint(node);
        if !aborted.is_empty() {
            let mut homes: Vec<u16> = Vec::with_capacity(aborted.len());
            for id in aborted {
                self.flows.remove_flow(id);
                self.flow_done.remove(&id);
                self.aborted_flows.push(id);
                self.trace(|at| TraceEvent::FlowAborted { at, id });
                let home = Self::flow_home(id);
                if !homes.contains(&home) {
                    homes.push(home);
                }
            }
            self.resched_net_homes(&homes);
        }
        let edges: Vec<EdgeId> = self.topo.neighbors(node).iter().map(|&(e, _)| e).collect();
        self.refresh_capacities(self.domain_of(node), &edges);
        true
    }

    /// Reboots a crashed node: it comes back with an empty run queue and
    /// its incident links (those not independently down) resume at their
    /// engineered capacities. Returns true when the node was down.
    pub fn reboot_node(&mut self, node: NodeId) -> bool {
        self.note_domain(self.domain_of(node));
        if self.node_up[node.index()] {
            return false;
        }
        self.node_up[node.index()] = true;
        self.trace(|at| TraceEvent::NodeUp { at, node });
        let edges: Vec<EdgeId> = self.topo.neighbors(node).iter().map(|&(e, _)| e).collect();
        self.refresh_capacities(self.domain_of(node), &edges);
        true
    }

    /// Drains the `(node, task)` pairs killed by node crashes since the
    /// last call. The app driver polls this to learn that work it
    /// submitted will never complete.
    pub fn take_killed_tasks(&mut self) -> Vec<(NodeId, TaskId)> {
        std::mem::take(&mut self.killed_tasks)
    }

    /// Drains the flow ids aborted by endpoint crashes since the last
    /// call.
    pub fn take_aborted_flows(&mut self) -> Vec<FlowId> {
        std::mem::take(&mut self.aborted_flows)
    }

    // ----- Measurement interface -----------------------------------------

    /// Instantaneous run-queue length of a compute node.
    pub fn run_queue(&self, node: NodeId) -> usize {
        self.note_domain(self.domain_of(node));
        self.hosts[node.index()]
            .as_ref()
            .expect("compute node")
            .run_queue()
    }

    /// Load average of a compute node as of now (damped analytically; does
    /// not mutate state).
    pub fn load_avg(&self, node: NodeId) -> f64 {
        self.note_domain(self.domain_of(node));
        let host = self.hosts[node.index()].as_ref().expect("compute node");
        // Analytic continuation of the host EWMA to the current instant.
        let mut h = host.clone();
        h.settle(self.time);
        h.load_avg()
    }

    /// Aggregate flow rate on a directed link right now, bits/s.
    pub fn link_rate(&self, edge: EdgeId, dir: Direction) -> f64 {
        self.note_link(edge);
        self.flows.link_rate(edge, dir)
    }

    /// Cumulative bits carried by a directed link up to now (SNMP-style
    /// octet counter). Exact at any instant: the flow table accumulates on
    /// rate change and extrapolates to the engine clock on read.
    pub fn link_bits(&self, edge: EdgeId, dir: Direction) -> f64 {
        self.note_link(edge);
        self.flows.link_bits_at(edge, dir, self.time)
    }

    /// Number of live flows (a whole-network observation).
    pub fn flow_count(&self) -> usize {
        self.note_global();
        self.flows.len()
    }

    /// Reference-seconds of CPU work completed on a node so far.
    pub fn completed_work(&self, node: NodeId) -> f64 {
        self.note_domain(self.domain_of(node));
        self.hosts[node.index()]
            .as_ref()
            .expect("compute node")
            .completed_work()
    }

    /// A topology snapshot annotated with the *true* instantaneous
    /// conditions: per-node load averages and per-direction link
    /// utilizations equal to current flow rates. This is the "perfect
    /// oracle" measurement; `nodesel-remos` layers realistic sampling on
    /// top.
    pub fn oracle_snapshot(&self) -> Topology {
        self.note_global();
        let mut t = (*self.topo).clone();
        let computes: Vec<NodeId> = t.compute_nodes().collect();
        for n in computes {
            t.set_load_avg(n, self.load_avg(n));
        }
        for e in t.edge_ids().collect::<Vec<_>>() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                t.set_link_used(e, dir, self.flows.link_rate(e, dir));
            }
        }
        t
    }

    // ----- Event loop -----------------------------------------------------

    /// Dispatches the next event, if any. Returns false when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.key.at >= self.time, "event from the past");
        self.time = ev.key.at;
        self.dispatch_key = ev.key;
        self.stats.events += 1;
        match ev.kind {
            EventKind::User(f) => {
                self.user_events -= 1;
                f(self);
            }
            EventKind::HostWake { host, generation } => {
                if generation == self.host_generation[host] {
                    self.on_host_wake(host);
                }
            }
            EventKind::NetWake { domain, generation } => {
                if generation == self.net_generation[domain as usize] {
                    self.on_net_wake(domain);
                }
            }
            EventKind::Driver { slot } => {
                // The slot is vacated while firing so the driver can take
                // `&mut Sim` without aliasing itself; `Sim::fork` and the
                // accessors treat a vacant slot as an error.
                let mut d = self.drivers[slot as usize]
                    .take()
                    .expect("driver fired reentrantly");
                d.fire_obj(self, DriverId(slot));
                self.drivers[slot as usize] = Some(d);
            }
        }
        true
    }

    fn on_host_wake(&mut self, host: usize) {
        let node = NodeId::from_index(host);
        let now = self.time;
        let h = self.host_mut(node);
        h.settle(now);
        let finished = h.take_finished();
        self.reschedule_host(node);
        for id in finished {
            self.stats.completed_tasks += 1;
            self.trace(|at| TraceEvent::TaskFinished { at, node, id });
            if let Some(cb) = self.task_done.remove(&id) {
                cb(self);
            }
        }
    }

    fn on_net_wake(&mut self, domain: u16) {
        self.flows.settle(self.time);
        let mut finished = std::mem::take(&mut self.finished_flows);
        self.flows.take_finished_home_into(domain, &mut finished);
        self.resched_net(domain);
        for &id in &finished {
            self.stats.completed_flows += 1;
            self.trace(|at| TraceEvent::FlowFinished { at, id });
            if let Some((latency, cb)) = self.flow_done.remove(&id) {
                // The last bit still has to propagate to the receiver.
                self.schedule_in(latency, cb);
            }
        }
        finished.clear();
        self.finished_flows = finished;
    }

    /// Runs until the event queue is exhausted; returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.time
    }

    /// Runs all events up to and including `limit`, then sets the clock to
    /// `limit`. Later events stay queued.
    pub fn run_until(&mut self, limit: SimTime) {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.key.at > limit {
                break;
            }
            self.step();
        }
        self.time = self.time.max(limit);
    }

    /// Runs for `secs` simulated seconds from now.
    pub fn run_for(&mut self, secs: f64) {
        let limit = self.time.after_secs_f64(secs);
        self.run_until(limit);
    }

    /// Timestamp of the earliest queued event, if any. The parallel
    /// engine uses this to size conservative windows.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.key.at)
    }

    /// [`Sim::run_until`] that stops at the first foreign-domain
    /// interaction. Returns true when the run completed cleanly; false
    /// when the shard escalated (its state is invalid and must be
    /// discarded — the clock is left wherever the run stopped).
    pub(crate) fn run_until_or_escalate(&mut self, limit: SimTime) -> bool {
        if self.escalated.get() {
            return false;
        }
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.key.at > limit {
                break;
            }
            self.step();
            if self.escalated.get() {
                return false;
            }
        }
        self.time = self.time.max(limit);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::{chain, star};
    use nodesel_topology::units::MBPS;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn compute_task_completion_time() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let done = Rc::new(RefCell::new(None));
        let d = done.clone();
        sim.start_compute(ids[0], 5.0, move |s| {
            *d.borrow_mut() = Some(s.now());
        });
        sim.run();
        assert_eq!(*done.borrow(), Some(t(5.0)));
        assert_eq!(sim.stats().completed_tasks, 1);
    }

    #[test]
    fn background_task_slows_application_task() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        sim.start_compute(ids[0], 100.0, |_| {});
        let done = Rc::new(RefCell::new(None));
        let d = done.clone();
        sim.start_compute(ids[0], 5.0, move |s| {
            *d.borrow_mut() = Some(s.now());
        });
        sim.run_for(30.0);
        // Shared with one competitor: 5 units at rate 0.5 => 10 s.
        assert_eq!(*done.borrow(), Some(t(10.0)));
    }

    #[test]
    fn transfer_takes_bandwidth_time_plus_latency() {
        let mut topo = nodesel_topology::Topology::new();
        let a = topo.add_compute_node("a", 1.0);
        let b = topo.add_compute_node("b", 1.0);
        topo.add_link_full(a, b, 100.0 * MBPS, 100.0 * MBPS, 0.01);
        let mut sim = Sim::new(topo);
        let done = Rc::new(RefCell::new(None));
        let d = done.clone();
        sim.start_transfer(a, b, 100.0 * MBPS, move |s| {
            *d.borrow_mut() = Some(s.now());
        });
        sim.run();
        // 1 s of transfer + 10 ms propagation.
        let finished = done.borrow().unwrap();
        assert!((finished.as_secs_f64() - 1.01).abs() < 1e-6);
    }

    #[test]
    fn competing_transfers_share_and_then_speed_up() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let t1 = Rc::new(RefCell::new(None));
        let t2 = Rc::new(RefCell::new(None));
        let (d1, d2) = (t1.clone(), t2.clone());
        // Both flows into n2: 100 Mbit and 50 Mbit.
        sim.start_transfer(ids[0], ids[2], 100.0 * MBPS, move |s| {
            *d1.borrow_mut() = Some(s.now().as_secs_f64());
        });
        sim.start_transfer(ids[1], ids[2], 50.0 * MBPS, move |s| {
            *d2.borrow_mut() = Some(s.now().as_secs_f64());
        });
        sim.run();
        // Shared 50/50 until the small one drains at 1 s; the big one then
        // has 50 Mbit left at full rate: total 1.5 s.
        assert!((t2.borrow().unwrap() - 1.0).abs() < 1e-6);
        assert!((t1.borrow().unwrap() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn self_transfer_is_instant() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let done = Rc::new(RefCell::new(false));
        let d = done.clone();
        sim.start_transfer(ids[0], ids[0], 1e9, move |_| {
            *d.borrow_mut() = true;
        });
        sim.run();
        assert!(*done.borrow());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn user_events_fire_in_order() {
        let (topo, _) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (i, delay) in [(0, 2.0), (1, 1.0), (2, 1.0)] {
            let l = log.clone();
            sim.schedule_in(delay, move |_| l.borrow_mut().push(i));
        }
        sim.run();
        // Same-time events dispatch in scheduling order: 1 before 2.
        assert_eq!(*log.borrow(), vec![1, 2, 0]);
    }

    #[test]
    fn cancel_compute_drops_callback() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        let id = sim.start_compute(ids[0], 5.0, move |_| *f.borrow_mut() = true);
        sim.run_for(1.0);
        assert!(sim.cancel_compute(ids[0], id));
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.stats().completed_tasks, 0);
    }

    #[test]
    fn cancel_transfer_frees_bandwidth() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let id1 = sim.start_transfer(ids[0], ids[2], 1e12, |_| {});
        let done = Rc::new(RefCell::new(None));
        let d = done.clone();
        sim.start_transfer(ids[1], ids[2], 100.0 * MBPS, move |s| {
            *d.borrow_mut() = Some(s.now().as_secs_f64());
        });
        sim.run_for(0.5); // both at 50 Mbps; 25 Mbit of flow 2 done
        assert!(sim.cancel_transfer(id1));
        sim.run_for(10.0);
        // Remaining 75 Mbit at 100 Mbps => total 0.5 + 0.75 = 1.25 s.
        assert!((done.borrow().unwrap() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn oracle_snapshot_reflects_conditions() {
        let (topo, ids) = chain(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        sim.start_compute(ids[0], 1e9, |_| {});
        sim.start_transfer(ids[0], ids[2], 1e18, |_| {});
        sim.run_for(300.0);
        let snap = sim.oracle_snapshot();
        // Node 0 has one long-running job => load ≈ 1, cpu ≈ 0.5.
        assert!(snap.node(ids[0]).load_avg() > 0.98);
        assert!(snap.node(ids[1]).load_avg() < 1e-6);
        // The flow saturates both links in its direction.
        let e = snap.edge_ids().next().unwrap();
        assert!(snap.link(e).bw() < 1.0);
    }

    #[test]
    fn run_until_stops_clock_at_limit() {
        let (topo, _) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        sim.schedule_in(10.0, move |_| *f.borrow_mut() = true);
        sim.run_until(t(5.0));
        assert_eq!(sim.now(), t(5.0));
        assert!(!*fired.borrow());
        sim.run_until(t(10.0));
        assert!(*fired.borrow());
    }

    #[test]
    fn starved_transfer_neither_completes_nor_spins() {
        // The a->b direction is administratively down (zero capacity):
        // max-min allocates the crossing flow rate 0, so it must neither
        // schedule a finite completion nor spin the net-wake loop.
        let mut topo = nodesel_topology::Topology::new();
        let a = topo.add_compute_node("a", 1.0);
        let b = topo.add_compute_node("b", 1.0);
        topo.add_link_full(a, b, 0.0, 100.0 * MBPS, 0.0);
        let mut sim = Sim::new(topo);
        sim.start_transfer(a, b, 1e9, |_| panic!("starved flow must not complete"));
        sim.run_until(t(3600.0));
        assert_eq!(sim.stats().completed_flows, 0);
        assert_eq!(sim.flow_count(), 1);
        assert_eq!(
            sim.stats().events,
            0,
            "net-wake loop spun on a starved flow"
        );
        // The reverse (live) direction is unaffected.
        let done = Rc::new(RefCell::new(None));
        let d = done.clone();
        sim.start_transfer(b, a, 100.0 * MBPS, move |s| {
            *d.borrow_mut() = Some(s.now().as_secs_f64());
        });
        sim.run_until(t(7200.0));
        assert!((done.borrow().unwrap() - 3601.0).abs() < 1e-6);
        assert_eq!(sim.flow_count(), 1);
    }

    #[test]
    fn reference_engine_runs_identically() {
        let run = |engine| {
            let (topo, ids) = star(4, 100.0 * MBPS);
            let mut sim = Sim::with_flow_engine(topo, engine);
            sim.enable_trace(usize::MAX);
            for (i, &n) in ids.iter().enumerate() {
                let dst = ids[(i + 1) % ids.len()];
                sim.start_transfer(n, dst, 10.0 * MBPS * (i + 1) as f64, |_| {});
            }
            sim.run();
            (sim.now(), sim.stats(), sim.take_trace().0)
        };
        assert_eq!(
            run(crate::flows::FlowEngine::Incremental),
            run(crate::flows::FlowEngine::Reference)
        );
    }

    /// Poisson-ish background load/traffic driver used by the fork tests:
    /// alternates a detached compute task and a detached transfer on a
    /// deterministic pseudo-random schedule derived from its own counter.
    #[derive(Clone)]
    struct Churn {
        nodes: Vec<NodeId>,
        state: u64,
        fired: u64,
    }

    impl Churn {
        fn next(&mut self) -> u64 {
            // SplitMix64 step: cloneable, deterministic.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl DriverLogic for Churn {
        fn fire(&mut self, sim: &mut Sim, me: DriverId) {
            self.fired += 1;
            let r = self.next();
            let a = self.nodes[(r as usize) % self.nodes.len()];
            let b = self.nodes[((r >> 16) as usize) % self.nodes.len()];
            if r & 1 == 0 {
                sim.start_compute_detached(a, 0.1 + (r % 97) as f64 / 50.0);
            } else if a != b {
                sim.start_transfer_detached(a, b, 1.0 * MBPS * (1 + r % 13) as f64);
            }
            let gap = 0.05 + (r % 31) as f64 / 40.0;
            sim.schedule_driver_in(gap, me);
        }
    }

    fn churn_sim(seed: u64) -> Sim {
        let (topo, ids) = star(5, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let d = sim.install_driver(Churn {
            nodes: ids,
            state: seed,
            fired: 0,
        });
        sim.schedule_driver_in(0.0, d);
        sim
    }

    #[test]
    fn forked_continuation_is_bit_identical() {
        let mut warm = churn_sim(42);
        warm.enable_trace(usize::MAX);
        warm.run_for(200.0);
        assert!(warm.can_fork());

        let run_on = |mut s: Sim| {
            s.run_for(300.0);
            (s.now(), s.stats(), s.take_trace().0)
        };
        let fork = warm.fork();
        let forked = run_on(fork);
        let straight = run_on(warm);
        assert_eq!(forked.0, straight.0);
        assert_eq!(forked.1, straight.1);
        assert_eq!(forked.2, straight.2);
        assert!(forked.1.events > 1000, "churn driver barely ran");
    }

    #[test]
    fn forks_are_independent() {
        let mut warm = churn_sim(7);
        warm.run_for(50.0);
        let mut a = warm.fork();
        let mut b = warm.fork();
        // Divergent injected work must not leak between forks.
        let (n0, n1) = {
            let d = warm.driver::<Churn>(DriverId(0));
            (d.nodes[0], d.nodes[1])
        };
        a.start_compute_detached(n0, 1e6);
        a.run_for(100.0);
        b.run_for(100.0);
        warm.run_for(100.0);
        assert_eq!(b.stats(), warm.stats());
        assert!(a.load_avg(n0) > 0.9);
        assert!(b.load_avg(n0) < 0.9);
        assert!(a.run_queue(n1) == b.run_queue(n1) || a.stats() != b.stats());
    }

    #[test]
    fn driver_state_is_queryable_and_forked() {
        let mut warm = churn_sim(3);
        warm.run_for(100.0);
        let fired = warm.driver::<Churn>(DriverId(0)).fired;
        assert!(fired > 100);
        let mut f = warm.fork();
        assert_eq!(f.driver::<Churn>(DriverId(0)).fired, fired);
        f.run_for(10.0);
        assert!(f.driver::<Churn>(DriverId(0)).fired > fired);
        // The original's driver state is untouched by the fork's progress.
        assert_eq!(warm.driver::<Churn>(DriverId(0)).fired, fired);
        // driver_mut reaches the same state.
        warm.driver_mut::<Churn>(DriverId(0)).fired = 0;
        assert_eq!(warm.driver::<Churn>(DriverId(0)).fired, 0);
    }

    #[test]
    fn can_fork_tracks_pending_closures() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        assert!(sim.can_fork());
        sim.schedule_in(1.0, |_| {});
        assert!(!sim.can_fork());
        sim.run();
        assert!(sim.can_fork());
        sim.start_compute(ids[0], 1.0, |_| {});
        assert!(!sim.can_fork());
        sim.run();
        assert!(sim.can_fork());
        sim.start_transfer(ids[0], ids[1], 1.0 * MBPS, |_| {});
        assert!(!sim.can_fork());
        sim.run();
        assert!(sim.can_fork());
        // Detached work keeps the simulator forkable.
        sim.start_compute_detached(ids[0], 5.0);
        sim.start_transfer_detached(ids[0], ids[1], 1e9);
        assert!(sim.can_fork());
    }

    #[test]
    #[should_panic(expected = "pending user closure")]
    fn fork_panics_with_pending_closure() {
        let (topo, _) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        sim.schedule_in(1.0, |_| {});
        let _ = sim.fork();
    }

    /// Two disconnected 3-host subnets plus the node → domain map.
    fn federated_pair() -> (Topology, Vec<Vec<NodeId>>, Vec<u16>) {
        let mut topo = Topology::new();
        let mut subnets = Vec::new();
        let mut node_domain = Vec::new();
        for s in 0..2u16 {
            let sw = topo.add_network_node(format!("s{s}-sw"));
            node_domain.push(s);
            let mut hosts = Vec::new();
            for h in 0..3 {
                let n = topo.add_compute_node(format!("s{s}-h{h}"), 1.0);
                node_domain.push(s);
                topo.add_link(sw, n, 100.0 * MBPS);
                hosts.push(n);
            }
            subnets.push(hosts);
        }
        (topo, subnets, node_domain)
    }

    #[test]
    fn permuted_installation_runs_identically() {
        // The ISSUE-6 regression: with domain-scoped event keys, the order
        // in which unrelated subnets' drivers are *installed* must not
        // change the dispatch order (it used to, via the global insertion
        // counter that broke timestamp ties).
        let run = |order: [usize; 2]| {
            let (topo, subnets, node_domain) = federated_pair();
            let mut sim = Sim::new(topo);
            sim.set_partition(&node_domain);
            sim.enable_trace(usize::MAX);
            for &s in &order {
                let d = sim.install_driver_at(
                    subnets[s][0],
                    Churn {
                        nodes: subnets[s].clone(),
                        state: 1000 + s as u64,
                        fired: 0,
                    },
                );
                sim.schedule_driver_in(0.0, d);
            }
            sim.run_for(50.0);
            (sim.now(), sim.stats(), sim.take_trace().0)
        };
        let ab = run([0, 1]);
        let ba = run([1, 0]);
        assert_eq!(ab.0, ba.0);
        assert_eq!(ab.1, ba.1);
        assert_eq!(ab.2, ba.2);
        assert!(ab.1.events > 100, "churn drivers barely ran");
    }

    /// Installs per-subnet load for the sharding tests: churn traffic
    /// plus scheduled and stochastic faults, all homed inside `hosts`.
    fn install_subnet_churn(sim: &mut Sim, hosts: &[NodeId], seed: u64) {
        use crate::fault::{install_faults_at, FaultAction, FaultPlan, Flap, FlapTarget};
        let d = sim.install_driver_at(
            hosts[0],
            Churn {
                nodes: hosts.to_vec(),
                state: seed,
                fired: 0,
            },
        );
        sim.schedule_driver_in(0.0, d);
        install_faults_at(
            sim,
            hosts[0],
            &FaultPlan {
                scheduled: vec![
                    (40.0, FaultAction::CrashNode(hosts[2])),
                    (55.0, FaultAction::RebootNode(hosts[2])),
                ],
                flaps: vec![Flap {
                    target: FlapTarget::Node(hosts[1]),
                    mean_up: 25.0,
                    mean_down: 4.0,
                }],
                seed: seed ^ 0xF00D,
            },
        );
    }

    #[test]
    fn sharded_forks_reproduce_serial_partitioned_run() {
        let build = || {
            let (topo, subnets, node_domain) = federated_pair();
            let mut sim = Sim::new(topo);
            sim.set_partition(&node_domain);
            sim.enable_trace(usize::MAX);
            for (s, hosts) in subnets.iter().enumerate() {
                install_subnet_churn(&mut sim, hosts, 7 + s as u64);
            }
            sim
        };
        let horizon = t(150.0);

        let mut serial = build();
        serial.run_until(horizon);
        let serial_stats = serial.stats();
        let (serial_trace, _) = serial.take_keyed_trace();
        assert!(serial_stats.events > 500, "churn barely ran");

        // Split at t=0 into one shard per domain, run them to the same
        // horizon independently, and merge by dispatch key.
        let master = build();
        let base = master.stats();
        let mut total = base;
        let mut merged = Vec::new();
        for domain in 0..2u16 {
            let mut shard = master.shard_fork(&[domain]);
            assert!(
                shard.run_until_or_escalate(horizon),
                "disconnected subnets must not escalate"
            );
            assert_eq!(shard.now(), horizon);
            let s = shard.stats();
            total.completed_tasks += s.completed_tasks - base.completed_tasks;
            total.completed_flows += s.completed_flows - base.completed_flows;
            total.events += s.events - base.events;
            let (tr, dropped) = shard.take_keyed_trace();
            assert_eq!(dropped, 0);
            merged.extend(tr);
        }
        merged.sort_by_key(|&(k, _)| k);
        assert_eq!(total, serial_stats, "merged stats diverge from serial");
        assert_eq!(merged, serial_trace, "merged trace diverges from serial");
    }

    #[test]
    fn shard_owning_every_domain_is_a_plain_fork() {
        let (topo, subnets, node_domain) = federated_pair();
        let mut sim = Sim::new(topo);
        sim.set_partition(&node_domain);
        sim.enable_trace(usize::MAX);
        for (s, hosts) in subnets.iter().enumerate() {
            install_subnet_churn(&mut sim, hosts, 31 + s as u64);
        }
        let mut shard = sim.shard_fork(&[0, 1]);
        assert!(shard.run_until_or_escalate(t(80.0)));
        sim.run_until(t(80.0));
        assert_eq!(shard.stats(), sim.stats());
        assert_eq!(shard.take_keyed_trace(), sim.take_keyed_trace());
    }

    /// Two subnets joined by a trunk, cut along the trunk: a *connected*
    /// partition, so cross-domain actions are routable and must trip
    /// escalation rather than compute with stale foreign state.
    fn trunked_pair() -> (Topology, Vec<Vec<NodeId>>, Vec<u16>) {
        let (mut topo, subnets, node_domain) = federated_pair();
        let sw0 = topo.node_by_name("s0-sw").unwrap();
        let sw1 = topo.node_by_name("s1-sw").unwrap();
        topo.add_link_full(sw0, sw1, 50.0 * MBPS, 50.0 * MBPS, 2e-3);
        (topo, subnets, node_domain)
    }

    #[test]
    fn foreign_interaction_escalates_shard() {
        let (topo, subnets, node_domain) = trunked_pair();
        let mut sim = Sim::new(topo);
        sim.set_partition(&node_domain);
        install_subnet_churn(&mut sim, &subnets[0], 3);
        install_subnet_churn(&mut sim, &subnets[1], 4);

        // A cross-domain transfer invalidates the shard immediately.
        let mut shard = sim.shard_fork(&[0]);
        assert!(!shard.escalated());
        shard.start_transfer_detached(subnets[0][0], subnets[1][0], 1e9);
        assert!(shard.escalated());
        assert!(!shard.run_until_or_escalate(t(10.0)));

        // So does merely *reading* foreign state mid-run.
        let mut shard = sim.shard_fork(&[0]);
        let probe = subnets[1][1];
        shard.schedule_in(5.0, move |s| {
            let _ = s.load_avg(probe);
        });
        assert!(!shard.run_until_or_escalate(t(10.0)));
        assert!(shard.escalated());

        // Whole-network observations escalate too.
        let shard = sim.shard_fork(&[0]);
        let _ = shard.flow_count();
        assert!(shard.escalated());

        // Domain-internal work on the same cut runs clean.
        let mut shard = sim.shard_fork(&[0]);
        assert!(shard.run_until_or_escalate(t(10.0)));
        assert!(shard.stats().events > 0);
    }

    #[test]
    fn detached_transfer_to_self_counts_and_schedules_nothing() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        sim.start_transfer_detached(ids[0], ids[0], 1e9);
        assert_eq!(sim.stats().completed_flows, 1);
        assert!(!sim.step());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (topo, ids) = star(4, 100.0 * MBPS);
            let mut sim = Sim::new(topo);
            for (i, &n) in ids.iter().enumerate() {
                sim.start_compute(n, 1.0 + i as f64, |_| {});
                let dst = ids[(i + 1) % ids.len()];
                sim.start_transfer(n, dst, 10.0 * MBPS * (i + 1) as f64, |_| {});
            }
            sim.run();
            (sim.now(), sim.stats())
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::TraceEvent;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    #[test]
    fn trace_records_lifecycles_in_order() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        sim.enable_trace(usize::MAX);
        sim.start_compute(ids[0], 1.0, |_| {});
        sim.start_transfer(ids[0], ids[1], 50.0 * MBPS, |_| {});
        sim.run();
        let (events, dropped) = sim.take_trace();
        assert_eq!(dropped, 0);
        let kinds: Vec<&'static str> = events
            .iter()
            .map(|e| match e {
                TraceEvent::TaskStarted { .. } => "ts",
                TraceEvent::TaskFinished { .. } => "tf",
                TraceEvent::FlowStarted { .. } => "fs",
                TraceEvent::FlowFinished { .. } => "ff",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["ts", "fs", "ff", "tf"]);
        // Timestamps are monotone.
        assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
        // The flow (0.5 s) finishes before the task (1 s).
        assert_eq!(events[2].at(), SimTime::from_secs_f64(0.5));
        assert_eq!(events[3].at(), SimTime::from_secs(1));
    }

    #[test]
    fn trace_records_cancellations() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        sim.enable_trace(usize::MAX);
        let t = sim.start_compute(ids[0], 100.0, |_| {});
        let f = sim.start_transfer(ids[0], ids[1], 1e12, |_| {});
        sim.run_for(1.0);
        sim.cancel_compute(ids[0], t);
        sim.cancel_transfer(f);
        sim.run_for(1.0);
        let (events, _) = sim.take_trace();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::TaskCancelled { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::FlowCancelled { .. })));
    }

    #[test]
    fn traces_are_bit_identical_across_runs() {
        let run = || {
            let (topo, ids) = star(4, 100.0 * MBPS);
            let mut sim = Sim::new(topo);
            sim.enable_trace(usize::MAX);
            for (i, &n) in ids.iter().enumerate() {
                sim.start_compute(n, 0.5 + i as f64, |_| {});
                sim.start_transfer(n, ids[(i + 1) % 4], 20.0 * MBPS, |_| {});
            }
            sim.run();
            sim.take_trace().0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disabled_trace_returns_empty() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        sim.start_compute(ids[0], 1.0, |_| {});
        sim.run();
        let (events, dropped) = sim.take_trace();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }
}
