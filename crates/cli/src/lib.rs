//! Library behind the `nodesel` command-line tool.
//!
//! Every command is a pure function from parsed arguments to an output
//! string (plus optional file side effects handled in `main`), so the
//! full command surface is unit-testable without spawning processes.
//!
//! Commands:
//!
//! * `generate <kind> [params] [--seed S]` — emit a topology as JSON
//!   (kinds: `testbed`, `figure1`, `star N`, `dumbbell N`,
//!   `tree DEPTH FANOUT`, `ring N`, `grid R C`, `random COMPUTE NETWORK`);
//! * `perturb <topo.json> --seed S [--max-load L] [--max-util U]` —
//!   randomize conditions on an existing topology;
//! * `inspect <topo.json>` — print structural metrics;
//! * `select <topo.json> -m N [options]` — run the selection algorithms.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use nodesel_core::{
    balanced, max_bandwidth, max_compute, pairwise_latency, select_within_latency, Constraints,
    GreedyPolicy, Selection, Weights,
};
use nodesel_topology::builders;
use nodesel_topology::io::{from_json, nodes_by_name, to_json};
use nodesel_topology::metrics::metrics;
use nodesel_topology::testbeds;
use nodesel_topology::units::MBPS;
use nodesel_topology::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// CLI errors: user-facing messages.
#[derive(Debug)]
pub struct CliError(pub String);

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
nodesel — automatic node selection for applications on shared networks

USAGE:
  nodesel generate <kind> [params] [--seed S]      emit topology JSON to stdout
      kinds: testbed | figure1 | star N | dumbbell N | tree DEPTH FANOUT
             | ring N | grid ROWS COLS | random COMPUTE NETWORK
  nodesel perturb <topo.json> --seed S [--max-load L] [--max-util U]
                                                   randomize conditions, emit JSON
  nodesel inspect <topo.json>                      print structural metrics
  nodesel select <topo.json> -m N [options]        run node selection
      --objective compute|comm|balanced   (default balanced)
      --compute-priority F | --comm-priority F
      --min-bw MBPS        pairwise bandwidth floor
      --min-cpu F          per-node available-CPU floor
      --max-latency MS     pairwise latency bound (tree-exact)
      --require a,b        names that must be selected
      --allow a,b,c        restrict the candidate pool
      --faithful           use the verbatim Figure 3 termination rule
      --dot                also print a Graphviz rendering
      --json               machine-readable output
";

/// Simple positional/flag argument cursor.
struct Args<'a> {
    items: &'a [String],
    pos: usize,
}

impl<'a> Args<'a> {
    fn new(items: &'a [String]) -> Self {
        Args { items, pos: 0 }
    }

    fn next_positional(&mut self) -> Option<&'a str> {
        while self.pos < self.items.len() {
            let item = &self.items[self.pos];
            self.pos += 1;
            if !item.starts_with("--") && item != "-m" {
                return Some(item);
            }
            // Skip a flag's value if it takes one.
            if flag_takes_value(item) {
                self.pos += 1;
            }
        }
        None
    }
}

fn flag_takes_value(flag: &str) -> bool {
    matches!(
        flag,
        "-m" | "--seed"
            | "--max-load"
            | "--max-util"
            | "--objective"
            | "--compute-priority"
            | "--comm-priority"
            | "--min-bw"
            | "--min-cpu"
            | "--max-latency"
            | "--require"
            | "--allow"
    )
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_f64(args: &[String], flag: &str) -> Result<Option<f64>, CliError> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| err(format!("{flag} expects a number, got {v:?}"))),
    }
}

fn parse_usize(args: &[String], flag: &str) -> Result<Option<usize>, CliError> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v
            .parse::<usize>()
            .map(Some)
            .map_err(|_| err(format!("{flag} expects an integer, got {v:?}"))),
    }
}

/// `generate` command.
pub fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let mut pos = Args::new(args);
    let kind = pos.next_positional().ok_or_else(|| err(USAGE))?;
    let seed = parse_usize(args, "--seed")?.unwrap_or(0) as u64;
    let need = |n: Option<&str>, what: &str| -> Result<usize, CliError> {
        n.ok_or_else(|| err(format!("missing {what}")))?
            .parse::<usize>()
            .map_err(|_| err(format!("{what} must be an integer")))
    };
    let topo: Topology = match kind {
        "testbed" => testbeds::cmu_testbed().topo,
        "figure1" => testbeds::figure1().topo,
        "star" => {
            let n = need(pos.next_positional(), "leaf count")?;
            if n == 0 {
                return Err(err("star needs at least one leaf"));
            }
            builders::star(n, builders::DEFAULT_CAPACITY).0
        }
        "dumbbell" => {
            let n = need(pos.next_positional(), "per-side count")?;
            builders::dumbbell(n, builders::DEFAULT_CAPACITY, builders::DEFAULT_CAPACITY).0
        }
        "tree" => {
            let d = need(pos.next_positional(), "depth")?;
            let f = need(pos.next_positional(), "fanout")?;
            builders::switch_tree(d, f, builders::DEFAULT_CAPACITY).0
        }
        "ring" => {
            let n = need(pos.next_positional(), "node count")?;
            if n < 3 {
                return Err(err("a ring needs at least three nodes"));
            }
            builders::ring(n, builders::DEFAULT_CAPACITY).0
        }
        "grid" => {
            let r = need(pos.next_positional(), "rows")?;
            let c = need(pos.next_positional(), "cols")?;
            if r == 0 || c == 0 {
                return Err(err("grid needs at least one row and one column"));
            }
            builders::grid(r, c, builders::DEFAULT_CAPACITY).0
        }
        "random" => {
            let compute = need(pos.next_positional(), "compute count")?;
            let network = need(pos.next_positional(), "network count")?;
            if compute + network == 0 {
                return Err(err("random needs at least one node"));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            builders::random_tree(&mut rng, compute, network, builders::DEFAULT_CAPACITY).0
        }
        other => return Err(err(format!("unknown topology kind {other:?}\n{USAGE}"))),
    };
    Ok(to_json(&topo))
}

/// `perturb` command: randomize conditions on a topology JSON.
pub fn cmd_perturb(json: &str, args: &[String]) -> Result<String, CliError> {
    let mut topo = from_json(json).map_err(|e| err(e.to_string()))?;
    let seed = parse_usize(args, "--seed")?.unwrap_or(0) as u64;
    let max_load = parse_f64(args, "--max-load")?.unwrap_or(3.0);
    let max_util = parse_f64(args, "--max-util")?.unwrap_or(0.9);
    if !(max_load >= 0.0 && max_load.is_finite()) {
        return Err(err("--max-load must be a non-negative number"));
    }
    if !(0.0..=1.0).contains(&max_util) {
        return Err(err("--max-util must be in [0, 1]"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    builders::randomize_conditions(&mut topo, &mut rng, max_load, max_util);
    Ok(to_json(&topo))
}

/// `inspect` command.
pub fn cmd_inspect(json: &str) -> Result<String, CliError> {
    let topo = from_json(json).map_err(|e| err(e.to_string()))?;
    Ok(metrics(&topo).to_string())
}

/// `select` command.
pub fn cmd_select(json: &str, args: &[String]) -> Result<String, CliError> {
    let topo = from_json(json).map_err(|e| err(e.to_string()))?;
    let m = parse_usize(args, "-m")?.ok_or_else(|| err("missing -m <count>"))?;
    let objective = flag_value(args, "--objective").unwrap_or("balanced");
    let policy = if flag_present(args, "--faithful") {
        GreedyPolicy::Faithful
    } else {
        GreedyPolicy::Sweep
    };

    let mut weights = Weights::EQUAL;
    if let Some(f) = parse_f64(args, "--compute-priority")? {
        if !(f > 0.0 && f.is_finite()) {
            return Err(err("--compute-priority must be a positive number"));
        }
        weights = Weights::compute_priority(f);
    }
    if let Some(f) = parse_f64(args, "--comm-priority")? {
        if !(f > 0.0 && f.is_finite()) {
            return Err(err("--comm-priority must be a positive number"));
        }
        weights = Weights::comm_priority(f);
    }

    let mut constraints = Constraints::none();
    if let Some(bw) = parse_f64(args, "--min-bw")? {
        constraints.min_bandwidth = Some(bw * MBPS);
    }
    constraints.min_cpu = parse_f64(args, "--min-cpu")?;
    if let Some(names) = flag_value(args, "--require") {
        let names: Vec<&str> = names.split(',').collect();
        constraints.required = nodes_by_name(&topo, &names).map_err(|e| err(e.to_string()))?;
    }
    if let Some(names) = flag_value(args, "--allow") {
        let names: Vec<&str> = names.split(',').collect();
        let ids = nodes_by_name(&topo, &names).map_err(|e| err(e.to_string()))?;
        constraints.allowed = Some(ids.into_iter().collect::<HashSet<_>>());
    }

    let selection: Selection = if let Some(ms) = parse_f64(args, "--max-latency")? {
        if !(ms >= 0.0 && ms.is_finite()) {
            return Err(err("--max-latency must be a non-negative number"));
        }
        select_within_latency(&topo, m, ms / 1e3, weights, &constraints, policy)
            .map_err(|e| err(e.to_string()))?
    } else {
        match objective {
            "compute" => max_compute(&topo, m, &constraints).map_err(|e| err(e.to_string()))?,
            "comm" | "communication" => {
                max_bandwidth(&topo, m, &constraints).map_err(|e| err(e.to_string()))?
            }
            "balanced" => balanced(&topo, m, weights, &constraints, None, policy)
                .map_err(|e| err(e.to_string()))?,
            other => return Err(err(format!("unknown objective {other:?}"))),
        }
    };

    let names: Vec<String> = selection
        .nodes
        .iter()
        .map(|&n| topo.node(n).name().to_string())
        .collect();
    let routes = topo.routes();
    let latency_ms = pairwise_latency(&routes, &selection.nodes) * 1e3;

    if flag_present(args, "--json") {
        let out = serde_json::json!({
            "nodes": names,
            "min_cpu": selection.quality.min_cpu,
            "min_bw_mbps": selection.quality.min_bw / MBPS,
            "min_bw_fraction": selection.quality.min_bwfraction,
            "score": selection.score,
            "max_pairwise_latency_ms": latency_ms,
            "iterations": selection.iterations,
        });
        return Ok(serde_json::to_string_pretty(&out).expect("json"));
    }

    let mut out = String::new();
    out.push_str(&format!("selected {} nodes: {}\n", m, names.join(", ")));
    out.push_str(&format!(
        "min cpu: {:.3}   min bandwidth: {:.1} Mbps (fraction {:.3})\n",
        selection.quality.min_cpu,
        selection.quality.min_bw / MBPS,
        selection.quality.min_bwfraction
    ));
    out.push_str(&format!(
        "balanced score: {:.3}   max pairwise latency: {:.3} ms   rounds: {}\n",
        selection.score, latency_ms, selection.iterations
    ));
    if flag_present(args, "--dot") {
        out.push('\n');
        out.push_str(&nodesel_topology::dot::to_dot(&topo, &selection.nodes));
    }
    Ok(out)
}

/// Dispatches a full command line (without the program name).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Err(err(USAGE));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "perturb" | "inspect" | "select" => {
            let mut pos = Args::new(rest);
            let path = pos
                .next_positional()
                .ok_or_else(|| err("missing topology file"))?;
            let json = std::fs::read_to_string(path)
                .map_err(|e| err(format!("cannot read {path:?}: {e}")))?;
            match cmd.as_str() {
                "perturb" => cmd_perturb(&json, rest),
                "inspect" => cmd_inspect(&json),
                "select" => cmd_select(&json, rest),
                _ => unreachable!(),
            }
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn generate_kinds() {
        for args in [
            vec!["testbed"],
            vec!["figure1"],
            vec!["star", "5"],
            vec!["dumbbell", "3"],
            vec!["tree", "1", "3"],
            vec!["ring", "5"],
            vec!["grid", "2", "3"],
            vec!["random", "5", "3", "--seed", "7"],
        ] {
            let json = cmd_generate(&s(&args)).unwrap_or_else(|e| panic!("{args:?}: {e}"));
            let topo = from_json(&json).expect("valid JSON out");
            assert!(topo.node_count() > 0, "{args:?}");
        }
    }

    #[test]
    fn generate_rejects_bad_input() {
        assert!(cmd_generate(&s(&["nope"])).is_err());
        assert!(cmd_generate(&s(&["star"])).is_err());
        assert!(cmd_generate(&s(&["star", "x"])).is_err());
        assert!(cmd_generate(&s(&[])).is_err());
    }

    #[test]
    fn degenerate_sizes_are_errors_not_panics() {
        // Builder assertions must not be reachable from the command line.
        assert!(cmd_generate(&s(&["star", "0"])).is_err());
        assert!(cmd_generate(&s(&["ring", "2"])).is_err());
        assert!(cmd_generate(&s(&["grid", "0", "3"])).is_err());
        assert!(cmd_generate(&s(&["random", "0", "0"])).is_err());
    }

    #[test]
    fn invalid_numeric_flags_are_errors_not_panics() {
        let json = cmd_generate(&s(&["star", "6"])).unwrap();
        assert!(cmd_perturb(&json, &s(&["--max-load", "-1"])).is_err());
        assert!(cmd_perturb(&json, &s(&["--max-load", "NaN"])).is_err());
        assert!(cmd_select(&json, &s(&["-m", "2", "--compute-priority", "0"])).is_err());
        assert!(cmd_select(&json, &s(&["-m", "2", "--comm-priority", "-3"])).is_err());
        assert!(cmd_select(&json, &s(&["-m", "2", "--max-latency", "-1"])).is_err());
    }

    #[test]
    fn perturb_is_seeded_and_bounded() {
        let json = cmd_generate(&s(&["star", "6"])).unwrap();
        let a = cmd_perturb(&json, &s(&["--seed", "3"])).unwrap();
        let b = cmd_perturb(&json, &s(&["--seed", "3"])).unwrap();
        assert_eq!(a, b);
        let c = cmd_perturb(&json, &s(&["--seed", "4"])).unwrap();
        assert_ne!(a, c);
        let topo = from_json(&a).unwrap();
        for n in topo.compute_nodes() {
            assert!(topo.node(n).load_avg() <= 3.0);
        }
        assert!(cmd_perturb(&json, &s(&["--max-util", "2.0"])).is_err());
    }

    #[test]
    fn inspect_summarizes() {
        let json = cmd_generate(&s(&["testbed"])).unwrap();
        let out = cmd_inspect(&json).unwrap();
        assert!(out.contains("18 compute"));
        assert!(out.contains("diameter 4"));
    }

    #[test]
    fn select_balanced_text_and_json() {
        let json = cmd_generate(&s(&["testbed"])).unwrap();
        let json = cmd_perturb(&json, &s(&["--seed", "5"])).unwrap();
        let out = cmd_select(&json, &s(&["-m", "4"])).unwrap();
        assert!(out.contains("selected 4 nodes"));
        let out = cmd_select(&json, &s(&["-m", "4", "--json"])).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["nodes"].as_array().unwrap().len(), 4);
        assert!(v["score"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn select_objectives_and_flags() {
        let json = cmd_generate(&s(&["testbed"])).unwrap();
        for obj in ["compute", "comm", "balanced"] {
            let out = cmd_select(&json, &s(&["-m", "3", "--objective", obj])).unwrap();
            assert!(out.contains("selected 3 nodes"), "{obj}");
        }
        assert!(cmd_select(&json, &s(&["-m", "3", "--objective", "nope"])).is_err());
        assert!(cmd_select(&json, &s(&["--objective", "balanced"])).is_err()); // no -m
                                                                               // Constraints.
        let out = cmd_select(
            &json,
            &s(&["-m", "4", "--require", "m-7", "--min-bw", "50"]),
        )
        .unwrap();
        assert!(out.contains("m-7"));
        // Latency bound keeps the set within one router's subtree
        // (two access hops = 0.2 ms; crossing a trunk adds more).
        let out = cmd_select(&json, &s(&["-m", "4", "--max-latency", "0.25", "--json"])).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["max_pairwise_latency_ms"].as_f64().unwrap() <= 0.25);
        // Dot output.
        let out = cmd_select(&json, &s(&["-m", "2", "--dot"])).unwrap();
        assert!(out.contains("graph topology {"));
    }

    #[test]
    fn run_dispatches_and_reports_unknown() {
        assert!(run(&s(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&s(&["bogus"])).is_err());
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["select", "/nonexistent.json", "-m", "2"])).is_err());
    }
    #[test]
    fn run_handles_files_end_to_end() {
        // Full file-based flow through the dispatcher.
        let dir = std::env::temp_dir().join(format!("nodesel-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("topo.json");
        let json = cmd_generate(&s(&["dumbbell", "3"])).unwrap();
        std::fs::write(&path, &json).unwrap();
        let path_str = path.to_str().unwrap().to_string();
        let out = run(&[
            "select".to_string(),
            path_str.clone(),
            "-m".to_string(),
            "4".to_string(),
        ])
        .unwrap();
        assert!(out.contains("selected 4 nodes"));
        let out = run(&["inspect".to_string(), path_str]).unwrap();
        assert!(out.contains("6 compute"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
