//! The node-selection algorithms of §3.2, with the §3.3 generalizations.
//!
//! All three algorithms share one structure: a [`GraphView`] over the
//! measured topology snapshot, pre-filtered by any absolute bandwidth
//! constraint, on which edges are deleted in increasing order of the
//! relevant bandwidth metric while candidate node sets are read off the
//! surviving connected components.
//!
//! * [`max_compute`] — no deletion loop at all: pick the `m` eligible
//!   compute nodes with the highest available CPU (within one component).
//! * [`max_bandwidth`] — Figure 2: delete the minimum-`bw` edge while a
//!   component with `m` eligible compute nodes survives; the last
//!   surviving candidate maximizes the minimum pairwise bandwidth.
//! * [`balanced`] — Figure 3: delete the minimum-`bwfactor` edge,
//!   re-evaluating `min(min cpu, min bwfactor)` per component each round.
//!   [`GreedyPolicy::Faithful`] stops at the first non-improving round as
//!   printed in the paper; [`GreedyPolicy::Sweep`] runs the deletion to
//!   exhaustion and keeps the best round, which is provably optimal on
//!   acyclic graphs.
//!
//! # Fast paths
//!
//! The paper spells the loops out literally — rescan every edge for the
//! minimum, then rebuild every component — which is O(E²). This module
//! keeps those literal loops as *references*
//! ([`max_bandwidth_reference`], [`balanced_reference`]) and routes the
//! public entry points through observably equivalent near-linear engines:
//!
//! * `max_bandwidth` runs reverse-deletion Kruskal on a
//!   [`nodesel_topology::UnionFind`]: edges are sorted once by descending
//!   available bandwidth and unioned until a component holds `m` eligible
//!   nodes — O(E log E), and provably the same bottleneck optimum (the
//!   state reached is exactly the last state of the deletion loop that
//!   still hosts the application).
//! * `balanced` walks the same sorted-edge order forward with incremental
//!   component bookkeeping: deleting an edge touches only the component it
//!   belonged to, splits are detected by one flood fill
//!   ([`GraphView::flood_component`], reusing scratch buffers so
//!   steady-state rounds allocate nothing), and the untouched components
//!   keep their cached candidate sets and scores.
//!
//! Debug builds re-run the references after every fast-path call and
//! assert byte-identical [`Selection`]s; the property tests in
//! `tests/fastpath_parity.rs` do the same over random topologies.

use crate::quality::{evaluate_in, Quality};
use crate::request::{Constraints, GreedyPolicy, Objective, SelectionRequest};
use crate::weights::Weights;
use crate::SelectError;
use nodesel_topology::{
    Component, EdgeId, GraphView, NetMetrics, NodeId, RouteTable, Topology, UnionFind,
};

/// The result of a selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Selected compute nodes, in ascending id order.
    pub nodes: Vec<NodeId>,
    /// Exact quality of the selection (pairwise over static routes).
    pub quality: Quality,
    /// The balanced score of `quality` under the weights the request used
    /// (equal weights for the single-resource objectives).
    pub score: f64,
    /// Edge-deletion rounds executed (1 for [`max_compute`]).
    pub iterations: usize,
}

/// One component of a [`max_compute`] run, as replayed by
/// [`crate::selector::MaxComputeSelector`]: everything but the node
/// metrics is static between epochs that share a structure.
#[derive(Debug, Clone)]
pub(crate) struct ComputeComp {
    /// Eligible compute members, ascending.
    pub(crate) computes: Vec<NodeId>,
    /// Whether `pick_from` succeeded here at prime time. With an empty
    /// `required` set and no CPU floor this is `computes.len() >= m`,
    /// which node-metric churn cannot change.
    pub(crate) viable: bool,
    /// Minimum effective CPU of the prime-time pick (`-∞` when not
    /// viable); the selector re-derives it per epoch.
    pub(crate) min_cpu: f64,
}

/// Replayable structure of one [`max_compute`] run: the candidate
/// components in [`GraphView::components`] order.
#[derive(Debug, Clone, Default)]
pub(crate) struct ComputeHistory {
    pub(crate) comps: Vec<ComputeComp>,
}

/// Replayable outcome of one [`max_bandwidth`] run. The stop component —
/// the last deletion-loop state that still hosts the application — is
/// determined by edge order and eligibility alone, so node-metric churn
/// only re-ranks nodes *within* it.
#[derive(Debug, Clone, Default)]
pub(crate) struct BandwidthHistory {
    /// Eligible compute members of the stop component, ascending.
    pub(crate) computes: Vec<NodeId>,
    /// Deletion rounds the reference loop would have executed.
    pub(crate) iterations: usize,
    /// Whether any component could host the application.
    pub(crate) satisfiable: bool,
}

/// One component lifetime inside a [`balanced`] deletion run: a fixed
/// membership over a contiguous round interval, with the component's
/// minimum fractional bandwidth stepping through `events` as its own
/// edges are deleted. Under node-metric-only churn the whole deletion
/// history — memberships, events, round numbers — is invariant; only the
/// CPU term of each state's score moves.
#[derive(Debug, Clone)]
pub(crate) struct HistState {
    /// Eligible compute members, ascending.
    pub(crate) computes: Vec<NodeId>,
    /// Smallest member id (compute or network): the reference loop's
    /// within-round tie-breaker.
    pub(crate) first_node: NodeId,
    /// Whether this state can host the application (static, as above).
    pub(crate) viable: bool,
    /// Minimum effective CPU of the prime-time pick (`-∞` when not
    /// viable); the selector re-derives it per epoch.
    pub(crate) min_cpu: f64,
    /// `(first round in effect, min fractional bandwidth)` steps,
    /// chronological; the first entry is the state's birth round.
    pub(crate) events: Vec<(usize, f64)>,
    /// Last round this state was evaluated in (its split round, or the
    /// final round of the run).
    pub(crate) last_round: usize,
}

/// Replayable structure of one [`balanced`] run under
/// [`GreedyPolicy::Sweep`].
#[derive(Debug, Clone, Default)]
pub(crate) struct BalancedHistory {
    pub(crate) states: Vec<HistState>,
    pub(crate) iterations: usize,
    pub(crate) satisfiable: bool,
}

/// Shared validated state for one selection run, generic over the metric
/// representation: the annotated [`Topology`] for the classic one-shot
/// path, or a versioned [`nodesel_topology::NetSnapshot`] for the
/// incremental [`crate::selector`] engines. Both instantiate the same
/// monomorphic arithmetic (see [`NetMetrics`]), so results are
/// byte-identical across representations by construction.
pub(crate) struct Context<'a, T: NetMetrics> {
    net: &'a T,
    m: usize,
    required: Vec<NodeId>,
    eligible: Vec<bool>,
    reference_bw: Option<f64>,
}

impl<'a, T: NetMetrics> Context<'a, T> {
    pub(crate) fn new(
        net: &'a T,
        m: usize,
        constraints: &Constraints,
        reference_bw: Option<f64>,
    ) -> Result<Self, SelectError> {
        let topo = net.structure();
        if m == 0 {
            return Err(SelectError::ZeroCount);
        }
        if constraints.required.len() > m {
            return Err(SelectError::TooManyRequired {
                required: constraints.required.len(),
                count: m,
            });
        }
        let mut eligible = vec![false; topo.node_count()];
        for n in topo.compute_nodes() {
            let ok_allowed = constraints
                .allowed
                .as_ref()
                .is_none_or(|set| set.contains(&n));
            let ok_cpu = constraints
                .min_cpu
                .is_none_or(|c| net.effective_cpu(n) >= c);
            // Availability gating, uniform across all three algorithms: a
            // node reported down is never selectable, and a staleness cap
            // (when requested) excludes nodes whose state is unknown.
            let ok_health = net.node_available(n)
                && constraints
                    .max_staleness
                    .is_none_or(|s| net.node_staleness(n) <= s);
            eligible[n.index()] = ok_allowed && ok_cpu && ok_health;
        }
        for &r in &constraints.required {
            if r.index() >= topo.node_count() || !topo.node(r).is_compute() || !eligible[r.index()]
            {
                return Err(SelectError::RequiredNotEligible(r));
            }
        }
        let available = eligible.iter().filter(|&&e| e).count();
        if available < m {
            return Err(SelectError::NotEnoughNodes {
                eligible: available,
                requested: m,
            });
        }
        let mut required = constraints.required.clone();
        required.sort_unstable();
        required.dedup();
        Ok(Context {
            net,
            m,
            required,
            eligible,
            reference_bw,
        })
    }

    /// The starting view: the measured graph minus every link reported
    /// down (faulted or partitioned away — no algorithm may route through
    /// it) and minus every edge that cannot satisfy an absolute bandwidth
    /// floor (§3.3 fixed requirements).
    fn base_view(&self, constraints: &Constraints) -> GraphView<'a> {
        let mut view = GraphView::new(self.net.structure());
        let dead: Vec<_> = view
            .live_edges()
            .filter(|&e| !self.net.link_available(e))
            .collect();
        for e in dead {
            view.remove_edge(e);
        }
        if let Some(floor) = constraints.min_bandwidth {
            let below: Vec<_> = view
                .live_edges()
                .filter(|&e| self.net.bw(e) < floor)
                .collect();
            for e in below {
                view.remove_edge(e);
            }
        }
        view
    }

    /// Fractional availability of an edge: `bw/maxbw`, or `bw/reference`
    /// when a reference link is specified (§3.3 heterogeneous links).
    fn edge_fraction(&self, e: nodesel_topology::EdgeId) -> f64 {
        match self.reference_bw {
            Some(r) => self.net.bw(e) / r,
            None => self.net.bwfactor(e),
        }
    }

    /// Picks the `m` best-CPU eligible nodes from a component, honouring
    /// required nodes. Returns the (sorted) set and its minimum effective
    /// CPU, or `None` when the component cannot host the application.
    fn pick_from(&self, comp: &Component) -> Option<(Vec<NodeId>, f64)> {
        self.pick_from_parts(&comp.nodes, &comp.compute_nodes)
    }

    /// [`Context::pick_from`] over raw (sorted) member lists, so the
    /// incremental engines can evaluate components they track themselves.
    pub(crate) fn pick_from_parts(
        &self,
        nodes: &[NodeId],
        compute_nodes: &[NodeId],
    ) -> Option<(Vec<NodeId>, f64)> {
        for &r in &self.required {
            nodes.binary_search(&r).ok()?;
        }
        let mut candidates: Vec<NodeId> = compute_nodes
            .iter()
            .copied()
            .filter(|&n| self.eligible[n.index()])
            .collect();
        if candidates.len() < self.m {
            return None;
        }
        candidates.sort_by(|&a, &b| {
            self.net
                .effective_cpu(b)
                .total_cmp(&self.net.effective_cpu(a))
                .then(a.cmp(&b))
        });
        let mut chosen = self.required.clone();
        for &n in &candidates {
            if chosen.len() == self.m {
                break;
            }
            if !self.required.contains(&n) {
                chosen.push(n);
            }
        }
        debug_assert_eq!(chosen.len(), self.m);
        let min_cpu = chosen
            .iter()
            .map(|&n| self.net.effective_cpu(n))
            .fold(f64::INFINITY, f64::min);
        chosen.sort_unstable();
        Some((chosen, min_cpu))
    }

    /// Number of eligible compute nodes in a component.
    fn eligible_count(&self, comp: &Component) -> usize {
        comp.compute_nodes
            .iter()
            .filter(|n| self.eligible[n.index()])
            .count()
    }

    pub(crate) fn finish(
        &self,
        nodes: Vec<NodeId>,
        weights: Weights,
        iterations: usize,
    ) -> Selection {
        // Quality only queries routes among the chosen nodes, so build just
        // those BFS rows instead of the all-pairs table.
        let table = RouteTable::build_for_sources(self.net.structure(), nodes.iter().copied());
        let quality = evaluate_in(self.net, &table, &nodes, self.reference_bw);
        Selection {
            score: quality.score(weights),
            nodes,
            quality,
            iterations,
        }
    }
}

/// Maximize available computation capacity: choose the `m` eligible nodes
/// with the highest `cpu` values (paper §3.2), restricted to a single
/// connected component so the selection can actually communicate.
pub fn max_compute(
    topo: &Topology,
    m: usize,
    constraints: &Constraints,
) -> Result<Selection, SelectError> {
    max_compute_in(topo, m, constraints, None)
}

/// [`max_compute`] over any [`NetMetrics`] representation, optionally
/// recording the component structure the incremental selector replays.
pub(crate) fn max_compute_in<T: NetMetrics>(
    net: &T,
    m: usize,
    constraints: &Constraints,
    mut history: Option<&mut ComputeHistory>,
) -> Result<Selection, SelectError> {
    let ctx = Context::new(net, m, constraints, None)?;
    let view = ctx.base_view(constraints);
    let mut best: Option<(Vec<NodeId>, f64)> = None;
    for comp in view.components() {
        let cand = ctx.pick_from(&comp);
        if let Some(h) = history.as_deref_mut() {
            h.comps.push(ComputeComp {
                computes: comp
                    .compute_nodes
                    .iter()
                    .copied()
                    .filter(|&n| ctx.eligible[n.index()])
                    .collect(),
                viable: cand.is_some(),
                min_cpu: cand.as_ref().map_or(f64::NEG_INFINITY, |(_, c)| *c),
            });
        }
        if let Some((nodes, min_cpu)) = cand {
            match &best {
                Some((_, b)) if *b >= min_cpu => {}
                _ => best = Some((nodes, min_cpu)),
            }
        }
    }
    let (nodes, _) = best.ok_or(SelectError::Unsatisfiable)?;
    Ok(ctx.finish(nodes, Weights::EQUAL, 1))
}

/// Maximize available communication capacity (Figure 2): maximize the
/// minimum available bandwidth between any pair of selected nodes.
///
/// Within the winning component, nodes are chosen by highest CPU — the
/// paper allows "any m compute nodes", so this refinement never hurts the
/// bandwidth objective and helps the secondary one.
///
/// Runs as reverse-deletion Kruskal in O(E log E) (see the module docs);
/// requests with `required` nodes take the faithful
/// [`max_bandwidth_reference`] loop, whose stopping rule inspects a
/// specific component each round and is not expressible as a single
/// union-find sweep.
pub fn max_bandwidth(
    topo: &Topology,
    m: usize,
    constraints: &Constraints,
) -> Result<Selection, SelectError> {
    max_bandwidth_in(topo, m, constraints, None)
}

/// [`max_bandwidth`] over any [`NetMetrics`] representation, optionally
/// recording the stop component the incremental selector replays.
pub(crate) fn max_bandwidth_in<T: NetMetrics>(
    net: &T,
    m: usize,
    constraints: &Constraints,
    history: Option<&mut BandwidthHistory>,
) -> Result<Selection, SelectError> {
    let ctx = Context::new(net, m, constraints, None)?;
    if !ctx.required.is_empty() {
        debug_assert!(
            history.is_none(),
            "history recording requires an empty required set"
        );
        return max_bandwidth_loop(&ctx, constraints);
    }
    let fast = max_bandwidth_fast(&ctx, constraints, history);
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        fast,
        max_bandwidth_loop(&ctx, constraints),
        "max_bandwidth fast path diverged from the Figure 2 deletion loop"
    );
    fast
}

/// The faithful Figure 2 deletion loop, kept as the O(E²) reference the
/// fast path is asserted against (debug builds and the parity property
/// tests compare full [`Selection`]s).
pub fn max_bandwidth_reference(
    topo: &Topology,
    m: usize,
    constraints: &Constraints,
) -> Result<Selection, SelectError> {
    let ctx = Context::new(topo, m, constraints, None)?;
    max_bandwidth_loop(&ctx, constraints)
}

fn max_bandwidth_loop<T: NetMetrics>(
    ctx: &Context<T>,
    constraints: &Constraints,
) -> Result<Selection, SelectError> {
    let mut view = ctx.base_view(constraints);
    let mut current: Option<Vec<NodeId>> = None;
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // Step 3/4 of Figure 2: the component with the largest number of
        // connected (eligible) compute nodes.
        let candidate = view
            .components()
            .into_iter()
            .filter(|c| ctx.eligible_count(c) >= ctx.m)
            .max_by_key(|c| ctx.eligible_count(c))
            .and_then(|c| ctx.pick_from(&c));
        match candidate {
            Some((nodes, _)) => current = Some(nodes),
            None => break,
        }
        // Step 2: remove the minimum-bandwidth edge.
        match view.min_live_edge_by(|e| ctx.net.bw(e)) {
            Some(e) => view.remove_edge(e),
            None => break,
        }
    }
    let nodes = current.ok_or(SelectError::Unsatisfiable)?;
    Ok(ctx.finish(nodes, Weights::EQUAL, iterations))
}

/// Reverse-deletion Kruskal: union edges in descending available-bandwidth
/// order until a component holds `m` eligible nodes. That state is exactly
/// the last state of the deletion loop that still hosts the application
/// (deleting edges in ascending order and adding them in descending order
/// walk the same chain of graphs), so the returned `Selection` — including
/// its `iterations` count — is byte-identical to the reference's.
fn max_bandwidth_fast<T: NetMetrics>(
    ctx: &Context<T>,
    constraints: &Constraints,
    mut history: Option<&mut BandwidthHistory>,
) -> Result<Selection, SelectError> {
    let topo = ctx.net.structure();
    let view = ctx.base_view(constraints);
    // Deletion order: ascending (bw, id), matching `min_live_edge_by`'s
    // tie-breaking. The loop below walks it backwards.
    let mut order: Vec<EdgeId> = view.live_edges().collect();
    order.sort_unstable_by(|&x, &y| ctx.net.bw(x).total_cmp(&ctx.net.bw(y)).then(x.cmp(&y)));
    let live = order.len();
    if ctx.m == 1 {
        // The deletion loop runs to exhaustion and reads its answer off the
        // fully-deleted graph: every eligible node is then a singleton
        // component of count 1, and the loop's max-by keeps the last one.
        let node = (0..topo.node_count())
            .rev()
            .map(NodeId::from_index)
            .find(|n| ctx.eligible[n.index()])
            .expect("Context guarantees an eligible node");
        if let Some(h) = history {
            h.computes = vec![node];
            h.iterations = live + 1;
            h.satisfiable = true;
        }
        return Ok(ctx.finish(vec![node], Weights::EQUAL, live + 1));
    }
    let mut uf = UnionFind::new(topo.node_count());
    for n in topo.node_ids() {
        if ctx.eligible[n.index()] {
            uf.seed_eligible(n.index(), ctx.net.effective_cpu(n));
        }
    }
    let mut stop: Option<(usize, usize)> = None;
    for (i, &e) in order.iter().rev().enumerate() {
        let l = topo.link(e);
        if let Some(root) = uf.union(l.a().index(), l.b().index()) {
            if uf.eligible_count(root) >= ctx.m {
                stop = Some((root, i + 1));
                break;
            }
        }
    }
    if let Some(h) = history.as_deref_mut() {
        h.satisfiable = stop.is_some();
    }
    // Never reaching `m` while adding edges means even the full graph has
    // no qualifying component: round one of the reference loop fails.
    let (root, added) = stop.ok_or(SelectError::Unsatisfiable)?;
    let mut nodes = Vec::new();
    let mut compute_nodes = Vec::new();
    for n in topo.node_ids() {
        if uf.find(n.index()) == root {
            nodes.push(n);
            if topo.node(n).is_compute() {
                compute_nodes.push(n);
            }
        }
    }
    if let Some(h) = history {
        h.computes = compute_nodes
            .iter()
            .copied()
            .filter(|&n| ctx.eligible[n.index()])
            .collect();
        h.iterations = live - added + 2;
    }
    let (chosen, _) = ctx
        .pick_from_parts(&nodes, &compute_nodes)
        .expect("stop component holds at least m eligible nodes");
    // The reference runs one round per deleted edge plus the failing round:
    // `live - added` deletions succeed before the stop state is destroyed.
    Ok(ctx.finish(chosen, Weights::EQUAL, live - added + 2))
}

/// Balanced computation/communication optimization (Figure 3): maximize
/// `min(min fractional cpu, min fractional bandwidth)`, generalized with
/// priority [`Weights`], an optional reference bandwidth, and the choice of
/// greedy termination [`GreedyPolicy`].
///
/// ```
/// use nodesel_core::{balanced, Constraints, GreedyPolicy, Weights};
/// use nodesel_topology::builders::star;
/// use nodesel_topology::units::MBPS;
///
/// let (mut topo, ids) = star(5, 100.0 * MBPS);
/// topo.set_load_avg(ids[0], 3.0); // busy node: cpu = 0.25
/// let sel = balanced(&topo, 3, Weights::EQUAL, &Constraints::none(),
///                    None, GreedyPolicy::Sweep).unwrap();
/// assert!(!sel.nodes.contains(&ids[0]));
/// assert_eq!(sel.score, 1.0); // three idle nodes over clean links
/// ```
pub fn balanced(
    topo: &Topology,
    m: usize,
    weights: Weights,
    constraints: &Constraints,
    reference_bandwidth: Option<f64>,
    policy: GreedyPolicy,
) -> Result<Selection, SelectError> {
    balanced_in(
        topo,
        m,
        weights,
        constraints,
        reference_bandwidth,
        policy,
        None,
    )
}

/// [`balanced`] over any [`NetMetrics`] representation, optionally
/// recording the full deletion history the incremental selector replays.
pub(crate) fn balanced_in<T: NetMetrics>(
    net: &T,
    m: usize,
    weights: Weights,
    constraints: &Constraints,
    reference_bandwidth: Option<f64>,
    policy: GreedyPolicy,
    history: Option<&mut BalancedHistory>,
) -> Result<Selection, SelectError> {
    assert!(weights.validate(), "invalid priority weights");
    let ctx = Context::new(net, m, constraints, reference_bandwidth)?;
    let fast = balanced_fast(&ctx, weights, constraints, policy, history);
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        fast,
        balanced_loop(&ctx, weights, constraints, policy),
        "balanced fast path diverged from the Figure 3 deletion loop"
    );
    fast
}

/// The faithful Figure 3 deletion loop — rescan every edge, rebuild every
/// component, re-pick every candidate set, each round — kept as the O(E²)
/// reference the incremental engine is asserted against.
pub fn balanced_reference(
    topo: &Topology,
    m: usize,
    weights: Weights,
    constraints: &Constraints,
    reference_bandwidth: Option<f64>,
    policy: GreedyPolicy,
) -> Result<Selection, SelectError> {
    assert!(weights.validate(), "invalid priority weights");
    let ctx = Context::new(topo, m, constraints, reference_bandwidth)?;
    balanced_loop(&ctx, weights, constraints, policy)
}

fn balanced_loop<T: NetMetrics>(
    ctx: &Context<T>,
    weights: Weights,
    constraints: &Constraints,
    policy: GreedyPolicy,
) -> Result<Selection, SelectError> {
    let mut view = ctx.base_view(constraints);
    let mut best: Option<(f64, Vec<NodeId>)> = None;
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // Evaluate every component that can host the application
        // (Figure 3 step 3, plus the step 1 initialization on round one).
        let mut round_best: Option<(f64, Vec<NodeId>)> = None;
        let mut any_candidate = false;
        for comp in view.components() {
            let Some((nodes, min_cpu)) = ctx.pick_from(&comp) else {
                continue;
            };
            any_candidate = true;
            let min_frac = if comp.edges.is_empty() {
                1.0
            } else {
                comp.edges
                    .iter()
                    .map(|&e| ctx.edge_fraction(e))
                    .fold(f64::INFINITY, f64::min)
            };
            let score = (min_cpu / weights.compute).min(min_frac / weights.comm);
            match &round_best {
                Some((b, _)) if *b >= score => {}
                _ => round_best = Some((score, nodes)),
            }
        }
        if !any_candidate {
            break;
        }
        let improved = match (&round_best, &best) {
            (Some((r, _)), Some((b, _))) => r > b,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if improved {
            best = round_best;
        } else if policy == GreedyPolicy::Faithful && iterations > 1 {
            // Figure 3 step 4: stop when a removal round fails to raise
            // minresource.
            break;
        }
        // Remove the minimum fractional-bandwidth edge (step 2).
        match view.min_live_edge_by(|e| ctx.edge_fraction(e)) {
            Some(e) => view.remove_edge(e),
            None => break,
        }
    }
    let (_, nodes) = best.ok_or(SelectError::Unsatisfiable)?;
    Ok(ctx.finish(nodes, weights, iterations))
}

/// Incrementally maintained component state for [`balanced_fast`].
///
/// A component is *dead* (`cand == None`) when it cannot host the
/// application — too few eligible nodes or a missing required node. Both
/// conditions are monotone under edge deletion, so dead components are
/// never floodfilled or split again; their edges are skipped when the
/// cursor reaches them.
struct CompState {
    /// Members, ascending.
    nodes: Vec<NodeId>,
    /// Compute-node members, ascending.
    compute_nodes: Vec<NodeId>,
    /// Live edges, *descending* by `(edge_fraction, id)`: the tail is the
    /// component's minimum — and, because edges are deleted in ascending
    /// global fraction order, it is always the next one deleted here.
    edges: Vec<EdgeId>,
    /// Cached `pick_from_parts` result; `None` marks the component dead.
    cand: Option<(Vec<NodeId>, f64)>,
    /// Cached `min(min_cpu/w_compute, min_frac/w_comm)`.
    score: f64,
}

impl CompState {
    fn rescore<T: NetMetrics>(&mut self, ctx: &Context<T>, weights: Weights) {
        if let Some((_, min_cpu)) = self.cand {
            let min_frac = match self.edges.last() {
                Some(&e) => ctx.edge_fraction(e),
                None => 1.0,
            };
            self.score = (min_cpu / weights.compute).min(min_frac / weights.comm);
        }
    }

    /// The component's current minimum fractional bandwidth — the value
    /// [`CompState::rescore`] folds into the score, recorded verbatim into
    /// [`HistState::events`].
    fn min_frac<T: NetMetrics>(&self, ctx: &Context<T>) -> f64 {
        match self.edges.last() {
            Some(&e) => ctx.edge_fraction(e),
            None => 1.0,
        }
    }

    /// The [`HistState`] snapshot of this component as of `round`.
    fn record<T: NetMetrics>(&self, ctx: &Context<T>, round: usize) -> HistState {
        HistState {
            computes: self
                .compute_nodes
                .iter()
                .copied()
                .filter(|&n| ctx.eligible[n.index()])
                .collect(),
            first_node: self.nodes[0],
            viable: self.cand.is_some(),
            min_cpu: self.cand.as_ref().map_or(f64::NEG_INFINITY, |(_, c)| *c),
            events: vec![(round, self.min_frac(ctx))],
            last_round: 0,
        }
    }
}

/// The incremental Figure 3 engine.
///
/// Edge fractions are static per link, so the per-round "find the minimum
/// fractional edge" scan collapses into one sort plus a cursor; deleting an
/// edge touches only the component that owned it, with a single flood fill
/// deciding split vs. no-split. Untouched components keep their cached
/// candidate sets and scores, so a steady-state round costs one slab scan
/// of float comparisons and allocates nothing.
fn balanced_fast<T: NetMetrics>(
    ctx: &Context<T>,
    weights: Weights,
    constraints: &Constraints,
    policy: GreedyPolicy,
    mut history: Option<&mut BalancedHistory>,
) -> Result<Selection, SelectError> {
    let topo = ctx.net.structure();
    let mut view = ctx.base_view(constraints);
    // Global deletion order: ascending (fraction, id), exactly the sequence
    // `min_live_edge_by(edge_fraction)` produces round by round.
    let mut order: Vec<EdgeId> = view.live_edges().collect();
    order.sort_unstable_by(|&x, &y| {
        ctx.edge_fraction(x)
            .total_cmp(&ctx.edge_fraction(y))
            .then(x.cmp(&y))
    });
    let mut edge_comp = vec![u32::MAX; topo.link_count()];
    let mut comps: Vec<CompState> = Vec::new();
    // Maps a live slot to its current state's index in the history (slots
    // are reused across splits, history states are not).
    let mut slot_rec: Vec<usize> = Vec::new();
    for comp in view.components() {
        let mut edges = comp.edges;
        edges.sort_unstable_by(|&x, &y| {
            ctx.edge_fraction(y)
                .total_cmp(&ctx.edge_fraction(x))
                .then(y.cmp(&x))
        });
        let slot = comps.len() as u32;
        for &e in &edges {
            edge_comp[e.index()] = slot;
        }
        let mut state = CompState {
            cand: ctx.pick_from_parts(&comp.nodes, &comp.compute_nodes),
            nodes: comp.nodes,
            compute_nodes: comp.compute_nodes,
            edges,
            score: 0.0,
        };
        state.rescore(ctx, weights);
        if let Some(h) = history.as_deref_mut() {
            slot_rec.push(h.states.len());
            h.states.push(state.record(ctx, 1));
        }
        comps.push(state);
    }
    let mut flood: Vec<NodeId> = Vec::new();
    let mut best: Option<(f64, Vec<NodeId>)> = None;
    let mut cursor = 0usize;
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // The reference evaluates components in ascending minimum-node-id
        // order and keeps the first maximum; slab order differs (split
        // halves are appended), so the tie-break is made explicit.
        let mut round_best: Option<(f64, NodeId, usize)> = None;
        for (i, c) in comps.iter().enumerate() {
            if c.cand.is_none() {
                continue;
            }
            let first = c.nodes[0];
            match round_best {
                Some((b, bn, _)) if b > c.score || (b == c.score && bn < first) => {}
                _ => round_best = Some((c.score, first, i)),
            }
        }
        let Some((round_score, _, round_slot)) = round_best else {
            break; // no component can host the application
        };
        let improved = match &best {
            Some((b, _)) => round_score > *b,
            None => true,
        };
        if improved {
            let (nodes, _) = comps[round_slot].cand.as_ref().expect("live round best");
            best = Some((round_score, nodes.clone()));
        } else if policy == GreedyPolicy::Faithful && iterations > 1 {
            break;
        }
        let Some(&e) = order.get(cursor) else {
            break;
        };
        cursor += 1;
        view.remove_edge(e);
        let slot = edge_comp[e.index()] as usize;
        if comps[slot].cand.is_none() {
            continue; // dead component: splitting it cannot matter
        }
        let popped = comps[slot].edges.pop();
        debug_assert_eq!(
            popped,
            Some(e),
            "cursor edge must be its component's minimum"
        );
        let link = topo.link(e);
        view.flood_component(link.a(), &mut flood);
        if view.last_flood_contains(link.b()) {
            // Still connected: only the cached minimum fraction changed.
            comps[slot].rescore(ctx, weights);
            if let Some(h) = history.as_deref_mut() {
                h.states[slot_rec[slot]]
                    .events
                    .push((iterations + 1, comps[slot].min_frac(ctx)));
            }
            continue;
        }
        // Split: the flooded side moves to a fresh slot, the remainder
        // keeps this one (so only the flooded side's edges remap).
        flood.sort_unstable();
        let a_compute: Vec<NodeId> = comps[slot]
            .compute_nodes
            .iter()
            .copied()
            .filter(|&n| view.last_flood_contains(n))
            .collect();
        let a_edges: Vec<EdgeId> = comps[slot]
            .edges
            .iter()
            .copied()
            .filter(|&x| view.last_flood_contains(topo.link(x).a()))
            .collect();
        let new_slot = comps.len() as u32;
        for &x in &a_edges {
            edge_comp[x.index()] = new_slot;
        }
        let old = &mut comps[slot];
        old.nodes.retain(|&n| !view.last_flood_contains(n));
        old.compute_nodes.retain(|&n| !view.last_flood_contains(n));
        old.edges
            .retain(|&x| !view.last_flood_contains(topo.link(x).a()));
        old.cand = ctx.pick_from_parts(&old.nodes, &old.compute_nodes);
        old.rescore(ctx, weights);
        let mut side = CompState {
            cand: ctx.pick_from_parts(&flood, &a_compute),
            nodes: flood.clone(),
            compute_nodes: a_compute,
            edges: a_edges,
            score: 0.0,
        };
        side.rescore(ctx, weights);
        if let Some(h) = history.as_deref_mut() {
            // The pre-split state was last evaluated this round; both
            // halves are fresh states born next round.
            h.states[slot_rec[slot]].last_round = iterations;
            slot_rec[slot] = h.states.len();
            h.states.push(comps[slot].record(ctx, iterations + 1));
            slot_rec.push(h.states.len());
            h.states.push(side.record(ctx, iterations + 1));
        }
        comps.push(side);
    }
    if let Some(h) = history {
        h.iterations = iterations;
        h.satisfiable = best.is_some();
        for s in &mut h.states {
            if s.last_round == 0 {
                s.last_round = iterations;
            }
        }
    }
    let (_, nodes) = best.ok_or(SelectError::Unsatisfiable)?;
    Ok(ctx.finish(nodes, weights, iterations))
}

/// Dispatches a [`SelectionRequest`] to the right algorithm.
pub fn select(topo: &Topology, request: &SelectionRequest) -> Result<Selection, SelectError> {
    match request.objective {
        Objective::Compute => max_compute(topo, request.count, &request.constraints),
        Objective::Communication => max_bandwidth(topo, request.count, &request.constraints),
        Objective::Balanced(weights) => balanced(
            topo,
            request.count,
            weights,
            &request.constraints,
            request.reference_bandwidth,
            request.policy,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::{dumbbell, star};
    use nodesel_topology::units::MBPS;
    use nodesel_topology::Direction;
    use std::collections::HashSet;

    #[test]
    fn max_compute_picks_least_loaded() {
        let (mut topo, ids) = star(5, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 2.0);
        topo.set_load_avg(ids[1], 0.5);
        topo.set_load_avg(ids[2], 0.1);
        // ids[3], ids[4] unloaded.
        let sel = max_compute(&topo, 3, &Constraints::none()).unwrap();
        assert_eq!(sel.nodes, vec![ids[2], ids[3], ids[4]]);
        assert!((sel.quality.min_cpu - 1.0 / 1.1).abs() < 1e-12);
        assert_eq!(sel.iterations, 1);
    }

    #[test]
    fn max_bandwidth_avoids_congested_trunk() {
        let (mut topo, ids) = dumbbell(3, 100.0 * MBPS, 100.0 * MBPS);
        // Congest the backbone: cross-side pairs see 5 Mbps.
        let trunk = topo.edge_ids().next().unwrap();
        topo.set_link_used(trunk, Direction::AtoB, 95.0 * MBPS);
        topo.set_link_used(trunk, Direction::BtoA, 95.0 * MBPS);
        let sel = max_bandwidth(&topo, 3, &Constraints::none()).unwrap();
        // All three nodes on one side (left = ids[0..3], right = ids[3..6]).
        let left: HashSet<_> = ids[..3].iter().copied().collect();
        let right: HashSet<_> = ids[3..].iter().copied().collect();
        let chosen: HashSet<_> = sel.nodes.iter().copied().collect();
        assert!(chosen.is_subset(&left) || chosen.is_subset(&right));
        assert_eq!(sel.quality.min_bw, 100.0 * MBPS);
    }

    #[test]
    fn max_bandwidth_crosses_trunk_when_it_must() {
        let (mut topo, _ids) = dumbbell(2, 100.0 * MBPS, 100.0 * MBPS);
        let trunk = topo.edge_ids().next().unwrap();
        topo.set_link_used(trunk, Direction::AtoB, 60.0 * MBPS);
        topo.set_link_used(trunk, Direction::BtoA, 60.0 * MBPS);
        // Need 3 of 4 nodes: impossible on one side.
        let sel = max_bandwidth(&topo, 3, &Constraints::none()).unwrap();
        assert_eq!(sel.quality.min_bw, 40.0 * MBPS);
        assert_eq!(sel.nodes.len(), 3);
    }

    #[test]
    fn balanced_trades_cpu_for_bandwidth() {
        // Two sides of a dumbbell: left is idle, right is loaded; the trunk
        // is half congested. m = 2.
        let (mut topo, ids) = dumbbell(2, 100.0 * MBPS, 100.0 * MBPS);
        let trunk = topo.edge_ids().next().unwrap();
        topo.set_link_used(trunk, Direction::AtoB, 50.0 * MBPS);
        // Left nodes (ids[0], ids[1]) idle: picking both gives cpu 1.0 and
        // full local bandwidth -> balanced score 1.0.
        let sel = balanced(
            &topo,
            2,
            Weights::EQUAL,
            &Constraints::none(),
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        assert_eq!(sel.nodes, vec![ids[0], ids[1]]);
        assert_eq!(sel.score, 1.0);
    }

    #[test]
    fn balanced_prefers_loaded_nodes_over_congested_paths() {
        // Star where the idle nodes sit behind a congested access link.
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        // n0, n1 idle but their links are 90% used; n2, n3 moderately
        // loaded (cpu 0.5) with clean links.
        for (i, e) in topo.edge_ids().collect::<Vec<_>>().into_iter().enumerate() {
            if i < 2 {
                topo.set_link_used(e, Direction::AtoB, 90.0 * MBPS);
                topo.set_link_used(e, Direction::BtoA, 90.0 * MBPS);
            }
        }
        topo.set_load_avg(ids[2], 1.0);
        topo.set_load_avg(ids[3], 1.0);
        let sel = balanced(
            &topo,
            2,
            Weights::EQUAL,
            &Constraints::none(),
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        // cpu 0.5 beats bandwidth fraction 0.1.
        assert_eq!(sel.nodes, vec![ids[2], ids[3]]);
        assert_eq!(sel.score, 0.5);
    }

    #[test]
    fn priority_weights_flip_the_choice() {
        // Same setup as above, but communication prioritized 10x: now the
        // congested path (0.1/10 vs 0.5) ... still loses. Instead check the
        // reverse: compute prioritized enough that loaded nodes lose.
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        for (i, e) in topo.edge_ids().collect::<Vec<_>>().into_iter().enumerate() {
            if i >= 2 {
                // n2, n3 links 40% used.
                topo.set_link_used(e, Direction::AtoB, 40.0 * MBPS);
                topo.set_link_used(e, Direction::BtoA, 40.0 * MBPS);
            }
        }
        topo.set_load_avg(ids[0], 1.0); // cpu 0.5, clean link
        topo.set_load_avg(ids[1], 1.0);
        // Equal weights: {n0,n1} scores min(0.5, 1.0) = 0.5;
        // {n2,n3} scores min(1.0, 0.6) = 0.6 -> pick n2,n3.
        let equal = balanced(
            &topo,
            2,
            Weights::EQUAL,
            &Constraints::none(),
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        assert_eq!(equal.nodes, vec![ids[2], ids[3]]);
        // Communication prioritized 2x: {n0,n1} -> min(0.5, 0.5) = 0.5;
        // {n2,n3} -> min(1.0, 0.3) = 0.3 -> pick n0,n1.
        let comm = balanced(
            &topo,
            2,
            Weights::comm_priority(2.0),
            &Constraints::none(),
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        assert_eq!(comm.nodes, vec![ids[0], ids[1]]);
    }

    #[test]
    fn sweep_beats_faithful_on_tie_free_trap() {
        // Construct the premature-stop case: component A already recorded
        // a good score; component B contains two low edges hanging off
        // unselected leaves, so one more removal round shows no improvement
        // (Figure 3 stops), but the round after that would reveal B's
        // excellent pair.
        let mut topo = Topology::new();
        // Component A: a1 - a2 at fraction 0.5 (cpu 1.0).
        let a1 = topo.add_compute_node("a1", 1.0);
        let a2 = topo.add_compute_node("a2", 1.0);
        let ea = topo.add_link(a1, a2, 100.0 * MBPS);
        topo.set_link_used(ea, Direction::AtoB, 50.0 * MBPS);
        // Component B: b1 - b2 clean; leaves l1, l2 on low edges.
        let b1 = topo.add_compute_node("b1", 1.0);
        let b2 = topo.add_compute_node("b2", 1.0);
        let l1 = topo.add_compute_node("l1", 1.0);
        let l2 = topo.add_compute_node("l2", 1.0);
        topo.add_link(b1, b2, 100.0 * MBPS);
        let e1 = topo.add_link(b1, l1, 100.0 * MBPS);
        let e2 = topo.add_link(b2, l2, 100.0 * MBPS);
        topo.set_link_used(e1, Direction::AtoB, 70.0 * MBPS); // fraction 0.3
        topo.set_link_used(e2, Direction::AtoB, 65.0 * MBPS); // fraction 0.35
                                                              // Make the leaves useless as picks (heavy load).
        topo.set_load_avg(l1, 9.0);
        topo.set_load_avg(l2, 9.0);

        let faithful = balanced(
            &topo,
            2,
            Weights::EQUAL,
            &Constraints::none(),
            None,
            GreedyPolicy::Faithful,
        )
        .unwrap();
        let sweep = balanced(
            &topo,
            2,
            Weights::EQUAL,
            &Constraints::none(),
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        assert_eq!(sweep.nodes, vec![b1, b2]);
        assert_eq!(sweep.score, 1.0);
        // The faithful algorithm stops before uncovering {b1, b2}.
        assert!(faithful.score < sweep.score);
    }

    #[test]
    fn min_bandwidth_constraint_filters_links() {
        let (mut topo, _ids) = dumbbell(2, 100.0 * MBPS, 100.0 * MBPS);
        let trunk = topo.edge_ids().next().unwrap();
        topo.set_link_used(trunk, Direction::AtoB, 80.0 * MBPS);
        let constraints = Constraints {
            min_bandwidth: Some(50.0 * MBPS),
            ..Constraints::none()
        };
        // Cross-side pairs only get 20 Mbps, so a 2-node selection must be
        // one-sided even under the *compute* objective.
        let sel = max_compute(&topo, 2, &constraints).unwrap();
        assert!(sel.quality.min_bw >= 50.0 * MBPS);
    }

    #[test]
    fn required_and_allowed_constraints() {
        let (mut topo, ids) = star(5, 100.0 * MBPS);
        topo.set_load_avg(ids[4], 5.0);
        let constraints = Constraints {
            required: vec![ids[4]],
            ..Constraints::none()
        };
        let sel = balanced(
            &topo,
            3,
            Weights::EQUAL,
            &constraints,
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        assert!(sel.nodes.contains(&ids[4]));
        // Allowed set excluding the idle nodes.
        let allowed: HashSet<_> = ids[..2].iter().copied().collect();
        let constraints = Constraints {
            allowed: Some(allowed),
            ..Constraints::none()
        };
        let sel = max_compute(&topo, 2, &constraints).unwrap();
        assert_eq!(sel.nodes, vec![ids[0], ids[1]]);
    }

    #[test]
    fn min_cpu_constraint_rejects_busy_nodes() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 3.0); // cpu 0.25
        let constraints = Constraints {
            min_cpu: Some(0.5),
            ..Constraints::none()
        };
        let sel = max_bandwidth(&topo, 3, &constraints).unwrap();
        assert!(!sel.nodes.contains(&ids[0]));
        // Requesting all four under the floor is impossible.
        assert!(matches!(
            max_bandwidth(&topo, 4, &constraints),
            Err(SelectError::NotEnoughNodes { .. })
        ));
    }

    #[test]
    fn reference_bandwidth_changes_fractions() {
        // One 10 Mbps link, unloaded. Per-link fraction: 1.0. Against a
        // 100 Mbps reference: 0.1.
        let mut topo = Topology::new();
        let a = topo.add_compute_node("a", 1.0);
        let b = topo.add_compute_node("b", 1.0);
        topo.add_link(a, b, 10.0 * MBPS);
        topo.set_load_avg(a, 1.0); // cpu 0.5
        let per_link = balanced(
            &topo,
            2,
            Weights::EQUAL,
            &Constraints::none(),
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        assert_eq!(per_link.score, 0.5); // cpu binds
        let referenced = balanced(
            &topo,
            2,
            Weights::EQUAL,
            &Constraints::none(),
            Some(100.0 * MBPS),
            GreedyPolicy::Sweep,
        )
        .unwrap();
        assert!((referenced.score - 0.1).abs() < 1e-12); // bandwidth binds
    }

    #[test]
    fn error_cases() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        assert!(matches!(
            max_compute(&topo, 0, &Constraints::none()),
            Err(SelectError::ZeroCount)
        ));
        assert!(matches!(
            max_compute(&topo, 9, &Constraints::none()),
            Err(SelectError::NotEnoughNodes { .. })
        ));
        let constraints = Constraints {
            required: vec![ids[0], ids[1]],
            ..Constraints::none()
        };
        assert!(matches!(
            max_compute(&topo, 1, &constraints),
            Err(SelectError::TooManyRequired { .. })
        ));
        let hub = topo.node_by_name("hub").unwrap();
        let constraints = Constraints {
            required: vec![hub],
            ..Constraints::none()
        };
        assert!(matches!(
            max_compute(&topo, 2, &constraints),
            Err(SelectError::RequiredNotEligible(_))
        ));
    }

    #[test]
    fn unsatisfiable_when_floor_disconnects() {
        let (mut topo, _) = star(3, 100.0 * MBPS);
        for e in topo.edge_ids().collect::<Vec<_>>() {
            topo.set_link_used(e, Direction::AtoB, 95.0 * MBPS);
        }
        let constraints = Constraints {
            min_bandwidth: Some(50.0 * MBPS),
            ..Constraints::none()
        };
        assert_eq!(
            max_compute(&topo, 2, &constraints),
            Err(SelectError::Unsatisfiable)
        );
    }

    #[test]
    fn select_dispatches_by_objective() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 2.0);
        let c = select(&topo, &SelectionRequest::compute(2)).unwrap();
        assert!(!c.nodes.contains(&ids[0]));
        let b = select(&topo, &SelectionRequest::communication(2)).unwrap();
        assert_eq!(b.nodes.len(), 2);
        let bal = select(&topo, &SelectionRequest::balanced(2)).unwrap();
        assert!(!bal.nodes.contains(&ids[0]));
    }

    #[test]
    fn selection_is_deterministic_under_ties() {
        // All nodes identical: the algorithms must break ties by node id.
        let (topo, ids) = star(6, 100.0 * MBPS);
        for _ in 0..3 {
            let sel = balanced(
                &topo,
                3,
                Weights::EQUAL,
                &Constraints::none(),
                None,
                GreedyPolicy::Sweep,
            )
            .unwrap();
            assert_eq!(sel.nodes, vec![ids[0], ids[1], ids[2]]);
        }
    }
}
