//! Exhaustive (brute-force) selection: ground truth for small graphs.
//!
//! Enumerates every `m`-subset of eligible compute nodes, evaluates the
//! exact pairwise [`Quality`](crate::Quality), and returns the best. Cost
//! is `O(C(n, m) · m²)` — usable only on test-sized graphs, which is
//! precisely its job: the property tests assert that the paper's greedy
//! algorithms match this optimum on acyclic topologies.

use crate::quality::evaluate;
use crate::request::Constraints;
use crate::weights::Weights;
use crate::{SelectError, Selection};
use nodesel_topology::{NodeId, Topology};

/// What the brute-force search should maximize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExhaustiveObjective {
    /// Minimum effective CPU of the set.
    MinCpu,
    /// Minimum pairwise available bandwidth (bits/s).
    MinBandwidth,
    /// Balanced score under the given weights.
    Balanced(Weights),
}

/// Iterator over all `m`-combinations of `0..n` in lexicographic order.
pub struct Combinations {
    n: usize,
    idx: Vec<usize>,
    done: bool,
}

impl Combinations {
    /// Creates the iterator; yields nothing when `m > n`.
    pub fn new(n: usize, m: usize) -> Self {
        Combinations {
            n,
            idx: (0..m).collect(),
            done: m > n,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.idx.clone();
        let m = self.idx.len();
        if m == 0 {
            self.done = true;
            return Some(current);
        }
        // Advance: find the rightmost index that can move right.
        let mut i = m;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.idx[i] < self.n - (m - i) {
                self.idx[i] += 1;
                for j in i + 1..m {
                    self.idx[j] = self.idx[j - 1] + 1;
                }
                break;
            }
        }
        Some(current)
    }
}

/// Brute-force optimal selection.
///
/// Subsets whose nodes are not mutually connected are skipped. Ties are
/// broken toward the lexicographically smallest node set, making the result
/// deterministic and directly comparable with the greedy algorithms.
pub fn exhaustive_select(
    topo: &Topology,
    m: usize,
    objective: ExhaustiveObjective,
    constraints: &Constraints,
    reference_bandwidth: Option<f64>,
) -> Result<Selection, SelectError> {
    if m == 0 {
        return Err(SelectError::ZeroCount);
    }
    let pool: Vec<NodeId> = topo
        .compute_nodes()
        .filter(|&n| {
            constraints
                .allowed
                .as_ref()
                .is_none_or(|set| set.contains(&n))
                && constraints
                    .min_cpu
                    .is_none_or(|c| topo.node(n).effective_cpu() >= c)
        })
        .collect();
    if pool.len() < m {
        return Err(SelectError::NotEnoughNodes {
            eligible: pool.len(),
            requested: m,
        });
    }
    let routes = topo.routes();
    let weights = match objective {
        ExhaustiveObjective::Balanced(w) => w,
        _ => Weights::EQUAL,
    };
    let mut best: Option<(f64, Vec<NodeId>, crate::Quality)> = None;
    'outer: for combo in Combinations::new(pool.len(), m) {
        let nodes: Vec<NodeId> = combo.iter().map(|&i| pool[i]).collect();
        for &r in &constraints.required {
            if !nodes.contains(&r) {
                continue 'outer;
            }
        }
        // Skip disconnected subsets.
        for (i, &a) in nodes.iter().enumerate() {
            for &b in nodes.iter().skip(i + 1) {
                if routes.path(a, b).is_err() {
                    continue 'outer;
                }
            }
        }
        let q = evaluate(topo, &routes, &nodes, reference_bandwidth);
        if let Some(floor) = constraints.min_bandwidth {
            if q.min_bw < floor {
                continue;
            }
        }
        let value = match objective {
            ExhaustiveObjective::MinCpu => q.min_cpu,
            ExhaustiveObjective::MinBandwidth => q.min_bw,
            ExhaustiveObjective::Balanced(w) => q.score(w),
        };
        match &best {
            Some((b, _, _)) if *b >= value => {}
            _ => best = Some((value, nodes, q)),
        }
    }
    let (_, nodes, quality) = best.ok_or(SelectError::Unsatisfiable)?;
    Ok(Selection {
        score: quality.score(weights),
        nodes,
        quality,
        iterations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    #[test]
    fn combinations_enumerate_lexicographically() {
        let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(Combinations::new(3, 3).count(), 1);
        assert_eq!(Combinations::new(3, 4).count(), 0);
        assert_eq!(Combinations::new(5, 1).count(), 5);
        assert_eq!(Combinations::new(6, 3).count(), 20);
    }

    #[test]
    fn picks_the_obviously_best_pair() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 4.0);
        topo.set_load_avg(ids[1], 4.0);
        let sel = exhaustive_select(
            &topo,
            2,
            ExhaustiveObjective::Balanced(Weights::EQUAL),
            &Constraints::none(),
            None,
        )
        .unwrap();
        assert_eq!(sel.nodes, vec![ids[2], ids[3]]);
        assert_eq!(sel.quality.min_cpu, 1.0);
    }

    #[test]
    fn respects_required_nodes() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 4.0);
        let constraints = Constraints {
            required: vec![ids[0]],
            ..Constraints::none()
        };
        let sel = exhaustive_select(
            &topo,
            2,
            ExhaustiveObjective::Balanced(Weights::EQUAL),
            &constraints,
            None,
        )
        .unwrap();
        assert!(sel.nodes.contains(&ids[0]));
        assert_eq!(sel.quality.min_cpu, 0.2);
    }

    #[test]
    fn bandwidth_floor_filters_sets() {
        let mut topo = Topology::new();
        let a = topo.add_compute_node("a", 1.0);
        let b = topo.add_compute_node("b", 1.0);
        let c = topo.add_compute_node("c", 1.0);
        topo.add_link(a, b, 10.0 * MBPS);
        topo.add_link(b, c, 100.0 * MBPS);
        let constraints = Constraints {
            min_bandwidth: Some(50.0 * MBPS),
            ..Constraints::none()
        };
        let sel =
            exhaustive_select(&topo, 2, ExhaustiveObjective::MinCpu, &constraints, None).unwrap();
        assert_eq!(sel.nodes, vec![b, c]);
    }
}
