//! Reproduction of Table 1: application performance under load and
//! traffic with random vs automatically selected nodes.

use crate::driver::{
    ci95_half_width, mean, run_cells, trial_seed, CellSpec, Condition, Strategy, Testbed,
    TrialConfig, WarmGroup,
};
use nodesel_apps::AppModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Paper-reported Table 1 values, for side-by-side comparison.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PaperRow {
    /// Random-selection times for load / traffic / both, seconds.
    pub random: [f64; 3],
    /// Automatic-selection times for load / traffic / both, seconds.
    pub auto: [f64; 3],
    /// Unloaded reference time, seconds.
    pub reference: f64,
}

/// The paper's published Table 1 numbers.
pub fn paper_table1(app: &str) -> Option<PaperRow> {
    match app {
        "FFT (1K)" => Some(PaperRow {
            random: [112.6, 80.3, 142.6],
            auto: [82.6, 64.6, 118.5],
            reference: 48.0,
        }),
        "Airshed" => Some(PaperRow {
            random: [393.8, 281.3, 530.2],
            auto: [254.0, 188.5, 355.1],
            reference: 150.0,
        }),
        "MRI" => Some(PaperRow {
            random: [683.0, 591.0, 776.0],
            auto: [594.0, 571.0, 667.0],
            reference: 540.0,
        }),
        _ => None,
    }
}

/// Configuration of the Table 1 run.
#[derive(Debug, Clone, Copy)]
pub struct Table1Config {
    /// Repetitions per (application, strategy, condition) cell.
    pub repetitions: usize,
    /// Master seed.
    pub seed: u64,
    /// Per-trial settings.
    pub trial: TrialConfig,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            repetitions: 24,
            seed: 0x7AB1E1,
            trial: TrialConfig::default(),
        }
    }
}

/// One application's measured row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Application name.
    pub app: String,
    /// Node count used (as in the paper).
    pub nodes: usize,
    /// Mean time with randomly selected nodes for load / traffic / both.
    pub random: [f64; 3],
    /// 95% confidence half-widths for the random cells.
    pub random_ci: [f64; 3],
    /// Mean time with automatically selected nodes for load / traffic /
    /// both.
    pub auto: [f64; 3],
    /// 95% confidence half-widths for the automatic cells.
    pub auto_ci: [f64; 3],
    /// Mean unloaded reference time.
    pub reference: f64,
}

impl Table1Row {
    /// `(auto - random) / random` per condition — the paper's "% change"
    /// columns (negative = automatic is faster).
    pub fn percent_change(&self) -> [f64; 3] {
        let mut out = [0.0; 3];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (self.auto[i] - self.random[i]) / self.random[i] * 100.0;
        }
        out
    }

    /// The paper's headline metric: how much of the load/traffic-induced
    /// *increase* over the reference remains under automatic selection.
    /// `0.5` means the increase was cut in half. Index: load/traffic/both.
    pub fn increase_ratio(&self) -> [f64; 3] {
        let mut out = [0.0; 3];
        for (i, slot) in out.iter_mut().enumerate() {
            let random_increase = (self.random[i] - self.reference).max(0.0);
            let auto_increase = (self.auto[i] - self.reference).max(0.0);
            *slot = if random_increase > 0.0 {
                auto_increase / random_increase
            } else {
                1.0
            };
        }
        out
    }
}

/// Full Table 1 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// One row per application.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Mean of [`Table1Row::increase_ratio`] over rows and loaded
    /// conditions — the "increase ... was reduced by half" claim is this
    /// value being ≈ 0.5.
    pub fn mean_increase_ratio(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0.0;
        for row in &self.rows {
            for r in row.increase_ratio() {
                sum += r;
                n += 1.0;
            }
        }
        sum / n
    }
}

/// Runs the full Table 1 experiment.
pub fn run_table1(config: &Table1Config) -> Table1 {
    run_table1_on(&Testbed::cmu(), &AppModel::paper_suite(), config)
}

/// Runs one application's row.
pub fn run_table1_row(app: &AppModel, m: usize, config: &Table1Config) -> Table1Row {
    let suite = [(app.clone(), m)];
    run_table1_on(&Testbed::cmu(), &suite, config)
        .rows
        .pop()
        .expect("one row per app")
}

/// Runs rows for `apps` on a shared testbed, every cell flattened into
/// one work queue over scoped threads.
///
/// The warm-up seed of a cell depends only on its condition and
/// repetition, so one warmed simulator serves every application and both
/// strategies of that `(condition, rep)` via [`crate::driver::WarmTrial`]
/// forks — the paired-seed methodology made literal: random and automatic
/// selection continue the *same* warm state, not merely an equally-seeded
/// reconstruction of it. A full table warms up 4 × repetitions times
/// instead of 7 × repetitions times per application.
pub fn run_table1_on(
    testbed: &Testbed,
    apps: &[(AppModel, usize)],
    config: &Table1Config,
) -> Table1 {
    let reps = config.repetitions;
    // Per-app result columns: reference, random × 3 conditions,
    // automatic × 3 conditions; repetitions are contiguous per column.
    let cols = 7;
    let slot = |a: usize, col: usize, rep: usize| (a * cols + col) * reps + rep;
    let mut groups: Vec<WarmGroup<'_>> = Vec::with_capacity(4 * reps);
    for rep in 0..reps {
        // Salt 0: the unloaded reference column (random selection).
        groups.push(WarmGroup {
            condition: Condition::None,
            seed: trial_seed(config.seed, rep),
            cells: apps
                .iter()
                .enumerate()
                .map(|(a, (app, m))| CellSpec {
                    app,
                    m: *m,
                    strategy: Strategy::Random,
                    slot: slot(a, 0, rep),
                })
                .collect(),
        });
    }
    let conditions = [Condition::Load, Condition::Traffic, Condition::Both];
    for (i, &condition) in conditions.iter().enumerate() {
        let salt = 1 + i as u64;
        for rep in 0..reps {
            let mut cells = Vec::with_capacity(apps.len() * 2);
            for (a, (app, m)) in apps.iter().enumerate() {
                // Same warm state for both strategies: paired comparison
                // against exactly the same background activity.
                cells.push(CellSpec {
                    app,
                    m: *m,
                    strategy: Strategy::Random,
                    slot: slot(a, 1 + i, rep),
                });
                cells.push(CellSpec {
                    app,
                    m: *m,
                    strategy: Strategy::Automatic,
                    slot: slot(a, 4 + i, rep),
                });
            }
            groups.push(WarmGroup {
                condition,
                seed: trial_seed(config.seed ^ salt, rep),
                cells,
            });
        }
    }
    let results = run_cells(testbed, &config.trial, &groups, apps.len() * cols * reps);
    let rows = apps
        .iter()
        .enumerate()
        .map(|(a, (app, m))| {
            let col = |c: usize| &results[slot(a, c, 0)..slot(a, c, 0) + reps];
            let mut random = [0.0; 3];
            let mut random_ci = [0.0; 3];
            let mut auto = [0.0; 3];
            let mut auto_ci = [0.0; 3];
            for i in 0..3 {
                random[i] = mean(col(1 + i));
                random_ci[i] = ci95_half_width(col(1 + i));
                auto[i] = mean(col(4 + i));
                auto_ci[i] = ci95_half_width(col(4 + i));
            }
            Table1Row {
                app: app.name().to_string(),
                nodes: *m,
                random,
                random_ci,
                auto,
                auto_ci,
                reference: mean(col(0)),
            }
        })
        .collect();
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>5} | {:>8} {:>8} {:>8} | {:>16} {:>16} {:>16} | {:>8}",
            "App",
            "Nodes",
            "rnd:load",
            "rnd:traf",
            "rnd:both",
            "auto:load",
            "auto:traffic",
            "auto:both",
            "ref"
        )?;
        writeln!(f, "{}", "-".repeat(120))?;
        for row in &self.rows {
            let pc = row.percent_change();
            writeln!(
                f,
                "{:<10} {:>5} | {:>8.1} {:>8.1} {:>8.1} | {:>8.1} ({:>+5.1}%) {:>8.1} ({:>+5.1}%) {:>8.1} ({:>+5.1}%) | {:>8.1}",
                row.app,
                row.nodes,
                row.random[0],
                row.random[1],
                row.random[2],
                row.auto[0],
                pc[0],
                row.auto[1],
                pc[1],
                row.auto[2],
                pc[2],
                row.reference,
            )?;
        }
        writeln!(f, "{}", "-".repeat(120))?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<10} 95% CI half-widths: random ±{:.1}/±{:.1}/±{:.1}  auto ±{:.1}/±{:.1}/±{:.1}",
                row.app,
                row.random_ci[0],
                row.random_ci[1],
                row.random_ci[2],
                row.auto_ci[0],
                row.auto_ci[1],
                row.auto_ci[2],
            )?;
        }
        writeln!(
            f,
            "mean fraction of the load/traffic-induced increase remaining under automatic selection: {:.2} (paper: ~0.5)",
            self.mean_increase_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_present_for_suite() {
        for (app, _) in AppModel::paper_suite() {
            assert!(paper_table1(app.name()).is_some());
        }
        assert!(paper_table1("nope").is_none());
    }

    #[test]
    fn percent_change_and_increase_ratio() {
        let row = Table1Row {
            app: "x".into(),
            nodes: 4,
            random: [100.0, 80.0, 150.0],
            random_ci: [0.0; 3],
            auto: [75.0, 60.0, 100.0],
            auto_ci: [0.0; 3],
            reference: 50.0,
        };
        let pc = row.percent_change();
        assert!((pc[0] + 25.0).abs() < 1e-9);
        let ir = row.increase_ratio();
        assert!((ir[0] - 0.5).abs() < 1e-9); // 25/50
        assert!((ir[2] - 0.5).abs() < 1e-9); // 50/100
    }

    #[test]
    fn table_formats() {
        let t = Table1 {
            rows: vec![Table1Row {
                app: "FFT (1K)".into(),
                nodes: 4,
                random: [112.6, 80.3, 142.6],
                random_ci: [5.0; 3],
                auto: [82.6, 64.6, 118.5],
                auto_ci: [4.0; 3],
                reference: 48.0,
            }],
        };
        let s = t.to_string();
        assert!(s.contains("FFT (1K)"));
        assert!(s.contains("paper: ~0.5"));
    }
}
