//! The placement server: epoch publication in, placements out.
//!
//! One [`PlacementService`] owns the latest published snapshot (in a
//! lock-free [`EpochCell`]), a [`PlacementLedger`] of admitted jobs with
//! the residual snapshot derived from it, a delta-invalidated
//! [`SelectionCache`], and an optional worker pool. A request travels:
//!
//! 1. **canonicalize** — [`CanonicalRequest`] normalizes the spec so
//!    identically-shaped requests share one cache slot and one solve;
//! 2. **pin a residual** — one short ledger lock captures the triple
//!    `(residual snapshot, raw epoch, ledger version)`; the answer is
//!    then *for that pair of pins*, whatever is published or admitted
//!    next;
//! 3. **cache** — a hit returns the `(epoch, version)` pair's cached
//!    bits;
//! 4. **single-flight** — a miss joins an identical in-flight solve on
//!    the same residual snapshot if one exists, else enqueues its own;
//! 5. **batch-solve** — workers drain the bounded queue up to
//!    `batch_size` jobs at a time, scarcest-first (tightest candidate
//!    pool first, larger requests first), solve each against the job's
//!    own pinned residual, and publish answer + footprint to the cache.
//!
//! With `workers == 0` the service solves inline on the calling thread —
//! same cache, same accounting, fully deterministic (the configuration
//! the parity proptests drive).
//!
//! # The placement lifecycle
//!
//! `get` answers and forgets: nothing is reserved, and K concurrent
//! callers with the same spec receive the same nodes. The lifecycle path
//! makes the service multi-job aware:
//!
//! * [`PlacementService::admit`] solves on the **residual** network (raw
//!   measurements plus every admitted claim), records the placement in
//!   the ledger with a [`ResourceDemand`]-derived claim, and bumps the
//!   ledger version;
//! * [`PlacementService::release`] un-charges the claim;
//! * [`PlacementService::supervise`] runs the failure-aware
//!   [`Supervisor`] for one admitted job against the residual network
//!   *excluding the job's own claim* (so its reservation cannot repel
//!   its re-placement) and, when re-selection is advised, moves the
//!   ledger entry atomically — one version bump swaps old claim for new,
//!   so no interleaved admission can observe the job double-counted or
//!   vanished.
//!
//! Ledger changes invalidate cached answers by the same
//! footprint-intersection machinery as measurement deltas: the changed
//! claim's touched entities are intersected with every entry's recorded
//! footprint (see [`SelectionCache::advance_ledger`]).
//!
//! With an **empty ledger** the residual snapshot *is* the raw snapshot
//! (the same `Arc`, pointer-identical), so every answer is bit-identical
//! to the oblivious path — proptest-guarded in `tests/cache_parity.rs`.
//!
//! # Locking
//!
//! Lock order is `last_published → ledger → cache → queue`; any path
//! taking several takes them in that order. Mutex poisoning is
//! deliberately escalated ([`lock`]): a thread that panicked while
//! mutating shared state has voided the bit-identical answer contract,
//! and no caller input can reach those panics — caller-reachable
//! failures on the lifecycle path are typed [`ServiceError`]s instead.

use crate::cache::SelectionCache;
use crate::epoch::EpochCell;
use crate::error::ServiceError;
use crate::ledger::{JobId, PlacementLedger, ResourceDemand};
use crate::stats::{ServiceStats, StatsInner};
use nodesel_core::migration::OwnUsage;
use nodesel_core::{
    selector_for, CanonicalRequest, SelectError, Selection, SelectionFootprint, SelectionRequest,
    Supervisor, SupervisorCheck, SupervisorPolicy, SupervisorVerdict,
};
use nodesel_topology::{NetDelta, NetMetrics, NetSnapshot};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Tuning knobs for a [`PlacementService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Solver threads. `0` solves inline on the calling thread
    /// (deterministic; single-flight merges never occur).
    pub workers: usize,
    /// Maximum jobs a worker drains per wakeup; each drained batch is
    /// ordered scarcest-first before solving.
    pub batch_size: usize,
    /// Queued-job bound; producers block when it is reached.
    pub queue_capacity: usize,
    /// Selection-cache entry bound (LRU beyond it; `0` disables caching).
    pub cache_capacity: usize,
    /// Re-selection policy applied by [`PlacementService::supervise`]
    /// (hysteresis, backoff, staleness cap).
    pub supervisor: SupervisorPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            batch_size: 32,
            queue_capacity: 1024,
            cache_capacity: 65536,
            supervisor: SupervisorPolicy::default(),
        }
    }
}

impl ServiceConfig {
    /// The default configuration with a pool of `workers` solver threads.
    pub fn pooled(workers: usize) -> Self {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }
}

/// A service answer: the result plus the epoch it is valid for.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Epoch of the raw snapshot the answer was solved (or cached)
    /// against — through the residual view of the ledger version current
    /// at pin time.
    pub epoch: u64,
    /// The selection, bit-identical to a fresh solve on that epoch's
    /// residual network.
    pub result: Result<Selection, SelectError>,
}

/// A successful admission: the job's ledger handle plus the placement it
/// received.
#[derive(Debug, Clone, PartialEq)]
pub struct Admission {
    /// Handle for `release`/`supervise`.
    pub job: JobId,
    /// Raw-snapshot epoch the placement was solved against.
    pub epoch: u64,
    /// The granted placement.
    pub selection: Selection,
}

/// Acquires `m`, escalating poisoning to a panic.
///
/// Every mutex in this crate guards state whose consistency the
/// bit-identical answer contract depends on (the cache map, the ledger
/// aggregates, the queue). A poisoned lock means a thread panicked
/// mid-mutation; recovering would let the service keep answering from
/// state it cannot vouch for, so the panic is propagated. This is an
/// invariant assert, not a caller-reachable error: no request or
/// lifecycle input can poison these locks (caller-reachable failures are
/// typed [`ServiceError`]s before any lock is taken).
fn lock<'a, T>(m: &'a Mutex<T>, what: &'static str) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(_) => panic!("{what} lock poisoned by a panicked thread"),
    }
}

/// One in-flight solve; merged requests block on `cv` until `done`.
struct Job {
    /// The pinned residual snapshot the solve runs against.
    snap: Arc<NetSnapshot>,
    /// Raw-snapshot epoch of the pin (the `Placement::epoch` to report).
    epoch: u64,
    /// Ledger version of the pin (cache-key half).
    version: u64,
    canon: CanonicalRequest,
    done: Mutex<Option<Result<Selection, SelectError>>>,
    cv: Condvar,
}

/// Jobs are keyed by the identity of their pinned residual snapshot (the
/// `Arc`'s address — kept alive by the job itself) plus the canonical
/// request: merging is only sound onto a solve against the *same*
/// snapshot bits, and the `Arc` identity pins exactly that.
type JobKey = (usize, CanonicalRequest);

fn job_key(snap: &Arc<NetSnapshot>, canon: &CanonicalRequest) -> JobKey {
    (Arc::as_ptr(snap) as usize, canon.clone())
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Arc<Job>>,
    inflight: HashMap<JobKey, Arc<Job>>,
}

/// The ledger with the residual snapshot derived from it.
///
/// `residual` is the raw snapshot with every admitted claim applied —
/// or, when the ledger is invisible (no claims, or only zero-magnitude
/// ones), **the raw `Arc` itself**: pointer identity is the cheap proof
/// that an empty ledger changes no answer bits, and it lets single-flight
/// merging keep working across the oblivious and admitted paths.
struct LedgerCell {
    ledger: PlacementLedger,
    raw: Arc<NetSnapshot>,
    residual: Arc<NetSnapshot>,
}

impl LedgerCell {
    /// Re-derives `residual` from `raw` and the current claims.
    fn refresh_residual(&mut self) {
        self.residual = if self.ledger.state().is_invisible() {
            Arc::clone(&self.raw)
        } else {
            Arc::new(self.raw.apply(&self.ledger.state().to_delta(&self.raw)))
        };
    }
}

struct Shared {
    cell: EpochCell,
    cache: Mutex<SelectionCache>,
    ledger: Mutex<LedgerCell>,
    state: Mutex<QueueState>,
    /// Signals workers that the queue is non-empty (or shutdown).
    work_cv: Condvar,
    /// Signals producers that queue space freed up.
    space_cv: Condvar,
    stats: StatsInner,
    shutdown: AtomicBool,
    /// Baseline for [`PlacementService::ingest`] diffs.
    last_published: Mutex<Arc<NetSnapshot>>,
    config: ServiceConfig,
}

impl Shared {
    /// Pins the answering context: `(residual snapshot, raw epoch,
    /// ledger version)`, captured atomically under one short ledger
    /// lock. Everything downstream (cache key, solve input, reported
    /// epoch) derives from this triple.
    fn pin(&self) -> (Arc<NetSnapshot>, u64, u64) {
        let cell = lock(&self.ledger, "ledger");
        (
            Arc::clone(&cell.residual),
            cell.raw.epoch(),
            cell.ledger.version(),
        )
    }
}

/// A concurrent placement server over a published snapshot stream.
///
/// Created with [`PlacementService::new`]; the collector side feeds it
/// via [`PlacementService::publish`] (or [`PlacementService::ingest`]),
/// request threads call [`PlacementService::get`] freely from any number
/// of threads, and job owners drive [`PlacementService::admit`] /
/// [`PlacementService::release`] / [`PlacementService::supervise`].
/// Dropping the service joins its workers.
pub struct PlacementService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl PlacementService {
    /// A service answering against `initial` until the first publication.
    pub fn new(initial: Arc<NetSnapshot>, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            cell: EpochCell::new(Arc::clone(&initial)),
            cache: Mutex::new(SelectionCache::new(initial.epoch(), config.cache_capacity)),
            ledger: Mutex::new(LedgerCell {
                ledger: PlacementLedger::new(),
                raw: Arc::clone(&initial),
                residual: Arc::clone(&initial),
            }),
            state: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            stats: StatsInner::default(),
            shutdown: AtomicBool::new(false),
            last_published: Mutex::new(initial),
            config: config.clone(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nodesel-service-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        PlacementService { shared, workers }
    }

    /// Publishes a new epoch. `delta` must describe every annotation
    /// change since the previously published snapshot; entries whose
    /// footprint it misses survive with stale bits. `None` (or a
    /// structure change, detected here) flushes the cache wholesale.
    /// The residual snapshot is re-derived against the new epoch; a
    /// structural change additionally re-derives every ledger claim
    /// along the new structure's routes ([`PlacementLedger`] rebind).
    /// The collector never blocks on readers: the snapshot swap is
    /// lock-free, the bookkeeping contends only with request threads'
    /// short ledger/cache accesses.
    pub fn publish(&self, snap: Arc<NetSnapshot>, delta: Option<&NetDelta>) {
        let shared = &self.shared;
        let structure_changed = {
            let mut last = lock(&shared.last_published, "last-published");
            let changed = !snap.same_structure(&last);
            *last = Arc::clone(&snap);
            changed
        };
        let epoch = snap.epoch();
        shared.cell.store(Arc::clone(&snap));
        let delta = if structure_changed { None } else { delta };
        let mut cell = lock(&shared.ledger, "ledger");
        cell.raw = snap;
        if structure_changed && !cell.ledger.is_empty() {
            let LedgerCell { ledger, raw, .. } = &mut *cell;
            ledger.rebind(raw.structure());
        }
        cell.refresh_residual();
        let ledger_version = cell.ledger.version();
        let mut cache = lock(&shared.cache, "cache");
        cache.advance(epoch, delta);
        if cache.ledger_version() != ledger_version {
            // A structural rebind bumped the version; the flush above
            // already emptied the map, so this only moves the pin.
            cache.advance_ledger(ledger_version, Some(&NetDelta::default()));
        }
        drop(cache);
        drop(cell);
        StatsInner::bump(&shared.stats.epochs_published);
    }

    /// Diffs `snap` against the last published snapshot and publishes it
    /// with the exact delta (a structure change publishes with a flush).
    /// The convenience hook for a collector pump that only has
    /// snapshots in hand. Returns the published epoch.
    pub fn ingest(&self, snap: NetSnapshot) -> u64 {
        let snap = Arc::new(snap);
        let epoch = snap.epoch();
        let last = Arc::clone(&lock(&self.shared.last_published, "last-published"));
        if snap.same_structure(&last) {
            let delta = snap.diff(&last);
            self.publish(snap, Some(&delta));
        } else {
            self.publish(snap, None);
        }
        epoch
    }

    /// The currently published raw snapshot (lock-free).
    pub fn snapshot(&self) -> Arc<NetSnapshot> {
        self.shared.cell.load()
    }

    /// The current residual snapshot: the raw snapshot with every
    /// admitted claim applied. With an empty ledger this is the raw
    /// snapshot itself (the same `Arc`).
    pub fn residual_snapshot(&self) -> Arc<NetSnapshot> {
        self.shared.pin().0
    }

    /// The currently published epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.shared.cell.load().epoch()
    }

    /// The current ledger version (bumped per admit/release/move).
    pub fn ledger_version(&self) -> u64 {
        lock(&self.shared.ledger, "ledger").ledger.version()
    }

    /// Jobs currently admitted.
    pub fn active_jobs(&self) -> usize {
        lock(&self.shared.ledger, "ledger").ledger.len()
    }

    /// Answers `request` against the currently published epoch's
    /// residual network (without admitting anything).
    ///
    /// The returned placement's `result` is bit-identical to a fresh
    /// [`nodesel_core::select`] on the residual snapshot of
    /// `placement.epoch` at the pinned ledger version — whether it came
    /// from the cache, an in-flight merge, or a solve. With an empty
    /// ledger that is exactly the raw snapshot of `placement.epoch`.
    pub fn get(&self, request: &SelectionRequest) -> Placement {
        self.get_canonical(&CanonicalRequest::new(request))
    }

    /// [`PlacementService::get`] for a pre-canonicalized request.
    pub fn get_canonical(&self, canon: &CanonicalRequest) -> Placement {
        let shared = &self.shared;
        StatsInner::bump(&shared.stats.requests);
        let (snap, epoch, version) = shared.pin();
        if let Some(result) = lock(&shared.cache, "cache").lookup(epoch, version, canon) {
            StatsInner::bump(&shared.stats.cache_hits);
            return Placement { epoch, result };
        }
        if shared.config.workers == 0 {
            let (result, footprint) = solve(&snap, canon);
            shared.stats.record_solve(epoch);
            lock(&shared.cache, "cache").insert(
                epoch,
                version,
                canon.clone(),
                result.clone(),
                footprint,
            );
            return Placement { epoch, result };
        }
        let key = job_key(&snap, canon);
        let job = {
            let mut state = lock(&shared.state, "queue");
            loop {
                if let Some(job) = state.inflight.get(&key) {
                    StatsInner::bump(&shared.stats.single_flight_merges);
                    break Arc::clone(job);
                }
                if state.queue.len() < shared.config.queue_capacity {
                    let job = Arc::new(Job {
                        snap: Arc::clone(&snap),
                        epoch,
                        version,
                        canon: canon.clone(),
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    state.inflight.insert(key.clone(), Arc::clone(&job));
                    state.queue.push_back(Arc::clone(&job));
                    shared.work_cv.notify_one();
                    break job;
                }
                // Queue full: wait for workers to drain, then re-check
                // (an identical job may have appeared meanwhile).
                state = shared
                    .space_cv
                    .wait(state)
                    .unwrap_or_else(|_| panic!("queue lock poisoned by a panicked thread"));
            }
        };
        let mut done = lock(&job.done, "job");
        while done.is_none() {
            done = job
                .cv
                .wait(done)
                .unwrap_or_else(|_| panic!("job lock poisoned by a panicked thread"));
        }
        Placement {
            epoch,
            // Invariant, not caller-reachable: the wait above only exits
            // once a worker stored the result.
            result: done
                .clone()
                .expect("in-flight job completed without a result"),
        }
    }

    /// Admits `request` with the demand it implies
    /// ([`ResourceDemand::from_request`]): solves on the residual
    /// network, records the placement and its claim in the ledger, and
    /// returns the job handle. A selection failure admits nothing.
    pub fn admit(&self, request: &SelectionRequest) -> Result<Admission, ServiceError> {
        self.admit_with(request, ResourceDemand::from_request(request))
    }

    /// [`PlacementService::admit`] with an explicit declared demand.
    ///
    /// Admissions are serialized on the ledger lock *including their
    /// solve*: each admission must see every previously admitted claim,
    /// or two racing jobs would pick the same free capacity — the exact
    /// failure mode the ledger exists to close. The cache still
    /// short-circuits repeat specs at the same `(epoch, version)` pin.
    pub fn admit_with(
        &self,
        request: &SelectionRequest,
        demand: ResourceDemand,
    ) -> Result<Admission, ServiceError> {
        demand.validate()?;
        let shared = &self.shared;
        StatsInner::bump(&shared.stats.requests);
        let canon = CanonicalRequest::new(request);
        let mut cell = lock(&shared.ledger, "ledger");
        let epoch = cell.raw.epoch();
        let version = cell.ledger.version();
        let cached = lock(&shared.cache, "cache").lookup(epoch, version, &canon);
        let result = match cached {
            Some(result) => {
                StatsInner::bump(&shared.stats.cache_hits);
                result
            }
            None => {
                let (result, footprint) = solve(&cell.residual, &canon);
                shared.stats.record_solve(epoch);
                lock(&shared.cache, "cache").insert(
                    epoch,
                    version,
                    canon,
                    result.clone(),
                    footprint,
                );
                result
            }
        };
        let selection = result.map_err(ServiceError::Select)?;
        let LedgerCell { ledger, raw, .. } = &mut *cell;
        let (job, claim) = ledger.admit(
            request.clone(),
            demand,
            selection.nodes.clone(),
            raw.structure(),
        );
        cell.refresh_residual();
        lock(&shared.cache, "cache")
            .advance_ledger(cell.ledger.version(), Some(&claim.touched_delta()));
        drop(cell);
        StatsInner::bump(&shared.stats.admits);
        Ok(Admission {
            job,
            epoch,
            selection,
        })
    }

    /// Releases an admitted job, un-charging its claim from the residual
    /// network.
    pub fn release(&self, job: JobId) -> Result<(), ServiceError> {
        let shared = &self.shared;
        let mut cell = lock(&shared.ledger, "ledger");
        let claim = cell.ledger.release(job)?;
        cell.refresh_residual();
        lock(&shared.cache, "cache")
            .advance_ledger(cell.ledger.version(), Some(&claim.touched_delta()));
        drop(cell);
        StatsInner::bump(&shared.stats.releases);
        Ok(())
    }

    /// One supervision epoch for an admitted job: runs the failure-aware
    /// [`Supervisor`] (policy from [`ServiceConfig::supervisor`]) against
    /// the residual network **excluding the job's own claim** — the
    /// job's reservation must not repel its own re-placement — and, when
    /// re-selection is advised, moves the ledger entry to the advised
    /// nodes atomically: one version bump swaps the old claim for the
    /// new, so concurrent admissions never see the job double-counted or
    /// missing. `now` is the caller's clock in seconds, monotone across
    /// calls for this job.
    ///
    /// Selection errors (e.g. too few live nodes) leave the ledger
    /// unchanged; the supervisor stays primed and a later epoch may
    /// recover.
    pub fn supervise(&self, job: JobId, now: f64) -> Result<SupervisorCheck, ServiceError> {
        let shared = &self.shared;
        let mut cell = lock(&shared.ledger, "ledger");
        let raw = Arc::clone(&cell.raw);
        let delta = cell.ledger.residual_delta_excluding(&raw, job);
        // Materialized residual-without-self; bit-identical to the view
        // (see `nodesel_topology::residual`). An invisible remainder
        // reuses the raw snapshot unchanged.
        let excl = if delta.is_empty() {
            Arc::clone(&raw)
        } else {
            Arc::new(raw.apply(&delta))
        };
        let policy = shared.config.supervisor;
        let entry = cell.ledger.entry_mut(job)?;
        let own = OwnUsage::one_process_per_node(&entry.nodes);
        let current = entry.nodes.clone();
        let supervisor = entry
            .supervisor
            .get_or_insert_with(|| Supervisor::new(entry.request.clone(), policy));
        let check = supervisor.check(now, &excl, &current, &own)?;
        if matches!(check.verdict, SupervisorVerdict::Reselect { .. }) {
            let next = check.advice.best.nodes.clone();
            let LedgerCell { ledger, raw, .. } = &mut *cell;
            let (old_claim, new_claim) = ledger.move_job(job, next, raw.structure())?;
            cell.refresh_residual();
            // Cached answers may depend on either the vacated or the
            // newly occupied entities: invalidate against the union.
            let mut touched = old_claim.touched_delta();
            let new_touched = new_claim.touched_delta();
            touched.nodes.extend(new_touched.nodes);
            touched.links.extend(new_touched.links);
            lock(&shared.cache, "cache").advance_ledger(cell.ledger.version(), Some(&touched));
            StatsInner::bump(&shared.stats.ledger_moves);
        }
        Ok(check)
    }

    /// The nodes an admitted job currently occupies.
    pub fn job_nodes(&self, job: JobId) -> Result<Vec<nodesel_topology::NodeId>, ServiceError> {
        let cell = lock(&self.shared.ledger, "ledger");
        cell.ledger.nodes(job).map(|n| n.to_vec())
    }

    /// A point-in-time view of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        use std::sync::atomic::Ordering::Relaxed;
        let shared = &self.shared;
        let cell = lock(&shared.ledger, "ledger");
        let active_jobs = cell.ledger.len() as u64;
        let ledger_version = cell.ledger.version();
        drop(cell);
        let cache = lock(&shared.cache, "cache");
        let counters = cache.counters;
        drop(cache);
        ServiceStats {
            requests: shared.stats.requests.load(Relaxed),
            cache_hits: shared.stats.cache_hits.load(Relaxed),
            single_flight_merges: shared.stats.single_flight_merges.load(Relaxed),
            solves: shared.stats.solves.load(Relaxed),
            epochs_published: shared.stats.epochs_published.load(Relaxed),
            delta_evictions: counters.delta_evictions,
            capacity_evictions: counters.capacity_evictions,
            carried_forward: counters.carried_forward,
            stale_inserts: counters.stale_inserts,
            flushes: counters.flushes,
            ledger_evictions: counters.ledger_evictions,
            admits: shared.stats.admits.load(Relaxed),
            releases: shared.stats.releases.load(Relaxed),
            ledger_moves: shared.stats.ledger_moves.load(Relaxed),
            active_jobs,
            ledger_version,
            solves_per_epoch: lock(&shared.stats.per_epoch, "stats")
                .iter()
                .copied()
                .collect(),
        }
    }

    /// Resident cache entries (test and observability hook).
    pub fn cached_entries(&self) -> usize {
        lock(&self.shared.cache, "cache").len()
    }
}

impl Drop for PlacementService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for PlacementService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementService")
            .field("epoch", &self.epoch())
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Solves `canon` against `snap`, returning the answer and the footprint
/// a cache entry for it must record.
fn solve(
    snap: &NetSnapshot,
    canon: &CanonicalRequest,
) -> (Result<Selection, SelectError>, SelectionFootprint) {
    let request = canon.to_request();
    let mut selector = selector_for(request.objective);
    let result = selector.select(snap, &request);
    (result, selector.footprint())
}

/// Scarcest-first batch order: tightest candidate pool first (smallest
/// `allowed`, unrestricted last), then pinned-node count (more first),
/// then larger requests first — the hardest-to-place specs claim their
/// answers before the flexible ones, mirroring the batched-matching
/// exemplar.
fn scarcity_key(
    canon: &CanonicalRequest,
) -> (usize, std::cmp::Reverse<usize>, std::cmp::Reverse<usize>) {
    (
        canon.allowed_len().unwrap_or(usize::MAX),
        std::cmp::Reverse(canon.required_len()),
        std::cmp::Reverse(canon.count()),
    )
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut batch: Vec<Arc<Job>> = {
            let mut state = lock(&shared.state, "queue");
            while state.queue.is_empty() && !shared.shutdown.load(SeqCst) {
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(|_| panic!("queue lock poisoned by a panicked thread"));
            }
            if state.queue.is_empty() {
                return; // shutdown with nothing left to solve
            }
            let take = state.queue.len().min(shared.config.batch_size.max(1));
            let batch = state.queue.drain(..take).collect();
            shared.space_cv.notify_all();
            batch
        };
        batch.sort_by_key(|a| scarcity_key(&a.canon));
        for job in batch {
            let (result, footprint) = solve(&job.snap, &job.canon);
            shared.stats.record_solve(job.epoch);
            lock(&shared.cache, "cache").insert(
                job.epoch,
                job.version,
                job.canon.clone(),
                result.clone(),
                footprint,
            );
            lock(&shared.state, "queue")
                .inflight
                .remove(&job_key(&job.snap, &job.canon));
            *lock(&job.done, "job") = Some(result);
            job.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;
    use nodesel_topology::{NetDelta, NodeId};

    fn service(workers: usize) -> (PlacementService, Vec<NodeId>) {
        let (topo, ids) = star(8, 100.0 * MBPS);
        let snap = Arc::new(NetSnapshot::capture(Arc::new(topo)));
        (
            PlacementService::new(snap, ServiceConfig::pooled(workers)),
            ids,
        )
    }

    #[test]
    fn inline_hits_after_first_solve() {
        let (svc, _) = service(0);
        let request = SelectionRequest::balanced(3);
        let first = svc.get(&request);
        let second = svc.get(&request);
        assert_eq!(first, second);
        let stats = svc.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.solves_per_epoch, vec![(0, 1)]);
    }

    #[test]
    fn answers_match_fresh_select_across_epochs() {
        let (svc, ids) = service(0);
        let requests = [
            SelectionRequest::compute(2),
            SelectionRequest::communication(3),
            SelectionRequest::balanced(4),
        ];
        let mut snap = (*svc.snapshot()).clone();
        for round in 0..5 {
            for request in &requests {
                let placement = svc.get(request);
                assert_eq!(placement.epoch, snap.epoch());
                assert_eq!(
                    placement.result,
                    nodesel_core::select(&snap.to_topology(), request),
                    "round {round}"
                );
            }
            let delta = NetDelta {
                nodes: vec![(ids[round % ids.len()], round as f64 + 0.5)],
                ..NetDelta::default()
            };
            snap = snap.apply(&delta);
            svc.publish(Arc::new(snap.clone()), Some(&delta));
        }
        let stats = svc.stats();
        assert_eq!(
            stats.requests,
            stats.cache_hits + stats.single_flight_merges + stats.solves
        );
        assert_eq!(stats.epochs_published, 5);
    }

    #[test]
    fn pooled_answers_match_inline() {
        let (pooled, _) = service(2);
        let (inline, _) = service(0);
        let requests: Vec<SelectionRequest> = (2..6)
            .flat_map(|m| {
                [
                    SelectionRequest::compute(m),
                    SelectionRequest::communication(m),
                    SelectionRequest::balanced(m),
                ]
            })
            .collect();
        for request in &requests {
            assert_eq!(pooled.get(request), inline.get(request));
        }
        let stats = pooled.stats();
        assert_eq!(
            stats.requests,
            stats.cache_hits + stats.single_flight_merges + stats.solves
        );
    }

    #[test]
    fn pooled_concurrent_identical_requests_single_flight() {
        let (svc, _) = service(2);
        let svc = Arc::new(svc);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    let request = SelectionRequest::balanced(3);
                    let placement = svc.get(&request);
                    assert!(placement.result.is_ok());
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(
            stats.requests,
            stats.cache_hits + stats.single_flight_merges + stats.solves
        );
        // At least one request must have solved; the split between hits
        // and merges depends on timing.
        assert!(stats.solves >= 1);
    }

    #[test]
    fn structure_change_flushes_cache() {
        let (svc, _) = service(0);
        svc.get(&SelectionRequest::compute(2));
        assert_eq!(svc.cached_entries(), 1);
        let (other, _) = star(6, 100.0 * MBPS);
        let replacement = Arc::new(NetSnapshot::capture(Arc::new(other)));
        // Even with a (bogus) delta attached, the structure swap forces
        // a flush.
        svc.publish(replacement, Some(&NetDelta::default()));
        assert_eq!(svc.cached_entries(), 0);
        assert_eq!(svc.stats().flushes, 1);
    }

    #[test]
    fn ingest_diffs_and_carries_disjoint_entries() {
        let (svc, ids) = service(0);
        let compute = SelectionRequest::compute(2);
        let first = svc.get(&compute);
        // Load a node far from the answer: the compute entry's footprint
        // covers only its viable component members — here the whole
        // allowed pool, so pick the answer's own node to force eviction,
        // then a no-op delta to confirm carry.
        let snap = (*svc.snapshot()).clone();
        let next = snap.apply(&NetDelta::default());
        let epoch = svc.ingest(next);
        assert_eq!(epoch, 1);
        assert_eq!(svc.cached_entries(), 1, "empty diff carries the entry");
        let hit = svc.get(&compute);
        assert_eq!(hit.epoch, 1);
        assert_eq!(hit.result, first.result);
        assert_eq!(svc.stats().cache_hits, 1);
        // Now touch a chosen node: the entry must be evicted.
        let chosen = first.result.as_ref().unwrap().nodes[0];
        let delta = NetDelta {
            nodes: vec![(chosen, 9.0)],
            ..NetDelta::default()
        };
        let churned = svc.snapshot().apply(&delta);
        svc.ingest(churned);
        assert_eq!(svc.cached_entries(), 0);
        assert!(svc.stats().delta_evictions >= 1);
        let _ = ids;
    }

    #[test]
    fn scarcity_orders_tightest_first() {
        let mut tight = SelectionRequest::compute(2);
        tight.constraints.allowed = Some(
            [NodeId::from_index(0), NodeId::from_index(1)]
                .into_iter()
                .collect(),
        );
        let loose = SelectionRequest::compute(2);
        let big = SelectionRequest::compute(5);
        let k = |r: &SelectionRequest| scarcity_key(&CanonicalRequest::new(r));
        assert!(k(&tight) < k(&loose));
        assert!(k(&big) < k(&loose));
    }

    #[test]
    fn admitted_jobs_shift_later_placements() {
        let (svc, _) = service(0);
        let mut request = SelectionRequest::balanced(2);
        request.reference_bandwidth = Some(20.0 * MBPS);
        // Oblivious gets answer the same nodes every time.
        let oblivious = svc.get(&request).result.unwrap();
        assert_eq!(svc.get(&request).result.unwrap(), oblivious);
        // Admission charges the nodes; the next admission must avoid the
        // now-loaded ones (8 idle leaves, 2 claimed => 6 free remain
        // strictly better on effective CPU).
        let first = svc.admit(&request).unwrap();
        assert_eq!(first.selection, oblivious);
        assert_eq!(svc.active_jobs(), 1);
        let second = svc.admit(&request).unwrap();
        for n in &second.selection.nodes {
            assert!(
                !first.selection.nodes.contains(n),
                "second admission re-used a claimed node"
            );
        }
        assert_eq!(svc.active_jobs(), 2);
        let stats = svc.stats();
        assert_eq!(stats.admits, 2);
        assert_eq!(stats.active_jobs, 2);
        assert!(stats.ledger_version >= 2);
    }

    #[test]
    fn release_restores_oblivious_answers() {
        let (svc, _) = service(0);
        let request = SelectionRequest::balanced(2);
        let before = svc.get(&request);
        let admission = svc.admit(&request).unwrap();
        // With the claim charged, the same spec answers differently.
        let during = svc.get(&request);
        assert_ne!(before.result, during.result);
        svc.release(admission.job).unwrap();
        // Residual is the raw snapshot again: identical Arc, identical bits.
        assert!(Arc::ptr_eq(&svc.residual_snapshot(), &svc.snapshot()));
        let after = svc.get(&request);
        assert_eq!(before.result, after.result);
        assert_eq!(svc.active_jobs(), 0);
        assert_eq!(svc.stats().releases, 1);
        // Double release is a typed error, not a panic.
        assert_eq!(
            svc.release(admission.job),
            Err(ServiceError::UnknownJob(admission.job))
        );
    }

    #[test]
    fn admit_rejects_invalid_demand_and_failed_selection() {
        let (svc, _) = service(0);
        let request = SelectionRequest::balanced(2);
        let bad = ResourceDemand {
            cpu_load: f64::NAN,
            pair_bandwidth: 0.0,
        };
        assert!(matches!(
            svc.admit_with(&request, bad),
            Err(ServiceError::InvalidDemand {
                field: "cpu_load",
                ..
            })
        ));
        // An unsatisfiable selection admits nothing.
        let huge = SelectionRequest::balanced(100);
        assert!(matches!(
            svc.admit(&huge),
            Err(ServiceError::Select(SelectError::NotEnoughNodes { .. }))
        ));
        assert_eq!(svc.active_jobs(), 0);
        assert_eq!(svc.stats().admits, 0);
    }

    #[test]
    fn supervise_moves_job_off_dead_node_without_double_count() {
        let (svc, ids) = service(0);
        let request = SelectionRequest::balanced(2);
        let admission = svc.admit(&request).unwrap();
        let placed = admission.selection.nodes.clone();
        let healthy = svc.supervise(admission.job, 0.0).unwrap();
        assert_eq!(healthy.verdict, SupervisorVerdict::Healthy);
        // Kill one placed node.
        let dead = placed[0];
        let delta = NetDelta {
            avail_nodes: vec![(dead, false)],
            ..NetDelta::default()
        };
        let down = svc.snapshot().apply(&delta);
        svc.publish(Arc::new(down), Some(&delta));
        let check = svc.supervise(admission.job, 1.0).unwrap();
        assert_eq!(check.verdict, SupervisorVerdict::Reselect { failure: true });
        let moved = svc.job_nodes(admission.job).unwrap();
        assert!(!moved.contains(&dead));
        assert_eq!(svc.stats().ledger_moves, 1);
        // Exactly one job's claim in the ledger: the moved-to nodes are
        // charged, the vacated one is not (no double-count).
        let residual = svc.residual_snapshot();
        let raw = svc.snapshot();
        for &n in &moved {
            assert!(residual.load_avg(n) > raw.load_avg(n));
        }
        for &n in placed.iter().filter(|n| !moved.contains(n)) {
            assert_eq!(residual.load_avg(n).to_bits(), raw.load_avg(n).to_bits());
        }
        let _ = ids;
    }

    #[test]
    fn supervising_unknown_job_is_a_typed_error() {
        let (svc, _) = service(0);
        let admission = svc.admit(&SelectionRequest::balanced(2)).unwrap();
        svc.release(admission.job).unwrap();
        assert!(matches!(
            svc.supervise(admission.job, 0.0),
            Err(ServiceError::UnknownJob(_))
        ));
    }
}
