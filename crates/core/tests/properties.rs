//! Property tests: on acyclic topologies the paper's greedy algorithms
//! (with the sweep policy) are exact — they match brute-force search over
//! all candidate node sets. These properties are the correctness core of
//! the reproduction.

use nodesel_core::{
    balanced, exhaustive_select, max_bandwidth, max_compute, Constraints, ExhaustiveObjective,
    GreedyPolicy, Weights,
};
use nodesel_topology::builders::random_tree;
use nodesel_topology::units::MBPS;
use nodesel_topology::{Direction, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random tree with random per-link capacities, loads and traffic.
fn random_conditions(seed: u64, computes: usize, networks: usize) -> (Topology, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut topo, compute_ids) = random_tree(&mut rng, computes, networks, 100.0 * MBPS);
    // Replace the uniform capacities with a mix of 10/100/155 Mbps links by
    // rebuilding utilization; capacities are fixed at construction so vary
    // utilization and load instead (these drive the algorithms).
    for n in compute_ids.iter().copied() {
        topo.set_load_avg(n, rng.random_range(0.0..4.0));
    }
    for e in topo.edge_ids().collect::<Vec<_>>() {
        for dir in [Direction::AtoB, Direction::BtoA] {
            let cap = topo.link(e).capacity(dir);
            topo.set_link_used(e, dir, cap * rng.random_range(0.0..0.95));
        }
    }
    (topo, compute_ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn max_compute_matches_exhaustive(seed in 0u64..10_000, computes in 2usize..7, networks in 0usize..4) {
        let (topo, ids) = random_conditions(seed, computes, networks);
        let m = 1 + (seed as usize) % ids.len().min(4);
        let greedy = max_compute(&topo, m, &Constraints::none()).unwrap();
        let optimal = exhaustive_select(&topo, m, ExhaustiveObjective::MinCpu, &Constraints::none(), None).unwrap();
        prop_assert!((greedy.quality.min_cpu - optimal.quality.min_cpu).abs() <= 1e-12 * optimal.quality.min_cpu.max(1.0),
            "greedy {} vs optimal {}", greedy.quality.min_cpu, optimal.quality.min_cpu);
    }

    #[test]
    fn max_bandwidth_matches_exhaustive(seed in 0u64..10_000, computes in 2usize..7, networks in 0usize..4) {
        let (topo, ids) = random_conditions(seed, computes, networks);
        let m = 2 + (seed as usize) % (ids.len() - 1).min(3);
        if m > ids.len() { return Ok(()); }
        let greedy = max_bandwidth(&topo, m, &Constraints::none()).unwrap();
        let optimal = exhaustive_select(&topo, m, ExhaustiveObjective::MinBandwidth, &Constraints::none(), None).unwrap();
        prop_assert!((greedy.quality.min_bw - optimal.quality.min_bw).abs() <= 1e-9 * optimal.quality.min_bw.max(1.0),
            "greedy {} vs optimal {}", greedy.quality.min_bw, optimal.quality.min_bw);
    }

    #[test]
    fn balanced_sweep_matches_exhaustive(seed in 0u64..10_000, computes in 2usize..7, networks in 0usize..4) {
        let (topo, ids) = random_conditions(seed, computes, networks);
        let m = 2 + (seed as usize) % (ids.len() - 1).min(3);
        if m > ids.len() { return Ok(()); }
        let greedy = balanced(&topo, m, Weights::EQUAL, &Constraints::none(), None, GreedyPolicy::Sweep).unwrap();
        let optimal = exhaustive_select(&topo, m, ExhaustiveObjective::Balanced(Weights::EQUAL), &Constraints::none(), None).unwrap();
        prop_assert!((greedy.score - optimal.score).abs() <= 1e-9 * optimal.score.max(1.0),
            "greedy {} ({:?}) vs optimal {} ({:?})", greedy.score, greedy.nodes, optimal.score, optimal.nodes);
    }

    #[test]
    fn balanced_with_priorities_matches_exhaustive(seed in 0u64..10_000, computes in 3usize..6, factor in 1u32..5) {
        let (topo, ids) = random_conditions(seed, computes, 2);
        let m = 2.min(ids.len());
        let w = Weights::compute_priority(factor as f64);
        let greedy = balanced(&topo, m, w, &Constraints::none(), None, GreedyPolicy::Sweep).unwrap();
        let optimal = exhaustive_select(&topo, m, ExhaustiveObjective::Balanced(w), &Constraints::none(), None).unwrap();
        prop_assert!((greedy.score - optimal.score).abs() <= 1e-9 * optimal.score.max(1.0));
    }

    #[test]
    fn sweep_never_loses_to_faithful(seed in 0u64..10_000, computes in 2usize..8, networks in 0usize..5) {
        let (topo, ids) = random_conditions(seed, computes, networks);
        let m = 1 + (seed as usize) % ids.len().min(4);
        let sweep = balanced(&topo, m, Weights::EQUAL, &Constraints::none(), None, GreedyPolicy::Sweep).unwrap();
        let faithful = balanced(&topo, m, Weights::EQUAL, &Constraints::none(), None, GreedyPolicy::Faithful).unwrap();
        prop_assert!(sweep.score >= faithful.score - 1e-12);
    }

    #[test]
    fn selections_are_well_formed(seed in 0u64..10_000, computes in 2usize..8, networks in 0usize..5) {
        let (topo, ids) = random_conditions(seed, computes, networks);
        let m = 1 + (seed as usize) % ids.len().min(5);
        let routes = topo.routes();
        for sel in [
            max_compute(&topo, m, &Constraints::none()).unwrap(),
            max_bandwidth(&topo, m, &Constraints::none()).unwrap(),
            balanced(&topo, m, Weights::EQUAL, &Constraints::none(), None, GreedyPolicy::Sweep).unwrap(),
        ] {
            prop_assert_eq!(sel.nodes.len(), m);
            // Sorted, distinct, compute-only, mutually connected.
            prop_assert!(sel.nodes.windows(2).all(|w| w[0] < w[1]));
            for &n in &sel.nodes {
                prop_assert!(topo.node(n).is_compute());
            }
            for (i, &a) in sel.nodes.iter().enumerate() {
                for &b in sel.nodes.iter().skip(i + 1) {
                    prop_assert!(routes.path(a, b).is_ok());
                }
            }
        }
    }

    #[test]
    fn bandwidth_floor_is_respected(seed in 0u64..10_000, computes in 3usize..7) {
        let (topo, ids) = random_conditions(seed, computes, 3);
        let m = 2.min(ids.len());
        let floor = 20.0 * MBPS;
        let constraints = Constraints { min_bandwidth: Some(floor), ..Constraints::none() };
        match balanced(&topo, m, Weights::EQUAL, &constraints, None, GreedyPolicy::Sweep) {
            Ok(sel) => prop_assert!(sel.quality.min_bw >= floor - 1e-6,
                "floor violated: {}", sel.quality.min_bw),
            Err(_) => {
                // If greedy says unsatisfiable, exhaustive must agree.
                prop_assert!(exhaustive_select(&topo, m, ExhaustiveObjective::Balanced(Weights::EQUAL), &constraints, None).is_err());
            }
        }
    }

    #[test]
    fn cpu_floor_is_respected(seed in 0u64..10_000, computes in 3usize..7) {
        let (topo, ids) = random_conditions(seed, computes, 2);
        let m = 2.min(ids.len());
        let constraints = Constraints { min_cpu: Some(0.4), ..Constraints::none() };
        if let Ok(sel) = max_compute(&topo, m, &constraints) {
            prop_assert!(sel.quality.min_cpu >= 0.4 - 1e-12);
        }
    }

    #[test]
    fn determinism(seed in 0u64..10_000, computes in 2usize..7, networks in 0usize..4) {
        let (topo, ids) = random_conditions(seed, computes, networks);
        let m = 1 + (seed as usize) % ids.len().min(4);
        let a = balanced(&topo, m, Weights::EQUAL, &Constraints::none(), None, GreedyPolicy::Sweep).unwrap();
        let b = balanced(&topo, m, Weights::EQUAL, &Constraints::none(), None, GreedyPolicy::Sweep).unwrap();
        prop_assert_eq!(a, b);
    }
}
