//! Service observability: request, cache, and solve accounting.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// How many recent epochs the per-epoch solve history retains.
const EPOCH_HISTORY: usize = 64;

/// Cache-side accounting, owned by [`crate::cache::SelectionCache`] and
/// drained into [`ServiceStats`] snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Entries evicted because a delta touched their footprint (includes
    /// flush victims).
    pub delta_evictions: u64,
    /// Entries dropped to respect the capacity bound.
    pub capacity_evictions: u64,
    /// Entries carried forward across an epoch, summed per publication.
    pub carried_forward: u64,
    /// Solved answers dropped because a publication raced the solve.
    pub stale_inserts: u64,
    /// Wholesale flushes (structural change or untracked epoch jump).
    pub flushes: u64,
    /// Entries evicted because a ledger change (admit/release/move)
    /// touched their footprint.
    pub ledger_evictions: u64,
}

/// Monotonic service counters, updated lock-free on the request path.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub requests: AtomicU64,
    pub cache_hits: AtomicU64,
    pub single_flight_merges: AtomicU64,
    pub solves: AtomicU64,
    pub shed: AtomicU64,
    pub refused: AtomicU64,
    pub degraded_answers: AtomicU64,
    pub epochs_published: AtomicU64,
    pub admits: AtomicU64,
    pub releases: AtomicU64,
    pub ledger_moves: AtomicU64,
    pub reconciles: AtomicU64,
    pub reconcile_repairs: AtomicU64,
    pub reconcile_releases: AtomicU64,
    /// `(epoch, solves attributed to it)` for the most recent epochs.
    pub per_epoch: Mutex<VecDeque<(u64, u64)>>,
}

impl StatsInner {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Relaxed);
    }

    /// Attributes one solve to `epoch` in the bounded history.
    pub fn record_solve(&self, epoch: u64) {
        self.solves.fetch_add(1, Relaxed);
        // Invariant, not caller-reachable: poisoning means a thread
        // panicked mid-accounting — escalate (see crate locking notes).
        let mut per_epoch = self.per_epoch.lock().expect("stats lock poisoned");
        match per_epoch.iter_mut().find(|(e, _)| *e == epoch) {
            Some((_, n)) => *n += 1,
            None => {
                if per_epoch.len() == EPOCH_HISTORY {
                    per_epoch.pop_front();
                }
                per_epoch.push_back((epoch, 1));
            }
        }
    }
}

/// A point-in-time snapshot of the service's counters.
///
/// Invariant (exact once the service is idle): `requests` =
/// `cache_hits` + `single_flight_merges` + `solves` + `shed` +
/// `refused` (checkable via [`ServiceStats::balanced`]). Every request
/// ends in exactly one bucket: answered from the cache, merged into
/// another request's in-flight solve, solved on its own, shed
/// (queue/gate overflow or deadline expiry — a merged waiter whose
/// shared solve is shed stays in the merge bucket), or refused by the
/// degraded-mode policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests answered.
    pub requests: u64,
    /// Requests answered from the selection cache.
    pub cache_hits: u64,
    /// Requests merged into an identical in-flight solve (single-flight).
    pub single_flight_merges: u64,
    /// Fresh solves executed.
    pub solves: u64,
    /// Requests shed without an answer: queue or solve-gate overflow
    /// (`ServiceError::Shed`), deadline already expired on arrival, or a
    /// queued job skipped at dequeue because every waiter's deadline had
    /// passed (`ServiceError::DeadlineExceeded`).
    pub shed: u64,
    /// Requests refused by the degraded-mode policy (bandwidth-sensitive
    /// work past the hard staleness bound).
    pub refused: u64,
    /// Answers served but flagged `Stale` by the degraded-mode policy
    /// (these also count in their hit/merge/solve bucket — the flag is
    /// orthogonal to how the answer was produced).
    pub degraded_answers: u64,
    /// Epochs published to the service.
    pub epochs_published: u64,
    /// Cache entries evicted by delta invalidation (incl. flushes).
    pub delta_evictions: u64,
    /// Cache entries evicted by the capacity bound.
    pub capacity_evictions: u64,
    /// Cache entries carried forward across epochs (sum over publications).
    pub carried_forward: u64,
    /// Solved answers dropped because a publication raced the solve.
    pub stale_inserts: u64,
    /// Wholesale cache flushes.
    pub flushes: u64,
    /// Cache entries evicted by ledger changes (admit/release/move).
    pub ledger_evictions: u64,
    /// Jobs admitted through the placement lifecycle.
    pub admits: u64,
    /// Jobs released.
    pub releases: u64,
    /// Supervised re-selections that moved a ledger entry.
    pub ledger_moves: u64,
    /// Reconciliation sweeps completed.
    pub reconciles: u64,
    /// Jobs moved to a new placement by a reconciliation sweep (subset
    /// of `ledger_moves`).
    pub reconcile_repairs: u64,
    /// Jobs released by a reconciliation sweep because their placement
    /// referenced entities absent from the current structure (subset of
    /// `releases`).
    pub reconcile_releases: u64,
    /// Jobs currently admitted (ledger residency).
    pub active_jobs: u64,
    /// Current ledger version (bumped per admit/release/move).
    pub ledger_version: u64,
    /// `(epoch, solves)` for the most recent epochs, oldest first.
    pub solves_per_epoch: Vec<(u64, u64)>,
}

impl ServiceStats {
    /// The request-accounting identity: `requests == cache_hits +
    /// single_flight_merges + solves + shed + refused`. Exact whenever
    /// the service is idle (no request mid-flight); the chaos study and
    /// the parity proptests assert it after every quiesced step.
    pub fn balanced(&self) -> bool {
        self.requests
            == self.cache_hits + self.single_flight_merges + self.solves + self.shed + self.refused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_epoch_history_is_bounded() {
        let stats = StatsInner::default();
        for epoch in 0..(EPOCH_HISTORY as u64 + 10) {
            stats.record_solve(epoch);
            stats.record_solve(epoch);
        }
        let per_epoch = stats.per_epoch.lock().unwrap();
        assert_eq!(per_epoch.len(), EPOCH_HISTORY);
        assert!(per_epoch.iter().all(|&(_, n)| n == 2));
        assert_eq!(per_epoch.back().unwrap().0, EPOCH_HISTORY as u64 + 9);
        assert_eq!(stats.solves.load(Relaxed), 2 * (EPOCH_HISTORY as u64 + 10));
    }
}
