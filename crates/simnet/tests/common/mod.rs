// Each test binary compiles its own copy of this module and uses a
// subset of it, so per-binary dead-code analysis is meaningless here.
#![allow(dead_code)]

//! Shared scaffolding for the parallel-vs-serial parity suites:
//! federated topologies, domain-confined churn, and paired runs of the
//! single-threaded oracle and the parallel engine over the same
//! installed scenario.

use nodesel_simnet::{
    install_faults_at, DriverId, DriverLogic, FaultAction, FaultPlan, Flap, FlapTarget, FlowEngine,
    ParallelSim, Sim, SimStats, SimTime, TraceEvent,
};
use nodesel_topology::units::MBPS;
use nodesel_topology::{NodeId, ShardPlan, Topology};

/// Everything a run can observe: final clock, counters, full trace.
pub type RunResult = (SimTime, SimStats, Vec<TraceEvent>);

/// Deterministic churn confined to one subnet: periodic compute jobs
/// and intra-subnet transfers, all derived from the driver counter so
/// two installations with the same `k` are bit-identical.
#[derive(Clone)]
pub struct Churn {
    pub nodes: Vec<NodeId>,
    pub k: u64,
}

impl DriverLogic for Churn {
    fn fire(&mut self, sim: &mut Sim, me: DriverId) {
        self.k += 1;
        let a = self.nodes[(self.k as usize) % self.nodes.len()];
        let b = self.nodes[(self.k as usize * 7 + 3) % self.nodes.len()];
        sim.start_compute_detached(a, 0.2 + (self.k % 5) as f64 * 0.1);
        if a != b {
            sim.start_transfer_detached(a, b, MBPS * (1 + self.k % 7) as f64);
        }
        sim.schedule_driver_in(0.05 + (self.k % 13) as f64 * 0.017, me);
    }
}

/// `k` 3-host star subnets; optionally chained hub-to-hub by trunks of
/// the given latency (a connected federation with a real boundary).
/// Nodes are added subnet by subnet — hub then hosts — so node `i`
/// belongs to subnet `i / 4`.
pub fn federation(k: usize, trunk_latency: Option<f64>) -> (Topology, Vec<Vec<NodeId>>) {
    let mut topo = Topology::new();
    let mut subnets = Vec::new();
    let mut hubs = Vec::new();
    for s in 0..k {
        let hub = topo.add_network_node(format!("s{s}-hub"));
        let mut hosts = Vec::new();
        for h in 0..3 {
            let n = topo.add_compute_node(format!("s{s}-h{h}"), 1.0);
            topo.add_link(hub, n, 100.0 * MBPS);
            hosts.push(n);
        }
        hubs.push(hub);
        subnets.push(hosts);
    }
    if let Some(lat) = trunk_latency {
        for w in hubs.windows(2) {
            topo.add_link_full(w[0], w[1], 50.0 * MBPS, 50.0 * MBPS, lat);
        }
    }
    (topo, subnets)
}

/// The per-subnet domain assignment matching [`federation`]'s node
/// order, for trunked (connected) federations where component analysis
/// would find a single domain.
pub fn subnet_domains(topo: &Topology) -> Vec<u16> {
    (0..topo.node_count()).map(|i| (i / 4) as u16).collect()
}

/// Installs per-subnet churn — and, when `faults` is set, a per-subnet
/// fault plan (scheduled crash/reboot plus a stochastic node flap) —
/// with every driver homed inside its own domain.
pub fn install_scenario(sim: &mut Sim, subnets: &[Vec<NodeId>], faults: bool, seed: u64) {
    for (s, hosts) in subnets.iter().enumerate() {
        let d = sim.install_driver_at(
            hosts[0],
            Churn {
                nodes: hosts.clone(),
                k: seed.wrapping_mul(31).wrapping_add(s as u64 * 1000),
            },
        );
        sim.schedule_driver_in(0.01 * s as f64, d);
        if faults {
            install_faults_at(
                sim,
                hosts[0],
                &FaultPlan {
                    scheduled: vec![
                        (6.0 + s as f64 * 0.3, FaultAction::CrashNode(hosts[2])),
                        (11.0 + s as f64 * 0.3, FaultAction::RebootNode(hosts[2])),
                    ],
                    flaps: vec![Flap {
                        target: FlapTarget::Node(hosts[1]),
                        mean_up: 9.0,
                        mean_down: 1.5,
                    }],
                    seed: seed ^ ((s as u64) << 8),
                },
            );
        }
    }
}

fn build(
    topo: &Topology,
    plan: &ShardPlan,
    subnets: &[Vec<NodeId>],
    faults: bool,
    seed: u64,
    engine: FlowEngine,
) -> Sim {
    let mut sim = Sim::with_flow_engine(topo.clone(), engine);
    sim.set_partition(plan.node_domain());
    sim.enable_trace(usize::MAX);
    install_scenario(&mut sim, subnets, faults, seed);
    sim
}

/// Runs the scenario on the single-threaded oracle.
pub fn serial_run(
    topo: &Topology,
    plan: &ShardPlan,
    subnets: &[Vec<NodeId>],
    faults: bool,
    seed: u64,
    horizon: f64,
    engine: FlowEngine,
) -> RunResult {
    let mut sim = build(topo, plan, subnets, faults, seed, engine);
    sim.run_until(SimTime::from_secs_f64(horizon));
    let (trace, dropped) = sim.take_trace();
    assert_eq!(dropped, 0);
    (sim.now(), sim.stats(), trace)
}

/// Runs the identical scenario on the parallel engine; returns the
/// observables plus the fallback reason (None = genuinely sharded).
#[allow(clippy::too_many_arguments)]
pub fn parallel_run(
    topo: &Topology,
    plan: &ShardPlan,
    subnets: &[Vec<NodeId>],
    faults: bool,
    seed: u64,
    horizon: f64,
    threads: usize,
    engine: FlowEngine,
) -> (RunResult, Option<&'static str>) {
    let sim = build(topo, plan, subnets, faults, seed, engine);
    let mut par = ParallelSim::new(sim, plan, threads);
    par.run_until(SimTime::from_secs_f64(horizon));
    let (trace, dropped) = par.take_trace();
    assert_eq!(dropped, 0);
    ((par.now(), par.stats(), trace), par.fallback())
}
