//! Byte-identical parity between the fast selection engines and the
//! paper-faithful reference loops.
//!
//! Random connected topologies (trees plus random chord links, 4–24
//! nodes — chords create cycles, exercising the engines' no-split
//! deletion paths) with random loads, utilizations, and constraint sets.
//! Every comparison is on the full `Result<Selection, SelectError>`:
//! nodes, quality, score, *and* iteration counts must agree exactly, and
//! so must error cases.

use std::collections::HashSet;

use nodesel_core::{
    balanced, balanced_reference, exhaustive_select, exhaustive_select_reference, max_bandwidth,
    max_bandwidth_reference, Constraints, ExhaustiveObjective, GreedyPolicy, Weights,
};
use nodesel_topology::builders::random_tree;
use nodesel_topology::units::MBPS;
use nodesel_topology::{Direction, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random connected topology: a random tree plus up to four chords, with
/// random loads and per-direction link utilization.
fn random_topology(
    seed: u64,
    computes: usize,
    networks: usize,
    chords: usize,
) -> (Topology, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut topo, compute_ids) = random_tree(&mut rng, computes, networks, 100.0 * MBPS);
    let all: Vec<NodeId> = topo.node_ids().collect();
    for _ in 0..chords {
        let a = all[rng.random_range(0..all.len())];
        let b = all[rng.random_range(0..all.len())];
        if a != b {
            topo.add_link(a, b, 100.0 * MBPS);
        }
    }
    for n in compute_ids.iter().copied() {
        topo.set_load_avg(n, rng.random_range(0.0..4.0));
    }
    for e in topo.edge_ids().collect::<Vec<_>>() {
        for dir in [Direction::AtoB, Direction::BtoA] {
            let cap = topo.link(e).capacity(dir);
            topo.set_link_used(e, dir, cap * rng.random_range(0.0..0.95));
        }
    }
    (topo, compute_ids)
}

/// Random constraint set: sometimes empty, sometimes with a required
/// node, a CPU floor, a bandwidth floor, or an allowed subset — the
/// corners where the fast paths must fall back or specialize.
fn random_constraints(seed: u64, ids: &[NodeId]) -> Constraints {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut c = Constraints::none();
    if rng.random_range(0..3) == 0 {
        c.required = vec![ids[rng.random_range(0..ids.len())]];
    }
    if rng.random_range(0..3) == 0 {
        c.min_cpu = Some(rng.random_range(0.1..0.6));
    }
    if rng.random_range(0..3) == 0 {
        c.min_bandwidth = Some(rng.random_range(1.0..40.0) * MBPS);
    }
    if rng.random_range(0..4) == 0 {
        let keep = 1 + rng.random_range(0..ids.len());
        c.allowed = Some(ids.iter().copied().take(keep).collect::<HashSet<_>>());
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn max_bandwidth_fast_path_is_byte_identical(
        seed in 0u64..100_000,
        computes in 2usize..12,
        networks in 0usize..8,
        chords in 0usize..4,
    ) {
        let (topo, ids) = random_topology(seed, computes, networks, chords);
        let constraints = random_constraints(seed, &ids);
        let m = 1 + (seed as usize) % ids.len().min(5);
        prop_assert_eq!(
            max_bandwidth(&topo, m, &constraints),
            max_bandwidth_reference(&topo, m, &constraints)
        );
    }

    #[test]
    fn balanced_fast_path_is_byte_identical(
        seed in 0u64..100_000,
        computes in 2usize..12,
        networks in 0usize..8,
        chords in 0usize..4,
    ) {
        let (topo, ids) = random_topology(seed, computes, networks, chords);
        let constraints = random_constraints(seed, &ids);
        let m = 1 + (seed as usize) % ids.len().min(5);
        let weights = if seed % 2 == 0 {
            Weights::EQUAL
        } else {
            Weights::comm_priority(2.0)
        };
        let reference = if seed % 3 == 0 { Some(155.0 * MBPS) } else { None };
        for policy in [GreedyPolicy::Faithful, GreedyPolicy::Sweep] {
            prop_assert_eq!(
                balanced(&topo, m, weights, &constraints, reference, policy),
                balanced_reference(&topo, m, weights, &constraints, reference, policy),
                "policy {:?}", policy
            );
        }
    }

    #[test]
    fn pruned_parallel_oracle_matches_serial_unpruned(
        seed in 0u64..100_000,
        computes in 2usize..9,
        networks in 0usize..5,
        chords in 0usize..3,
    ) {
        let (topo, ids) = random_topology(seed, computes, networks, chords);
        let constraints = random_constraints(seed, &ids);
        let m = 1 + (seed as usize) % ids.len().min(4);
        let reference = if seed % 3 == 0 { Some(155.0 * MBPS) } else { None };
        for objective in [
            ExhaustiveObjective::MinCpu,
            ExhaustiveObjective::MinBandwidth,
            ExhaustiveObjective::Balanced(Weights::compute_priority(2.0)),
        ] {
            prop_assert_eq!(
                exhaustive_select(&topo, m, objective, &constraints, reference),
                exhaustive_select_reference(&topo, m, objective, &constraints, reference),
                "objective {:?}", objective
            );
        }
    }
}
