//! The placement ledger: admitted jobs and their resource claims.
//!
//! A [`PlacementLedger`] is the registry behind the service's
//! `admit`/`release` lifecycle. Each admitted job records the
//! [`SelectionRequest`] it was solved for, the nodes it received, a
//! [`ResourceDemand`] (how much CPU and bandwidth the job is *declared*
//! to consume), and the derived [`ResourceClaim`] charged against the
//! shared [`LedgerState`]. The aggregate state is what a
//! [`nodesel_topology::ResidualView`] subtracts from the raw snapshot,
//! so the next admission is solved against capacity that is genuinely
//! still free.
//!
//! Every mutation bumps a **ledger version**. Versions extend the cache
//! key exactly like epochs extend it for measurement churn: an answer is
//! valid for one `(epoch, version)` pair, and a version bump carries a
//! touched-entity delta so footprint intersection can keep every cached
//! answer the change provably cannot move.

use crate::error::ServiceError;
use nodesel_core::{SelectionRequest, Supervisor};
use nodesel_topology::{LedgerState, NetSnapshot, NodeId, ResourceClaim, Topology};
use std::collections::BTreeMap;

/// Opaque handle to an admitted job, returned by admission and consumed
/// by `release`/`supervise`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub(crate) u64);

/// The declared resource appetite of one job: what admission charges
/// against the residual network on the job's behalf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceDemand {
    /// Load average each placed task adds to its node (1.0 ≙ one
    /// fully-busy process, the classic `cpu = 1/(1+loadavg)` unit).
    pub cpu_load: f64,
    /// Bandwidth, bits/s, each pair of placed tasks exchanges (charged in
    /// both directions along the pair's route).
    pub pair_bandwidth: f64,
}

impl ResourceDemand {
    /// The demand implied by `request`: one busy process per placed
    /// task, and the request's `reference_bandwidth` as the pairwise
    /// traffic estimate (zero when absent or non-finite — the request
    /// declared no bandwidth appetite).
    pub fn from_request(request: &SelectionRequest) -> ResourceDemand {
        ResourceDemand {
            cpu_load: 1.0,
            pair_bandwidth: request
                .reference_bandwidth
                .filter(|b| b.is_finite() && *b > 0.0)
                .unwrap_or(0.0),
        }
    }

    /// Rejects non-finite or negative magnitudes — caller input the
    /// ledger must not aggregate (a NaN would poison every residual
    /// metric it touches).
    pub fn validate(&self) -> Result<(), ServiceError> {
        if !self.cpu_load.is_finite() || self.cpu_load < 0.0 {
            return Err(ServiceError::InvalidDemand {
                field: "cpu_load",
                value: self.cpu_load,
            });
        }
        if !self.pair_bandwidth.is_finite() || self.pair_bandwidth < 0.0 {
            return Err(ServiceError::InvalidDemand {
                field: "pair_bandwidth",
                value: self.pair_bandwidth,
            });
        }
        Ok(())
    }
}

/// One admitted job's ledger entry.
pub(crate) struct JobEntry {
    /// The request the job was admitted with (re-used by supervision).
    pub request: SelectionRequest,
    /// The declared demand the claim was derived from.
    pub demand: ResourceDemand,
    /// The nodes the job currently occupies.
    pub nodes: Vec<NodeId>,
    /// Lazily-created supervisor driving re-selection for this job.
    pub supervisor: Option<Supervisor>,
}

/// The registry of admitted placements (see the module docs).
#[derive(Default)]
pub struct PlacementLedger {
    next_id: u64,
    jobs: BTreeMap<u64, JobEntry>,
    state: LedgerState,
    version: u64,
}

impl PlacementLedger {
    /// An empty ledger at version 0.
    pub fn new() -> PlacementLedger {
        PlacementLedger::default()
    }

    /// The current ledger version; bumped by every admit, release, and
    /// supervised move.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of admitted jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no job is admitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The aggregate claim state a residual view subtracts.
    pub fn state(&self) -> &LedgerState {
        &self.state
    }

    /// Handles of every admitted job, ascending by admission order — the
    /// sweep order of [`crate::PlacementService::reconcile`].
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.keys().map(|&id| JobId(id)).collect()
    }

    /// Records an admitted placement: derives the claim from `nodes` and
    /// `demand` on `structure`, charges it, and bumps the version.
    /// Returns the job handle and the charged claim (for cache
    /// invalidation).
    pub(crate) fn admit(
        &mut self,
        request: SelectionRequest,
        demand: ResourceDemand,
        nodes: Vec<NodeId>,
        structure: &Topology,
    ) -> (JobId, ResourceClaim) {
        let claim =
            ResourceClaim::for_placement(structure, &nodes, demand.cpu_load, demand.pair_bandwidth);
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobEntry {
                request,
                demand,
                nodes,
                supervisor: None,
            },
        );
        self.state.insert(id, claim.clone());
        self.version += 1;
        (JobId(id), claim)
    }

    /// Releases `job`, un-charging its claim and bumping the version.
    /// Returns the released claim (for cache invalidation).
    pub(crate) fn release(&mut self, job: JobId) -> Result<ResourceClaim, ServiceError> {
        if self.jobs.remove(&job.0).is_none() {
            return Err(ServiceError::UnknownJob(job));
        }
        // `unwrap_or_default` is accounting, not an assert: a rebind may
        // have dropped this job's claim to empty (vanished nodes), and
        // releasing an empty claim un-charges nothing, correctly.
        let claim = self.state.remove(job.0).unwrap_or_default();
        self.version += 1;
        Ok(claim)
    }

    /// The entry of `job`, for supervision.
    pub(crate) fn entry_mut(&mut self, job: JobId) -> Result<&mut JobEntry, ServiceError> {
        self.jobs
            .get_mut(&job.0)
            .ok_or(ServiceError::UnknownJob(job))
    }

    /// The nodes `job` currently occupies.
    pub fn nodes(&self, job: JobId) -> Result<&[NodeId], ServiceError> {
        self.jobs
            .get(&job.0)
            .map(|e| e.nodes.as_slice())
            .ok_or(ServiceError::UnknownJob(job))
    }

    /// Atomically moves `job` to `nodes`: re-derives its claim, swaps it
    /// in the aggregate state, and bumps the version **once** — so no
    /// interleaving can observe the job both vacated and re-placed
    /// (double-counted) or neither. Returns `(old, new)` claims, whose
    /// union the cache must treat as touched.
    pub(crate) fn move_job(
        &mut self,
        job: JobId,
        nodes: Vec<NodeId>,
        structure: &Topology,
    ) -> Result<(ResourceClaim, ResourceClaim), ServiceError> {
        let entry = self
            .jobs
            .get_mut(&job.0)
            .ok_or(ServiceError::UnknownJob(job))?;
        let new_claim = ResourceClaim::for_placement(
            structure,
            &nodes,
            entry.demand.cpu_load,
            entry.demand.pair_bandwidth,
        );
        entry.nodes = nodes;
        // `unwrap_or_default` is accounting, not an assert: a rebind may
        // have dropped this job's claim to empty (vanished nodes), and
        // an empty old claim un-charges nothing, correctly.
        let old_claim = self.state.claim(job.0).cloned().unwrap_or_default();
        // One insert replaces the old claim under the same id; the
        // aggregate recompute inside is the atomic swap.
        self.state.insert(job.0, new_claim.clone());
        self.version += 1;
        Ok((old_claim, new_claim))
    }

    /// The delta that materializes the residual network of everyone
    /// *except* `job` onto `snap` — what `job`'s own re-selection must be
    /// solved against (its claim must not repel its re-placement).
    pub(crate) fn residual_delta_excluding(
        &self,
        snap: &NetSnapshot,
        job: JobId,
    ) -> nodesel_topology::NetDelta {
        self.state.to_delta_excluding(snap, job.0)
    }

    /// Re-derives every claim after a structural change: placements
    /// whose nodes survived in the new structure are re-charged along
    /// its routes; placements referencing vanished entities drop to an
    /// empty claim (their owners will fail supervision and re-select or
    /// release). Bumps the version.
    pub(crate) fn rebind(&mut self, structure: &Topology) {
        let jobs = &self.jobs;
        self.state.rebind(structure, |id| {
            let entry = jobs.get(&id)?;
            let in_range = entry
                .nodes
                .iter()
                .all(|n| n.index() < structure.node_count());
            in_range.then(|| {
                ResourceClaim::for_placement(
                    structure,
                    &entry.nodes,
                    entry.demand.cpu_load,
                    entry.demand.pair_bandwidth,
                )
            })
        });
        self.version += 1;
    }
}

impl std::fmt::Debug for PlacementLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementLedger")
            .field("jobs", &self.jobs.len())
            .field("version", &self.version)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    fn demand(bw: f64) -> ResourceDemand {
        ResourceDemand {
            cpu_load: 1.0,
            pair_bandwidth: bw,
        }
    }

    #[test]
    fn admit_release_round_trip() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut ledger = PlacementLedger::new();
        let (job, claim) = ledger.admit(
            SelectionRequest::balanced(2),
            demand(5.0 * MBPS),
            ids[..2].to_vec(),
            &topo,
        );
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.version(), 1);
        assert!(!claim.is_empty());
        assert_eq!(ledger.nodes(job).unwrap(), &ids[..2]);
        let released = ledger.release(job).unwrap();
        assert_eq!(released, claim);
        assert!(ledger.is_empty());
        assert!(ledger.state().is_invisible());
        assert_eq!(ledger.version(), 2);
        assert_eq!(ledger.release(job), Err(ServiceError::UnknownJob(job)));
    }

    #[test]
    fn move_bumps_version_once_and_swaps_claims() {
        let (topo, ids) = star(5, 100.0 * MBPS);
        let mut ledger = PlacementLedger::new();
        let (job, old) = ledger.admit(
            SelectionRequest::balanced(2),
            demand(2.0 * MBPS),
            ids[..2].to_vec(),
            &topo,
        );
        let before = ledger.version();
        let (vacated, occupied) = ledger.move_job(job, ids[2..4].to_vec(), &topo).unwrap();
        assert_eq!(ledger.version(), before + 1);
        assert_eq!(vacated, old);
        assert_eq!(ledger.nodes(job).unwrap(), &ids[2..4]);
        // The aggregate holds exactly the new claim: no double-count.
        let mut fresh = PlacementLedger::new();
        fresh.admit(
            SelectionRequest::balanced(2),
            demand(2.0 * MBPS),
            ids[2..4].to_vec(),
            &topo,
        );
        for &(n, amount) in &occupied.nodes {
            assert_eq!(ledger.state().extra_load(n), Some(amount));
            assert_eq!(fresh.state().extra_load(n), Some(amount));
        }
        for &(n, _) in &vacated.nodes {
            assert_eq!(ledger.state().extra_load(n), None);
        }
    }

    #[test]
    fn demand_validation_rejects_nan_and_negatives() {
        assert!(demand(1.0).validate().is_ok());
        assert!(demand(0.0).validate().is_ok());
        assert!(matches!(
            demand(f64::NAN).validate(),
            Err(ServiceError::InvalidDemand {
                field: "pair_bandwidth",
                ..
            })
        ));
        assert!(matches!(
            ResourceDemand {
                cpu_load: -1.0,
                pair_bandwidth: 0.0
            }
            .validate(),
            Err(ServiceError::InvalidDemand {
                field: "cpu_load",
                ..
            })
        ));
    }

    #[test]
    fn from_request_takes_reference_bandwidth() {
        let mut r = SelectionRequest::balanced(2);
        assert_eq!(ResourceDemand::from_request(&r).pair_bandwidth, 0.0);
        r.reference_bandwidth = Some(3.0 * MBPS);
        assert_eq!(ResourceDemand::from_request(&r).pair_bandwidth, 3.0 * MBPS);
        r.reference_bandwidth = Some(f64::INFINITY);
        assert_eq!(ResourceDemand::from_request(&r).pair_bandwidth, 0.0);
    }
}
