//! End-to-end placement of the Airshed pollution model on the simulated
//! CMU testbed (the paper's motivating scenario): background load and
//! traffic run, Remos measures, and we compare a random placement against
//! the automatic one on the *same* network history.
//!
//! Run with: `cargo run --release -p nodesel-experiments --example airshed_placement`

use nodesel_apps::{airshed::airshed, AppModel};
use nodesel_experiments::{run_trial, Condition, Strategy, Testbed, TrialConfig};

fn main() {
    let testbed = Testbed::cmu();
    let app = AppModel::Phased(airshed());
    let config = TrialConfig::default();
    let seed = 2024;

    println!("Airshed (6-hour simulation) on 5 nodes of the simulated CMU testbed");
    println!("background: Harchol-Balter load + Poisson/LogNormal traffic (seed {seed})\n");

    let reference = run_trial(
        &testbed,
        &app,
        5,
        Strategy::Random,
        Condition::None,
        &config,
        seed,
    );
    println!(
        "unloaded reference : {:>7.1} s  on [{}]",
        reference.elapsed,
        reference.nodes.join(", ")
    );

    let random = run_trial(
        &testbed,
        &app,
        5,
        Strategy::Random,
        Condition::Both,
        &config,
        seed,
    );
    println!(
        "random placement   : {:>7.1} s  on [{}]",
        random.elapsed,
        random.nodes.join(", ")
    );

    let auto = run_trial(
        &testbed,
        &app,
        5,
        Strategy::Automatic,
        Condition::Both,
        &config,
        seed,
    );
    println!(
        "automatic placement: {:>7.1} s  on [{}]",
        auto.elapsed,
        auto.nodes.join(", ")
    );

    let random_increase = random.elapsed - reference.elapsed;
    let auto_increase = auto.elapsed - reference.elapsed;
    println!(
        "\nload/traffic cost: random +{:.1} s, automatic +{:.1} s ({}% of the increase avoided)",
        random_increase,
        auto_increase,
        ((1.0 - auto_increase / random_increase) * 100.0).round()
    );
}
