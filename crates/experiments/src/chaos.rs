//! Chaos study: the placement service under faults, overload, and a
//! silent collector.
//!
//! Every other study measures placement *quality*; this one measures
//! placement *honesty under duress*. A federated testbed runs a seeded
//! [`FaultPlan`] through six phases — calm, a node crash (with reboot),
//! a collector stall (the measurement layer goes silent and the data
//! ages), a subnet partition (with heal), deterministic node flapping,
//! and a final recovery window — while the service absorbs a sustained
//! open-loop request stream plus admit/release churn, and a
//! [`PlacementService::reconcile`] sweep runs on a fixed cadence.
//!
//! The driver keeps its own model of what the service is allowed to
//! claim: it tracks the last instant the collector was heard from and
//! the confidence of the last published snapshot, recomputes the
//! expected [`PlacementQuality`] for every answer via
//! [`DegradePolicy::classify`], and **panics on any mismatch** — a
//! served answer the policy says should have been flagged stale is a
//! silent lie, and the study's headline claim is that there are zero.
//! The other per-run invariants: the request-accounting identity
//! ([`nodesel_service::ServiceStats::balanced`]) holds at every quiesced
//! tick, refusals always carry [`SelectError::DataTooStale`], and every
//! placed-node outage is repaired (by a reconcile move or the fault
//! plan's own repair) within a bounded time.
//!
//! The run is a pure function of its seed: the simulator, the
//! collector's noise/loss streams, the fault plan, and the request mix
//! are all deterministic, so the committed `BENCH_chaos.json` numbers
//! regenerate exactly. The separate [`run_soak`] probe is the one
//! intentionally racy piece — a real worker pool under concurrent
//! bursts — and only its deterministic aggregates are reported.

use nodesel_core::{SelectError, SelectionRequest};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_service::{
    DegradePolicy, GetOptions, JobId, PlacementQuality, PlacementService, ServiceConfig,
    ServiceError, ServiceStats,
};
use nodesel_simnet::{install_faults, FaultAction, FaultDriver, FaultPlan, FaultStats, Sim};
use nodesel_topology::builders::federation;
use nodesel_topology::units::MBPS;
use nodesel_topology::{NetMetrics, NetSnapshot, NodeId};
use std::sync::Arc;

/// The six phases of the chaos timeline, each `phase_len` seconds long.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosPhase {
    /// No faults; the baseline the other phases are read against.
    Calm,
    /// A compute host crashes early in the phase and reboots late.
    Crash,
    /// The collector goes silent: no publications, no heartbeats. Data
    /// age climbs through the soft and (late in the phase) hard bounds.
    Stall,
    /// One subnet's hosts are cut off (boundary links down), then healed.
    Partition,
    /// Two hosts crash and reboot on a fast deterministic cycle.
    Flap,
    /// No new faults; outstanding damage drains through reconciliation.
    Recovery,
}

/// The phases in timeline order.
pub const CHAOS_PHASES: [ChaosPhase; 6] = [
    ChaosPhase::Calm,
    ChaosPhase::Crash,
    ChaosPhase::Stall,
    ChaosPhase::Partition,
    ChaosPhase::Flap,
    ChaosPhase::Recovery,
];

impl ChaosPhase {
    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ChaosPhase::Calm => "calm",
            ChaosPhase::Crash => "crash",
            ChaosPhase::Stall => "stall",
            ChaosPhase::Partition => "partition",
            ChaosPhase::Flap => "flap",
            ChaosPhase::Recovery => "recovery",
        }
    }

    /// Index into the timeline (and into [`ChaosOutcome::phases`]).
    pub fn index(self) -> usize {
        CHAOS_PHASES
            .iter()
            .position(|p| *p == self)
            .expect("every phase is in the timeline")
    }

    /// The phase covering absolute time `now` on a timeline of
    /// `phase_len`-second phases (times past the end stay `Recovery`).
    pub fn of(now: f64, phase_len: f64) -> ChaosPhase {
        let i = (now / phase_len).floor() as usize;
        CHAOS_PHASES[i.min(CHAOS_PHASES.len() - 1)]
    }
}

/// Tunables of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the collector's noise/loss streams.
    pub seed: u64,
    /// Simulated seconds per driver step (sim advance + pump + burst).
    pub tick: f64,
    /// Seconds per phase; the run lasts `6 * phase_len`.
    pub phase_len: f64,
    /// `get_with` requests issued per tick.
    pub burst: usize,
    /// Every `dead_every`-th request arrives with an already-expired
    /// deadline (the deterministic load-shedding pressure); `0` disables.
    pub dead_every: usize,
    /// Admitted-job count the churn loop tops the ledger up to.
    pub target_jobs: usize,
    /// Ticks between releases of the oldest (incident-free) job.
    pub release_every: usize,
    /// Nodes per admitted job.
    pub m: usize,
    /// Declared per-pair bandwidth demand for admissions, bit/s.
    pub reference_bandwidth: f64,
    /// Seconds between reconciliation sweeps.
    pub reconcile_every: f64,
    /// Remos collector settings (its `seed` is overwritten by `seed`).
    pub collector: CollectorConfig,
    /// Degraded-mode policy under test.
    pub degrade: DegradePolicy,
    /// Bound asserted on the p99 placed-node time-to-repair, seconds.
    /// Budget: collector detection (a few sampling periods) plus one
    /// reconcile cadence plus a tick of slack.
    pub repair_bound: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        let phase_len = 150.0;
        ChaosConfig {
            seed: 7,
            tick: 5.0,
            phase_len,
            burst: 8,
            dead_every: 5,
            target_jobs: 6,
            release_every: 3,
            m: 3,
            reference_bandwidth: 10.0 * MBPS,
            reconcile_every: 0.2 * phase_len,
            collector: CollectorConfig {
                period: 5.0,
                window: 8,
                loss: 0.05,
                ..CollectorConfig::default()
            },
            degrade: DegradePolicy {
                soft_staleness: 0.3 * phase_len,
                hard_staleness: 0.8 * phase_len,
                min_confidence: 0.6,
            },
            repair_bound: 0.45 * phase_len,
        }
    }
}

impl ChaosConfig {
    /// A proportionally shrunk run for CI smoke and unit tests: same
    /// phase structure, same bound ratios, a fraction of the wall time.
    pub fn smoke() -> Self {
        let phase_len = 60.0;
        ChaosConfig {
            phase_len,
            burst: 4,
            target_jobs: 4,
            reconcile_every: 0.2 * phase_len,
            degrade: DegradePolicy {
                soft_staleness: 0.3 * phase_len,
                hard_staleness: 0.8 * phase_len,
                min_confidence: 0.6,
            },
            repair_bound: 0.45 * phase_len,
            ..ChaosConfig::default()
        }
    }
}

/// Per-phase request and lifecycle accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounts {
    /// `get_with` calls issued during the phase.
    pub requests: u64,
    /// Answers served (`Fresh` or `Stale`).
    pub completed: u64,
    /// Requests shed (expired deadline or overflow).
    pub shed: u64,
    /// Requests refused by the degraded-mode policy.
    pub refused: u64,
    /// Served answers flagged `Stale` (subset of `completed`).
    pub degraded: u64,
    /// Jobs admitted during the phase.
    pub admits: u64,
    /// Admissions refused on hard-stale data.
    pub admit_refusals: u64,
}

/// Placed-node outage repair accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairSummary {
    /// Outages opened (an admitted job observed with a downed node).
    pub incidents: usize,
    /// Outages closed while the job was still admitted.
    pub resolved: usize,
    /// Outages still open when the run ended.
    pub unresolved: usize,
    /// Per-resolved-outage repair latency, seconds, in close order.
    pub samples: Vec<f64>,
    /// Median repair latency, seconds (0 when no samples).
    pub p50: f64,
    /// 99th-percentile repair latency, seconds (0 when no samples).
    pub p99: f64,
    /// Worst repair latency, seconds (0 when no samples).
    pub max: f64,
}

/// Reconciliation sweep totals across the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconcileTotals {
    /// Sweeps executed.
    pub sweeps: u64,
    /// Jobs found healthy, summed over sweeps.
    pub healthy: u64,
    /// Quality moves held by hysteresis/backoff, summed over sweeps.
    pub held: u64,
    /// Jobs moved to a new placement.
    pub repaired: u64,
    /// Jobs released for referencing vanished entities.
    pub released: u64,
    /// Advised re-selections that failed (left for a later sweep).
    pub deferred: u64,
}

/// Everything one chaos run measured.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Per-phase counts, in [`CHAOS_PHASES`] order.
    pub phases: [PhaseCounts; 6],
    /// State-changing fault events the plan actually executed.
    pub faults: FaultStats,
    /// Placed-node outage repair latencies.
    pub repair: RepairSummary,
    /// Reconciliation sweep totals.
    pub reconcile: ReconcileTotals,
    /// Final service counters (balanced; asserted every tick).
    pub stats: ServiceStats,
    /// Served answers whose quality flag disagreed with the driver's
    /// model. The run panics on the first one, so a returned outcome
    /// always carries zero — the field exists so the committed JSON
    /// states the claim explicitly.
    pub silent_stale: u64,
}

/// One admitted job the driver is watching.
struct TrackedJob {
    id: JobId,
    /// Open-outage start time, if a placed node is currently down.
    down_since: Option<f64>,
}

/// The seeded fault timeline over the federated testbed.
fn chaos_plan(config: &ChaosConfig, subnets: &[Vec<NodeId>]) -> FaultPlan {
    let len = config.phase_len;
    let crash0 = ChaosPhase::Crash.index() as f64 * len;
    let part0 = ChaosPhase::Partition.index() as f64 * len;
    let flap0 = ChaosPhase::Flap.index() as f64 * len;
    let victim = subnets[1][0];
    let cut = subnets[2].clone();
    let flappers = [subnets[3][0], subnets[3][1]];
    let mut scheduled = vec![
        (crash0 + 0.1 * len, FaultAction::CrashNode(victim)),
        (crash0 + 0.7 * len, FaultAction::RebootNode(victim)),
        (part0 + 0.1 * len, FaultAction::Partition(cut.clone())),
        (part0 + 0.7 * len, FaultAction::Heal(cut)),
    ];
    // Deterministic flapping: three crash/reboot cycles alternating
    // between two hosts, each outage 0.15 * phase_len long.
    for j in 0..3 {
        let node = flappers[j % 2];
        let start = flap0 + (0.1 + 0.3 * j as f64) * len;
        scheduled.push((start, FaultAction::CrashNode(node)));
        scheduled.push((start + 0.15 * len, FaultAction::RebootNode(node)));
    }
    FaultPlan {
        scheduled,
        flaps: Vec::new(),
        seed: config.seed,
    }
}

/// The deterministic request mix: slot `i` of the run-wide request
/// stream. Returns `(request, bandwidth_sensitive, dead_on_arrival,
/// deadline)`.
fn request_mix(
    config: &ChaosConfig,
    i: u64,
    now: f64,
) -> (SelectionRequest, bool, bool, Option<f64>) {
    let m = 2 + (i % 3) as usize;
    let bandwidth_sensitive = i.is_multiple_of(2);
    let request = if bandwidth_sensitive {
        SelectionRequest::balanced(m)
    } else {
        SelectionRequest::compute(m)
    };
    let dead = config.dead_every > 0 && i.is_multiple_of(config.dead_every as u64);
    let deadline = if dead {
        Some(now - 1.0)
    } else if i.is_multiple_of(3) {
        Some(now + config.tick)
    } else {
        None
    };
    (request, bandwidth_sensitive, dead, deadline)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs one deterministic chaos trial. Panics on any honesty violation
/// (a mis-flagged answer, an unbalanced counter identity, a refused
/// answer without [`SelectError::DataTooStale`]) — callers treat a
/// returned outcome as a passed trial.
pub fn run_chaos(config: &ChaosConfig) -> ChaosOutcome {
    let (topo, subnets) = federation(4, Some(2e-3));
    let mut sim = Sim::new(topo.clone());
    let remos = Remos::install(
        &mut sim,
        CollectorConfig {
            seed: config.seed,
            ..config.collector
        },
    );
    let plan = chaos_plan(config, &subnets);
    let fault_driver = install_faults(&mut sim, &plan);

    let initial = Arc::new(NetSnapshot::capture(Arc::new(topo)));
    let service = PlacementService::new(
        Arc::clone(&initial),
        ServiceConfig {
            degrade: config.degrade,
            ..ServiceConfig::default()
        },
    );

    // The driver's model of what the service may claim: the instant the
    // collector was last heard from and the confidence of the last
    // *published* snapshot (a heartbeat refreshes the former only).
    let mut last_heard = 0.0f64;
    let mut confidence = initial.min_confidence();

    let mut phases = [PhaseCounts::default(); 6];
    let mut repair = RepairSummary::default();
    let mut reconcile = ReconcileTotals::default();
    let mut jobs: Vec<TrackedJob> = Vec::new();
    let mut next_reconcile = config.reconcile_every;
    let mut slot = 0u64; // run-wide request-mix cursor

    let admit_request = SelectionRequest {
        reference_bandwidth: Some(config.reference_bandwidth),
        ..SelectionRequest::balanced(config.m)
    };

    let end = CHAOS_PHASES.len() as f64 * config.phase_len;
    let mut tick_index = 0u64;
    loop {
        sim.run_for(config.tick);
        let now = sim.now().as_secs_f64();
        let phase = ChaosPhase::of(now, config.phase_len);
        let ph = phase.index();

        // Pump the collector — except during the stall, which is the
        // whole point of that phase: the data must age.
        if phase != ChaosPhase::Stall {
            match remos.snapshot_if_new(&sim) {
                Some(snap) => {
                    confidence = snap.min_confidence();
                    service.ingest_at(snap, now);
                }
                None => service.heartbeat(now),
            }
            last_heard = now;
        }

        // Open-loop request burst. Every answer is checked against the
        // driver's own degraded-mode model.
        let age = (now - last_heard).max(0.0);
        for _ in 0..config.burst {
            let (request, bandwidth_sensitive, dead, deadline) = request_mix(config, slot, now);
            slot += 1;
            phases[ph].requests += 1;
            let opts = GetOptions {
                now: Some(now),
                deadline,
                block_when_full: false,
            };
            match service.get_with(&request, &opts) {
                Err(ServiceError::DeadlineExceeded { .. }) | Err(ServiceError::Shed { .. }) => {
                    phases[ph].shed += 1;
                }
                Err(e) => panic!("unexpected service error at t={now}: {e}"),
                Ok(placement) => {
                    assert!(!dead, "dead-on-arrival request was answered at t={now}");
                    let expected = config
                        .degrade
                        .classify(age, confidence, bandwidth_sensitive);
                    assert_eq!(
                        placement.quality, expected,
                        "quality flag disagrees with the driver model at t={now} \
                         (age {age:.1}s, confidence {confidence:.3})"
                    );
                    match placement.quality {
                        PlacementQuality::Refused { .. } => {
                            assert!(
                                matches!(placement.result, Err(SelectError::DataTooStale)),
                                "refusal without DataTooStale at t={now}"
                            );
                            phases[ph].refused += 1;
                        }
                        PlacementQuality::Stale { .. } => {
                            phases[ph].degraded += 1;
                            phases[ph].completed += 1;
                        }
                        PlacementQuality::Fresh => phases[ph].completed += 1,
                    }
                }
            }
        }

        // Admit/release churn. Releases skip jobs with an open outage so
        // every incident resolves to a measurable repair latency.
        if config.release_every > 0 && tick_index.is_multiple_of(config.release_every as u64) {
            if let Some(pos) = jobs.iter().position(|j| j.down_since.is_none()) {
                let job = jobs.remove(pos);
                service.release(job.id).expect("tracked job is admitted");
            }
        }
        while jobs.len() < config.target_jobs {
            match service.admit(&admit_request) {
                Ok(admission) => {
                    let expected = config.degrade.classify(age, confidence, true);
                    assert_eq!(
                        admission.quality, expected,
                        "admission quality disagrees with the driver model at t={now}"
                    );
                    phases[ph].admits += 1;
                    jobs.push(TrackedJob {
                        id: admission.job,
                        down_since: None,
                    });
                }
                Err(ServiceError::DegradedRefusal { .. }) => {
                    phases[ph].admit_refusals += 1;
                    break;
                }
                Err(ServiceError::Select(_)) => break, // too much down; retry next tick
                Err(e) => panic!("unexpected admission error at t={now}: {e}"),
            }
        }

        // Reconciliation cadence.
        if now >= next_reconcile {
            next_reconcile += config.reconcile_every;
            let report = service.reconcile(now);
            reconcile.sweeps += 1;
            reconcile.healthy += report.healthy as u64;
            reconcile.held += report.held as u64;
            reconcile.repaired += report.repaired.len() as u64;
            reconcile.released += report.released.len() as u64;
            reconcile.deferred += report.deferred.len() as u64;
            // The structure never shrinks in this study; releases are
            // churn-only, so a tracked job survives every sweep.
            jobs.retain(|j| !report.released.contains(&j.id));
        }

        // Outage bookkeeping: ground truth from the simulator vs the
        // job's *current* nodes (a reconcile move repairs an outage).
        for job in jobs.iter_mut() {
            let nodes = service.job_nodes(job.id).expect("tracked job is admitted");
            let down = nodes.iter().any(|n| !sim.node_is_up(*n));
            match (job.down_since, down) {
                (None, true) => {
                    job.down_since = Some(now);
                    repair.incidents += 1;
                }
                (Some(start), false) => {
                    repair.samples.push(now - start);
                    repair.resolved += 1;
                    job.down_since = None;
                }
                _ => {}
            }
        }

        // The service is quiesced between ticks (inline solving), so the
        // accounting identity must hold exactly.
        assert!(
            service.stats().balanced(),
            "request accounting identity broken at t={now}"
        );

        tick_index += 1;
        if now >= end {
            break;
        }
    }

    repair.unresolved = jobs.iter().filter(|j| j.down_since.is_some()).count();
    let mut sorted = repair.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("repair latencies are finite"));
    repair.p50 = percentile(&sorted, 0.50);
    repair.p99 = percentile(&sorted, 0.99);
    repair.max = sorted.last().copied().unwrap_or(0.0);

    let faults = sim.driver::<FaultDriver>(fault_driver).stats();
    let stats = service.stats();
    assert!(stats.balanced(), "final request accounting identity broken");
    ChaosOutcome {
        phases,
        faults,
        repair,
        reconcile,
        stats,
        silent_stale: 0,
    }
}

/// Aggregate of one concurrent soak probe (see [`run_soak`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakReport {
    /// Requests issued across all threads.
    pub requests: u64,
    /// Requests answered (cache hit, merge, or solve).
    pub answered: u64,
    /// Requests shed (expired deadline, full queue, or saturated gate).
    pub shed: u64,
    /// `true` when the service's counter identity held after the soak.
    pub balanced: bool,
}

/// A short genuinely-concurrent soak: a pooled service with a small
/// queue and a tight solve gate under simultaneous non-blocking bursts
/// from `threads` client threads, a quarter of them dead on arrival.
///
/// The split between sheds, merges, and solves is scheduler-dependent;
/// only the deterministic aggregates (total requests, the balance of
/// the identity) are reported and asserted.
pub fn run_soak(threads: usize, per_thread: usize) -> SoakReport {
    let (topo, _) = federation(4, Some(2e-3));
    let snap = Arc::new(NetSnapshot::capture(Arc::new(topo)));
    let service = PlacementService::new(
        snap,
        ServiceConfig {
            workers: 2,
            queue_capacity: 4,
            max_inflight_solves: 2,
            ..ServiceConfig::default()
        },
    );
    service.heartbeat(1.0);
    let (answered, shed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let service = &service;
                scope.spawn(move || {
                    let (mut answered, mut shed) = (0u64, 0u64);
                    for i in 0..per_thread {
                        let m = 2 + (t * 31 + i) % 4;
                        let request = SelectionRequest::balanced(m);
                        let opts = GetOptions {
                            now: Some(1.0),
                            deadline: if i % 4 == 0 { Some(0.5) } else { None },
                            block_when_full: false,
                        };
                        match service.get_with(&request, &opts) {
                            Ok(_) => answered += 1,
                            Err(ServiceError::Shed { .. })
                            | Err(ServiceError::DeadlineExceeded { .. }) => shed += 1,
                            Err(e) => panic!("unexpected soak error: {e}"),
                        }
                    }
                    (answered, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak thread panicked"))
            .fold((0, 0), |(a, s), (da, ds)| (a + da, s + ds))
    });
    let stats = service.stats();
    let requests = (threads * per_thread) as u64;
    SoakReport {
        requests,
        answered,
        shed,
        balanced: stats.balanced() && stats.requests == requests && answered + shed == requests,
    }
}

/// Renders the per-phase table plus the repair and reconcile summaries.
pub fn render_chaos_table(outcome: &ChaosOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>9} {:>10} {:>6} {:>8} {:>9} {:>7} {:>9}\n",
        "phase", "requests", "completed", "shed", "refused", "degraded", "admits", "adm.ref."
    ));
    for phase in CHAOS_PHASES {
        let c = &outcome.phases[phase.index()];
        out.push_str(&format!(
            "{:<10} {:>9} {:>10} {:>6} {:>8} {:>9} {:>7} {:>9}\n",
            phase.label(),
            c.requests,
            c.completed,
            c.shed,
            c.refused,
            c.degraded,
            c.admits,
            c.admit_refusals
        ));
    }
    out.push_str(&format!(
        "faults: {} link-downs, {} link-ups, {} crashes, {} reboots\n",
        outcome.faults.link_downs,
        outcome.faults.link_ups,
        outcome.faults.crashes,
        outcome.faults.reboots
    ));
    out.push_str(&format!(
        "repair: {} incidents, {} resolved, {} unresolved; p50 {:.1}s, p99 {:.1}s, max {:.1}s\n",
        outcome.repair.incidents,
        outcome.repair.resolved,
        outcome.repair.unresolved,
        outcome.repair.p50,
        outcome.repair.p99,
        outcome.repair.max
    ));
    out.push_str(&format!(
        "reconcile: {} sweeps, {} healthy, {} held, {} repaired, {} released, {} deferred\n",
        outcome.reconcile.sweeps,
        outcome.reconcile.healthy,
        outcome.reconcile.held,
        outcome.reconcile.repaired,
        outcome.reconcile.released,
        outcome.reconcile.deferred
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A further-shrunk smoke run exercising the full phase timeline.
    fn mini() -> ChaosConfig {
        let phase_len = 40.0;
        ChaosConfig {
            phase_len,
            burst: 4,
            target_jobs: 3,
            reconcile_every: 0.2 * phase_len,
            degrade: DegradePolicy {
                soft_staleness: 0.3 * phase_len,
                hard_staleness: 0.8 * phase_len,
                min_confidence: 0.6,
            },
            repair_bound: 0.45 * phase_len,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn chaos_run_is_honest_balanced_and_repairs_in_bound() {
        let config = mini();
        let outcome = run_chaos(&config);
        assert!(outcome.stats.balanced());
        assert_eq!(outcome.silent_stale, 0);
        // The stall phase must push past the hard bound: refusals for
        // bandwidth-sensitive work, stale-but-served for CPU-only.
        let stall = &outcome.phases[ChaosPhase::Stall.index()];
        assert!(stall.refused > 0, "stall produced no refusals: {stall:?}");
        assert!(stall.degraded > 0, "stall produced no stale answers");
        // The dead-on-arrival mix must shed in every phase.
        assert!(outcome.phases.iter().all(|p| p.shed > 0));
        // Crashes happened, and every observed outage was repaired
        // within the bound.
        assert!(outcome.faults.crashes >= 4);
        assert_eq!(outcome.repair.unresolved, 0);
        assert!(
            outcome.repair.p99 <= config.repair_bound,
            "p99 repair {:.1}s exceeds bound {:.1}s",
            outcome.repair.p99,
            config.repair_bound
        );
        assert!(outcome.reconcile.sweeps > 0);
    }

    #[test]
    fn chaos_run_is_deterministic() {
        let config = mini();
        let a = run_chaos(&config);
        let b = run_chaos(&config);
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.repair.samples, b.repair.samples);
        assert_eq!(a.reconcile, b.reconcile);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn soak_identity_holds_under_concurrency() {
        let report = run_soak(8, 40);
        assert!(report.balanced, "soak identity broken: {report:?}");
        assert_eq!(report.requests, 320);
        assert!(report.shed >= 320 / 4, "dead-on-arrival quarter must shed");
    }
}
