//! Fork parity proptests: continuing a trial from a forked warm state
//! must be bit-identical to running it straight through with the same
//! seed — same turnaround bits, same selected nodes — for arbitrary
//! seeds, every strategy, every background condition, and both flow
//! engines. This is the trial-level face of the fork tests in
//! `nodesel-simnet`, and the property the shared-warmup batch runners
//! stand on.

use nodesel_apps::AppModel;
use nodesel_experiments::{
    run_trial, warm_trial, Condition, Strategy as Placement, Testbed, TrialConfig,
};
use nodesel_simnet::FlowEngine;
use proptest::prelude::*;

fn config(engine: FlowEngine) -> TrialConfig {
    TrialConfig {
        // Short warm-up keeps each case affordable; parity must hold at
        // any boundary, so the length is irrelevant to the property.
        warmup: 150.0,
        engine,
        ..TrialConfig::default()
    }
}

fn conditions() -> impl Strategy<Value = Condition> {
    prop_oneof![
        Just(Condition::None),
        Just(Condition::Load),
        Just(Condition::Traffic),
        Just(Condition::Both),
    ]
}

fn placements() -> impl Strategy<Value = Placement> {
    prop_oneof![
        Just(Placement::Random),
        Just(Placement::Automatic),
        Just(Placement::Oracle),
        Just(Placement::Static),
    ]
}

fn engines() -> impl Strategy<Value = FlowEngine> {
    prop_oneof![Just(FlowEngine::Incremental), Just(FlowEngine::Reference)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// fork() at the warm-up boundary, then finish: bit-identical to a
    /// straight-through `run_trial` with the same seed.
    #[test]
    fn forked_continuation_is_bit_identical(
        seed in 0u64..1_000_000,
        app_idx in 0usize..3,
        condition in conditions(),
        placement in placements(),
        engine in engines(),
    ) {
        let testbed = Testbed::cmu();
        let suite = AppModel::paper_suite();
        let (app, m) = &suite[app_idx];
        let cfg = config(engine);

        let warm = warm_trial(&testbed, condition, &cfg, seed);
        let forked = warm.fork().finish(app, *m, placement);
        let straight = run_trial(&testbed, app, *m, placement, condition, &cfg, seed);

        prop_assert_eq!(
            forked.elapsed.to_bits(),
            straight.elapsed.to_bits(),
            "elapsed diverged: {} {:?} {:?} {:?} seed {}",
            app.name(), placement, condition, engine, seed
        );
        prop_assert_eq!(forked.nodes, straight.nodes, "selection diverged");
    }

    /// Sibling forks of one warm state are independent: two forks given
    /// different strategies each match their own straight-through run,
    /// and finishing one fork does not perturb the other.
    #[test]
    fn sibling_forks_do_not_interfere(
        seed in 0u64..1_000_000,
        app_idx in 0usize..3,
        condition in conditions(),
        engine in engines(),
    ) {
        let testbed = Testbed::cmu();
        let suite = AppModel::paper_suite();
        let (app, m) = &suite[app_idx];
        let cfg = config(engine);

        let warm = warm_trial(&testbed, condition, &cfg, seed);
        let fork_a = warm.fork();
        let fork_b = warm.fork();
        // Finish A first; B's result must be unaffected.
        let a = fork_a.finish(app, *m, Placement::Automatic);
        let b = fork_b.finish(app, *m, Placement::Random);

        let sa = run_trial(
            &testbed, app, *m, Placement::Automatic, condition, &cfg, seed,
        );
        let sb = run_trial(&testbed, app, *m, Placement::Random, condition, &cfg, seed);
        prop_assert_eq!(a.elapsed.to_bits(), sa.elapsed.to_bits());
        prop_assert_eq!(a.nodes, sa.nodes);
        prop_assert_eq!(b.elapsed.to_bits(), sb.elapsed.to_bits());
        prop_assert_eq!(b.nodes, sb.nodes);
    }
}
