//! Landmark route approximation over a [`Hierarchy`].
//!
//! Exact quality scoring wants a BFS row per source node — quadratic to
//! precompute and too slow to rebuild per selection at 100k nodes. A
//! [`RouteSketch`] replaces the exact rows with landmark distances using
//! each domain's *border nodes* as the landmarks:
//!
//! * **intra**: for every domain, one BFS per border node over the
//!   domain's extracted sub-topology, recording per member node the hop
//!   count, summed latency and bottleneck available bandwidth of the
//!   hop-shortest path to that border — `O(borders × domain size)`;
//! * **inter**: a domain×domain matrix from BFS over the
//!   [`AggregateGraph`](crate::hierarchy::AggregateGraph), accumulating
//!   trunk latency and the bottleneck
//!   of per-trunk best available bandwidth — `O(k²)` and therefore only
//!   built when the domain count is at most [`MAX_INTER_DOMAINS`].
//!
//! A cross-domain estimate composes three legs: source to its best
//! border, the aggregate path between the domains, and best border to
//! destination. The estimate is exact on single-border tree hierarchies
//! (every cross-domain path *must* run border-to-border, and on a tree
//! there is only one), which is exactly the shape
//! [`crate::builders::hierarchical`] generates; on multi-border or
//! cyclic fabrics it is heuristic because the aggregate leg does not
//! know which border the flow entered through. Same-domain estimates
//! are answered through the domain's borders too, so they *overestimate*
//! latency — callers that stayed inside one domain should prefer the
//! exact sub-topology routes, which are cheap at domain scale.
//!
//! Bandwidth cells depend on the [`NetMetrics`] view the sketch was
//! built from; hop and latency cells are structural and stay valid
//! until the topology itself changes.

use std::collections::VecDeque;

use crate::hierarchy::Hierarchy;
use crate::{NetMetrics, NodeId};

/// Largest domain count for which the dense inter-domain matrix is
/// built (k² cells; 1024 domains ≈ 25 MB). Above this, cross-domain
/// queries fall back to the border legs only.
pub const MAX_INTER_DOMAINS: usize = 1024;

/// One landmark distance: hop count, summed latency and bottleneck
/// available bandwidth of a hop-shortest path. Unreachable cells hold
/// `u32::MAX` / `INFINITY` / `0.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchCell {
    /// Hop count of the path.
    pub hops: u32,
    /// Sum of link latencies along the path, seconds.
    pub latency: f64,
    /// Minimum available bandwidth along the path, bits/s.
    pub bw: f64,
}

impl SketchCell {
    const UNREACHABLE: SketchCell = SketchCell {
        hops: u32::MAX,
        latency: f64::INFINITY,
        bw: 0.0,
    };

    /// True when the path exists.
    pub fn reachable(&self) -> bool {
        self.hops != u32::MAX
    }
}

/// Per-domain landmark rows: `cells[local × borders + border_idx]`.
#[derive(Debug, Clone, PartialEq)]
struct DomainSketch {
    borders: usize,
    cells: Vec<SketchCell>,
}

/// Landmark distances over a [`Hierarchy`]: per-domain BFS rows to each
/// border node plus (for small domain counts) a dense inter-domain
/// distance matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSketch {
    intra: Vec<DomainSketch>,
    /// Row-major k×k; `None` when `k > MAX_INTER_DOMAINS`.
    inter: Option<Vec<SketchCell>>,
    k: usize,
}

/// One domain's landmark rows: a BFS per border over the extracted
/// sub-topology. Independent of every other domain, which is what makes
/// the build parallel.
fn domain_sketch(hier: &Hierarchy, net: &impl NetMetrics, d: u16) -> DomainSketch {
    let dom = hier.domain(d);
    let ext = dom.extract();
    let n = ext.sub.node_count();
    let borders = dom.borders().len();
    let mut cells = vec![SketchCell::UNREACHABLE; n * borders];
    let mut queue = VecDeque::new();
    for (bi, &border) in dom.borders().iter().enumerate() {
        let start = hier.local_id(border);
        cells[start.index() * borders + bi] = SketchCell {
            hops: 0,
            latency: 0.0,
            bw: f64::INFINITY,
        };
        queue.clear();
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            let at = cells[v.index() * borders + bi];
            for &(e, w) in ext.sub.neighbors(v) {
                if cells[w.index() * borders + bi].reachable() {
                    continue;
                }
                let global = ext.edges[e.index()];
                cells[w.index() * borders + bi] = SketchCell {
                    hops: at.hops + 1,
                    latency: at.latency + ext.sub.link(e).latency(),
                    bw: at.bw.min(net.bw(global)),
                };
                queue.push_back(w);
            }
        }
    }
    DomainSketch { borders, cells }
}

/// One row of the inter-domain matrix: BFS over the aggregate graph
/// from `src`. Rows are independent of each other.
fn inter_row(
    agg: &crate::hierarchy::AggregateGraph,
    trunk_bw: &[f64],
    k: usize,
    src: usize,
) -> Vec<SketchCell> {
    let mut row = vec![SketchCell::UNREACHABLE; k];
    row[src] = SketchCell {
        hops: 0,
        latency: 0.0,
        bw: f64::INFINITY,
    };
    let mut queue = VecDeque::new();
    queue.push_back(src as u16);
    while let Some(v) = queue.pop_front() {
        let at = row[v as usize];
        for &ei in agg.incident(v) {
            let e = &agg.edges()[ei as usize];
            let w = if e.a == v { e.b } else { e.a };
            if row[w as usize].reachable() {
                continue;
            }
            row[w as usize] = SketchCell {
                hops: at.hops + 1,
                latency: at.latency + e.latency,
                bw: at.bw.min(trunk_bw[ei as usize]),
            };
            queue.push_back(w);
        }
    }
    row
}

/// Runs `work(slot)` for every slot in `0..count` over `threads` scoped
/// workers pulling from an atomic cursor, collecting results in slot
/// order — each slot is computed exactly once by exactly one worker, so
/// the output is identical to the serial loop regardless of thread
/// count or scheduling. `threads <= 1` runs inline on the calling
/// thread. The embarrassingly-parallel primitive behind
/// [`RouteSketch::build`] and the two-level prime.
pub fn fan_out<R: Send>(count: usize, threads: usize, work: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if threads <= 1 {
        return (0..count).map(work).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let work = &work;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        if slot >= count {
                            break produced;
                        }
                        produced.push((slot, work(slot)));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (slot, result) in handle.join().expect("sketch worker panicked") {
                slots[slot] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot produced"))
        .collect()
}

impl RouteSketch {
    /// Builds the sketch for `hier` under the metric view `net` (which
    /// must be over the same topology the hierarchy was built from),
    /// fanning the per-domain border BFS legs and the inter-domain
    /// matrix rows out over the machine's available parallelism. The
    /// result is bit-identical to the single-threaded build.
    pub fn build(hier: &Hierarchy, net: &(impl NetMetrics + Sync)) -> RouteSketch {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_with_threads(hier, net, threads)
    }

    /// [`RouteSketch::build`] with an explicit worker count (`<= 1`, or
    /// a small domain count, builds serially on the calling thread).
    pub fn build_with_threads(
        hier: &Hierarchy,
        net: &(impl NetMetrics + Sync),
        threads: usize,
    ) -> RouteSketch {
        let k = hier.num_domains() as usize;
        // Below this many domains the spawn overhead dominates the BFS.
        const PARALLEL_THRESHOLD: usize = 8;
        let workers = if k >= PARALLEL_THRESHOLD {
            threads.min(k).max(1)
        } else {
            1
        };

        let intra: Vec<DomainSketch> = fan_out(k, workers, |d| domain_sketch(hier, net, d as u16));

        let inter = (k <= MAX_INTER_DOMAINS).then(|| {
            let agg = hier.aggregate();
            // Dynamic best bandwidth per aggregate edge, computed once.
            let trunk_bw: Vec<f64> = agg.edges().iter().map(|e| e.best_bw(net)).collect();
            let rows: Vec<Vec<SketchCell>> =
                fan_out(k, workers, |src| inter_row(agg, &trunk_bw, k, src));
            rows.into_iter().flatten().collect()
        });

        RouteSketch { intra, inter, k }
    }

    /// Landmark cell from global node `n` to border `border_idx` of its
    /// own domain (index into [`crate::hierarchy::Domain::borders`]).
    pub fn to_border(&self, hier: &Hierarchy, n: NodeId, border_idx: usize) -> SketchCell {
        let d = hier.domain_of(n) as usize;
        let s = &self.intra[d];
        s.cells[hier.local_id(n).index() * s.borders + border_idx]
    }

    /// Inter-domain cell, when the dense matrix was built.
    pub fn between_domains(&self, a: u16, b: u16) -> Option<SketchCell> {
        self.inter
            .as_ref()
            .map(|m| m[a as usize * self.k + b as usize])
    }

    /// Best available bandwidth from `n` to any border of its domain
    /// (`0.0` when the domain has no borders or none is reachable).
    pub fn best_border_bw(&self, hier: &Hierarchy, n: NodeId) -> f64 {
        let d = hier.domain_of(n) as usize;
        let s = &self.intra[d];
        let local = hier.local_id(n).index();
        s.cells[local * s.borders..(local + 1) * s.borders]
            .iter()
            .map(|c| c.bw)
            .fold(0.0, f64::max)
    }

    /// Lowest latency from `n` to any border of its domain (`INFINITY`
    /// when the domain has no reachable border).
    pub fn best_border_latency(&self, hier: &Hierarchy, n: NodeId) -> f64 {
        let d = hier.domain_of(n) as usize;
        let s = &self.intra[d];
        let local = hier.local_id(n).index();
        s.cells[local * s.borders..(local + 1) * s.borders]
            .iter()
            .map(|c| c.latency)
            .fold(f64::INFINITY, f64::min)
    }

    /// Approximate available bandwidth between two global nodes: the
    /// bottleneck of the border legs and (cross-domain, matrix present)
    /// the aggregate leg.
    pub fn approx_bw(&self, hier: &Hierarchy, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return f64::INFINITY;
        }
        let (da, db) = (hier.domain_of(a), hier.domain_of(b));
        if da == db {
            // Through the best common border. Heuristic: the true path
            // may avoid borders entirely.
            let s = &self.intra[da as usize];
            let (la, lb) = (hier.local_id(a).index(), hier.local_id(b).index());
            return (0..s.borders)
                .map(|bi| {
                    s.cells[la * s.borders + bi]
                        .bw
                        .min(s.cells[lb * s.borders + bi].bw)
                })
                .fold(0.0, f64::max);
        }
        let legs = self
            .best_border_bw(hier, a)
            .min(self.best_border_bw(hier, b));
        match self.between_domains(da, db) {
            Some(cell) => legs.min(cell.bw),
            None => legs,
        }
    }

    /// Approximate latency between two global nodes, seconds.
    pub fn approx_latency(&self, hier: &Hierarchy, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return 0.0;
        }
        let (da, db) = (hier.domain_of(a), hier.domain_of(b));
        if da == db {
            let s = &self.intra[da as usize];
            let (la, lb) = (hier.local_id(a).index(), hier.local_id(b).index());
            return (0..s.borders)
                .map(|bi| {
                    s.cells[la * s.borders + bi].latency + s.cells[lb * s.borders + bi].latency
                })
                .fold(f64::INFINITY, f64::min);
        }
        let legs = self.best_border_latency(hier, a) + self.best_border_latency(hier, b);
        match self.between_domains(da, db) {
            Some(cell) => legs + cell.latency,
            None => legs,
        }
    }

    /// Mean inter-domain latency from `d` to every other reachable
    /// domain — the selector's latency-awareness tie-break. `0.0` for a
    /// single domain or when the dense matrix was not built.
    pub fn mean_inter_latency(&self, d: u16) -> f64 {
        let Some(inter) = &self.inter else { return 0.0 };
        let row = &inter[d as usize * self.k..(d as usize + 1) * self.k];
        let mut sum = 0.0;
        let mut count = 0usize;
        for (other, cell) in row.iter().enumerate() {
            if other != d as usize && cell.reachable() {
                sum += cell.latency;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::hierarchical;
    use crate::units::MBPS;
    use crate::{NetSnapshot, Routes, Topology};
    use std::sync::Arc;

    #[test]
    fn exact_on_single_border_tree_hierarchies() {
        let (mut t, hosts) = hierarchical(4, 4, 100.0 * MBPS, 25.0 * MBPS, 2e-3);
        // Perturb conditions so bandwidth isn't uniform.
        let e = t.edge_ids().next().unwrap();
        t.set_link_used(e, crate::Direction::AtoB, 40.0 * MBPS);
        let hier = Hierarchy::new(&t);
        let snap = NetSnapshot::capture(Arc::new(t.clone()));
        let sketch = RouteSketch::build(&hier, &snap);
        let routes = Routes::new(&t);
        // Every cross-domain host pair: the sketch must match the exact
        // flat route (single border per domain + tree trunks).
        for (da, ha) in hosts.iter().enumerate() {
            for (db, hb) in hosts.iter().enumerate() {
                if da == db {
                    continue;
                }
                for &a in ha {
                    for &b in hb {
                        let exact_bw = routes.table().bottleneck_bw_in(&snap, a, b).unwrap();
                        let exact_lat = routes.latency(a, b).unwrap();
                        let approx = sketch.approx_bw(&hier, a, b);
                        assert!(
                            (approx - exact_bw).abs() < 1e-6,
                            "bw mismatch {a:?}->{b:?}: {approx} vs {exact_bw}"
                        );
                        let lat = sketch.approx_latency(&hier, a, b);
                        assert!(
                            (lat - exact_lat).abs() < 1e-12,
                            "latency mismatch {a:?}->{b:?}: {lat} vs {exact_lat}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn same_domain_estimates_route_through_the_border() {
        let (t, hosts) = hierarchical(2, 3, 100.0 * MBPS, 25.0 * MBPS, 2e-3);
        let hier = Hierarchy::new(&t);
        let snap = NetSnapshot::capture(Arc::new(t.clone()));
        let sketch = RouteSketch::build(&hier, &snap);
        let (a, b) = (hosts[0][0], hosts[0][1]);
        // Star domain: the hub is the border, so host-hub-host is also
        // the true route and the estimate is exact here.
        assert!((sketch.approx_bw(&hier, a, b) - 100.0 * MBPS).abs() < 1e-6);
        assert_eq!(sketch.approx_bw(&hier, a, a), f64::INFINITY);
        assert_eq!(sketch.approx_latency(&hier, a, a), 0.0);
    }

    #[test]
    fn isolated_domains_are_unreachable() {
        // Two disconnected stars: component fallback, no borders.
        let mut t = Topology::new();
        for s in 0..2 {
            let hub = t.add_network_node(format!("s{s}"));
            for h in 0..2 {
                let n = t.add_compute_node(format!("s{s}h{h}"), 1.0);
                t.add_link(hub, n, 100.0 * MBPS);
            }
        }
        let hier = Hierarchy::new(&t);
        let snap = NetSnapshot::capture(Arc::new(t));
        let sketch = RouteSketch::build(&hier, &snap);
        let a = NodeId::from_index(1);
        let b = NodeId::from_index(4);
        assert_eq!(sketch.approx_bw(&hier, a, b), 0.0);
        assert_eq!(sketch.approx_latency(&hier, a, b), f64::INFINITY);
        assert_eq!(sketch.mean_inter_latency(0), 0.0);
        let cell = sketch.between_domains(0, 1).unwrap();
        assert!(!cell.reachable());
    }

    #[test]
    fn parallel_build_matches_serial() {
        // 12 domains clears the parallel threshold; perturbed metrics so
        // bandwidth cells are non-trivial.
        let (mut t, _) = hierarchical(12, 6, 100.0 * MBPS, 25.0 * MBPS, 2e-3);
        for (i, e) in t.edge_ids().collect::<Vec<_>>().into_iter().enumerate() {
            let cap = t.link(e).capacity(crate::Direction::AtoB);
            t.set_link_used(e, crate::Direction::AtoB, cap * ((i % 5) as f64) * 0.15);
        }
        let hier = Hierarchy::new(&t);
        let snap = NetSnapshot::capture(Arc::new(t));
        let serial = RouteSketch::build_with_threads(&hier, &snap, 1);
        for threads in [2, 4, 7] {
            let parallel = RouteSketch::build_with_threads(&hier, &snap, threads);
            assert_eq!(parallel, serial, "{threads}-thread build diverged");
        }
        assert_eq!(RouteSketch::build(&hier, &snap), serial);
    }

    #[test]
    fn mean_inter_latency_orders_central_domains_first() {
        // Chain of 3 domains: middle domain has the lowest mean latency.
        let (t, _) = hierarchical(3, 2, 100.0 * MBPS, 25.0 * MBPS, 1e-3);
        let hier = Hierarchy::new(&t);
        let snap = NetSnapshot::capture(Arc::new(t));
        let sketch = RouteSketch::build(&hier, &snap);
        // Binary tree over 3 hubs: d0 is the root (children d1, d2).
        let m0 = sketch.mean_inter_latency(0);
        let m1 = sketch.mean_inter_latency(1);
        assert!(m0 < m1, "root domain should be more central: {m0} vs {m1}");
    }
}
