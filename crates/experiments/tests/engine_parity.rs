//! Trial-level engine parity: a full `run_trial` (warm-up, generators,
//! Remos collection, selection, application run) must produce
//! bit-identical results for a fixed seed whichever flow engine the
//! simulator runs on. This is the end-to-end face of the `flow_parity`
//! suite in `nodesel-simnet`.

use nodesel_apps::AppModel;
use nodesel_core::{BalancedSelector, SelectionRequest, Selector};
use nodesel_experiments::{run_trial, Condition, Strategy, Testbed, TrialConfig};
use nodesel_loadgen::{install_load, LoadConfig};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::{
    install_faults, DriverId, DriverLogic, FaultPlan, FlowEngine, ParallelSim, Sim,
};
use nodesel_topology::units::MBPS;
use nodesel_topology::{NodeId, ShardPlan, Topology};

#[test]
fn trials_are_engine_independent() {
    let testbed = Testbed::cmu();
    let suite = AppModel::paper_suite();
    let (app, m) = &suite[0];
    for strategy in [Strategy::Random, Strategy::Automatic] {
        for condition in [Condition::None, Condition::Both] {
            for seed in [1u64, 7] {
                let run = |engine| {
                    let cfg = TrialConfig {
                        warmup: 300.0,
                        engine,
                        ..TrialConfig::default()
                    };
                    run_trial(&testbed, app, *m, strategy, condition, &cfg, seed)
                };
                let a = run(FlowEngine::Incremental);
                let b = run(FlowEngine::Reference);
                assert_eq!(
                    a.elapsed.to_bits(),
                    b.elapsed.to_bits(),
                    "elapsed diverged: {} {strategy:?} {condition:?} seed {seed}",
                    app.name()
                );
                assert_eq!(a.nodes, b.nodes, "selection diverged");
            }
        }
    }
}

/// Installing an *empty* `FaultPlan` must be invisible: the driver
/// schedules nothing, so warm-up, collection, and selection are
/// bit-identical to a run without the fault subsystem installed at all.
/// This pins the pre-PR behavior of every fault-free experiment.
#[test]
fn empty_fault_plan_is_invisible() {
    let testbed = Testbed::cmu();
    for engine in [FlowEngine::Incremental, FlowEngine::Reference] {
        for seed in [3u64, 11] {
            let run = |with_plan: bool| {
                let mut sim = testbed.sim(engine);
                let remos = Remos::install(&mut sim, CollectorConfig::default());
                install_load(
                    &mut sim,
                    &testbed.machines,
                    LoadConfig::paper_defaults(),
                    seed ^ 0x10AD,
                );
                if with_plan {
                    let plan = FaultPlan::default();
                    assert!(plan.is_empty());
                    install_faults(&mut sim, &plan);
                }
                sim.run_for(600.0);
                let snap = remos.snapshot(&sim);
                let bits: Vec<u64> = snap
                    .load_values()
                    .iter()
                    .chain(snap.used_values())
                    .map(|v| v.to_bits())
                    .collect();
                let nodes = BalancedSelector::new()
                    .select(&snap, &SelectionRequest::balanced(4))
                    .expect("fault-free selection succeeds")
                    .nodes;
                assert!(snap.node_avail_values().iter().all(|&up| up));
                assert!(snap.node_stale_values().iter().all(|&s| s == 0));
                (sim.now().as_secs_f64().to_bits(), bits, nodes)
            };
            assert_eq!(
                run(true),
                run(false),
                "empty plan perturbed the run: {engine:?} seed {seed}"
            );
        }
    }
}

/// The `threads` knob never changes results. The CMU testbed is one
/// connected domain, so the parallel warm-up falls back to serial (the
/// honest single-testbed ~1x case) — and `run_trial` must stay
/// bit-identical across every thread count.
#[test]
fn trials_are_thread_count_independent() {
    let testbed = Testbed::cmu();
    let suite = AppModel::paper_suite();
    let (app, m) = &suite[0];
    let run = |threads| {
        let cfg = TrialConfig {
            warmup: 300.0,
            threads,
            ..TrialConfig::default()
        };
        run_trial(
            &testbed,
            app,
            *m,
            Strategy::Automatic,
            Condition::Both,
            &cfg,
            13,
        )
    };
    let base = run(1);
    for threads in [2, 4, 8] {
        let got = run(threads);
        assert_eq!(
            got.elapsed.to_bits(),
            base.elapsed.to_bits(),
            "elapsed diverged at threads={threads}"
        );
        assert_eq!(
            got.nodes, base.nodes,
            "selection diverged at threads={threads}"
        );
    }
}

/// Deterministic per-domain churn for the collector-parity test below:
/// periodic compute jobs and intra-domain transfers.
#[derive(Clone)]
struct DomainChurn {
    nodes: Vec<NodeId>,
    k: u64,
}

impl DriverLogic for DomainChurn {
    fn fire(&mut self, sim: &mut Sim, me: DriverId) {
        self.k += 1;
        let a = self.nodes[(self.k as usize) % self.nodes.len()];
        let b = self.nodes[(self.k as usize * 5 + 2) % self.nodes.len()];
        sim.start_compute_detached(a, 0.4 + (self.k % 3) as f64 * 0.2);
        if a != b {
            sim.start_transfer_detached(a, b, MBPS * (1 + self.k % 5) as f64);
        }
        sim.schedule_driver_in(0.11 + (self.k % 7) as f64 * 0.019, me);
    }
}

/// Collector samples are parallel-parity too: scoped collectors homed
/// inside each domain of a federated topology record bit-identical
/// host windows and link samples whether the run is serial or sharded,
/// read per shard through [`ParallelSim::shard`] without any merging.
#[test]
fn scoped_collector_samples_are_parallel_parity() {
    // Two disconnected 4-host stars, one collector + churn per star.
    let mut topo = Topology::new();
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    for s in 0..2 {
        let hub = topo.add_network_node(format!("g{s}-hub"));
        let mut group = vec![hub];
        for h in 0..4 {
            let n = topo.add_compute_node(format!("g{s}-h{h}"), 1.0);
            topo.add_link(hub, n, 100.0 * MBPS);
            group.push(n);
        }
        groups.push(group);
    }
    let plan = ShardPlan::components(&topo);
    assert_eq!(plan.num_domains(), 2);

    let build = |topo: &Topology| {
        let mut sim = Sim::new(topo.clone());
        sim.set_partition(plan.node_domain());
        let handles: Vec<Remos> = groups
            .iter()
            .map(|g| Remos::install_scoped(&mut sim, g[1], g, CollectorConfig::default()))
            .collect();
        for (s, g) in groups.iter().enumerate() {
            let hosts = g[1..].to_vec();
            let d = sim.install_driver_at(
                g[1],
                DomainChurn {
                    nodes: hosts,
                    k: s as u64 * 77,
                },
            );
            sim.schedule_driver_in(0.0, d);
        }
        (sim, handles)
    };

    let sample = |sim: &Sim, remos: &Remos| -> Vec<u64> {
        let snap = remos.snapshot(sim);
        snap.load_values()
            .iter()
            .chain(snap.used_values())
            .map(|v| v.to_bits())
            .collect()
    };

    let (mut serial, serial_handles) = build(&topo);
    serial.run_for(90.0);

    let (sim, par_handles) = build(&topo);
    let mut par = ParallelSim::new(sim, &plan, 2);
    par.run_for(90.0);
    assert!(
        par.is_parallel(),
        "domain-local collectors must not escalate"
    );

    for (d, (sh, ph)) in serial_handles.iter().zip(&par_handles).enumerate() {
        let expect = sample(&serial, sh);
        let got = sample(par.shard(d as u16), ph);
        assert!(
            expect.iter().any(|&b| b != 0),
            "domain {d} collector sampled nothing"
        );
        assert_eq!(got, expect, "collector samples diverged in domain {d}");
    }
}
