//! JSON persistence for topology snapshots.
//!
//! Serialization via `serde` preserves structure, capacities, latencies
//! and the current conditions (load averages and link utilizations).
//! Deserialization goes through [`from_json`], which rebuilds the derived
//! name index and **validates** the graph: serde alone would accept
//! inconsistent adjacency or negative capacities from a hand-edited file.

use crate::{NodeId, Topology};

/// Errors from loading a topology.
#[derive(Debug)]
pub enum IoError {
    /// The JSON could not be parsed into a topology.
    Parse(serde_json::Error),
    /// The parsed topology violates a structural invariant.
    Invalid(String),
}

impl core::fmt::Display for IoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IoError::Parse(e) => write!(f, "topology JSON parse error: {e}"),
            IoError::Invalid(msg) => write!(f, "invalid topology: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Serializes a topology (structure + current conditions) to pretty JSON.
pub fn to_json(topo: &Topology) -> String {
    serde_json::to_string_pretty(topo).expect("topology serialization cannot fail")
}

/// Parses and validates a topology from JSON.
pub fn from_json(json: &str) -> Result<Topology, IoError> {
    let mut topo: Topology = serde_json::from_str(json).map_err(IoError::Parse)?;
    topo.rebuild_name_index();
    validate(&topo)?;
    Ok(topo)
}

/// Checks structural invariants of a (possibly hand-edited) topology.
pub fn validate(topo: &Topology) -> Result<(), IoError> {
    use std::collections::HashSet;
    let mut names = HashSet::new();
    for id in topo.node_ids() {
        let n = topo.node(id);
        if !names.insert(n.name().to_string()) {
            return Err(IoError::Invalid(format!(
                "duplicate node name {:?}",
                n.name()
            )));
        }
        if n.is_compute() && !(n.speed() > 0.0 && n.speed().is_finite()) {
            return Err(IoError::Invalid(format!(
                "compute node {:?} has non-positive speed {}",
                n.name(),
                n.speed()
            )));
        }
        if !(n.load_avg() >= 0.0 && n.load_avg().is_finite()) {
            return Err(IoError::Invalid(format!(
                "node {:?} has invalid load average {}",
                n.name(),
                n.load_avg()
            )));
        }
    }
    for e in topo.edge_ids() {
        let l = topo.link(e);
        let (a, b) = (l.a(), l.b());
        if a == b {
            return Err(IoError::Invalid(format!("link {e:?} is a self-loop")));
        }
        for n in [a, b] {
            if n.index() >= topo.node_count() {
                return Err(IoError::Invalid(format!(
                    "link {e:?} references missing node {n:?}"
                )));
            }
        }
        for dir in [crate::Direction::AtoB, crate::Direction::BtoA] {
            // Zero is legal: an administratively-down link carries no
            // traffic but remains part of the structure.
            let cap = l.capacity(dir);
            if !(cap >= 0.0 && cap.is_finite()) {
                return Err(IoError::Invalid(format!(
                    "link {e:?} has negative or non-finite capacity {cap}"
                )));
            }
            let used = l.used(dir);
            if !(used >= 0.0 && used.is_finite()) {
                return Err(IoError::Invalid(format!(
                    "link {e:?} has invalid utilization {used}"
                )));
            }
        }
        if !(l.latency() >= 0.0 && l.latency().is_finite()) {
            return Err(IoError::Invalid(format!(
                "link {e:?} has invalid latency {}",
                l.latency()
            )));
        }
        // Adjacency consistency: both endpoints must list this edge.
        for n in [a, b] {
            if !topo.neighbors(n).iter().any(|&(edge, _)| edge == e) {
                return Err(IoError::Invalid(format!(
                    "adjacency of node {n:?} does not list link {e:?}"
                )));
            }
        }
    }
    // Domain section: when a hierarchy assignment is present it must cover
    // every node with contiguous ids, or [`crate::hierarchy::Hierarchy`]
    // construction would panic long after the file was accepted.
    if let Some(domains) = topo.domains() {
        if domains.len() != topo.node_count() {
            return Err(IoError::Invalid(format!(
                "domain section carries {} ids for {} nodes",
                domains.len(),
                topo.node_count()
            )));
        }
        if let Some(&max) = domains.iter().max() {
            let mut seen = vec![false; max as usize + 1];
            for &d in domains {
                seen[d as usize] = true;
            }
            if let Some(gap) = seen.iter().position(|&s| !s) {
                return Err(IoError::Invalid(format!(
                    "domain section ids are not contiguous: domain {gap} has no members"
                )));
            }
        }
    }
    // Every adjacency entry must reference a real edge with the node as an
    // endpoint.
    for id in topo.node_ids() {
        for &(e, other) in topo.neighbors(id) {
            if e.index() >= topo.link_count() {
                return Err(IoError::Invalid(format!(
                    "adjacency of {id:?} references missing link {e:?}"
                )));
            }
            let l = topo.link(e);
            if !l.touches(id) || l.opposite(id) != other {
                return Err(IoError::Invalid(format!(
                    "adjacency of {id:?} is inconsistent with link {e:?}"
                )));
            }
        }
    }
    Ok(())
}

/// Looks up several nodes by name, preserving order.
pub fn nodes_by_name(topo: &Topology, names: &[&str]) -> Result<Vec<NodeId>, IoError> {
    names
        .iter()
        .map(|n| {
            topo.node_by_name(n)
                .map_err(|e| IoError::Invalid(e.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::dumbbell;
    use crate::testbeds::cmu_testbed;
    use crate::units::MBPS;
    use crate::Direction;

    #[test]
    fn round_trip_preserves_everything() {
        let (mut t, ids) = dumbbell(3, 100.0 * MBPS, 10.0 * MBPS);
        t.set_load_avg(ids[0], 1.5);
        let e = t.edge_ids().next().unwrap();
        t.set_link_used(e, Direction::AtoB, 4.0 * MBPS);
        let json = to_json(&t);
        let back = from_json(&json).unwrap();
        assert_eq!(back.node_count(), t.node_count());
        assert_eq!(back.link_count(), t.link_count());
        assert_eq!(back.node(ids[0]).load_avg(), 1.5);
        assert_eq!(back.link(e).used(Direction::AtoB), 4.0 * MBPS);
        // Name index works after reload.
        assert_eq!(back.node_by_name("l0").unwrap(), ids[0]);
        // Routing works on the reloaded graph.
        let r = back.routes();
        assert_eq!(r.bottleneck_bw(ids[0], ids[3]).unwrap(), 6.0 * MBPS);
    }

    #[test]
    fn testbed_round_trips() {
        let tb = cmu_testbed();
        let json = to_json(&tb.topo);
        let back = from_json(&json).unwrap();
        assert_eq!(back.compute_node_count(), 18);
        assert!(validate(&back).is_ok());
    }

    #[test]
    fn garbage_json_is_a_parse_error() {
        assert!(matches!(from_json("{nope"), Err(IoError::Parse(_))));
    }

    #[test]
    fn corrupted_fields_are_rejected() {
        let (t, _) = dumbbell(2, 100.0 * MBPS, 10.0 * MBPS);
        let json = to_json(&t);
        // Negative capacity.
        let bad = json.replacen("10000000.0", "-5.0", 1);
        assert!(matches!(from_json(&bad), Err(IoError::Invalid(_))));
        // Negative load average.
        let bad = json.replacen("\"load_avg\": 0.0", "\"load_avg\": -1.0", 1);
        assert!(matches!(from_json(&bad), Err(IoError::Invalid(_))));
    }

    #[test]
    fn zero_capacity_links_are_valid() {
        // Administratively-down links (capacity 0) must round-trip: they
        // are real structure, just currently carrying nothing.
        let mut t = Topology::new();
        let a = t.add_compute_node("a", 1.0);
        let b = t.add_compute_node("b", 1.0);
        let e = t.add_link(a, b, 0.0);
        let back = from_json(&to_json(&t)).unwrap();
        assert_eq!(back.link(e).capacity(Direction::AtoB), 0.0);
        assert_eq!(back.link(e).bwfactor(), 0.0);
    }

    #[test]
    fn domain_assignment_round_trips() {
        let (mut t, ids) = dumbbell(2, 100.0 * MBPS, 10.0 * MBPS);
        // Left pair domain 0, right pair domain 1.
        let domains: Vec<u16> = (0..t.node_count())
            .map(|i| if i < t.node_count() / 2 { 0 } else { 1 })
            .collect();
        t.set_domains(domains.clone());
        let back = from_json(&to_json(&t)).unwrap();
        assert_eq!(back.domains(), Some(domains.as_slice()));
        assert_eq!(back.node_by_name("l0").unwrap(), ids[0]);
    }

    #[test]
    fn flat_topologies_round_trip_without_domains() {
        // The field is `#[serde(default, skip_serializing_if = "...")]`,
        // so flat files don't grow a domain section and pre-hierarchy
        // files keep loading. (The offline serde stand-in serializes the
        // `None` explicitly, so only the round-tripped value is asserted
        // here, not the key's absence.)
        let (t, _) = dumbbell(2, 100.0 * MBPS, 10.0 * MBPS);
        assert_eq!(from_json(&to_json(&t)).unwrap().domains(), None);
    }

    #[test]
    fn malformed_domain_sections_are_rejected() {
        let (mut t, _) = dumbbell(2, 100.0 * MBPS, 10.0 * MBPS);
        let n = t.node_count();
        t.set_domains(vec![0; n]);
        let json = to_json(&t);
        // Too few ids for the node count.
        let mut doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let mut ids = doc["domains"].as_array().unwrap().clone();
        ids.pop();
        doc["domains"] = serde_json::Value::Array(ids);
        let err = from_json(&doc.to_string()).unwrap_err();
        assert!(
            matches!(&err, IoError::Invalid(m) if m.contains("domain section")),
            "{err}"
        );
        // Gapped ids: a domain with no members.
        let mut doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let mut ids = doc["domains"].as_array().unwrap().clone();
        ids[0] = serde_json::json!(7);
        doc["domains"] = serde_json::Value::Array(ids);
        let err = from_json(&doc.to_string()).unwrap_err();
        assert!(
            matches!(&err, IoError::Invalid(m) if m.contains("not contiguous")),
            "{err}"
        );
    }

    #[test]
    fn nodes_by_name_helper() {
        let tb = cmu_testbed();
        let ids = nodes_by_name(&tb.topo, &["m-1", "m-7", "gibraltar"]).unwrap();
        assert_eq!(ids[0], tb.m(1));
        assert_eq!(ids[2], tb.gibraltar);
        assert!(nodes_by_name(&tb.topo, &["nope"]).is_err());
    }
}
