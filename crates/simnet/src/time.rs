//! Simulation time.
//!
//! All simulation timestamps are integer nanoseconds ([`SimTime`]). Keeping
//! time integral makes event ordering exact and runs bit-reproducible across
//! platforms; rates and durations are converted from `f64` seconds at the
//! boundary with explicit rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute simulation timestamp in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Far future; used as the "never" sentinel for next-completion times.
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Builds a timestamp from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Builds a timestamp from fractional seconds, rounding up so that a
    /// strictly positive duration never collapses to the current instant
    /// (which would allow zero-delay event loops).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid time {s}");
        SimTime((s * NANOS_PER_SEC as f64).ceil() as u64)
    }

    /// This timestamp as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Saturating time difference in fractional seconds.
    pub fn seconds_since(self, earlier: SimTime) -> f64 {
        (self.0.saturating_sub(earlier.0)) as f64 / NANOS_PER_SEC as f64
    }

    /// Advances by a fractional-second delay (rounded up; a positive delay
    /// always advances time by at least one nanosecond).
    pub fn after_secs_f64(self, delay: f64) -> SimTime {
        assert!(delay >= 0.0, "negative delay {delay}");
        if delay == 0.0 {
            return self;
        }
        if !delay.is_finite() {
            return SimTime::NEVER;
        }
        let nanos = (delay * NANOS_PER_SEC as f64).ceil().max(1.0);
        if nanos >= (u64::MAX - self.0) as f64 {
            SimTime::NEVER
        } else {
            SimTime(self.0 + nanos as u64)
        }
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, nanos: u64) -> SimTime {
        SimTime(self.0.saturating_add(nanos))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, nanos: u64) {
        *self = *self + nanos;
    }
}

impl Sub for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Total dispatch order of simulator events: time first, then the owning
/// *domain* (shard), then that domain's monotone sequence number.
///
/// The old event heap broke timestamp ties by a single global insertion
/// counter — deterministic only as long as every piece of state was
/// mutated in exactly the same program order, so permuting driver
/// installation silently permuted same-time dispatch. Keying ties by
/// `(domain, seq)` makes the order a property of the simulated system
/// itself: events homed in one domain are sequenced by that domain's own
/// counter, and domains are ordered by their stable partition index. An
/// unpartitioned simulator homes everything in domain 0, where
/// `(time, 0, seq)` reproduces the historical `(time, seq)` order
/// bit-for-bit.
///
/// The derived lexicographic `Ord` on the field order below is the
/// contract the parallel engine's trace merge relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Dispatch time.
    pub at: SimTime,
    /// Partition domain the event is homed in (0 when unpartitioned).
    pub domain: u16,
    /// The domain's monotone event sequence number.
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs(3);
        assert_eq!(t.as_secs_f64(), 3.0);
        assert_eq!(SimTime::from_secs_f64(1.5).0, 1_500_000_000);
    }

    #[test]
    fn positive_delay_always_advances() {
        let t = SimTime::from_secs(1);
        let t2 = t.after_secs_f64(1e-12);
        assert!(t2 > t);
        assert_eq!(t.after_secs_f64(0.0), t);
    }

    #[test]
    fn infinite_delay_is_never() {
        assert_eq!(SimTime::ZERO.after_secs_f64(f64::INFINITY), SimTime::NEVER);
    }

    #[test]
    fn event_key_orders_time_then_domain_then_seq() {
        let k = |at, domain, seq| EventKey {
            at: SimTime(at),
            domain,
            seq,
        };
        // Time dominates.
        assert!(k(1, 9, 9) < k(2, 0, 0));
        // At equal times, the lower domain dispatches first...
        assert!(k(5, 0, 7) < k(5, 1, 0));
        // ...and within a domain its own sequence decides.
        assert!(k(5, 3, 1) < k(5, 3, 2));
        assert_eq!(k(5, 3, 1), k(5, 3, 1));
    }

    #[test]
    fn seconds_since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(4);
        assert_eq!(b.seconds_since(a), 3.0);
        assert_eq!(a.seconds_since(b), 0.0);
    }
}
