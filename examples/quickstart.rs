//! Quickstart: annotate a topology with measured conditions and ask the
//! three fundamental algorithms (§3.2) for a node set.
//!
//! Run with: `cargo run -p nodesel-experiments --example quickstart`

use nodesel_core::{max_bandwidth, max_compute, select, Constraints, SelectionRequest};
use nodesel_topology::builders::dumbbell;
use nodesel_topology::units::MBPS;
use nodesel_topology::Direction;

fn main() {
    // Two 4-node clusters joined by a 100 Mbps backbone.
    let (mut topo, ids) = dumbbell(4, 100.0 * MBPS, 100.0 * MBPS);

    // Suppose the measurement layer reported: the left cluster is idle but
    // its uplink is congested; the right cluster carries some CPU load.
    let trunk = topo.edge_ids().next().unwrap();
    topo.set_link_used(trunk, Direction::AtoB, 85.0 * MBPS);
    topo.set_link_used(trunk, Direction::BtoA, 85.0 * MBPS);
    for &n in &ids[4..] {
        topo.set_load_avg(n, 0.6); // cpu = 1/1.6 = 0.63
    }

    let names = |nodes: &[nodesel_topology::NodeId]| {
        nodes
            .iter()
            .map(|&n| topo.node(n).name().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };

    // 1. Maximize computation: picks the idle left-cluster nodes, ignoring
    //    the congested trunk (fine for embarrassingly parallel work).
    let c = max_compute(&topo, 4, &Constraints::none()).unwrap();
    println!(
        "max-compute    -> [{}]  (min cpu {:.2}, min bw {:.0} Mbps)",
        names(&c.nodes),
        c.quality.min_cpu,
        c.quality.min_bw / MBPS
    );

    // 2. Maximize communication (Figure 2): keeps all traffic inside one
    //    cluster, whichever keeps the fattest pairwise paths.
    let b = max_bandwidth(&topo, 4, &Constraints::none()).unwrap();
    println!(
        "max-bandwidth  -> [{}]  (min cpu {:.2}, min bw {:.0} Mbps)",
        names(&b.nodes),
        b.quality.min_cpu,
        b.quality.min_bw / MBPS
    );

    // 3. Balanced (Figure 3): the default for parallel applications that
    //    both compute and communicate.
    let bal = select(&topo, &SelectionRequest::balanced(4)).unwrap();
    println!(
        "balanced       -> [{}]  (min cpu {:.2}, min bw fraction {:.2}, score {:.2})",
        names(&bal.nodes),
        bal.quality.min_cpu,
        bal.quality.min_bwfraction,
        bal.score
    );

    // A 5-node request must span the congested trunk; the balanced score
    // reports the price.
    let spanning = select(&topo, &SelectionRequest::balanced(5)).unwrap();
    println!(
        "balanced (m=5) -> [{}]  (score {:.2} — forced across the congested trunk)",
        names(&spanning.nodes),
        spanning.score
    );
}
