//! Long-running-job study: static placement vs periodic migration.
//!
//! Usage: `migration_study [repetitions] [iterations]` (defaults 8, 256).

use nodesel_experiments::driver::{Condition, TrialConfig};
use nodesel_experiments::migration_study::{run_long_jobs, LongRunStrategy};

fn main() {
    let mut args = std::env::args().skip(1);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let cfg = TrialConfig::default();
    let seed = 4242;

    println!(
        "FFT x{iters} iterations (~{:.0} s unloaded) on 4 of 18 testbed nodes, load+traffic, {reps} reps",
        iters as f64 * 1.5
    );
    println!("{:<34} {:>10} {:>12}", "strategy", "mean (s)", "moves/run");
    let (t, _) = run_long_jobs(
        iters,
        LongRunStrategy::RandomStay,
        Condition::Both,
        &cfg,
        seed,
        reps,
    );
    println!("{:<34} {t:>10.1} {:>12}", "random, stay", "-");
    let (t, _) = run_long_jobs(
        iters,
        LongRunStrategy::AutoStay,
        Condition::Both,
        &cfg,
        seed,
        reps,
    );
    println!("{:<34} {t:>10.1} {:>12}", "automatic, stay", "-");
    for (period, threshold) in [(300.0, 0.5), (120.0, 0.3)] {
        let strat = LongRunStrategy::AutoMigrate { period, threshold };
        let (t, moves) = run_long_jobs(iters, strat, Condition::Both, &cfg, seed, reps);
        println!(
            "{:<34} {t:>10.1} {moves:>12.1}",
            format!("automatic, migrate({period:.0}s, {threshold})")
        );
    }
}
