//! Shared helpers for the table/figure benches.
//!
//! Each bench in `benches/` regenerates one artifact of the paper's
//! evaluation (printed once, before measurement) and then measures the
//! computation that produces it, so `cargo bench` doubles as the
//! reproduction harness. The helpers here build the standard randomized
//! inputs the benches sweep over.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use nodesel_topology::builders::{hierarchical, random_tree, randomize_conditions};
use nodesel_topology::units::MBPS;
use nodesel_topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded random tree (half compute, half network nodes) with random
/// load and traffic conditions — the standard input for the algorithm
/// benches.
pub fn conditioned_tree(seed: u64, nodes: usize) -> (Topology, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let computes = nodes / 2;
    let (mut topo, ids) = random_tree(&mut rng, computes, nodes - computes, 1e8);
    randomize_conditions(&mut topo, &mut rng, 3.0, 0.9);
    (topo, ids)
}

/// A seeded hierarchical fabric (star domains on a binary trunk tree,
/// see [`hierarchical`]) with random load and traffic conditions — the
/// standard input for the two-level scaling benches. The domain
/// assignment is carried on the returned topology, so
/// `TwoLevelSelector` and `Hierarchy::new` pick it up directly. Returns
/// the topology and each domain's host list.
pub fn conditioned_hierarchy(
    seed: u64,
    domains: usize,
    hosts_per_domain: usize,
) -> (Topology, Vec<Vec<NodeId>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut topo, members) =
        hierarchical(domains, hosts_per_domain, 100.0 * MBPS, 40.0 * MBPS, 2e-3);
    randomize_conditions(&mut topo, &mut rng, 3.0, 0.9);
    (topo, members)
}

/// `k` subnets in one simulator — a two-router backbone with eight hosts
/// each — the standard federated input for the simulator benches. Flows
/// share bandwidth within their subnet only, so the sharing graph has
/// `k` components (and the incremental flow engine re-solves one per
/// event). With `trunk_latency` the subnets are chained router-to-router
/// into one connected federation whose inter-subnet links carry that
/// latency — the boundary the parallel engine's conservative windows
/// synchronize on. Returns the topology and each subnet's host list.
pub fn federated(k: usize, trunk_latency: Option<f64>) -> (Topology, Vec<Vec<NodeId>>) {
    nodesel_topology::builders::federation(k, trunk_latency)
}

/// The per-subnet domain assignment matching [`federated`]'s node order
/// (ten nodes per subnet: two routers, eight hosts), for trunked
/// federations where connected-component analysis would find a single
/// domain.
pub fn federated_domains(topo: &Topology) -> Vec<u16> {
    (0..topo.node_count()).map(|i| (i / 10) as u16).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federated_layout_matches_domain_helper() {
        let (disc, subnets) = federated(3, None);
        assert_eq!(disc.node_count(), 30);
        assert_eq!(subnets.len(), 3);
        assert!(!disc.is_connected());

        let (conn, _) = federated(3, Some(2e-3));
        assert!(conn.is_connected());
        let domains = federated_domains(&conn);
        // Every host shares its routers' domain.
        for (s, hosts) in subnets.iter().enumerate() {
            for &h in hosts {
                assert_eq!(domains[h.index()], s as u16);
            }
        }
    }

    #[test]
    fn conditioned_hierarchy_carries_its_assignment() {
        let (topo, members) = conditioned_hierarchy(3, 4, 5);
        assert_eq!(topo.node_count(), 4 * 6); // hub + 5 hosts per domain
        assert_eq!(members.len(), 4);
        let domains = topo.domains().expect("assignment travels on the graph");
        for (d, hosts) in members.iter().enumerate() {
            for &h in hosts {
                assert_eq!(domains[h.index()], d as u16);
            }
        }
        // Same seed, same conditions.
        let (again, _) = conditioned_hierarchy(3, 4, 5);
        for n in topo.compute_nodes() {
            assert_eq!(topo.node(n).load_avg(), again.node(n).load_avg());
        }
    }

    #[test]
    fn conditioned_tree_is_connected_and_seeded() {
        let (a, ids) = conditioned_tree(5, 40);
        assert_eq!(a.node_count(), 40);
        assert_eq!(ids.len(), 20);
        assert!(a.is_connected());
        let (b, _) = conditioned_tree(5, 40);
        // Same seed, same conditions.
        for n in a.compute_nodes() {
            assert_eq!(a.node(n).load_avg(), b.node(n).load_avg());
        }
    }
}
