//! Versioned, immutable annotated-topology snapshots.
//!
//! The paper's framework is a continuously running service: Remos status
//! changes, and node selection must be re-evaluated repeatedly against
//! it. Re-cloning the whole [`Topology`] per query makes every epoch pay
//! O(V + E) before any algorithm runs. A [`NetSnapshot`] separates the
//! *structure* (nodes, links, capacities, speeds, names — `Arc`-shared,
//! never copied per epoch) from the *dynamic annotations* (per-node load
//! averages and per-directed-link utilizations — flat `Arc<[f64]>`
//! arrays), stamped with an epoch counter. Successive epochs are derived
//! with [`NetSnapshot::apply`], which copies only the metric array(s) a
//! [`NetDelta`] actually touches.
//!
//! The [`NetMetrics`] trait abstracts "an annotated network" over both
//! representations: a plain `Topology` (whose annotations live on its
//! nodes and links) and a `NetSnapshot` (whose annotations live in the
//! flat arrays). Every derived quantity of §3.1 — `cpu = 1/(1+loadavg)`,
//! `bw`, `maxbw`, `bwfactor` — is a *provided* method with exactly one
//! definition, so algorithms generic over `NetMetrics` compute
//! bit-identical results on either representation by construction.

use crate::maxmin::dir_slot;
use crate::{Direction, EdgeId, NodeId, Topology};
use std::sync::Arc;

/// Confidence multiplier for a metric whose last `misses` measurement
/// samples were lost: `0.8^misses`, exactly `1.0` for fresh data.
///
/// Degraded Remos data decays geometrically toward zero so that a value
/// is never *silently* presented as fresh: consumers that scale by
/// confidence (the provided [`NetMetrics`] methods do) discount stale
/// readings more the older they get, and the multiplier for fresh data
/// is the bitwise identity, so a fully-fresh snapshot computes exactly
/// the pre-degradation numbers.
pub fn staleness_confidence(misses: u32) -> f64 {
    if misses == 0 {
        1.0
    } else {
        0.8f64.powi(misses.min(4096) as i32)
    }
}

/// Read access to an annotated network: graph structure plus the dynamic
/// per-node / per-directed-link measurements the selection algorithms
/// consume.
///
/// Implementations provide the two raw metrics ([`NetMetrics::load_avg`],
/// [`NetMetrics::used`]); every derived quantity is a provided method so
/// that all implementations agree bit-for-bit with the reference formulas
/// on [`crate::Node`] and [`crate::Link`].
pub trait NetMetrics {
    /// The graph structure the metrics annotate.
    fn structure(&self) -> &Topology;

    /// Load average attributed to a node.
    fn load_avg(&self, n: NodeId) -> f64;

    /// Consumed bandwidth of a link direction, bits/s.
    fn used(&self, e: EdgeId, dir: Direction) -> f64;

    /// Available CPU fraction `1/(1+loadavg)`; network nodes report 0.
    fn cpu(&self, n: NodeId) -> f64 {
        if self.structure().node(n).is_compute() {
            1.0 / (1.0 + self.load_avg(n))
        } else {
            0.0
        }
    }

    /// True when the node is believed reachable and running.
    /// Implementations without availability data report `true`.
    fn node_available(&self, _n: NodeId) -> bool {
        true
    }

    /// True when the link is believed up (not faulted or partitioned
    /// away). Implementations without availability data report `true`.
    fn link_available(&self, _e: EdgeId) -> bool {
        true
    }

    /// Consecutive measurement samples missed for this node's metrics;
    /// 0 means the annotations are fresh. Implementations without
    /// degradation tracking report 0.
    fn node_staleness(&self, _n: NodeId) -> u32 {
        0
    }

    /// Consecutive measurement samples missed for this link's metrics;
    /// 0 means the annotations are fresh.
    fn link_staleness(&self, _e: EdgeId) -> u32 {
        0
    }

    /// Confidence in this node's annotations:
    /// [`staleness_confidence`]`(node_staleness)`.
    fn node_confidence(&self, n: NodeId) -> f64 {
        staleness_confidence(self.node_staleness(n))
    }

    /// Confidence in this link's annotations:
    /// [`staleness_confidence`]`(link_staleness)`.
    fn link_confidence(&self, e: EdgeId) -> f64 {
        staleness_confidence(self.link_staleness(e))
    }

    /// Available computation normalized to the reference node type:
    /// `cpu * speed`, confidence-decayed when the load average is stale
    /// and 0 when the node is believed down. Fresh data on an available
    /// node computes bit-identical `cpu * speed` (the confidence
    /// multiplier is exactly 1.0).
    fn effective_cpu(&self, n: NodeId) -> f64 {
        if !self.node_available(n) {
            return 0.0;
        }
        self.cpu(n) * self.structure().node(n).speed() * self.node_confidence(n)
    }

    /// Peak bandwidth of a link direction, bits/s.
    fn capacity(&self, e: EdgeId, dir: Direction) -> f64 {
        self.structure().link(e).capacity(dir)
    }

    /// Available bandwidth of a link direction, bits/s (never negative):
    /// `capacity - used`, confidence-decayed when the utilization sample
    /// is stale and 0 when the link is believed down. Fresh data on an
    /// up link computes bit-identical `(capacity - used).max(0)`.
    fn available(&self, e: EdgeId, dir: Direction) -> f64 {
        if !self.link_available(e) {
            return 0.0;
        }
        (self.capacity(e, dir) - self.used(e, dir)).max(0.0) * self.link_confidence(e)
    }

    /// `bw(i, j)`: currently available bandwidth of the link — the
    /// minimum over its two directions.
    fn bw(&self, e: EdgeId) -> f64 {
        self.available(e, Direction::AtoB)
            .min(self.available(e, Direction::BtoA))
    }

    /// `maxbw(i, j)`: peak bandwidth of the link.
    fn maxbw(&self, e: EdgeId) -> f64 {
        self.capacity(e, Direction::AtoB)
            .min(self.capacity(e, Direction::BtoA))
    }

    /// `bwfactor = bw / maxbw`; 0 for administratively-down links.
    fn bwfactor(&self, e: EdgeId) -> f64 {
        let maxbw = self.maxbw(e);
        if maxbw == 0.0 {
            0.0
        } else {
            self.bw(e) / maxbw
        }
    }

    /// The lowest annotation confidence across the network's *available*
    /// entities: the min of [`NetMetrics::node_confidence`] over
    /// available compute nodes and [`NetMetrics::link_confidence`] over
    /// available links. Entities reported down are excluded — their
    /// metrics are already zeroed, and one crashed host should not mark
    /// the rest of the snapshot untrustworthy. `1.0` when everything
    /// reachable is fresh (the empty min is `1.0` too: a network with
    /// nothing available has nothing to distrust).
    ///
    /// This is the scalar a degraded-mode consumer wants: "how stale is
    /// the most-stale measurement I might be basing an answer on".
    fn min_confidence(&self) -> f64 {
        let topo = self.structure();
        let mut min = 1.0f64;
        for n in topo.compute_nodes() {
            if self.node_available(n) {
                min = min.min(self.node_confidence(n));
            }
        }
        for e in topo.edge_ids() {
            if self.link_available(e) {
                min = min.min(self.link_confidence(e));
            }
        }
        min
    }
}

impl NetMetrics for Topology {
    fn structure(&self) -> &Topology {
        self
    }

    fn load_avg(&self, n: NodeId) -> f64 {
        self.node(n).load_avg()
    }

    fn used(&self, e: EdgeId, dir: Direction) -> f64 {
        self.link(e).used(dir)
    }
}

/// A set of changed annotations between two epochs: the *new* values for
/// every node load and directed-link utilization that changed.
///
/// Entries are expected in ascending id / slot order (as produced by
/// [`NetSnapshot::diff`]); [`NetSnapshot::apply`] does not require it but
/// deterministic consumers (incremental selectors) do.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetDelta {
    /// Changed node load averages: `(node, new_load_avg)`.
    pub nodes: Vec<(NodeId, f64)>,
    /// Changed directed-link utilizations: `(edge, direction, new_used)`.
    pub links: Vec<(EdgeId, Direction, f64)>,
    /// Availability transitions for nodes: `(node, now_available)`.
    pub avail_nodes: Vec<(NodeId, bool)>,
    /// Availability transitions for links: `(edge, now_available)`.
    pub avail_links: Vec<(EdgeId, bool)>,
    /// Changed node staleness counters: `(node, missed_samples)`.
    pub stale_nodes: Vec<(NodeId, u32)>,
    /// Changed link staleness counters: `(edge, missed_samples)`.
    pub stale_links: Vec<(EdgeId, u32)>,
}

impl NetDelta {
    /// True when no annotation changed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty() && !self.has_health_changes()
    }

    /// True when any availability flag or staleness counter changed —
    /// the condition under which incremental selectors fall back to a
    /// full re-solve (eligibility may have changed, not just scores).
    pub fn has_health_changes(&self) -> bool {
        !self.avail_nodes.is_empty()
            || !self.avail_links.is_empty()
            || !self.stale_nodes.is_empty()
            || !self.stale_links.is_empty()
    }

    /// Number of changed node entries.
    pub fn node_changes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of changed directed-link entries.
    pub fn link_changes(&self) -> usize {
        self.links.len()
    }

    /// Total changed entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
            + self.links.len()
            + self.avail_nodes.len()
            + self.avail_links.len()
            + self.stale_nodes.len()
            + self.stale_links.len()
    }

    /// Removes all entries, keeping capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.links.clear();
        self.avail_nodes.clear();
        self.avail_links.clear();
        self.stale_nodes.clear();
        self.stale_links.clear();
    }
}

/// An immutable, `Arc`-shared annotated topology at one epoch.
///
/// Cloning a snapshot is two `Arc` bumps; deriving the next epoch with
/// [`NetSnapshot::apply`] copies only the touched metric array(s) and
/// never the structure. Snapshots are `Send + Sync`, so many concurrent
/// selection requests can share one snapshot stream.
#[derive(Debug, Clone)]
pub struct NetSnapshot {
    structure: Arc<Topology>,
    epoch: u64,
    /// Load average per node index (network-node entries are carried but
    /// never influence derived metrics).
    load: Arc<[f64]>,
    /// Consumed bandwidth per directed-link slot
    /// (`edge_index * 2 + direction`).
    used: Arc<[f64]>,
    /// Believed-up flag per node index.
    node_avail: Arc<[bool]>,
    /// Believed-up flag per edge index.
    link_avail: Arc<[bool]>,
    /// Consecutive missed samples per node index (0 = fresh).
    node_stale: Arc<[u32]>,
    /// Consecutive missed samples per edge index (0 = fresh).
    link_stale: Arc<[u32]>,
}

impl NetSnapshot {
    /// Captures the annotations currently stored on `structure` as epoch 0.
    pub fn capture(structure: Arc<Topology>) -> NetSnapshot {
        let load: Vec<f64> = (0..structure.node_count())
            .map(|i| structure.node(NodeId::from_index(i)).load_avg())
            .collect();
        let mut used = Vec::with_capacity(structure.link_count() * 2);
        for e in structure.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                used.push(structure.link(e).used(dir));
            }
        }
        let (nodes, links) = (structure.node_count(), structure.link_count());
        NetSnapshot {
            structure,
            epoch: 0,
            load: load.into(),
            used: used.into(),
            node_avail: vec![true; nodes].into(),
            link_avail: vec![true; links].into(),
            node_stale: vec![0; nodes].into(),
            link_stale: vec![0; links].into(),
        }
    }

    /// Builds an epoch-0 snapshot from explicit metric arrays, with every
    /// node and link available and every sample fresh.
    ///
    /// `load` holds one entry per node index; `used` one entry per
    /// directed-link slot (`edge_index * 2 + direction`).
    pub fn from_parts(structure: Arc<Topology>, load: Vec<f64>, used: Vec<f64>) -> NetSnapshot {
        assert_eq!(load.len(), structure.node_count(), "load array length");
        assert_eq!(
            used.len(),
            structure.link_count() * 2,
            "used array length (one entry per directed slot)"
        );
        let (nodes, links) = (structure.node_count(), structure.link_count());
        NetSnapshot {
            structure,
            epoch: 0,
            load: load.into(),
            used: used.into(),
            node_avail: vec![true; nodes].into(),
            link_avail: vec![true; links].into(),
            node_stale: vec![0; nodes].into(),
            link_stale: vec![0; links].into(),
        }
    }

    /// The epoch counter: 0 at capture, +1 per [`NetSnapshot::apply`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared structure.
    pub fn structure_arc(&self) -> &Arc<Topology> {
        &self.structure
    }

    /// True when both snapshots share the *same* structure allocation —
    /// the cheap test incremental consumers use to rule out structural
    /// change.
    pub fn same_structure(&self, other: &NetSnapshot) -> bool {
        Arc::ptr_eq(&self.structure, &other.structure)
    }

    /// The raw load-average array (per node index).
    pub fn load_values(&self) -> &[f64] {
        &self.load
    }

    /// The raw utilization array (per directed-link slot).
    pub fn used_values(&self) -> &[f64] {
        &self.used
    }

    /// The raw node-availability array (per node index).
    pub fn node_avail_values(&self) -> &[bool] {
        &self.node_avail
    }

    /// The raw link-availability array (per edge index).
    pub fn link_avail_values(&self) -> &[bool] {
        &self.link_avail
    }

    /// The raw node-staleness array (per node index).
    pub fn node_stale_values(&self) -> &[u32] {
        &self.node_stale
    }

    /// The raw link-staleness array (per edge index).
    pub fn link_stale_values(&self) -> &[u32] {
        &self.link_stale
    }

    /// Derives the next epoch by applying a delta.
    ///
    /// Structural sharing: the structure `Arc` is always shared, and a
    /// metric array is copied only when the delta touches it (an empty
    /// delta shares both arrays and still advances the epoch).
    pub fn apply(&self, delta: &NetDelta) -> NetSnapshot {
        let load = if delta.nodes.is_empty() {
            Arc::clone(&self.load)
        } else {
            let mut v = self.load.to_vec();
            for &(n, l) in &delta.nodes {
                v[n.index()] = l;
            }
            v.into()
        };
        let used = if delta.links.is_empty() {
            Arc::clone(&self.used)
        } else {
            let mut v = self.used.to_vec();
            for &(e, dir, u) in &delta.links {
                v[dir_slot(e, dir)] = u;
            }
            v.into()
        };
        let node_avail = if delta.avail_nodes.is_empty() {
            Arc::clone(&self.node_avail)
        } else {
            let mut v = self.node_avail.to_vec();
            for &(n, up) in &delta.avail_nodes {
                v[n.index()] = up;
            }
            v.into()
        };
        let link_avail = if delta.avail_links.is_empty() {
            Arc::clone(&self.link_avail)
        } else {
            let mut v = self.link_avail.to_vec();
            for &(e, up) in &delta.avail_links {
                v[e.index()] = up;
            }
            v.into()
        };
        let node_stale = if delta.stale_nodes.is_empty() {
            Arc::clone(&self.node_stale)
        } else {
            let mut v = self.node_stale.to_vec();
            for &(n, s) in &delta.stale_nodes {
                v[n.index()] = s;
            }
            v.into()
        };
        let link_stale = if delta.stale_links.is_empty() {
            Arc::clone(&self.link_stale)
        } else {
            let mut v = self.link_stale.to_vec();
            for &(e, s) in &delta.stale_links {
                v[e.index()] = s;
            }
            v.into()
        };
        NetSnapshot {
            structure: Arc::clone(&self.structure),
            epoch: self.epoch + 1,
            load,
            used,
            node_avail,
            link_avail,
            node_stale,
            link_stale,
        }
    }

    /// The delta that would turn `baseline`'s annotations into this
    /// snapshot's, in ascending id / slot order. Entries are emitted for
    /// every bitwise-unequal value.
    ///
    /// Both snapshots must annotate the same structure.
    pub fn diff(&self, baseline: &NetSnapshot) -> NetDelta {
        assert!(
            self.same_structure(baseline),
            "diff requires snapshots of the same structure"
        );
        let mut delta = NetDelta::default();
        for (i, (&new, &old)) in self.load.iter().zip(baseline.load.iter()).enumerate() {
            if new.to_bits() != old.to_bits() {
                delta.nodes.push((NodeId::from_index(i), new));
            }
        }
        for e in self.structure.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                let slot = dir_slot(e, dir);
                if self.used[slot].to_bits() != baseline.used[slot].to_bits() {
                    delta.links.push((e, dir, self.used[slot]));
                }
            }
        }
        for i in 0..self.node_avail.len() {
            if self.node_avail[i] != baseline.node_avail[i] {
                delta
                    .avail_nodes
                    .push((NodeId::from_index(i), self.node_avail[i]));
            }
            if self.node_stale[i] != baseline.node_stale[i] {
                delta
                    .stale_nodes
                    .push((NodeId::from_index(i), self.node_stale[i]));
            }
        }
        for e in self.structure.edge_ids() {
            if self.link_avail[e.index()] != baseline.link_avail[e.index()] {
                delta.avail_links.push((e, self.link_avail[e.index()]));
            }
            if self.link_stale[e.index()] != baseline.link_stale[e.index()] {
                delta.stale_links.push((e, self.link_stale[e.index()]));
            }
        }
        delta
    }

    /// Materializes an owned, annotated [`Topology`] — the representation
    /// the deprecated per-query path returns. Byte-identical to cloning
    /// the structure and setting each measured annotation on it.
    /// Availability flags and staleness counters are snapshot-only
    /// (a `Topology` has no storage for them) and are dropped.
    pub fn to_topology(&self) -> Topology {
        let mut topo = (*self.structure).clone();
        for id in self.structure.compute_nodes() {
            topo.set_load_avg(id, self.load[id.index()]);
        }
        for e in self.structure.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                topo.set_link_used(e, dir, self.used[dir_slot(e, dir)]);
            }
        }
        topo
    }
}

impl NetMetrics for NetSnapshot {
    fn structure(&self) -> &Topology {
        &self.structure
    }

    fn load_avg(&self, n: NodeId) -> f64 {
        self.load[n.index()]
    }

    fn used(&self, e: EdgeId, dir: Direction) -> f64 {
        self.used[dir_slot(e, dir)]
    }

    fn node_available(&self, n: NodeId) -> bool {
        self.node_avail[n.index()]
    }

    fn link_available(&self, e: EdgeId) -> bool {
        self.link_avail[e.index()]
    }

    fn node_staleness(&self, n: NodeId) -> u32 {
        self.node_stale[n.index()]
    }

    fn link_staleness(&self, e: EdgeId) -> u32 {
        self.link_stale[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::star;
    use crate::units::MBPS;

    fn loaded_star() -> (Arc<Topology>, Vec<NodeId>) {
        let (mut topo, ids) = star(3, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 1.0);
        let e = topo.edge_ids().next().unwrap();
        topo.set_link_used(e, Direction::AtoB, 40.0 * MBPS);
        (Arc::new(topo), ids)
    }

    #[test]
    fn capture_matches_topology_metrics() {
        let (topo, ids) = loaded_star();
        let snap = NetSnapshot::capture(Arc::clone(&topo));
        assert_eq!(snap.epoch(), 0);
        for i in 0..topo.node_count() {
            let n = NodeId::from_index(i);
            assert_eq!(snap.cpu(n).to_bits(), topo.node(n).cpu().to_bits());
            assert_eq!(
                snap.effective_cpu(n).to_bits(),
                topo.node(n).effective_cpu().to_bits()
            );
        }
        for e in topo.edge_ids() {
            assert_eq!(snap.bw(e).to_bits(), topo.link(e).bw().to_bits());
            assert_eq!(snap.maxbw(e).to_bits(), topo.link(e).maxbw().to_bits());
            assert_eq!(
                snap.bwfactor(e).to_bits(),
                topo.link(e).bwfactor().to_bits()
            );
        }
        let _ = ids;
    }

    #[test]
    fn apply_shares_untouched_arrays() {
        let (topo, ids) = loaded_star();
        let snap = NetSnapshot::capture(topo);
        let next = snap.apply(&NetDelta {
            nodes: vec![(ids[1], 2.0)],
            ..NetDelta::default()
        });
        assert_eq!(next.epoch(), 1);
        assert!(snap.same_structure(&next));
        // The untouched array is shared, the touched one is not.
        assert!(Arc::ptr_eq(&snap.used, &next.used));
        assert!(!Arc::ptr_eq(&snap.load, &next.load));
        assert_eq!(next.load_avg(ids[1]), 2.0);
        assert_eq!(next.load_avg(ids[0]), 1.0);
    }

    #[test]
    fn diff_then_apply_round_trips() {
        let (topo, ids) = loaded_star();
        let a = NetSnapshot::capture(Arc::clone(&topo));
        let e = topo.edge_ids().nth(1).unwrap();
        let b = a.apply(&NetDelta {
            nodes: vec![(ids[2], 0.5)],
            links: vec![(e, Direction::BtoA, 7.0 * MBPS)],
            ..NetDelta::default()
        });
        let d = b.diff(&a);
        assert_eq!(d.node_changes(), 1);
        assert_eq!(d.link_changes(), 1);
        assert_eq!(d.len(), 2);
        let b2 = a.apply(&d);
        assert_eq!(b.load_values(), b2.load_values());
        assert_eq!(b.used_values(), b2.used_values());
        assert!(b.diff(&b2).is_empty());
    }

    #[test]
    fn to_topology_matches_clone_and_set() {
        let (topo, ids) = loaded_star();
        let snap = NetSnapshot::capture(Arc::clone(&topo)).apply(&NetDelta {
            nodes: vec![(ids[0], 3.0)],
            ..NetDelta::default()
        });
        let t = snap.to_topology();
        assert_eq!(t.node(ids[0]).load_avg(), 3.0);
        for e in topo.edge_ids() {
            assert_eq!(
                t.link(e).used(Direction::AtoB).to_bits(),
                snap.used(e, Direction::AtoB).to_bits()
            );
        }
        // The materialized topology reports the same derived metrics.
        for i in 0..t.node_count() {
            let n = NodeId::from_index(i);
            assert_eq!(t.node(n).cpu().to_bits(), snap.cpu(n).to_bits());
        }
    }

    #[test]
    fn fresh_snapshots_are_available_and_confident() {
        let (topo, ids) = loaded_star();
        let snap = NetSnapshot::capture(Arc::clone(&topo));
        for i in 0..topo.node_count() {
            let n = NodeId::from_index(i);
            assert!(snap.node_available(n));
            assert_eq!(snap.node_staleness(n), 0);
            assert_eq!(snap.node_confidence(n).to_bits(), 1.0f64.to_bits());
        }
        for e in topo.edge_ids() {
            assert!(snap.link_available(e));
            assert_eq!(snap.link_confidence(e).to_bits(), 1.0f64.to_bits());
        }
        // Fresh + available == bit-identical to the pre-health formulas.
        assert_eq!(
            snap.effective_cpu(ids[0]).to_bits(),
            topo.node(ids[0]).effective_cpu().to_bits()
        );
    }

    #[test]
    fn health_delta_applies_and_diffs_round_trip() {
        let (topo, ids) = loaded_star();
        let a = NetSnapshot::capture(Arc::clone(&topo));
        let e = topo.edge_ids().next().unwrap();
        let b = a.apply(&NetDelta {
            avail_nodes: vec![(ids[1], false)],
            avail_links: vec![(e, false)],
            stale_nodes: vec![(ids[2], 3)],
            stale_links: vec![(e, 2)],
            ..NetDelta::default()
        });
        // Metric arrays untouched: still shared.
        assert!(Arc::ptr_eq(&a.load, &b.load));
        assert!(Arc::ptr_eq(&a.used, &b.used));
        assert!(!b.node_available(ids[1]));
        assert!(!b.link_available(e));
        assert_eq!(b.node_staleness(ids[2]), 3);
        assert_eq!(b.link_staleness(e), 2);
        let d = b.diff(&a);
        assert!(d.has_health_changes());
        assert_eq!(d.len(), 4);
        let b2 = a.apply(&d);
        assert!(b.diff(&b2).is_empty());
    }

    #[test]
    fn degraded_health_decays_derived_metrics() {
        let (topo, ids) = loaded_star();
        let snap = NetSnapshot::capture(Arc::clone(&topo));
        let e = topo.edge_ids().next().unwrap();
        // A down node contributes zero compute; a down link zero bandwidth.
        let dead = snap.apply(&NetDelta {
            avail_nodes: vec![(ids[0], false)],
            avail_links: vec![(e, false)],
            ..NetDelta::default()
        });
        assert_eq!(dead.effective_cpu(ids[0]), 0.0);
        assert_eq!(dead.bw(e), 0.0);
        assert_eq!(dead.bwfactor(e), 0.0);
        // Staleness decays confidence monotonically, never below zero.
        let mut last_cpu = snap.effective_cpu(ids[0]);
        let mut last_bw = snap.bw(e);
        for misses in 1..6u32 {
            let s = snap.apply(&NetDelta {
                stale_nodes: vec![(ids[0], misses)],
                stale_links: vec![(e, misses)],
                ..NetDelta::default()
            });
            let cpu = s.effective_cpu(ids[0]);
            let bw = s.bw(e);
            assert!(cpu < last_cpu && cpu >= 0.0);
            assert!(bw < last_bw && bw >= 0.0);
            last_cpu = cpu;
            last_bw = bw;
        }
    }

    #[test]
    fn min_confidence_tracks_staleness_and_skips_down_entities() {
        let (topo, ids) = loaded_star();
        let snap = NetSnapshot::capture(Arc::clone(&topo));
        assert_eq!(snap.min_confidence().to_bits(), 1.0f64.to_bits());
        // One stale node drags the whole-snapshot confidence down to its
        // own confidence.
        let stale = snap.apply(&NetDelta {
            stale_nodes: vec![(ids[0], 3)],
            ..NetDelta::default()
        });
        assert_eq!(
            stale.min_confidence().to_bits(),
            staleness_confidence(3).to_bits()
        );
        // Marking the stale node down removes it from the min: the rest
        // of the network is fresh again.
        let down = stale.apply(&NetDelta {
            avail_nodes: vec![(ids[0], false)],
            ..NetDelta::default()
        });
        assert_eq!(down.min_confidence().to_bits(), 1.0f64.to_bits());
        // A stale link counts exactly like a stale node.
        let e = topo.edge_ids().next().unwrap();
        let stale_link = snap.apply(&NetDelta {
            stale_links: vec![(e, 2)],
            ..NetDelta::default()
        });
        assert_eq!(
            stale_link.min_confidence().to_bits(),
            staleness_confidence(2).to_bits()
        );
    }

    #[test]
    fn staleness_confidence_is_identity_when_fresh() {
        assert_eq!(staleness_confidence(0).to_bits(), 1.0f64.to_bits());
        assert!(staleness_confidence(1) < 1.0);
        assert!(staleness_confidence(100_000) >= 0.0);
        for m in 0..20 {
            assert!(staleness_confidence(m + 1) < staleness_confidence(m));
        }
    }
}
