//! Inferring a logical topology from end-to-end measurements (network
//! tomography).
//!
//! The paper argues that "the logical topology graph contains structural
//! network information that cannot be captured by measurements between
//! pairs of compute nodes, and this research exploits this extra
//! information to develop faster and more accurate node selection
//! procedures" (§2.2), and that systems relying on pairwise data (AppLeS
//! / NWS) solve a qualitatively different problem (§5).
//!
//! This module makes that comparison executable. It implements the best
//! reconstruction pairwise data permits: on a tree, the matrix of
//! bottleneck available bandwidths is a **max-min ultrametric**
//! (`bw(a,c) ≥ min(bw(a,b), bw(b,c))`), and single-linkage agglomeration
//! over descending bandwidth rebuilds a dendrogram that reproduces every
//! pairwise bottleneck exactly. What it *cannot* rebuild:
//!
//! * link **peak** capacities (`maxbw`) — only availability is
//!   measurable end-to-end, so fractional-bandwidth objectives need an
//!   assumed reference;
//! * probe cost — `O(n²)` active pair measurements versus the collector's
//!   `O(links)` passive counters;
//! * robustness — each pair is measured independently, so noise breaks
//!   the ultrametric consistency that SNMP per-link data preserves by
//!   construction (quantified by the tomography experiment).

use nodesel_topology::{NodeId, Topology, TopologyError};

/// One end-to-end measurement between two hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairMeasurement {
    /// First host (index into the host list given to [`infer_topology`]).
    pub a: usize,
    /// Second host.
    pub b: usize,
    /// Measured available bandwidth between them, bits/s.
    pub available_bw: f64,
}

/// A host as seen end-to-end: its name and measured load average.
#[derive(Debug, Clone)]
pub struct HostObservation {
    /// Unique host name.
    pub name: String,
    /// Measured load average.
    pub load_avg: f64,
}

/// Disjoint-set forest over cluster indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            false
        } else {
            self.parent[ra] = rb;
            true
        }
    }
}

/// Reconstructs a logical topology from pairwise available-bandwidth
/// measurements by single-linkage agglomeration.
///
/// Pairs are processed in descending bandwidth order; when a pair spans
/// two clusters, a synthetic switch joins them and the *cluster-joining
/// links* get the pair's bandwidth as capacity. Host access links get the
/// host's best observed bandwidth. On consistent (ultrametric) inputs the
/// result reproduces every pairwise bottleneck exactly; inconsistent
/// inputs (noise) are absorbed by the single-linkage order, silently
/// coarsening the structure.
///
/// The inferred capacities represent *available* bandwidth — utilization
/// is indistinguishable from a smaller pipe end-to-end — so the returned
/// links carry zero `used` and callers optimizing fractional bandwidth
/// must supply a reference bandwidth.
///
/// ```
/// use nodesel_remos::inference::{infer_topology, HostObservation, PairMeasurement};
/// let hosts: Vec<_> = (0..3).map(|i| HostObservation {
///     name: format!("h{i}"), load_avg: 0.0,
/// }).collect();
/// // h0-h1 fast, both far from h2.
/// let pairs = [
///     PairMeasurement { a: 0, b: 1, available_bw: 90e6 },
///     PairMeasurement { a: 0, b: 2, available_bw: 10e6 },
///     PairMeasurement { a: 1, b: 2, available_bw: 10e6 },
/// ];
/// let topo = infer_topology(&hosts, &pairs).unwrap();
/// let r = topo.routes();
/// let id = |n: &str| topo.node_by_name(n).unwrap();
/// assert_eq!(r.bottleneck_bw(id("h0"), id("h1")).unwrap(), 90e6);
/// assert_eq!(r.bottleneck_bw(id("h0"), id("h2")).unwrap(), 10e6);
/// ```
pub fn infer_topology(
    hosts: &[HostObservation],
    pairs: &[PairMeasurement],
) -> Result<Topology, TopologyError> {
    let n = hosts.len();
    let mut topo = Topology::new();
    let host_ids: Vec<NodeId> = hosts
        .iter()
        .map(|h| {
            let id = topo.try_add_node(h.name.clone(), nodesel_topology::NodeKind::Compute, 1.0)?;
            Ok::<NodeId, TopologyError>(id)
        })
        .collect::<Result<_, _>>()?;
    for (h, &id) in hosts.iter().zip(&host_ids) {
        topo.set_load_avg(id, h.load_avg.max(0.0));
    }
    if n <= 1 {
        return Ok(topo);
    }

    // Access-link capacity: the best bandwidth each host ever achieves.
    let mut best = vec![0.0f64; n];
    for p in pairs {
        assert!(p.a < n && p.b < n && p.a != p.b, "invalid pair");
        best[p.a] = best[p.a].max(p.available_bw);
        best[p.b] = best[p.b].max(p.available_bw);
    }

    // Every host hangs off its own access switch; clusters then merge
    // switch-to-switch.
    let mut cluster_top: Vec<NodeId> = (0..n)
        .map(|i| {
            let sw = topo.add_network_node(format!("sw-{}", hosts[i].name));
            topo.add_link(sw, host_ids[i], best[i].max(1.0));
            sw
        })
        .collect();

    let mut order: Vec<&PairMeasurement> = pairs.iter().collect();
    order.sort_by(|x, y| {
        y.available_bw
            .total_cmp(&x.available_bw)
            .then(x.a.cmp(&y.a))
            .then(x.b.cmp(&y.b))
    });
    let mut uf = UnionFind::new(n);
    let mut merges = 0usize;
    for p in order {
        let (ra, rb) = (uf.find(p.a), uf.find(p.b));
        if ra == rb {
            continue;
        }
        let joint = topo.add_network_node(format!("inf-{merges}"));
        let cap = p.available_bw.max(1.0);
        topo.add_link(joint, cluster_top[ra], cap);
        topo.add_link(joint, cluster_top[rb], cap);
        uf.union(ra, rb);
        let root = uf.find(p.a);
        cluster_top[root] = joint;
        merges += 1;
        if merges == n - 1 {
            break;
        }
    }
    Ok(topo)
}

/// Gathers the full pairwise measurement matrix from a Remos handle's
/// flow queries — the probing an end-to-end-only system would have to do
/// (`O(n²)` active measurements).
pub fn measure_all_pairs(
    remos: &crate::Remos,
    sim: &nodesel_simnet::Sim,
    hosts: &[NodeId],
    estimator: crate::Estimator,
) -> Result<(Vec<HostObservation>, Vec<PairMeasurement>), TopologyError> {
    let host_infos = remos.host_query(sim, hosts, estimator)?;
    // Only structural data (names) is needed here; the snapshot shares it.
    let structure = std::sync::Arc::clone(remos.snapshot(sim).structure_arc());
    let observations = host_infos
        .iter()
        .map(|h| HostObservation {
            name: structure.node(h.node).name().to_string(),
            load_avg: h.load_avg,
        })
        .collect();
    let mut queries = Vec::new();
    for i in 0..hosts.len() {
        for j in i + 1..hosts.len() {
            queries.push((hosts[i], hosts[j]));
        }
    }
    let infos = remos.flow_query(sim, &queries, estimator)?;
    let pairs = infos
        .iter()
        .enumerate()
        .map(|(k, info)| {
            let (i, j) = index_pair(k, hosts.len());
            PairMeasurement {
                a: i,
                b: j,
                // The symmetric quantity the pair would measure.
                available_bw: info.available_bw,
            }
        })
        .collect();
    Ok((observations, pairs))
}

/// Inverse of the row-major upper-triangle enumeration used above.
fn index_pair(k: usize, n: usize) -> (usize, usize) {
    let mut idx = k;
    for i in 0..n {
        let row = n - i - 1;
        if idx < row {
            return (i, i + 1 + idx);
        }
        idx -= row;
    }
    unreachable!("pair index out of range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::{dumbbell, random_tree, randomize_conditions};
    use nodesel_topology::units::MBPS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Measures all pairs directly from a ground-truth topology.
    fn pairs_from(
        topo: &Topology,
        hosts: &[NodeId],
    ) -> (Vec<HostObservation>, Vec<PairMeasurement>) {
        let routes = topo.routes();
        let obs = hosts
            .iter()
            .map(|&h| HostObservation {
                name: topo.node(h).name().to_string(),
                load_avg: topo.node(h).load_avg(),
            })
            .collect();
        let mut pairs = Vec::new();
        for i in 0..hosts.len() {
            for j in i + 1..hosts.len() {
                pairs.push(PairMeasurement {
                    a: i,
                    b: j,
                    available_bw: routes.bottleneck_bw(hosts[i], hosts[j]).unwrap(),
                });
            }
        }
        (obs, pairs)
    }

    #[test]
    fn reconstruction_reproduces_pairwise_bottlenecks() {
        // The ultrametric theorem, checked on seeded random trees with
        // random conditions: inferred pairwise bottlenecks == measured.
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut topo, hosts) = random_tree(&mut rng, 6, 3, 100.0 * MBPS);
            randomize_conditions(&mut topo, &mut rng, 2.0, 0.9);
            let (obs, pairs) = pairs_from(&topo, &hosts);
            let inferred = infer_topology(&obs, &pairs).unwrap();
            let iroutes = inferred.routes();
            let ids: Vec<NodeId> = (0..hosts.len())
                .map(|i| inferred.node_by_name(topo.node(hosts[i]).name()).unwrap())
                .collect();
            for p in &pairs {
                let got = iroutes.bottleneck_bw(ids[p.a], ids[p.b]).unwrap();
                assert!(
                    (got - p.available_bw).abs() <= 1e-6 * p.available_bw.max(1.0),
                    "seed {seed}: pair ({},{}) measured {}, inferred {got}",
                    p.a,
                    p.b,
                    p.available_bw
                );
            }
        }
    }

    #[test]
    fn loads_carry_over() {
        let (mut topo, hosts) = dumbbell(2, 100.0 * MBPS, 10.0 * MBPS);
        topo.set_load_avg(hosts[0], 2.5);
        let (obs, pairs) = pairs_from(&topo, &hosts);
        let inferred = infer_topology(&obs, &pairs).unwrap();
        let h0 = inferred.node_by_name("l0").unwrap();
        assert_eq!(inferred.node(h0).load_avg(), 2.5);
        assert_eq!(inferred.compute_node_count(), 4);
        assert!(inferred.is_connected());
        assert!(inferred.is_acyclic());
    }

    #[test]
    fn dumbbell_structure_is_recovered() {
        let (topo, hosts) = dumbbell(3, 100.0 * MBPS, 10.0 * MBPS);
        let (obs, pairs) = pairs_from(&topo, &hosts);
        let inferred = infer_topology(&obs, &pairs).unwrap();
        let r = inferred.routes();
        let id = |i: usize| inferred.node_by_name(topo.node(hosts[i]).name()).unwrap();
        // Same-side pairs keep 100 Mbps; cross-side pairs see the 10 Mbps
        // bottleneck — including the *shared* internal node, so joint
        // congestion of cross flows is structurally visible.
        assert_eq!(r.bottleneck_bw(id(0), id(1)).unwrap(), 100.0 * MBPS);
        assert_eq!(r.bottleneck_bw(id(0), id(3)).unwrap(), 10.0 * MBPS);
        assert_eq!(r.bottleneck_bw(id(4), id(1)).unwrap(), 10.0 * MBPS);
    }

    #[test]
    fn singleton_and_empty_inputs() {
        let inferred = infer_topology(&[], &[]).unwrap();
        assert_eq!(inferred.node_count(), 0);
        let one = infer_topology(
            &[HostObservation {
                name: "only".into(),
                load_avg: 1.0,
            }],
            &[],
        )
        .unwrap();
        assert_eq!(one.compute_node_count(), 1);
    }

    #[test]
    fn inconsistent_measurements_still_yield_a_valid_tree() {
        // Deliberately non-ultrametric (noisy) inputs.
        let obs: Vec<HostObservation> = (0..4)
            .map(|i| HostObservation {
                name: format!("h{i}"),
                load_avg: 0.0,
            })
            .collect();
        let pairs = vec![
            PairMeasurement {
                a: 0,
                b: 1,
                available_bw: 90e6,
            },
            PairMeasurement {
                a: 0,
                b: 2,
                available_bw: 30e6,
            },
            PairMeasurement {
                a: 1,
                b: 2,
                available_bw: 70e6,
            }, // violates ultrametric
            PairMeasurement {
                a: 0,
                b: 3,
                available_bw: 20e6,
            },
            PairMeasurement {
                a: 1,
                b: 3,
                available_bw: 25e6,
            },
            PairMeasurement {
                a: 2,
                b: 3,
                available_bw: 15e6,
            },
        ];
        let inferred = infer_topology(&obs, &pairs).unwrap();
        assert!(inferred.is_connected());
        assert!(inferred.is_acyclic());
        assert_eq!(inferred.compute_node_count(), 4);
    }

    #[test]
    fn index_pair_round_trips() {
        let n = 7;
        let mut k = 0;
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(index_pair(k, n), (i, j));
                k += 1;
            }
        }
    }
}
