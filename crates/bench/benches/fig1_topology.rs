//! Regenerates **Figure 1** (a Remos logical-topology graph of a simple
//! network) and benchmarks the Remos query path: topology snapshots and
//! flow queries against live measurement state.

use criterion::{criterion_group, criterion_main, Criterion};
use nodesel_remos::{CollectorConfig, Estimator, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::dot::to_dot;
use nodesel_topology::testbeds::figure1;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    // Regenerate the figure once: an annotated topology under live traffic.
    let f = figure1();
    let hosts = f.hosts.clone();
    let mut sim = Sim::new(f.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    sim.start_transfer(hosts[0], hosts[2], 1e15, |_| {});
    sim.start_compute(hosts[3], 1e9, |_| {});
    sim.run_for(120.0);
    let snapshot = remos.snapshot(&sim).to_topology();
    eprintln!("\n=== Figure 1: Remos logical topology ===");
    eprintln!("{}", to_dot(&snapshot, &[]));

    let mut group = c.benchmark_group("fig1");
    group.bench_function("snapshot", |b| b.iter(|| black_box(remos.snapshot(&sim))));
    group.bench_function("snapshot_to_topology", |b| {
        b.iter(|| black_box(remos.snapshot(&sim).to_topology()))
    });
    group.bench_function("flow_query_all_pairs", |b| {
        let pairs: Vec<_> = hosts
            .iter()
            .flat_map(|&a| hosts.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a != b)
            .collect();
        b.iter(|| black_box(remos.flow_query(&sim, &pairs, Estimator::Latest).unwrap()))
    });
    group.bench_function("host_query", |b| {
        b.iter(|| {
            black_box(
                remos
                    .host_query(&sim, &hosts, Estimator::WindowMean)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
