//! Choosing the number of nodes *and* the nodes (§3.4, "Variable number
//! of execution nodes").
//!
//! "For many parallel applications, the exact number of nodes for
//! execution can be decided at the time of invocation. The decision
//! procedures developed in this research can be applied to the problem of
//! finding the number and the set of nodes for execution, but ... have to
//! be coupled with methods for performance estimation."
//!
//! This module is that coupling: the caller supplies a
//! [`PerformanceModel`] — runtime as a function of the node count and the
//! [`Quality`] the selection achieved — and [`select_node_count`] runs the
//! balanced selection for every candidate count and returns the
//! configuration with the lowest predicted runtime. More nodes mean less
//! work per node but also a larger, usually worse-connected and
//! worse-loaded set; the model arbitrates that trade-off.

use crate::quality::Quality;
use crate::request::{Constraints, GreedyPolicy};
use crate::weights::Weights;
use crate::{balanced, SelectError, Selection};
use nodesel_topology::Topology;
use std::ops::RangeInclusive;

/// Predicts an application's runtime for a candidate configuration.
pub trait PerformanceModel {
    /// Estimated runtime (seconds) on `m` nodes whose selection achieved
    /// `quality`.
    fn estimate_runtime(&self, m: usize, quality: &Quality) -> f64;
}

impl<F: Fn(usize, &Quality) -> f64> PerformanceModel for F {
    fn estimate_runtime(&self, m: usize, quality: &Quality) -> f64 {
        self(m, quality)
    }
}

/// A simple analytic model for barrier-style programs: per-iteration
/// compute of `work / (m · min_cpu)` plus communication of
/// `comm_bits(m) / min_bw`, with a serial fraction. Adequate for the
/// loosely-synchronous workloads this repository models.
#[derive(Debug, Clone, Copy)]
pub struct LooselySynchronousModel {
    /// Total parallelizable compute, reference-CPU-seconds.
    pub work: f64,
    /// Serial compute that does not scale, reference-CPU-seconds.
    pub serial: f64,
    /// Total bits each node must push through its bottleneck path per run
    /// when `m` nodes participate, as a function of `m`.
    pub bits_per_node: fn(usize) -> f64,
}

impl PerformanceModel for LooselySynchronousModel {
    fn estimate_runtime(&self, m: usize, quality: &Quality) -> f64 {
        let cpu = quality.min_cpu.max(1e-9);
        let compute = self.serial + self.work / (m as f64 * cpu);
        let comm = if m > 1 {
            (self.bits_per_node)(m) / quality.min_bw.max(1.0)
        } else {
            0.0
        };
        compute + comm
    }
}

/// Result of a sized selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SizedSelection {
    /// Chosen node count.
    pub count: usize,
    /// The selection at that count.
    pub selection: Selection,
    /// Predicted runtime at that count.
    pub predicted_runtime: f64,
    /// Predicted runtime for every candidate count `(m, seconds)` that was
    /// feasible, in ascending `m` (for reporting).
    pub sweep: Vec<(usize, f64)>,
}

/// Tries every count in `range`, running the balanced selection and the
/// performance model, and returns the best feasible configuration.
///
/// Counts for which selection is infeasible are skipped; if none is
/// feasible the strictest error encountered is returned.
///
/// ```
/// use nodesel_core::{sizing::select_node_count, Constraints, Quality, Weights};
/// use nodesel_topology::builders::star;
/// use nodesel_topology::units::MBPS;
///
/// let (topo, _) = star(6, 100.0 * MBPS);
/// // Pure compute scaling: more nodes is always better here.
/// let model = |m: usize, q: &Quality| 600.0 / (m as f64 * q.min_cpu);
/// let sized = select_node_count(&topo, 1..=6, &model,
///                               &Constraints::none(), Weights::EQUAL).unwrap();
/// assert_eq!(sized.count, 6);
/// ```
pub fn select_node_count<M: PerformanceModel>(
    topo: &Topology,
    range: RangeInclusive<usize>,
    model: &M,
    constraints: &Constraints,
    weights: Weights,
) -> Result<SizedSelection, SelectError> {
    let mut best: Option<SizedSelection> = None;
    let mut sweep = Vec::new();
    let mut last_err = SelectError::ZeroCount;
    for m in range {
        if m == 0 {
            continue;
        }
        match balanced(topo, m, weights, constraints, None, GreedyPolicy::Sweep) {
            Ok(selection) => {
                let predicted = model.estimate_runtime(m, &selection.quality);
                sweep.push((m, predicted));
                let better = best
                    .as_ref()
                    .is_none_or(|b| predicted < b.predicted_runtime);
                if better {
                    best = Some(SizedSelection {
                        count: m,
                        selection,
                        predicted_runtime: predicted,
                        sweep: Vec::new(),
                    });
                }
            }
            Err(e) => last_err = e,
        }
    }
    match best {
        Some(mut s) => {
            s.sweep = sweep;
            Ok(s)
        }
        None => Err(last_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    fn model(work: f64, comm_total: f64) -> LooselySynchronousModel {
        // bits_per_node independent of m for simplicity in tests.
        let _ = comm_total;
        LooselySynchronousModel {
            work,
            serial: 0.0,
            bits_per_node: |_m| 400.0 * MBPS,
        }
    }

    #[test]
    fn pure_compute_wants_all_idle_nodes() {
        let (topo, ids) = star(6, 100.0 * MBPS);
        let m = LooselySynchronousModel {
            work: 600.0,
            serial: 0.0,
            bits_per_node: |_| 0.0,
        };
        let sized =
            select_node_count(&topo, 1..=6, &m, &Constraints::none(), Weights::EQUAL).unwrap();
        assert_eq!(sized.count, ids.len());
        assert_eq!(sized.sweep.len(), 6);
        // Runtime halves-ish with each doubling.
        assert!(sized.predicted_runtime < 110.0);
    }

    #[test]
    fn loaded_extra_nodes_are_declined() {
        // 3 idle nodes and 3 very busy ones: using the busy nodes makes
        // every barrier wait 10x, so the best count is 3.
        let (mut topo, ids) = star(6, 100.0 * MBPS);
        for &n in &ids[3..] {
            topo.set_load_avg(n, 9.0);
        }
        let sized = select_node_count(
            &topo,
            1..=6,
            &model(600.0, 0.0),
            &Constraints::none(),
            Weights::EQUAL,
        )
        .unwrap();
        assert_eq!(sized.count, 3, "sweep: {:?}", sized.sweep);
    }

    #[test]
    fn communication_cost_caps_the_useful_count() {
        // Heavy communication per node: adding nodes stops paying once the
        // comm term dominates. With work 100 and 4 s of comm per node
        // (400 Mbit at 100 Mbps), runtime is 100/m + 4 for m > 1; every
        // increase still helps here, but load the nodes so cpu drops with
        // more... instead test the model directly for an interior optimum.
        let (mut topo, ids) = star(5, 100.0 * MBPS);
        // Make each additional node much busier than the last: the barrier
        // waits for the slowest member, so marginal nodes eventually cost
        // more than they contribute.
        for (i, &n) in ids.iter().enumerate() {
            topo.set_load_avg(n, [0.0, 0.0, 3.0, 8.0, 15.0][i]);
        }
        let m = LooselySynchronousModel {
            work: 100.0,
            serial: 0.0,
            bits_per_node: |_| 200.0 * MBPS,
        };
        let sized =
            select_node_count(&topo, 1..=5, &m, &Constraints::none(), Weights::EQUAL).unwrap();
        // The optimum is interior: neither 1 (no parallelism) nor 5 (the
        // fifth node has load 3.2 => min cpu 0.24).
        assert!(
            sized.count > 1 && sized.count < 5,
            "sweep {:?}",
            sized.sweep
        );
    }

    #[test]
    fn infeasible_range_reports_error() {
        let (topo, _) = star(2, 100.0 * MBPS);
        let r = select_node_count(
            &topo,
            5..=8,
            &model(1.0, 0.0),
            &Constraints::none(),
            Weights::EQUAL,
        );
        assert!(matches!(r, Err(SelectError::NotEnoughNodes { .. })));
    }

    #[test]
    fn closure_models_work() {
        let (topo, _) = star(4, 100.0 * MBPS);
        // Fixed runtime: the smallest m wins ties by being seen first only
        // if strictly better; with equal predictions the first stays.
        let sized = select_node_count(
            &topo,
            1..=4,
            &|_m: usize, _q: &Quality| 42.0,
            &Constraints::none(),
            Weights::EQUAL,
        )
        .unwrap();
        assert_eq!(sized.count, 1);
        assert_eq!(sized.predicted_runtime, 42.0);
    }
}
