//! Substrate bench: raw event throughput of the discrete-event simulator
//! under Table-1-like activity (generators + application traffic on the
//! CMU testbed). Not a paper artifact; it bounds how much experimentation
//! per CPU-second the harness can deliver.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nodesel_loadgen::{install_load, install_traffic, LoadConfig, TrafficConfig};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    // Measure how many simulated seconds of a busy testbed run per call.
    let mut group = c.benchmark_group("simnet");
    let sim_seconds = 600.0;
    // Count events once for the throughput label.
    let events = {
        let tb = cmu_testbed();
        let mut sim = Sim::new(tb.topo.clone());
        install_load(&mut sim, &tb.machines, LoadConfig::paper_defaults(), 1);
        install_traffic(&mut sim, &tb.machines, TrafficConfig::paper_defaults(), 2);
        sim.run_for(sim_seconds);
        sim.stats().events
    };
    group.throughput(Throughput::Elements(events));
    group.bench_function("busy_testbed_600s", |b| {
        b.iter(|| {
            let tb = cmu_testbed();
            let mut sim = Sim::new(tb.topo.clone());
            install_load(&mut sim, &tb.machines, LoadConfig::paper_defaults(), 1);
            install_traffic(&mut sim, &tb.machines, TrafficConfig::paper_defaults(), 2);
            sim.run_for(sim_seconds);
            black_box(sim.stats())
        })
    });
    group.finish();
    eprintln!("\nbusy testbed, {sim_seconds} simulated seconds: {events} events");
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
