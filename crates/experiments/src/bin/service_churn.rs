//! Runs the resident placement service over a churning background and
//! prints the decision trail plus the measurement-layer counters: how
//! many polls hit an unchanged snapshot, and how large the delta stream
//! was compared to re-shipping the full topology each time.

use nodesel_experiments::service_churn::{run_service_churn, ChurnConfig};
use nodesel_topology::testbeds::cmu_testbed;

fn main() {
    let config = ChurnConfig::default();
    let report = run_service_churn(&config);
    let tb = cmu_testbed();

    println!("=== Resident placement service under churn ===");
    println!(" t(s)  epoch  mode     score  placement");
    for check in &report.checks {
        let names: Vec<&str> = check
            .nodes
            .iter()
            .map(|&n| tb.topo.node(n).name())
            .collect();
        println!(
            "{:>5.0}  {:>5}  {:<7}  {:>5.2}  {}",
            check.time,
            check.epoch,
            if check.refreshed { "refresh" } else { "solve" },
            check.score,
            names.join(", "),
        );
    }

    let s = report.stats;
    println!();
    println!(
        "placement changed {} time(s) over {} checks",
        report.placement_changes,
        report.checks.len()
    );
    println!(
        "snapshot stream: {} queries, {} hits (epoch unchanged), {} misses",
        s.topology_queries, s.snapshot_hits, s.snapshot_misses
    );
    let epochs = report.checks.last().map_or(0, |c| c.epoch);
    println!(
        "delta stream:    {} node entries + {} link entries across {} published epochs",
        s.delta_node_entries, s.delta_link_entries, epochs
    );
    let full = tb.topo.compute_nodes().count() as u64 * epochs;
    println!(
        "                 (re-publishing full annotations would carry {} node entries alone)",
        full
    );
}
