//! Canonical request form: a hashable, order-normalized selection spec.
//!
//! A placement service keyed on raw [`SelectionRequest`]s would miss
//! cache hits whenever two callers phrase the same question differently
//! (an `allowed` set is a `HashSet` with no stable order, weights are
//! floats) — and could not key a `HashMap` at all, since floats are not
//! `Hash`. [`CanonicalRequest`] fixes both: every field is normalized to
//! a total-ordered, hashable representation such that **equal canonical
//! forms yield bit-identical [`crate::select`] answers** on any snapshot.
//!
//! Normalization choices and why they are sound:
//!
//! * `allowed` is sorted and deduplicated — the algorithms only ever ask
//!   membership (`contains`), never iterate, so order and multiplicity
//!   are unobservable.
//! * `required` is kept **verbatim** (order and duplicates preserved):
//!   [`crate::SelectError::RequiredNotEligible`] reports the *first*
//!   ineligible required node in caller order, and
//!   [`crate::SelectError::TooManyRequired`] counts duplicates, so
//!   reordering would change error bits.
//! * Floats (`min_cpu`, `min_bandwidth`, `reference_bandwidth`, balanced
//!   weights) are carried as `f64::to_bits` — exact round-trip, total
//!   order, hashable. Distinct NaN payloads canonicalize to distinct
//!   keys, which costs a duplicate cache slot, never a wrong answer.
//! * `-0.0` is normalized to `0.0` for `min_cpu` and `min_bandwidth`
//!   **only**: both are used exclusively in `>=` threshold comparisons
//!   (where IEEE 754 makes `-0.0 == 0.0` indistinguishable) and neither
//!   appears in any [`crate::SelectError`] payload, so the two bit
//!   patterns provably answer identically and may share a cache slot.
//!   `reference_bandwidth` and the balanced weights keep their raw bits:
//!   they are *divisors* in the quality model, and `x / 0.0` vs
//!   `x / -0.0` yield infinities of opposite sign — collapsing them
//!   could serve one request the other's answer.

use crate::request::{Constraints, GreedyPolicy, Objective, SelectionRequest};
use crate::weights::Weights;
use nodesel_topology::NodeId;
use std::collections::HashSet;

/// [`Objective`] with weights in bit form (hashable, totally ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum CanonObjective {
    Compute,
    Communication,
    Balanced { compute: u64, comm: u64 },
}

/// A normalized, hashable selection request.
///
/// Build with [`CanonicalRequest::new`]; recover an equivalent (bit-wise
/// answer-identical) request with [`CanonicalRequest::to_request`]. Two
/// requests with equal canonical forms produce byte-identical
/// [`crate::select`] results — including reproduced errors — on every
/// snapshot, which is what makes this safe as a selection-cache key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalRequest {
    count: usize,
    objective: CanonObjective,
    allowed: Option<Vec<NodeId>>,
    required: Vec<NodeId>,
    min_cpu: Option<u64>,
    min_bandwidth: Option<u64>,
    max_staleness: Option<u32>,
    reference_bandwidth: Option<u64>,
    policy: GreedyPolicy,
}

/// Key bits of a threshold float: `-0.0` collapses onto `0.0` (they
/// compare equal under `>=`, the only way thresholds are consumed), all
/// other values keep their exact bit pattern. Not applied to divisors —
/// see the module docs.
fn threshold_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

impl CanonicalRequest {
    /// Canonicalizes `request`.
    pub fn new(request: &SelectionRequest) -> Self {
        let objective = match request.objective {
            Objective::Compute => CanonObjective::Compute,
            Objective::Communication => CanonObjective::Communication,
            Objective::Balanced(w) => CanonObjective::Balanced {
                compute: w.compute.to_bits(),
                comm: w.comm.to_bits(),
            },
        };
        let allowed = request.constraints.allowed.as_ref().map(|set| {
            let mut v: Vec<NodeId> = set.iter().copied().collect();
            v.sort_unstable();
            v
        });
        CanonicalRequest {
            count: request.count,
            objective,
            allowed,
            required: request.constraints.required.clone(),
            min_cpu: request.constraints.min_cpu.map(threshold_bits),
            min_bandwidth: request.constraints.min_bandwidth.map(threshold_bits),
            max_staleness: request.constraints.max_staleness,
            reference_bandwidth: request.reference_bandwidth.map(f64::to_bits),
            policy: request.policy,
        }
    }

    /// Reconstructs a request whose [`crate::select`] answer is
    /// bit-identical to the canonicalized original's on every snapshot.
    pub fn to_request(&self) -> SelectionRequest {
        SelectionRequest {
            count: self.count,
            objective: self.objective(),
            constraints: Constraints {
                allowed: self
                    .allowed
                    .as_ref()
                    .map(|v| v.iter().copied().collect::<HashSet<NodeId>>()),
                required: self.required.clone(),
                min_cpu: self.min_cpu.map(f64::from_bits),
                min_bandwidth: self.min_bandwidth.map(f64::from_bits),
                max_staleness: self.max_staleness,
            },
            reference_bandwidth: self.reference_bandwidth.map(f64::from_bits),
            policy: self.policy,
        }
    }

    /// The request's objective.
    pub fn objective(&self) -> Objective {
        match self.objective {
            CanonObjective::Compute => Objective::Compute,
            CanonObjective::Communication => Objective::Communication,
            CanonObjective::Balanced { compute, comm } => Objective::Balanced(Weights {
                compute: f64::from_bits(compute),
                comm: f64::from_bits(comm),
            }),
        }
    }

    /// Requested node count.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Size of the `allowed` pool (`None` = unrestricted).
    pub fn allowed_len(&self) -> Option<usize> {
        self.allowed.as_ref().map(Vec::len)
    }

    /// Number of pinned (`required`) nodes, duplicates included.
    pub fn required_len(&self) -> usize {
        self.required.len()
    }

    /// True when the answer depends on bandwidth annotations: a
    /// communication-aware objective (communication or balanced), or a
    /// bandwidth floor constraint on an otherwise compute-only request.
    /// Degraded-mode services use this to decide which requests stale
    /// utilization data can still honestly serve — CPU-only questions
    /// survive a silent network, bandwidth questions do not.
    pub fn bandwidth_sensitive(&self) -> bool {
        !matches!(self.objective, CanonObjective::Compute) || self.min_bandwidth.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_request() -> SelectionRequest {
        let mut r = SelectionRequest::balanced(3);
        r.constraints.allowed = Some(
            [
                NodeId::from_index(4),
                NodeId::from_index(1),
                NodeId::from_index(9),
            ]
            .into_iter()
            .collect(),
        );
        r.constraints.required = vec![NodeId::from_index(9), NodeId::from_index(1)];
        r.constraints.min_cpu = Some(0.25);
        r.reference_bandwidth = Some(1.5e8);
        r
    }

    #[test]
    fn allowed_order_is_normalized_required_is_not() {
        let a = loaded_request();
        let mut b = a.clone();
        // A different insertion order: same set, same canonical form.
        b.constraints.allowed = Some(
            [
                NodeId::from_index(9),
                NodeId::from_index(4),
                NodeId::from_index(1),
            ]
            .into_iter()
            .collect(),
        );
        assert_eq!(CanonicalRequest::new(&a), CanonicalRequest::new(&b));
        // Required order changes error identity: distinct keys.
        b.constraints.required = vec![NodeId::from_index(1), NodeId::from_index(9)];
        assert_ne!(CanonicalRequest::new(&a), CanonicalRequest::new(&b));
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let a = loaded_request();
        let canon = CanonicalRequest::new(&a);
        let back = canon.to_request();
        assert_eq!(CanonicalRequest::new(&back), canon);
        assert_eq!(back.count, a.count);
        assert_eq!(back.constraints.required, a.constraints.required);
        assert_eq!(back.constraints.allowed, a.constraints.allowed);
        assert_eq!(back.constraints.min_cpu, a.constraints.min_cpu);
        assert_eq!(back.reference_bandwidth, a.reference_bandwidth);
        assert_eq!(back.policy, a.policy);
    }

    #[test]
    fn negative_zero_thresholds_share_a_key() {
        let mut a = SelectionRequest::compute(2);
        a.constraints.min_cpu = Some(0.0);
        a.constraints.min_bandwidth = Some(0.0);
        let mut b = a.clone();
        b.constraints.min_cpu = Some(-0.0);
        b.constraints.min_bandwidth = Some(-0.0);
        // Semantically identical thresholds: one cache key.
        assert_eq!(CanonicalRequest::new(&a), CanonicalRequest::new(&b));
        // The answers really are bit-identical (>= cannot see the sign).
        let (topo, _) = nodesel_topology::builders::star(4, 1e8);
        let snap = nodesel_topology::NetSnapshot::capture(std::sync::Arc::new(topo));
        assert_eq!(
            crate::selector_for(a.objective).select(&snap, &a),
            crate::selector_for(b.objective).select(&snap, &b),
        );
        // Divisors keep raw bits: a -0.0 weight is a different question.
        let w = SelectionRequest {
            objective: Objective::Balanced(Weights {
                compute: 0.0,
                comm: 1.0,
            }),
            ..SelectionRequest::balanced(2)
        };
        let mut wneg = w.clone();
        wneg.objective = Objective::Balanced(Weights {
            compute: -0.0,
            comm: 1.0,
        });
        assert_ne!(CanonicalRequest::new(&w), CanonicalRequest::new(&wneg));
        let mut rb = SelectionRequest::communication(2);
        rb.reference_bandwidth = Some(0.0);
        let mut rbneg = rb.clone();
        rbneg.reference_bandwidth = Some(-0.0);
        assert_ne!(CanonicalRequest::new(&rb), CanonicalRequest::new(&rbneg));
    }

    #[test]
    fn bandwidth_sensitivity_tracks_objective_and_floor() {
        assert!(!CanonicalRequest::new(&SelectionRequest::compute(2)).bandwidth_sensitive());
        assert!(CanonicalRequest::new(&SelectionRequest::communication(2)).bandwidth_sensitive());
        assert!(CanonicalRequest::new(&SelectionRequest::balanced(2)).bandwidth_sensitive());
        let mut floored = SelectionRequest::compute(2);
        floored.constraints.min_bandwidth = Some(1.0);
        assert!(CanonicalRequest::new(&floored).bandwidth_sensitive());
    }

    #[test]
    fn weight_bits_distinguish_objectives() {
        let a = SelectionRequest::balanced(2);
        let mut b = a.clone();
        b.objective = Objective::Balanced(Weights {
            compute: 2.0,
            comm: 1.0,
        });
        assert_ne!(CanonicalRequest::new(&a), CanonicalRequest::new(&b));
        assert_ne!(
            CanonicalRequest::new(&a),
            CanonicalRequest::new(&SelectionRequest::compute(2))
        );
    }
}
