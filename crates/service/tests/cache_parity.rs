//! Cache and batching parity proptests for the placement service.
//!
//! The service's contract is that caching, carry-forward, single-flight
//! merging, and batched solving are *invisible*: every [`Placement`]
//! returned by `get` is bit-identical to a fresh solve on the snapshot of
//! `placement.epoch`. These tests drive random request streams against
//! random delta streams (node load churn, link utilization churn,
//! availability and staleness transitions, occasional wholesale flushes)
//! and check exactly that, keeping an epoch → snapshot map on the side.
//!
//! Eviction soundness rides on the same assertion: a carried-forward
//! entry with an unsound footprint would surface as a stale answer on a
//! later epoch, and a tiny-capacity cache exercises the LRU path on
//! every insert.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use nodesel_core::{
    selector_for, Constraints, GreedyPolicy, Objective, SelectError, SelectionRequest, Weights,
};
use nodesel_service::{
    DegradePolicy, GetOptions, JobId, PlacementQuality, PlacementService, ServiceConfig,
    ServiceError,
};
use nodesel_topology::builders::random_tree;
use nodesel_topology::units::MBPS;
use nodesel_topology::{Direction, NetDelta, NetMetrics, NetSnapshot, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random connected topology: a random tree plus up to three chords, with
/// random loads and per-direction link utilization.
fn random_topology(seed: u64, computes: usize, networks: usize) -> (Topology, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut topo, compute_ids) = random_tree(&mut rng, computes, networks, 100.0 * MBPS);
    let all: Vec<NodeId> = topo.node_ids().collect();
    for _ in 0..rng.random_range(0..3) {
        let a = all[rng.random_range(0..all.len())];
        let b = all[rng.random_range(0..all.len())];
        if a != b {
            topo.add_link(a, b, 100.0 * MBPS);
        }
    }
    for n in compute_ids.iter().copied() {
        topo.set_load_avg(n, rng.random_range(0.0..4.0));
    }
    for e in topo.edge_ids().collect::<Vec<_>>() {
        for dir in [Direction::AtoB, Direction::BtoA] {
            let cap = topo.link(e).capacity(dir);
            topo.set_link_used(e, dir, cap * rng.random_range(0.0..0.95));
        }
    }
    (topo, compute_ids)
}

/// A random request: any objective, small counts, and a sprinkling of
/// every constraint kind — including corners where selection errors
/// (which must round-trip through the cache bit-identically too).
fn random_request(rng: &mut StdRng, ids: &[NodeId]) -> SelectionRequest {
    let objective = match rng.random_range(0..3) {
        0 => Objective::Compute,
        1 => Objective::Communication,
        _ => Objective::Balanced(Weights::comm_priority(rng.random_range(0.5..3.0))),
    };
    let mut constraints = Constraints::none();
    if rng.random_range(0..4) == 0 {
        let anchor = ids[rng.random_range(0..ids.len())];
        let mut allowed: HashSet<NodeId> = ids
            .iter()
            .copied()
            .filter(|_| rng.random_range(0..2) == 0)
            .collect();
        allowed.insert(anchor);
        constraints.allowed = Some(allowed);
    }
    if rng.random_range(0..4) == 0 {
        constraints.required = vec![ids[rng.random_range(0..ids.len())]];
    }
    if rng.random_range(0..4) == 0 {
        constraints.min_cpu = Some(rng.random_range(0.1..0.6));
    }
    if rng.random_range(0..5) == 0 {
        constraints.min_bandwidth = Some(rng.random_range(1.0..40.0) * MBPS);
    }
    if rng.random_range(0..6) == 0 {
        constraints.max_staleness = Some(rng.random_range(0..4));
    }
    SelectionRequest {
        count: 1 + rng.random_range(0..ids.len().min(5)),
        objective,
        constraints,
        reference_bandwidth: (rng.random_range(0..3) == 0).then_some(155.0 * MBPS),
        policy: GreedyPolicy::Sweep,
    }
}

/// One epoch of churn: load and utilization moves, plus occasional
/// availability flips and staleness bumps — the health changes that must
/// evict *every* cache entry regardless of footprint.
fn random_delta(rng: &mut StdRng, topo: &Topology) -> NetDelta {
    let mut delta = NetDelta::default();
    for n in topo.compute_nodes() {
        if rng.random_range(0..2) == 0 {
            delta.nodes.push((n, rng.random_range(0.0..4.0)));
        }
    }
    for e in topo.edge_ids() {
        for dir in [Direction::AtoB, Direction::BtoA] {
            if rng.random_range(0..4) == 0 {
                let cap = topo.link(e).capacity(dir);
                delta
                    .links
                    .push((e, dir, cap * rng.random_range(0.0..0.95)));
            }
        }
    }
    if rng.random_range(0..4) == 0 {
        let computes: Vec<NodeId> = topo.compute_nodes().collect();
        let n = computes[rng.random_range(0..computes.len())];
        delta.avail_nodes.push((n, rng.random_range(0..2) == 0));
    }
    if rng.random_range(0..5) == 0 {
        let computes: Vec<NodeId> = topo.compute_nodes().collect();
        let n = computes[rng.random_range(0..computes.len())];
        delta.stale_nodes.push((n, rng.random_range(0..6)));
    }
    delta
}

/// Drives a request/delta script against one service and asserts every
/// answer is bit-identical to a fresh solve on the snapshot of the epoch
/// the placement reports. `burst_threads > 1` issues each burst from
/// that many threads concurrently (same read-only epoch map).
fn drive(seed: u64, topo: Topology, ids: &[NodeId], steps: usize, config: ServiceConfig) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e1ec7);
    let first = NetSnapshot::capture(Arc::new(topo));
    let svc = PlacementService::new(Arc::new(first.clone()), config.clone());
    let mut by_epoch: HashMap<u64, NetSnapshot> = HashMap::new();
    by_epoch.insert(first.epoch(), first.clone());
    let pool: Vec<SelectionRequest> = (0..4 + rng.random_range(0..4))
        .map(|_| random_request(&mut rng, ids))
        .collect();
    let mut current = first;
    for _ in 0..steps {
        for _ in 0..pool.len() + 2 {
            let request = &pool[rng.random_range(0..pool.len())];
            let placement = svc.get(request);
            let snap = &by_epoch[&placement.epoch];
            let fresh = selector_for(request.objective).select(snap, request);
            assert_eq!(
                placement.result, fresh,
                "answer for epoch {} drifted from a fresh solve",
                placement.epoch
            );
        }
        let delta = random_delta(&mut rng, current.structure_arc());
        let next = current.apply(&delta);
        by_epoch.insert(next.epoch(), next.clone());
        if rng.random_range(0..8) == 0 {
            // A publication with no delta claims nothing about footprints
            // and must flush wholesale.
            svc.publish(Arc::new(next.clone()), None);
        } else {
            svc.publish(Arc::new(next.clone()), Some(&delta));
        }
        current = next;
    }
    let stats = svc.stats();
    assert_eq!(
        stats.requests,
        stats.cache_hits + stats.single_flight_merges + stats.solves,
        "every request is exactly one of hit / merge / solve"
    );
    assert_eq!(stats.epochs_published, steps as u64);
    if config.cache_capacity == 0 {
        assert_eq!(stats.cache_hits, 0, "a disabled cache cannot hit");
        assert_eq!(stats.carried_forward, 0);
    }
    assert!(svc.cached_entries() <= config.cache_capacity);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inline service (the deterministic configuration): random request
    /// streams against random churn, including health transitions and
    /// flush publications.
    #[test]
    fn inline_answers_match_fresh_select(
        seed in 0u64..100_000,
        computes in 2usize..10,
        networks in 0usize..6,
        steps in 1usize..6,
    ) {
        let (topo, ids) = random_topology(seed, computes, networks);
        drive(seed, topo, &ids, steps, ServiceConfig::default());
    }

    /// A tiny cache forces the LRU eviction path on nearly every insert;
    /// capacity 0 disables caching entirely. Neither may change answers.
    #[test]
    fn tiny_cache_evictions_stay_sound(
        seed in 0u64..100_000,
        computes in 2usize..8,
        networks in 0usize..4,
        steps in 1usize..5,
        capacity in 0usize..4,
    ) {
        let (topo, ids) = random_topology(seed, computes, networks);
        let config = ServiceConfig { cache_capacity: capacity, ..ServiceConfig::default() };
        drive(seed, topo, &ids, steps, config);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The pooled path — queue, scarcest-first batches, worker solves —
    /// must be just as invisible. Small queue and batch sizes keep the
    /// producer-blocking and batch-ordering branches hot.
    #[test]
    fn pooled_answers_match_fresh_select(
        seed in 0u64..100_000,
        computes in 2usize..8,
        networks in 0usize..4,
        steps in 1usize..4,
        batch in 1usize..4,
    ) {
        let (topo, ids) = random_topology(seed, computes, networks);
        let config = ServiceConfig {
            workers: 2,
            batch_size: batch,
            queue_capacity: 4,
            cache_capacity: 64,
            ..ServiceConfig::default()
        };
        drive(seed, topo, &ids, steps, config);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Empty-ledger invisibility: a service whose ledger has seen
    /// admissions but is empty again answers bit-identically to a twin
    /// that never admitted anything, across seeds, request shapes, and
    /// churn. The residual snapshot must collapse back to the raw
    /// snapshot pointer-identically, not just value-equal.
    #[test]
    fn emptied_ledger_answers_match_never_admitted_twin(
        seed in 0u64..100_000,
        computes in 3usize..10,
        networks in 0usize..5,
        steps in 1usize..4,
        jobs in 1usize..4,
    ) {
        let (topo, ids) = random_topology(seed, computes, networks);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xad317);
        let first = NetSnapshot::capture(Arc::new(topo));
        let svc = PlacementService::new(Arc::new(first.clone()), ServiceConfig::default());
        let twin = PlacementService::new(Arc::new(first.clone()), ServiceConfig::default());
        let mut current = first;
        for _ in 0..steps {
            // Admit a few random jobs (failed selections admit nothing),
            // then release every one.
            let mut admitted = Vec::new();
            for _ in 0..jobs {
                let mut request = random_request(&mut rng, &ids);
                request.reference_bandwidth = Some(20.0 * MBPS);
                if let Ok(admission) = svc.admit(&request) {
                    admitted.push(admission.job);
                }
            }
            for job in admitted {
                svc.release(job).unwrap();
            }
            prop_assert!(
                Arc::ptr_eq(&svc.residual_snapshot(), &svc.snapshot()),
                "emptied ledger must hand back the raw snapshot Arc"
            );
            for _ in 0..6 {
                let request = random_request(&mut rng, &ids);
                let ours = svc.get(&request);
                let theirs = twin.get(&request);
                prop_assert_eq!(ours.epoch, theirs.epoch);
                prop_assert_eq!(ours.result, theirs.result);
            }
            let delta = random_delta(&mut rng, current.structure_arc());
            let next = current.apply(&delta);
            svc.publish(Arc::new(next.clone()), Some(&delta));
            twin.publish(Arc::new(next.clone()), Some(&delta));
            current = next;
        }
    }

    /// With live admissions, every `get` answer matches a fresh solve on
    /// the service's own residual snapshot — contention awareness is the
    /// residual network and nothing else.
    #[test]
    fn admitted_state_answers_match_residual_solve(
        seed in 0u64..100_000,
        computes in 4usize..10,
        networks in 0usize..5,
        jobs in 1usize..4,
    ) {
        let (topo, ids) = random_topology(seed, computes, networks);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc1a11);
        let first = NetSnapshot::capture(Arc::new(topo));
        let svc = PlacementService::new(Arc::new(first), ServiceConfig::default());
        for _ in 0..jobs {
            let mut request = random_request(&mut rng, &ids);
            request.reference_bandwidth = Some(20.0 * MBPS);
            let _ = svc.admit(&request);
        }
        let residual = svc.residual_snapshot();
        for _ in 0..8 {
            let request = random_request(&mut rng, &ids);
            let placement = svc.get(&request);
            let fresh = selector_for(request.objective).select(&residual, &request);
            prop_assert_eq!(placement.result, fresh);
        }
    }
}

/// Concurrent identical requests against a pooled service: whatever mix
/// of solves, merges, and hits results, every thread's answer must match
/// the fresh solve for its pinned epoch.
#[test]
fn concurrent_bursts_stay_bit_identical() {
    let (topo, ids) = random_topology(7, 8, 4);
    let first = NetSnapshot::capture(Arc::new(topo));
    let svc = PlacementService::new(
        Arc::new(first.clone()),
        ServiceConfig {
            workers: 2,
            batch_size: 2,
            queue_capacity: 4,
            cache_capacity: 64,
            ..ServiceConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let mut by_epoch: HashMap<u64, NetSnapshot> = HashMap::new();
    by_epoch.insert(first.epoch(), first.clone());
    let mut current = first;
    for _ in 0..4 {
        let requests: Vec<SelectionRequest> =
            (0..3).map(|_| random_request(&mut rng, &ids)).collect();
        std::thread::scope(|scope| {
            for t in 0..6 {
                let svc = &svc;
                let by_epoch = &by_epoch;
                let request = &requests[t % requests.len()];
                scope.spawn(move || {
                    let placement = svc.get(request);
                    let snap = &by_epoch[&placement.epoch];
                    let fresh = selector_for(request.objective).select(snap, request);
                    assert_eq!(placement.result, fresh);
                });
            }
        });
        let delta = random_delta(&mut rng, current.structure_arc());
        let next = current.apply(&delta);
        by_epoch.insert(next.epoch(), next.clone());
        svc.publish(Arc::new(next.clone()), Some(&delta));
        current = next;
    }
    let stats = svc.stats();
    assert_eq!(
        stats.requests,
        stats.cache_hits + stats.single_flight_merges + stats.solves
    );
    assert_eq!(stats.requests, 24);
}

/// Soft/hard staleness bounds the chaos proptest runs under (tight
/// enough that random silences cross both).
const CHAOS_DEGRADE: DegradePolicy = DegradePolicy {
    soft_staleness: 30.0,
    hard_staleness: 90.0,
    min_confidence: 0.5,
};

/// One chaos script: an inline (deterministic) service under a
/// fault-bearing delta stream interleaved with requests (some with
/// already-dead deadlines), admissions, releases, heartbeats, silences,
/// and reconciliation sweeps. The driver keeps its own model of the
/// collector's liveness (`last_heard`, published confidence) and asserts,
/// for every single answer:
///
/// * **no silent lies** — the answer's [`PlacementQuality`] equals the
///   classification the driver computes from its own model (a `Fresh`
///   flag on aged data, or a missing `Stale` flag, fails here);
/// * **degradation never changes bits** — every served answer (fresh or
///   stale) is bit-identical to a fresh solve on the residual snapshot
///   pinned at call time;
/// * **refusals are typed** — past the hard bound a bandwidth-sensitive
///   answer carries [`SelectError::DataTooStale`], never fabricated
///   nodes;
/// * **reconciliation repairs** — after each sweep no surviving claim
///   references a dead node, except jobs the sweep explicitly deferred
///   (re-selection failed) — and the stats identity balances throughout.
fn chaos_drive(seed: u64, computes: usize, networks: usize, steps: usize) {
    let (topo, ids) = random_topology(seed, computes, networks);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a05);
    let first = NetSnapshot::capture(Arc::new(topo));
    let svc = PlacementService::new(
        Arc::new(first.clone()),
        ServiceConfig {
            degrade: CHAOS_DEGRADE,
            ..ServiceConfig::default()
        },
    );
    let mut current = first;
    let mut now = 0.0f64;
    let mut last_heard = 0.0f64;
    let mut confidence = current.min_confidence();
    let mut admitted: Vec<JobId> = Vec::new();
    for _ in 0..steps {
        now += rng.random_range(1.0..40.0);
        // The collector this tick: publish faults, heartbeat, or silence.
        match rng.random_range(0..4) {
            0 => {} // silent: the data ages
            1 => {
                svc.heartbeat(now);
                last_heard = now;
            }
            _ => {
                let mut delta = random_delta(&mut rng, current.structure_arc());
                let computes_now: Vec<NodeId> = current.structure_arc().compute_nodes().collect();
                for _ in 0..rng.random_range(0..3) {
                    let n = computes_now[rng.random_range(0..computes_now.len())];
                    delta.avail_nodes.push((n, rng.random_range(0..2) == 0));
                }
                let next = current.apply(&delta);
                svc.publish_at(Arc::new(next.clone()), Some(&delta), now);
                last_heard = now;
                confidence = next.min_confidence();
                current = next;
            }
        }
        let age = (now - last_heard).max(0.0);
        for _ in 0..4 {
            let request = random_request(&mut rng, &ids);
            let deadline = match rng.random_range(0..3) {
                0 => Some(now + 5.0),
                1 => Some(now - 1.0), // dead on arrival: must shed
                _ => None,
            };
            let opts = GetOptions {
                now: Some(now),
                deadline,
                block_when_full: false,
            };
            let residual = svc.residual_snapshot();
            let answer = svc.get_with(&request, &opts);
            if let Some(d) = deadline.filter(|d| *d <= now) {
                assert_eq!(
                    answer.unwrap_err(),
                    ServiceError::DeadlineExceeded { deadline: d, now }
                );
                continue;
            }
            let placement = answer.expect("inline in-deadline request cannot fail");
            let bandwidth_sensitive = !matches!(request.objective, Objective::Compute)
                || request.constraints.min_bandwidth.is_some();
            if age > CHAOS_DEGRADE.hard_staleness && bandwidth_sensitive {
                assert_eq!(placement.quality, PlacementQuality::Refused { age });
                assert_eq!(placement.result, Err(SelectError::DataTooStale));
                continue;
            }
            let expected = if age > CHAOS_DEGRADE.soft_staleness
                || confidence < CHAOS_DEGRADE.min_confidence
            {
                PlacementQuality::Stale { age }
            } else {
                PlacementQuality::Fresh
            };
            assert_eq!(placement.quality, expected, "silent-stale answer");
            let fresh = selector_for(request.objective).select(&residual, &request);
            assert_eq!(
                placement.result, fresh,
                "served answer drifted from a fresh solve on its pin"
            );
        }
        // Admission / release churn.
        if rng.random_range(0..2) == 0 {
            let mut request = random_request(&mut rng, &ids);
            request.reference_bandwidth = Some(20.0 * MBPS);
            match svc.admit(&request) {
                Ok(admission) => admitted.push(admission.job),
                Err(ServiceError::Select(_)) | Err(ServiceError::DegradedRefusal { .. }) => {}
                Err(e) => panic!("unexpected admit error: {e}"),
            }
        }
        if !admitted.is_empty() && rng.random_range(0..3) == 0 {
            let job = admitted.swap_remove(rng.random_range(0..admitted.len()));
            svc.release(job).unwrap();
        }
        if rng.random_range(0..2) == 0 {
            let report = svc.reconcile(now);
            assert_eq!(report.examined, admitted.len());
            let snap = svc.snapshot();
            for &job in &admitted {
                let nodes = svc.job_nodes(job).expect("no structural shrink here");
                let all_up = nodes.iter().all(|&n| snap.node_available(n));
                let deferred = report.deferred.iter().any(|(j, _)| *j == job);
                assert!(
                    all_up || deferred,
                    "claim holds a dead node after reconcile without a deferral"
                );
            }
        }
        let stats = svc.stats();
        assert!(stats.balanced(), "stats identity violated: {stats:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chaos-flavored parity: random fault plans × request / admit /
    /// release / reconcile interleavings under live staleness bounds.
    #[test]
    fn chaos_interleavings_stay_honest_and_balanced(
        seed in 0u64..100_000,
        computes in 3usize..10,
        networks in 0usize..5,
        steps in 2usize..8,
    ) {
        chaos_drive(seed, computes, networks, steps);
    }
}
