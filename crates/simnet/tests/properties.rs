//! Property tests of the simulator's physical invariants: conservation of
//! work and bytes, fairness bounds, and determinism under arbitrary
//! scenarios.

use nodesel_simnet::{Sim, SimTime};
use nodesel_topology::builders::random_tree;
use nodesel_topology::units::MBPS;
use nodesel_topology::{Direction, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// A randomized scenario: a seeded tree, some tasks, some flows.
fn build_scenario(seed: u64) -> (Sim, Topology, Vec<NodeId>, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let computes = rng.random_range(2..6);
    let networks = rng.random_range(0..4);
    let (topo, ids) = random_tree(&mut rng, computes, networks, 100.0 * MBPS);
    let mut sim = Sim::new(topo.clone());
    let mut total_work = 0.0;
    let mut total_bits = 0.0;
    for _ in 0..rng.random_range(1..8) {
        let n = ids[rng.random_range(0..ids.len())];
        let work = rng.random_range(0.1..20.0);
        total_work += work;
        sim.start_compute(n, work, |_| {});
    }
    for _ in 0..rng.random_range(1..8) {
        let a = ids[rng.random_range(0..ids.len())];
        let b = ids[rng.random_range(0..ids.len())];
        if a == b {
            continue;
        }
        let bits = rng.random_range(1.0..200.0) * MBPS;
        total_bits += bits;
        sim.start_transfer(a, b, bits, |_| {});
    }
    (sim, topo, ids, total_work, total_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All scheduled CPU work is eventually performed, exactly once.
    #[test]
    fn work_is_conserved(seed in 0u64..100_000) {
        let (mut sim, _topo, ids, total_work, _) = build_scenario(seed);
        sim.run();
        let done: f64 = ids.iter().map(|&n| sim.completed_work(n)).sum();
        prop_assert!((done - total_work).abs() < 1e-6,
            "scheduled {total_work}, performed {done}");
    }

    /// Flows drain exactly their payload through their first hop counters.
    #[test]
    fn bytes_are_conserved_per_flow(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB17E5);
        let (topo, ids) = random_tree(&mut rng, 4, 2, 100.0 * MBPS);
        if ids.len() < 2 { return Ok(()); }
        let mut sim = Sim::new(topo.clone());
        // One flow at a time, so per-link counters are attributable.
        let bits = rng.random_range(1.0..500.0) * MBPS;
        let (a, b) = (ids[0], ids[1]);
        sim.start_transfer(a, b, bits, |_| {});
        sim.run();
        let routes = topo.routes();
        let path = routes.path(a, b).unwrap();
        for &(e, d) in &path.hops {
            let carried = sim.link_bits(e, d);
            // Event times are ceiled to whole nanoseconds, so the counter
            // may overshoot by up to rate x 1 ns (~0.1 bit at 100 Mbps).
            prop_assert!((carried - bits).abs() < 1.0,
                "link carried {carried}, payload {bits}");
            // Nothing moved in the reverse direction.
            prop_assert_eq!(sim.link_bits(e, d.reverse()), 0.0);
        }
    }

    /// Directed-link rates never exceed capacity at any sampled moment.
    #[test]
    fn links_never_oversubscribed(seed in 0u64..100_000) {
        let (mut sim, topo, _ids, _, _) = build_scenario(seed);
        for step in 1..20u64 {
            sim.run_until(SimTime(step * 100_000_000)); // every 0.1 s
            for e in topo.edge_ids() {
                for dir in [Direction::AtoB, Direction::BtoA] {
                    let cap = topo.link(e).capacity(dir);
                    prop_assert!(sim.link_rate(e, dir) <= cap * (1.0 + 1e-9));
                }
            }
        }
    }

    /// Everything that starts finishes, and the run is deterministic.
    #[test]
    fn deterministic_completion(seed in 0u64..100_000) {
        let run = |seed| {
            let (mut sim, _, _, _, _) = build_scenario(seed);
            let end = sim.run();
            (end, sim.stats())
        };
        let (end_a, stats_a) = run(seed);
        let (end_b, stats_b) = run(seed);
        prop_assert_eq!(end_a, end_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// A transfer can never beat the line rate: elapsed >= bits/bottleneck.
    #[test]
    fn transfers_respect_physics(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF10);
        let (topo, ids) = random_tree(&mut rng, 3, 2, 100.0 * MBPS);
        if ids.len() < 2 { return Ok(()); }
        let bits = rng.random_range(1.0..100.0) * MBPS;
        let routes = topo.routes();
        let bound = bits / routes.bottleneck_bw(ids[0], ids[1]).unwrap();
        let mut sim = Sim::new(topo.clone());
        let done = Rc::new(RefCell::new(None));
        let d = done.clone();
        sim.start_transfer(ids[0], ids[1], bits, move |s| {
            *d.borrow_mut() = Some(s.now().as_secs_f64());
        });
        sim.run();
        let t = done.borrow().expect("finished");
        prop_assert!(t >= bound - 1e-9, "finished in {t}, physics bound {bound}");
    }

    /// Load averages stay within [0, run-queue bound] and respond to work.
    #[test]
    fn load_average_is_bounded(seed in 0u64..100_000) {
        let (mut sim, _topo, ids, _, _) = build_scenario(seed);
        let max_tasks = 8.0; // build_scenario starts at most 7 tasks
        for step in 1..10u64 {
            sim.run_until(SimTime(step * 1_000_000_000));
            for &n in &ids {
                let la = sim.load_avg(n);
                prop_assert!((0.0..=max_tasks).contains(&la), "load {la}");
            }
        }
    }
}
