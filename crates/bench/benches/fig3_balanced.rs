//! Regenerates **Figure 3** (the balanced computation/communication
//! selection algorithm): demonstrates it on a conditioned testbed and
//! benchmarks it across topology sizes and both greedy policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nodesel_bench::conditioned_tree;
use nodesel_core::{balanced, Constraints, GreedyPolicy, Weights};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let (topo, _) = conditioned_tree(9, 40);
    let sel = balanced(
        &topo,
        6,
        Weights::EQUAL,
        &Constraints::none(),
        None,
        GreedyPolicy::Sweep,
    )
    .unwrap();
    eprintln!("\n=== Figure 3: balanced selection (40-node tree, m=6) ===");
    eprintln!(
        "selected {:?}; min cpu {:.2}, min bw fraction {:.2}, balanced score {:.2} ({} rounds)",
        sel.nodes.iter().map(|n| n.index()).collect::<Vec<_>>(),
        sel.quality.min_cpu,
        sel.quality.min_bwfraction,
        sel.score,
        sel.iterations
    );

    let mut group = c.benchmark_group("fig3_balanced");
    for nodes in [20usize, 40, 80, 160, 320] {
        let (topo, ids) = conditioned_tree(9, nodes);
        let m = 6.min(ids.len());
        for policy in [GreedyPolicy::Faithful, GreedyPolicy::Sweep] {
            group.bench_with_input(
                BenchmarkId::new(format!("{policy:?}"), nodes),
                &nodes,
                |b, _| {
                    b.iter(|| {
                        black_box(
                            balanced(&topo, m, Weights::EQUAL, &Constraints::none(), None, policy)
                                .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
