//! Supervised availability-aware re-selection.
//!
//! The migration [`Advisor`] answers "is there a better
//! placement?" per epoch; it has no notion of *failure*. A [`Supervisor`]
//! wraps the same persistent-[`Selector`](crate::Selector) machinery with a re-selection
//! policy built for faulty networks:
//!
//! * **Failure-triggered refresh** — when a placed node is reported down
//!   or too stale, or the routes between placed nodes cross a dead link,
//!   the placement cannot make progress: re-selection is advised
//!   immediately, bypassing the quality hysteresis.
//! * **Hysteresis** — quality-driven moves (no failure, just a better
//!   placement elsewhere) must clear a relative score-improvement
//!   threshold, exactly like the advisor: migration is not free.
//! * **Exponential backoff** — every advised re-selection opens a backoff
//!   window; quality moves inside the window are held. A re-selection
//!   advised *inside* the previous window (a flaky region repeatedly
//!   killing placements) grows the next window geometrically up to a
//!   cap, so a flapping network converges to occasional large windows
//!   instead of thrashing migrations.
//!
//! The supervisor never moves tasks itself: like the advisor, it returns
//! the advice ([`MigrationAdvice`], with the usual
//! [`vacated`](MigrationAdvice::vacated)/[`occupied`](MigrationAdvice::occupied)
//! accessors) and the caller performs the migration.

use crate::migration::{Advisor, MigrationAdvice, OwnUsage};
use crate::request::SelectionRequest;
use crate::SelectError;
use nodesel_topology::{NetMetrics, NetSnapshot, NodeId, RouteTable};

/// Re-selection policy of a [`Supervisor`].
#[derive(Debug, Clone, Copy)]
pub struct SupervisorPolicy {
    /// Relative score improvement a *quality* (non-failure) move must
    /// clear — the advisor's hysteresis threshold.
    pub hysteresis: f64,
    /// Backoff window opened by a re-selection advised outside any
    /// previous window, seconds.
    pub backoff_base: f64,
    /// Growth factor applied when a re-selection is advised while the
    /// previous window is still open (a flaky region).
    pub backoff_factor: f64,
    /// Upper bound on the backoff window, seconds.
    pub backoff_max: f64,
    /// Staleness cap merged into the selection request: nodes whose
    /// measurements are more than this many samples old are not
    /// selectable, and a placed node aging past it counts as failed.
    /// `None` disables age-based exclusion (confidence decay still
    /// penalizes stale candidates).
    pub max_staleness: Option<u32>,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            hysteresis: 0.25,
            backoff_base: 30.0,
            backoff_factor: 2.0,
            backoff_max: 480.0,
            max_staleness: Some(3),
        }
    }
}

/// What a [`Supervisor::check`] concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisorVerdict {
    /// The placement is alive and no better placement clears the
    /// hysteresis: keep running.
    Healthy,
    /// A better placement exists but the policy holds the move back
    /// (inside the backoff window).
    Hold {
        /// Seconds until the backoff window closes.
        backoff_remaining: f64,
    },
    /// Re-selection is advised; migrate to [`SupervisorCheck::advice`]'s
    /// best placement.
    Reselect {
        /// True when triggered by a failure (dead/stale node or severed
        /// route) rather than by quality improvement.
        failure: bool,
    },
}

/// One supervision epoch's full result.
#[derive(Debug, Clone)]
pub struct SupervisorCheck {
    /// The decision.
    pub verdict: SupervisorVerdict,
    /// The underlying comparison of the current placement against the
    /// best available one (always computed, whatever the verdict).
    pub advice: MigrationAdvice,
    /// Placed nodes currently considered failed: reported down, or
    /// staler than the policy's cap.
    pub failed: Vec<NodeId>,
    /// True when some route between placed nodes crosses a link
    /// reported down (the placement is partitioned).
    pub partitioned: bool,
}

/// A persistent, failure-aware re-selection supervisor for one running
/// placement.
pub struct Supervisor {
    advisor: Advisor,
    policy: SupervisorPolicy,
    /// End of the current backoff window, in the caller's clock.
    backoff_until: f64,
    /// Width of the most recently opened window.
    backoff: f64,
    /// Largest `now` ever seen by [`Supervisor::check`]: the clamp that
    /// keeps a stale caller clock from rewinding (and thereby resetting)
    /// an open backoff window.
    last_now: f64,
    reselections: u64,
    failure_reselections: u64,
}

impl Supervisor {
    /// A supervisor for `request` under `policy`. The policy's staleness
    /// cap is merged into the request's constraints so every refresh
    /// excludes too-stale candidates uniformly.
    pub fn new(mut request: SelectionRequest, policy: SupervisorPolicy) -> Supervisor {
        assert!(policy.hysteresis >= 0.0, "hysteresis must be non-negative");
        assert!(policy.backoff_base > 0.0, "backoff base must be positive");
        assert!(
            policy.backoff_factor >= 1.0,
            "backoff factor must not shrink the window"
        );
        assert!(
            policy.backoff_max >= policy.backoff_base,
            "backoff cap must cover the base window"
        );
        if let Some(cap) = policy.max_staleness {
            request.constraints.max_staleness = Some(match request.constraints.max_staleness {
                Some(existing) => existing.min(cap),
                None => cap,
            });
        }
        let hysteresis = policy.hysteresis;
        Supervisor {
            advisor: Advisor::new(request, hysteresis),
            policy,
            backoff_until: 0.0,
            backoff: 0.0,
            last_now: f64::NEG_INFINITY,
            reselections: 0,
            failure_reselections: 0,
        }
    }

    /// Total re-selections advised so far.
    pub fn reselections(&self) -> u64 {
        self.reselections
    }

    /// Re-selections advised because of a failure (subset of
    /// [`Supervisor::reselections`]).
    pub fn failure_reselections(&self) -> u64 {
        self.failure_reselections
    }

    /// End of the current backoff window, in the caller's clock.
    pub fn backoff_until(&self) -> f64 {
        self.backoff_until
    }

    /// One supervision epoch: classifies the health of `current` on
    /// `snapshot`, refreshes the best placement (incrementally, through
    /// the embedded advisor), and applies the policy. `now` is the
    /// caller's clock in seconds; a `now` earlier than any previously
    /// seen one (or a non-finite one) is **clamped** to the latest seen —
    /// time never moves backwards inside the supervisor, so a stale
    /// clock can neither rewind an open backoff window nor trick
    /// [`Supervisor::check`] into resetting a widened one back to base.
    ///
    /// Errors from the underlying selection (e.g. too few live nodes to
    /// host the application) are returned as-is; the supervisor stays
    /// primed and the caller should retry on a later epoch.
    pub fn check(
        &mut self,
        now: f64,
        snapshot: &NetSnapshot,
        current: &[NodeId],
        own: &OwnUsage,
    ) -> Result<SupervisorCheck, SelectError> {
        // Monotone clamp (NaN-safe: `f64::max` ignores a NaN operand, so
        // a NaN `now` degrades to "no time passed"). Without this, a
        // caller handing an older timestamp would make `now <
        // backoff_until` comparisons lie and `note_reselection` reset a
        // widened window to its base width.
        let now = now.max(self.last_now);
        self.last_now = now;
        let cap = self.policy.max_staleness;
        let failed: Vec<NodeId> = current
            .iter()
            .copied()
            .filter(|&n| {
                !snapshot.node_available(n) || cap.is_some_and(|c| snapshot.node_staleness(n) > c)
            })
            .collect();
        let partitioned = placement_partitioned(snapshot, current);
        let advice = self.advisor.advise(snapshot, current, own)?;
        let impaired = !failed.is_empty() || partitioned;
        // A failed placement re-selects whenever anywhere else is viable,
        // regardless of hysteresis: the advice's own `recommended` flag
        // still reflects the quality rule, but a dead node scores the
        // current placement near zero anyway.
        let moved = advice.best.nodes != current;
        let verdict = if impaired && moved {
            self.note_reselection(now, true);
            SupervisorVerdict::Reselect { failure: true }
        } else if advice.recommended && moved {
            if now < self.backoff_until {
                SupervisorVerdict::Hold {
                    backoff_remaining: self.backoff_until - now,
                }
            } else {
                self.note_reselection(now, false);
                SupervisorVerdict::Reselect { failure: false }
            }
        } else {
            SupervisorVerdict::Healthy
        };
        Ok(SupervisorCheck {
            verdict,
            advice,
            failed,
            partitioned,
        })
    }

    fn note_reselection(&mut self, now: f64, failure: bool) {
        self.reselections += 1;
        if failure {
            self.failure_reselections += 1;
        }
        // Inside the previous window: the region is flaky, widen it.
        self.backoff = if now < self.backoff_until {
            (self.backoff * self.policy.backoff_factor).min(self.policy.backoff_max)
        } else {
            self.policy.backoff_base
        };
        self.backoff_until = now + self.backoff;
    }
}

/// True when any route between two placed nodes crosses a link reported
/// down: the placement cannot communicate even though every node may be
/// up.
fn placement_partitioned(snapshot: &NetSnapshot, current: &[NodeId]) -> bool {
    if current.len() < 2 {
        return false;
    }
    let topo = snapshot.structure_arc();
    let table = RouteTable::build_for_sources(topo, current.iter().copied());
    for (i, &src) in current.iter().enumerate() {
        for &dst in &current[i + 1..] {
            match table.resolve(topo, src, dst) {
                Ok(path) => {
                    if path.hops.iter().any(|&(e, _)| !snapshot.link_available(e)) {
                        return true;
                    }
                }
                Err(_) => return true,
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SelectionRequest;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;
    use nodesel_topology::NetDelta;
    use std::sync::Arc;

    fn policy() -> SupervisorPolicy {
        SupervisorPolicy {
            hysteresis: 0.25,
            backoff_base: 10.0,
            backoff_factor: 2.0,
            backoff_max: 40.0,
            max_staleness: Some(2),
        }
    }

    fn snap_star(n: usize) -> (NetSnapshot, Vec<NodeId>) {
        let (topo, ids) = star(n, 100.0 * MBPS);
        (NetSnapshot::capture(Arc::new(topo)), ids)
    }

    #[test]
    fn healthy_placement_stays_put() {
        let (snap, ids) = snap_star(4);
        let placed = [ids[0], ids[1]];
        let own = OwnUsage::one_process_per_node(&placed);
        let mut sup = Supervisor::new(SelectionRequest::balanced(2), policy());
        let check = sup.check(0.0, &snap, &placed, &own).unwrap();
        assert_eq!(check.verdict, SupervisorVerdict::Healthy);
        assert!(check.failed.is_empty());
        assert!(!check.partitioned);
        assert_eq!(sup.reselections(), 0);
    }

    #[test]
    fn dead_node_triggers_immediate_reselection() {
        let (snap, ids) = snap_star(4);
        let placed = [ids[0], ids[1]];
        let own = OwnUsage::one_process_per_node(&placed);
        let mut sup = Supervisor::new(SelectionRequest::balanced(2), policy());
        sup.check(0.0, &snap, &placed, &own).unwrap();
        let down = snap.apply(&NetDelta {
            avail_nodes: vec![(ids[0], false)],
            ..NetDelta::default()
        });
        let check = sup.check(5.0, &down, &placed, &own).unwrap();
        assert_eq!(check.failed, vec![ids[0]]);
        assert_eq!(check.verdict, SupervisorVerdict::Reselect { failure: true });
        // The advised placement avoids the dead node.
        assert!(!check.advice.best.nodes.contains(&ids[0]));
        assert_eq!(sup.failure_reselections(), 1);
    }

    #[test]
    fn stale_node_counts_as_failed_past_the_cap() {
        let (snap, ids) = snap_star(4);
        let placed = [ids[0], ids[1]];
        let own = OwnUsage::one_process_per_node(&placed);
        let mut sup = Supervisor::new(SelectionRequest::balanced(2), policy());
        sup.check(0.0, &snap, &placed, &own).unwrap();
        // Two missed samples: within the cap, still healthy.
        let aging = snap.apply(&NetDelta {
            stale_nodes: vec![(ids[0], 2)],
            ..NetDelta::default()
        });
        let check = sup.check(5.0, &aging, &placed, &own).unwrap();
        assert!(check.failed.is_empty());
        // Three missed samples: past the cap, the node's state is unknown.
        let unknown = aging.apply(&NetDelta {
            stale_nodes: vec![(ids[0], 3)],
            ..NetDelta::default()
        });
        let check = sup.check(10.0, &unknown, &placed, &own).unwrap();
        assert_eq!(check.failed, vec![ids[0]]);
        assert_eq!(check.verdict, SupervisorVerdict::Reselect { failure: true });
        assert!(!check.advice.best.nodes.contains(&ids[0]));
    }

    #[test]
    fn severed_route_is_a_partition_failure() {
        let (snap, ids) = snap_star(3);
        let placed = [ids[0], ids[1]];
        let own = OwnUsage::one_process_per_node(&placed);
        let mut sup = Supervisor::new(SelectionRequest::balanced(2), policy());
        sup.check(0.0, &snap, &placed, &own).unwrap();
        // Kill the access link of ids[0]: both nodes are up, but they
        // cannot talk.
        let e0 = snap.structure_arc().edge_ids().next().unwrap();
        let cut = snap.apply(&NetDelta {
            avail_links: vec![(e0, false)],
            ..NetDelta::default()
        });
        let check = sup.check(5.0, &cut, &placed, &own).unwrap();
        assert!(check.failed.is_empty());
        assert!(check.partitioned);
        assert_eq!(check.verdict, SupervisorVerdict::Reselect { failure: true });
        assert!(!check.advice.best.nodes.contains(&ids[0]));
    }

    #[test]
    fn hysteresis_and_backoff_gate_quality_moves() {
        let (snap, ids) = snap_star(4);
        let placed = [ids[0], ids[1]];
        let own = OwnUsage::one_process_per_node(&placed);
        let mut sup = Supervisor::new(SelectionRequest::balanced(2), policy());
        sup.check(0.0, &snap, &placed, &own).unwrap();
        // Mild competition on ids[0]: below the 25% hysteresis bar.
        let mild = snap.apply(&NetDelta {
            nodes: vec![(ids[0], 1.2)],
            ..NetDelta::default()
        });
        let check = sup.check(5.0, &mild, &placed, &own).unwrap();
        assert_eq!(check.verdict, SupervisorVerdict::Healthy);
        // Heavy competition: clears hysteresis, advises a move and opens
        // a backoff window.
        let heavy = snap.apply(&NetDelta {
            nodes: vec![(ids[0], 4.0)],
            ..NetDelta::default()
        });
        let check = sup.check(10.0, &heavy, &placed, &own).unwrap();
        assert_eq!(
            check.verdict,
            SupervisorVerdict::Reselect { failure: false }
        );
        assert_eq!(sup.reselections(), 1);
        // Caller ignored the advice; the same pressure inside the window
        // is held, not re-advised.
        let check = sup.check(12.0, &heavy, &placed, &own).unwrap();
        let SupervisorVerdict::Hold { backoff_remaining } = check.verdict else {
            panic!("expected Hold, got {:?}", check.verdict);
        };
        assert!((backoff_remaining - 8.0).abs() < 1e-9);
        assert_eq!(sup.reselections(), 1);
        // After the window closes the move is advised again.
        let check = sup.check(25.0, &heavy, &placed, &own).unwrap();
        assert_eq!(
            check.verdict,
            SupervisorVerdict::Reselect { failure: false }
        );
        assert_eq!(sup.reselections(), 2);
    }

    #[test]
    fn flaky_region_grows_the_backoff_window() {
        let (snap, ids) = snap_star(5);
        let placed = [ids[0], ids[1]];
        let own = OwnUsage::one_process_per_node(&placed);
        let mut sup = Supervisor::new(SelectionRequest::balanced(2), policy());
        sup.check(0.0, &snap, &placed, &own).unwrap();
        let kill = |n: NodeId, base: &NetSnapshot| {
            base.apply(&NetDelta {
                avail_nodes: vec![(n, false)],
                ..NetDelta::default()
            })
        };
        // Repeated failures inside each window: 10 → 20 → 40 (capped).
        sup.check(1.0, &kill(ids[0], &snap), &placed, &own).unwrap();
        assert!((sup.backoff_until() - 11.0).abs() < 1e-9);
        sup.check(2.0, &kill(ids[1], &snap), &placed, &own).unwrap();
        assert!((sup.backoff_until() - 22.0).abs() < 1e-9);
        sup.check(3.0, &kill(ids[0], &snap), &placed, &own).unwrap();
        assert!((sup.backoff_until() - 43.0).abs() < 1e-9);
        sup.check(4.0, &kill(ids[1], &snap), &placed, &own).unwrap();
        assert!((sup.backoff_until() - 44.0).abs() < 1e-9);
        assert_eq!(sup.failure_reselections(), 4);
        // A calm period resets the window to its base width.
        sup.check(100.0, &kill(ids[0], &snap), &placed, &own)
            .unwrap();
        assert!((sup.backoff_until() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn stale_clock_cannot_rewind_or_reset_backoff() {
        let (snap, ids) = snap_star(5);
        let placed = [ids[0], ids[1]];
        let own = OwnUsage::one_process_per_node(&placed);
        let mut sup = Supervisor::new(SelectionRequest::balanced(2), policy());
        sup.check(0.0, &snap, &placed, &own).unwrap();
        let kill = |n: NodeId, base: &NetSnapshot| {
            base.apply(&NetDelta {
                avail_nodes: vec![(n, false)],
                ..NetDelta::default()
            })
        };
        // Two failures inside the window widen it: 10 → 20 (until 22).
        sup.check(1.0, &kill(ids[0], &snap), &placed, &own).unwrap();
        sup.check(2.0, &kill(ids[1], &snap), &placed, &own).unwrap();
        assert!((sup.backoff_until() - 22.0).abs() < 1e-9);
        // A stale clock (t=0, before the window) is clamped to the last
        // seen t=2: the failure still lands *inside* the window, so the
        // window keeps widening (20 → 40) instead of resetting to base —
        // which is what an unclamped `now=0` outside-the-window branch
        // would have done after the window closed.
        sup.check(0.0, &kill(ids[0], &snap), &placed, &own).unwrap();
        assert!(
            (sup.backoff_until() - 42.0).abs() < 1e-9,
            "stale clock reset the backoff: until = {}",
            sup.backoff_until()
        );
        // Quality moves consulted with a rewound clock stay held with the
        // remaining time measured from the clamped (latest) instant.
        let heavy = snap.apply(&NetDelta {
            nodes: vec![(ids[0], 4.0), (ids[1], 4.0)],
            ..NetDelta::default()
        });
        let check = sup.check(1.0, &heavy, &placed, &own).unwrap();
        let SupervisorVerdict::Hold { backoff_remaining } = check.verdict else {
            panic!("expected Hold, got {:?}", check.verdict);
        };
        assert!((backoff_remaining - 40.0).abs() < 1e-9);
        // Time resumes from the clamp, not from the stale reading.
        let check = sup.check(50.0, &heavy, &placed, &own).unwrap();
        assert!(matches!(check.verdict, SupervisorVerdict::Reselect { .. }));
    }

    #[test]
    fn too_many_failures_surface_as_select_error() {
        let (snap, ids) = snap_star(3);
        let placed = [ids[0], ids[1]];
        let own = OwnUsage::one_process_per_node(&placed);
        let mut sup = Supervisor::new(SelectionRequest::balanced(2), policy());
        sup.check(0.0, &snap, &placed, &own).unwrap();
        // Two of three leaves die: no 2-node placement exists.
        let down = snap.apply(&NetDelta {
            avail_nodes: vec![(ids[0], false), (ids[1], false)],
            ..NetDelta::default()
        });
        assert!(matches!(
            sup.check(5.0, &down, &placed, &own),
            Err(SelectError::NotEnoughNodes { .. })
        ));
        // The supervisor stays primed: recovery on a later epoch works.
        let back = down.apply(&NetDelta {
            avail_nodes: vec![(ids[0], true), (ids[1], true)],
            ..NetDelta::default()
        });
        let check = sup.check(10.0, &back, &placed, &own).unwrap();
        assert_eq!(check.verdict, SupervisorVerdict::Healthy);
    }
}
