//! The magnetic-resonance-imaging workload (paper §4.3, the *Fiasco* fMRI
//! analysis on the `epi` dataset).
//!
//! The MRI pipeline reconstructs and analyzes a long sequence of functional
//! images. Its compute-intensive region runs a **master–slave protocol**:
//! the master ships each image to an idle slave, the slave reconstructs it
//! and returns the result. Self-scheduling means a slowed node simply
//! handles fewer images, which is why Table 1 shows MRI degrading far more
//! gracefully under load and traffic than the loosely-synchronous codes —
//! and why node selection helps it less (8–14% vs 16–35%).
//!
//! # Calibration
//!
//! The paper reports 540 s on 4 unloaded nodes (1 master + 3 slaves). We
//! model the `epi` dataset as 1080 images of ~1.32 reference-CPU-seconds
//! each with a 500 KB input slice and 250 KB result, which reproduces the
//! 540 s reference on the Figure 4 testbed.

use crate::master_slave::MasterSlaveProgram;
use nodesel_topology::units::MBPS;

/// Number of work units (images) in the modeled `epi` dataset.
pub const PAPER_UNITS: usize = 1080;

/// Reference-CPU-seconds per image on a slave.
///
/// Calibrated so that the full pipeline — including the transfer
/// contention of three lockstep slaves sharing the master's access link —
/// reproduces the paper's 540 s unloaded reference.
pub const UNIT_WORK: f64 = 1.3196;

/// Bits shipped master → slave per image (500 KB).
pub const INPUT_BITS: f64 = 4.0 * MBPS;

/// Bits shipped slave → master per image (250 KB).
pub const OUTPUT_BITS: f64 = 2.0 * MBPS;

/// The MRI program with a custom unit count.
pub fn mri_program(units: usize) -> MasterSlaveProgram {
    MasterSlaveProgram {
        name: "MRI",
        units,
        unit_work: UNIT_WORK,
        input_bits: INPUT_BITS,
        output_bits: OUTPUT_BITS,
        master_work: 0.0,
    }
}

/// The paper's configuration: the full `epi` dataset.
pub fn mri_epi() -> MasterSlaveProgram {
    mri_program(PAPER_UNITS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master_slave::launch_master_slave;
    use nodesel_simnet::Sim;
    use nodesel_topology::testbeds::cmu_testbed;

    #[test]
    fn unloaded_reference_time_matches_paper() {
        let tb = cmu_testbed();
        let nodes = [tb.m(1), tb.m(2), tb.m(3), tb.m(4)];
        let mut sim = Sim::new(tb.topo);
        let h = launch_master_slave(&mut sim, mri_epi(), &nodes);
        sim.run();
        let t = h.elapsed().unwrap();
        // Paper reference: 540 s on the unloaded testbed.
        assert!((t - 540.0).abs() < 15.0, "unloaded MRI took {t}");
    }

    #[test]
    fn program_shape() {
        let p = mri_epi();
        assert_eq!(p.units, PAPER_UNITS);
        assert!((p.total_work() - 1080.0 * UNIT_WORK).abs() < 1e-9);
    }
}
