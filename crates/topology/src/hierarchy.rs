//! Domain hierarchy over a flat [`Topology`].
//!
//! The flat selection engines are near-linear, but "near-linear over
//! 100 000 nodes" is still milliseconds per call and the quality scorer
//! wants per-source BFS rows that are quadratic to precompute. A
//! [`Hierarchy`] splits the graph into *domains* — the same partition
//! unit [`crate::ShardPlan`] uses for the parallel simulator — and
//! summarizes everything that crosses a domain boundary:
//!
//! * each domain owns an extracted sub-[`Topology`] with local ids and a
//!   mapping back to the global graph, so the flat engines can run
//!   unmodified *inside* a domain;
//! * *border nodes* are the endpoints of boundary links, the only places
//!   traffic can enter or leave a domain;
//! * the [`AggregateGraph`] has one vertex per domain and one edge per
//!   adjacent domain pair, carrying trunk capacity/latency summaries and
//!   the list of underlying links so dynamic bandwidth can be recomputed
//!   from a live [`crate::NetMetrics`] view.
//!
//! Domain membership comes from [`Topology::domains`] when the topology
//! carries an explicit assignment (hierarchical testbeds persist one),
//! and falls back to connected components otherwise. Route *estimates*
//! across the hierarchy live in [`crate::route_approx`].

use std::collections::BTreeMap;

use crate::{Direction, EdgeId, NodeId, ShardPlan, Topology};

/// A sub-topology extracted from a global graph, with both id mappings.
///
/// Local node `i` of [`Extract::sub`] is global node `nodes[i]`; local
/// edge `j` is global edge `edges[j]`. Nodes are extracted in ascending
/// global order and edges in ascending global edge order, so insertion-
/// order tie-breaking inside the sub-topology (BFS, sorted cursors)
/// matches what the same algorithm would do on the global graph
/// restricted to the extract. Link endpoint order is preserved, so
/// [`Direction`] means the same thing through the mapping. Conditions
/// (load averages, link utilizations) are copied as of extraction time.
#[derive(Debug, Clone)]
pub struct Extract {
    /// The extracted topology with local ids.
    pub sub: Topology,
    /// Global node id of each local node, ascending.
    pub nodes: Vec<NodeId>,
    /// Global edge id of each local edge, ascending.
    pub edges: Vec<EdgeId>,
}

/// One domain of a [`Hierarchy`].
#[derive(Debug, Clone)]
pub struct Domain {
    /// Global ids of this domain's compute nodes, ascending.
    computes: Vec<NodeId>,
    /// Global ids of the domain's border nodes — endpoints of boundary
    /// links that live in this domain — ascending, deduplicated. Empty
    /// for a domain with no links to the rest of the graph.
    borders: Vec<NodeId>,
    /// The domain's sub-topology and id maps.
    extract: Extract,
}

impl Domain {
    /// Global ids of every member node, ascending.
    pub fn members(&self) -> &[NodeId] {
        &self.extract.nodes
    }

    /// Global ids of the domain's compute nodes, ascending.
    pub fn computes(&self) -> &[NodeId] {
        &self.computes
    }

    /// Global ids of the domain's border nodes, ascending.
    pub fn borders(&self) -> &[NodeId] {
        &self.borders
    }

    /// The extracted sub-topology with id maps.
    pub fn extract(&self) -> &Extract {
        &self.extract
    }

    /// The domain's sub-topology (local ids).
    pub fn sub(&self) -> &Topology {
        &self.extract.sub
    }
}

/// One edge of the [`AggregateGraph`]: the bundle of all links joining
/// one pair of domains.
#[derive(Debug, Clone)]
pub struct AggEdge {
    /// Lower domain id of the pair.
    pub a: u16,
    /// Higher domain id of the pair.
    pub b: u16,
    /// Static trunk capacity summary: the sum over bundled links of each
    /// link's minimum directional capacity (an upper bound on what the
    /// bundle can carry one way, loads ignored).
    pub capacity: f64,
    /// Minimum one-way latency over the bundled links.
    pub latency: f64,
    /// The underlying global links, in edge-id order.
    pub links: Vec<EdgeId>,
}

impl AggEdge {
    /// Best currently-available bandwidth across the bundle under `net`:
    /// the max over bundled links of the link's available bandwidth. A
    /// single flow rides one trunk, so the bundle is as good as its best
    /// member (parallel trunks widen aggregate throughput, not one
    /// route's bottleneck).
    pub fn best_bw(&self, net: &impl crate::NetMetrics) -> f64 {
        self.links.iter().map(|&e| net.bw(e)).fold(0.0, f64::max)
    }
}

/// The inter-domain graph: one vertex per domain, one [`AggEdge`] per
/// adjacent domain pair.
#[derive(Debug, Clone)]
pub struct AggregateGraph {
    k: u16,
    edges: Vec<AggEdge>,
    /// Incident aggregate-edge indices per domain, in edge order.
    adj: Vec<Vec<u32>>,
}

impl AggregateGraph {
    /// Number of domains (vertices).
    pub fn num_domains(&self) -> u16 {
        self.k
    }

    /// All aggregate edges, ordered by `(a, b)` pair.
    pub fn edges(&self) -> &[AggEdge] {
        &self.edges
    }

    /// Indices into [`AggregateGraph::edges`] incident to domain `d`.
    pub fn incident(&self, d: u16) -> &[u32] {
        &self.adj[d as usize]
    }
}

/// A domain decomposition of a [`Topology`] with per-domain extracts,
/// border nodes and an aggregated inter-domain graph.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    node_domain: Vec<u16>,
    /// Local id of each global node inside its domain's extract.
    local_id: Vec<u32>,
    domains: Vec<Domain>,
    aggregate: AggregateGraph,
    /// Global links whose endpoints live in different domains, in
    /// edge-id order (the union of all aggregate-edge bundles).
    boundary: Vec<EdgeId>,
}

impl Hierarchy {
    /// Builds the hierarchy for `topo`. Uses the topology's persisted
    /// domain assignment ([`Topology::domains`]) when present, otherwise
    /// one domain per connected component. Panics if a persisted
    /// assignment is malformed (wrong length or gapped ids) — persisted
    /// files are validated by [`crate::io::from_json`] before they get
    /// here.
    pub fn new(topo: &Topology) -> Hierarchy {
        let plan = match topo.domains() {
            Some(d) => ShardPlan::from_assignment(topo, d),
            None => ShardPlan::components(topo),
        };
        Self::from_plan(topo, &plan)
    }

    /// Builds the hierarchy from an explicit shard plan over `topo`.
    pub fn from_plan(topo: &Topology, plan: &ShardPlan) -> Hierarchy {
        let k = plan.num_domains() as usize;
        let node_domain = plan.node_domain().to_vec();
        let n = topo.node_count();

        // Membership and local ids, in ascending global order per domain.
        let mut local_id = vec![0u32; n];
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for id in topo.node_ids() {
            let d = node_domain[id.index()] as usize;
            local_id[id.index()] = members[d].len() as u32;
            members[d].push(id);
        }

        // Border nodes: endpoints of boundary links, bucketed by domain.
        let mut borders: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for &e in plan.boundary_links() {
            let l = topo.link(e);
            for end in [l.a(), l.b()] {
                borders[node_domain[end.index()] as usize].push(end);
            }
        }
        for b in &mut borders {
            b.sort_unstable();
            b.dedup();
        }

        // Extract each domain's sub-topology: nodes first (ascending, so
        // local ids match `local_id`), then intra-domain links in global
        // edge order. Cross-domain links are bucketed into aggregate
        // edges keyed by the (low, high) domain pair.
        let mut subs: Vec<Topology> = (0..k).map(|_| Topology::new()).collect();
        for id in topo.node_ids() {
            let node = topo.node(id);
            let sub = &mut subs[node_domain[id.index()] as usize];
            if node.is_compute() {
                let local = sub.add_compute_node(node.name(), node.speed());
                sub.set_load_avg(local, node.load_avg());
            } else {
                sub.add_network_node(node.name());
            }
        }
        let mut edge_maps: Vec<Vec<EdgeId>> = vec![Vec::new(); k];
        let mut agg: BTreeMap<(u16, u16), AggEdge> = BTreeMap::new();
        for e in topo.edge_ids() {
            let l = topo.link(e);
            let (da, db) = (node_domain[l.a().index()], node_domain[l.b().index()]);
            if da == db {
                let sub = &mut subs[da as usize];
                let local = sub.add_link_full(
                    NodeId::from_index(local_id[l.a().index()] as usize),
                    NodeId::from_index(local_id[l.b().index()] as usize),
                    l.capacity(Direction::AtoB),
                    l.capacity(Direction::BtoA),
                    l.latency(),
                );
                sub.set_link_used(local, Direction::AtoB, l.used(Direction::AtoB));
                sub.set_link_used(local, Direction::BtoA, l.used(Direction::BtoA));
                edge_maps[da as usize].push(e);
            } else {
                let key = (da.min(db), da.max(db));
                let entry = agg.entry(key).or_insert(AggEdge {
                    a: key.0,
                    b: key.1,
                    capacity: 0.0,
                    latency: f64::INFINITY,
                    links: Vec::new(),
                });
                entry.capacity += l.capacity(Direction::AtoB).min(l.capacity(Direction::BtoA));
                entry.latency = entry.latency.min(l.latency());
                entry.links.push(e);
            }
        }

        let edges: Vec<AggEdge> = agg.into_values().collect();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (i, e) in edges.iter().enumerate() {
            adj[e.a as usize].push(i as u32);
            adj[e.b as usize].push(i as u32);
        }

        let domains = members
            .into_iter()
            .zip(borders)
            .zip(subs.into_iter().zip(edge_maps))
            .map(|((nodes, borders), (sub, edges))| Domain {
                computes: nodes
                    .iter()
                    .copied()
                    .filter(|&id| topo.node(id).is_compute())
                    .collect(),
                borders,
                extract: Extract { sub, nodes, edges },
            })
            .collect();

        Hierarchy {
            node_domain,
            local_id,
            domains,
            aggregate: AggregateGraph {
                k: k as u16,
                edges,
                adj,
            },
            boundary: plan.boundary_links().to_vec(),
        }
    }

    /// Number of domains.
    pub fn num_domains(&self) -> u16 {
        self.domains.len() as u16
    }

    /// Domain of global node `n`.
    pub fn domain_of(&self, n: NodeId) -> u16 {
        self.node_domain[n.index()]
    }

    /// The full node→domain assignment, indexed by [`NodeId::index`].
    pub fn node_domain(&self) -> &[u16] {
        &self.node_domain
    }

    /// Local id of global node `n` inside its domain's extract.
    pub fn local_id(&self, n: NodeId) -> NodeId {
        NodeId::from_index(self.local_id[n.index()] as usize)
    }

    /// Domain `d`.
    pub fn domain(&self, d: u16) -> &Domain {
        &self.domains[d as usize]
    }

    /// All domains, indexed by domain id.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// The aggregated inter-domain graph.
    pub fn aggregate(&self) -> &AggregateGraph {
        &self.aggregate
    }

    /// Global links crossing domain boundaries, in edge-id order.
    pub fn boundary_links(&self) -> &[EdgeId] {
        &self.boundary
    }

    /// Extracts the union of a set of domains from `topo` — the merged
    /// sub-topology *including* the trunk links interior to the set —
    /// so the flat engines can run across several adjacent domains when
    /// no single domain can host a request. `topo` must be the topology
    /// this hierarchy was built from; `set` must contain valid domain
    /// ids. Allocates per call: merging is the rare fallback path, not
    /// the steady state.
    pub fn merged(&self, topo: &Topology, set: &[u16]) -> Extract {
        let mut in_set = vec![false; self.domains.len()];
        for &d in set {
            in_set[d as usize] = true;
        }
        let mut sub = Topology::new();
        let mut nodes = Vec::new();
        let mut local = vec![u32::MAX; topo.node_count()];
        for id in topo.node_ids() {
            if !in_set[self.node_domain[id.index()] as usize] {
                continue;
            }
            let node = topo.node(id);
            local[id.index()] = nodes.len() as u32;
            nodes.push(id);
            if node.is_compute() {
                let l = sub.add_compute_node(node.name(), node.speed());
                sub.set_load_avg(l, node.load_avg());
            } else {
                sub.add_network_node(node.name());
            }
        }
        let mut edges = Vec::new();
        for e in topo.edge_ids() {
            let l = topo.link(e);
            let (da, db) = (
                self.node_domain[l.a().index()] as usize,
                self.node_domain[l.b().index()] as usize,
            );
            if !(in_set[da] && in_set[db]) {
                continue;
            }
            let le = sub.add_link_full(
                NodeId::from_index(local[l.a().index()] as usize),
                NodeId::from_index(local[l.b().index()] as usize),
                l.capacity(Direction::AtoB),
                l.capacity(Direction::BtoA),
                l.latency(),
            );
            sub.set_link_used(le, Direction::AtoB, l.used(Direction::AtoB));
            sub.set_link_used(le, Direction::BtoA, l.used(Direction::BtoA));
            edges.push(e);
        }
        Extract { sub, nodes, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::hierarchical;
    use crate::units::MBPS;

    fn two_domain_dumbbell() -> (Topology, EdgeId) {
        // a0 - a1 === b0 - b1, trunk a1-b0.
        let mut t = Topology::new();
        let a0 = t.add_compute_node("a0", 1.0);
        let a1 = t.add_network_node("a1");
        let b0 = t.add_network_node("b0");
        let b1 = t.add_compute_node("b1", 2.0);
        t.add_link(a0, a1, 100.0 * MBPS);
        let trunk = t.add_link_full(a1, b0, 10.0 * MBPS, 20.0 * MBPS, 5e-3);
        t.add_link(b0, b1, 100.0 * MBPS);
        t.set_domains(vec![0, 0, 1, 1]);
        t.set_load_avg(a0, 1.5);
        (t, trunk)
    }

    #[test]
    fn builds_domains_borders_and_aggregate() {
        let (t, trunk) = two_domain_dumbbell();
        let h = Hierarchy::new(&t);
        assert_eq!(h.num_domains(), 2);
        let d0 = h.domain(0);
        assert_eq!(d0.members().len(), 2);
        assert_eq!(d0.computes(), &[NodeId::from_index(0)]);
        assert_eq!(d0.borders(), &[NodeId::from_index(1)]);
        let d1 = h.domain(1);
        assert_eq!(d1.borders(), &[NodeId::from_index(2)]);
        assert_eq!(h.boundary_links(), &[trunk]);

        // Sub-topologies carry the conditions and the id maps line up.
        assert_eq!(d0.sub().node_count(), 2);
        assert_eq!(d0.sub().link_count(), 1);
        let local_a0 = h.local_id(NodeId::from_index(0));
        assert_eq!(d0.sub().node(local_a0).load_avg(), 1.5);
        assert_eq!(d0.extract().nodes[local_a0.index()], NodeId::from_index(0));

        // Aggregate: one edge, trunk capacity = min-direction capacity.
        let agg = h.aggregate();
        assert_eq!(agg.edges().len(), 1);
        let e = &agg.edges()[0];
        assert_eq!((e.a, e.b), (0, 1));
        assert_eq!(e.capacity, 10.0 * MBPS);
        assert_eq!(e.latency, 5e-3);
        assert_eq!(e.links, vec![trunk]);
        assert_eq!(agg.incident(0), &[0]);
        assert_eq!(agg.incident(1), &[0]);
    }

    #[test]
    fn falls_back_to_connected_components() {
        let mut t = Topology::new();
        let a = t.add_compute_node("a", 1.0);
        let b = t.add_compute_node("b", 1.0);
        t.add_link(a, b, 100.0 * MBPS);
        let c = t.add_compute_node("c", 1.0);
        let d = t.add_compute_node("d", 1.0);
        t.add_link(c, d, 100.0 * MBPS);
        let h = Hierarchy::new(&t);
        assert_eq!(h.num_domains(), 2);
        assert!(h.boundary_links().is_empty());
        assert!(h.domain(0).borders().is_empty());
        assert_eq!(h.aggregate().edges().len(), 0);
    }

    #[test]
    fn merged_extract_includes_interior_trunks() {
        let (t, trunk) = two_domain_dumbbell();
        let h = Hierarchy::new(&t);
        let m = h.merged(&t, &[0, 1]);
        assert_eq!(m.sub.node_count(), 4);
        assert_eq!(m.sub.link_count(), 3);
        assert!(m.edges.contains(&trunk));
        // A one-domain merge is the domain's own extract.
        let solo = h.merged(&t, &[1]);
        assert_eq!(solo.nodes, h.domain(1).members());
        assert_eq!(solo.sub.link_count(), 1);
    }

    #[test]
    fn hierarchical_builder_round_trips_through_hierarchy() {
        let (t, hosts) = hierarchical(4, 5, 100.0 * MBPS, 50.0 * MBPS, 2e-3);
        let h = Hierarchy::new(&t);
        assert_eq!(h.num_domains(), 4);
        for (d, dom_hosts) in hosts.iter().enumerate() {
            assert_eq!(h.domain(d as u16).computes(), dom_hosts.as_slice());
            // Star domains have exactly one border: the hub.
            assert_eq!(h.domain(d as u16).borders().len(), 1);
        }
        // Binary-tree trunk graph: k-1 aggregate edges.
        assert_eq!(h.aggregate().edges().len(), 3);
    }
}
