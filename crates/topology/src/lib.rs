//! Logical network topology graphs.
//!
//! This crate implements the *logical network topology graph* described in
//! §3.1 of "Automatic Node Selection for High Performance Applications on
//! Networks" (PPoPP '99). The graph is the single data model shared by the
//! measurement layer (`nodesel-remos`), the simulator (`nodesel-simnet`) and
//! the selection algorithms (`nodesel-core`):
//!
//! * nodes are either **compute nodes** (processors available for
//!   application execution) or **network nodes** (switches/routers that only
//!   forward traffic);
//! * edges are communication links annotated with a peak capacity
//!   ([`Link::maxbw`]) and the currently available bandwidth ([`Link::bw`]);
//! * every compute node carries a load average from which the available CPU
//!   fraction `cpu = 1 / (1 + loadavg)` is derived ([`Node::cpu`]).
//!
//! The crate provides:
//!
//! * [`Topology`] — the annotated graph with deterministic iteration order;
//! * [`GraphView`] — a cheap overlay that supports the edge-deletion loops
//!   at the heart of the paper's algorithms (Figures 2 and 3) without
//!   mutating the underlying graph;
//! * [`UnionFind`] — near-linear incremental connectivity with
//!   per-component aggregates, powering the sorted-edge fast paths in
//!   `nodesel-core`;
//! * [`route`] — static routing (unique tree paths, shortest-path tables for
//!   cyclic graphs) and bottleneck-bandwidth queries;
//! * [`builders`] and [`testbeds`] — canonical topologies, including the
//!   Figure 1 example network and the Figure 4 CMU testbed used throughout
//!   the paper's evaluation;
//! * [`dot`] — Graphviz export for visual inspection of selections.
//!
//! # Example
//!
//! ```
//! use nodesel_topology::{Topology, NodeKind, units::MBPS};
//!
//! let mut t = Topology::new();
//! let sw = t.add_network_node("switch");
//! let a = t.add_compute_node("a", 1.0);
//! let b = t.add_compute_node("b", 1.0);
//! t.add_link(sw, a, 100.0 * MBPS);
//! t.add_link(sw, b, 100.0 * MBPS);
//! t.set_load_avg(a, 1.0); // one competing job => cpu == 0.5
//! assert_eq!(t.node(a).cpu(), 0.5);
//! let r = t.routes();
//! assert_eq!(r.path(a, b).unwrap().len(), 2); // a-sw, sw-b
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod builders;
pub mod dot;
mod graph;
pub mod hierarchy;
mod ids;
pub mod io;
mod link;
pub mod maxmin;
pub mod metrics;
mod node;
pub mod residual;
pub mod route;
pub mod route_approx;
pub mod shard;
pub mod snapshot;
pub mod testbeds;
pub mod unionfind;
pub mod units;
mod view;

pub use graph::Topology;
pub use hierarchy::Hierarchy;
pub use ids::{EdgeId, NodeId};
pub use link::{Direction, Link};
pub use node::{Node, NodeKind};
pub use residual::{LedgerState, ResidualView, ResourceClaim};
pub use route::{Path, RouteScratch, RouteTable, Routes};
pub use route_approx::{fan_out, RouteSketch};
pub use shard::ShardPlan;
pub use snapshot::{staleness_confidence, NetDelta, NetMetrics, NetSnapshot};
pub use unionfind::UnionFind;
pub use view::{Component, GraphView};

/// Errors produced by topology construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A node name was used twice; names must be unique within a topology.
    DuplicateName(String),
    /// A queried node name does not exist.
    UnknownName(String),
    /// The two endpoints of a route query are not connected.
    Disconnected(NodeId, NodeId),
    /// An operation required a compute node but got a network node.
    NotComputeNode(NodeId),
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TopologyError::DuplicateName(n) => write!(f, "duplicate node name {n:?}"),
            TopologyError::UnknownName(n) => write!(f, "unknown node name {n:?}"),
            TopologyError::Disconnected(a, b) => {
                write!(f, "nodes {a:?} and {b:?} are not connected")
            }
            TopologyError::NotComputeNode(n) => write!(f, "node {n:?} is not a compute node"),
        }
    }
}

impl std::error::Error for TopologyError {}
