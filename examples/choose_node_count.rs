//! Choosing how many nodes to run on (§3.4, "Variable number of execution
//! nodes"): couple the balanced selection with a performance model of the
//! FFT and sweep the node count on a partially loaded testbed.
//!
//! Run with: `cargo run -p nodesel-experiments --example choose_node_count`

use nodesel_apps::fft::fft_1k;
use nodesel_core::sizing::select_node_count;
use nodesel_core::{Constraints, Quality, Weights};
use nodesel_topology::testbeds::cmu_testbed;

fn main() {
    let tb = cmu_testbed();
    let mut topo = tb.topo.clone();
    // Half the testbed is busy: machines m-10..m-18 carry 1-3 jobs each.
    for i in 10..=18 {
        topo.set_load_avg(tb.m(i), 1.0 + ((i - 10) % 3) as f64);
    }

    let program = fft_1k();
    let model = |m: usize, q: &Quality| program.estimated_runtime(m, q.min_cpu, q.min_bw);

    let sized = select_node_count(&topo, 2..=12, &model, &Constraints::none(), Weights::EQUAL)
        .expect("testbed has nodes");

    println!("FFT (1K) node-count sweep on the half-loaded testbed:");
    println!("{:>3}  {:>14}", "m", "predicted (s)");
    for (m, t) in &sized.sweep {
        let marker = if *m == sized.count { "  <= chosen" } else { "" };
        println!("{m:>3}  {t:>14.1}{marker}");
    }
    let names: Vec<_> = sized
        .selection
        .nodes
        .iter()
        .map(|&n| topo.node(n).name().to_string())
        .collect();
    println!(
        "\nchosen m = {} on {:?} (min cpu {:.2}, min bw {:.0} Mbps)",
        sized.count,
        names,
        sized.selection.quality.min_cpu,
        sized.selection.quality.min_bw / 1e6
    );
}
