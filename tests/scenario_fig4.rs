//! Integration test of the Figure 4 scenario and its variations: automatic
//! selection must steer around congestion wherever the stream is placed.

use nodesel_core::{balanced, Constraints, GreedyPolicy, Weights};
use nodesel_experiments::run_fig4_scenario;
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;

#[test]
fn published_scenario_avoids_the_stream() {
    let outcome = run_fig4_scenario();
    assert!(outcome.avoids_stream, "selected {:?}", outcome.selected);
    assert_eq!(outcome.selected.len(), 4);
}

/// Generalization: for several stream placements, the automatically
/// selected set's pairwise routes never cross a link the stream uses.
#[test]
fn selection_avoids_streams_everywhere() {
    for (src, dst) in [(1usize, 7usize), (2, 17), (7, 18), (3, 5)] {
        let tb = cmu_testbed();
        let routes = tb.topo.routes();
        let stream_links: Vec<_> = routes
            .path(tb.m(src), tb.m(dst))
            .unwrap()
            .hops
            .iter()
            .map(|&(e, _)| e)
            .collect();
        let mut sim = Sim::new(tb.topo.clone());
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        sim.start_transfer(tb.m(src), tb.m(dst), 1e15, |_| {});
        sim.run_for(60.0);
        let snapshot = remos.snapshot(&sim).to_topology();
        let sel = balanced(
            &snapshot,
            4,
            Weights::EQUAL,
            &Constraints::none(),
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        for (i, &a) in sel.nodes.iter().enumerate() {
            for &b in sel.nodes.iter().skip(i + 1) {
                let p = routes.path(a, b).unwrap();
                assert!(
                    !p.hops.iter().any(|&(e, _)| stream_links.contains(&e)),
                    "stream m-{src}->m-{dst}: pair {:?}-{:?} crosses a congested link",
                    tb.topo.node(a).name(),
                    tb.topo.node(b).name()
                );
            }
        }
    }
}

/// When the request is too large to dodge the congestion entirely, the
/// balanced selection still returns a set — it degrades, not fails.
#[test]
fn oversized_requests_still_succeed() {
    let tb = cmu_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    sim.start_transfer(tb.m(16), tb.m(18), 1e15, |_| {});
    sim.run_for(60.0);
    let snapshot = remos.snapshot(&sim).to_topology();
    let sel = balanced(
        &snapshot,
        17,
        Weights::EQUAL,
        &Constraints::none(),
        None,
        GreedyPolicy::Sweep,
    )
    .unwrap();
    assert_eq!(sel.nodes.len(), 17);
    // With 17 of 18 nodes the congested trunk is unavoidable.
    assert!(sel.quality.min_bwfraction < 1.0);
}
