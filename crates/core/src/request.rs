//! Selection requests: what an application asks the framework for.
//!
//! This is the programmatic face of the paper's *application specification
//! interface* (§2.1): how many nodes, which resource to optimize, relative
//! priorities, and hard constraints.

use crate::weights::Weights;
use nodesel_topology::NodeId;
use std::collections::HashSet;

/// What to optimize (§3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Maximize the minimum available CPU over the selected set.
    Compute,
    /// Maximize the minimum available bandwidth between any selected pair
    /// (Figure 2).
    Communication,
    /// Maximize the minimum of fractional CPU and fractional bandwidth
    /// (Figure 3), with optional priority weights (§3.3).
    Balanced(Weights),
}

/// Hard constraints on eligible node sets (§3.3, "Fixed computation and
/// communication requirements" and application-specific placement rules).
#[derive(Debug, Clone, Default)]
pub struct Constraints {
    /// Restrict candidates to this pool (e.g. "server must run on an Alpha
    /// machine" becomes an allowed-set of Alpha nodes). `None` allows every
    /// compute node.
    pub allowed: Option<HashSet<NodeId>>,
    /// Nodes that must be part of the selection (e.g. a pinned server).
    pub required: Vec<NodeId>,
    /// Minimum effective CPU fraction each selected node must offer.
    pub min_cpu: Option<f64>,
    /// Minimum available bandwidth (bits/s) between every selected pair.
    pub min_bandwidth: Option<f64>,
    /// Maximum tolerated measurement staleness, in missed samples: nodes
    /// whose annotations are older than this are ineligible (their state
    /// is unknown, not merely degraded). `None` accepts any age — stale
    /// nodes are then only penalized through confidence decay. Nodes
    /// reported *down* are always ineligible regardless of this setting.
    pub max_staleness: Option<u32>,
}

impl Constraints {
    /// No constraints.
    pub fn none() -> Self {
        Constraints::default()
    }

    /// True when the constraint set is trivially empty.
    pub fn is_empty(&self) -> bool {
        self.allowed.is_none()
            && self.required.is_empty()
            && self.min_cpu.is_none()
            && self.min_bandwidth.is_none()
            && self.max_staleness.is_none()
    }
}

/// Greedy-loop termination policy for the edge-deletion algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum GreedyPolicy {
    /// Figure 3 verbatim: stop as soon as one round of edge removal fails
    /// to strictly improve `minresource`.
    Faithful,
    /// Keep deleting edges until no component can host the application,
    /// and return the best set seen anywhere along the sweep. Same
    /// asymptotic cost, never worse than `Faithful`, and provably optimal
    /// on acyclic topologies (see the property tests).
    #[default]
    Sweep,
}

/// A complete selection request.
#[derive(Debug, Clone)]
pub struct SelectionRequest {
    /// Number of nodes the application needs.
    pub count: usize,
    /// Optimization objective.
    pub objective: Objective,
    /// Hard constraints.
    pub constraints: Constraints,
    /// Reference link bandwidth for heterogeneous networks (§3.3): when
    /// set, fractional bandwidth is `available / reference` instead of the
    /// per-link `bw / maxbw`.
    pub reference_bandwidth: Option<f64>,
    /// Greedy termination policy.
    pub policy: GreedyPolicy,
}

impl SelectionRequest {
    /// A balanced request with defaults matching the paper's experiments.
    pub fn balanced(count: usize) -> Self {
        SelectionRequest {
            count,
            objective: Objective::Balanced(Weights::EQUAL),
            constraints: Constraints::none(),
            reference_bandwidth: None,
            policy: GreedyPolicy::Sweep,
        }
    }

    /// A compute-only request.
    pub fn compute(count: usize) -> Self {
        SelectionRequest {
            objective: Objective::Compute,
            ..SelectionRequest::balanced(count)
        }
    }

    /// A communication-only request.
    pub fn communication(count: usize) -> Self {
        SelectionRequest {
            objective: Objective::Communication,
            ..SelectionRequest::balanced(count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_objectives() {
        assert_eq!(SelectionRequest::compute(3).objective, Objective::Compute);
        assert_eq!(
            SelectionRequest::communication(3).objective,
            Objective::Communication
        );
        assert!(matches!(
            SelectionRequest::balanced(3).objective,
            Objective::Balanced(_)
        ));
        assert_eq!(SelectionRequest::balanced(3).count, 3);
    }

    #[test]
    fn empty_constraints_detected() {
        assert!(Constraints::none().is_empty());
        let c = Constraints {
            min_cpu: Some(0.5),
            ..Constraints::none()
        };
        assert!(!c.is_empty());
    }
}
