//! Fast path vs. reference loops: the selection-core speedup bench.
//!
//! Benchmarks the public near-linear engines (`max_bandwidth`, `balanced`,
//! `exhaustive_select`) against the paper-faithful O(E²) / unpruned
//! references they are asserted byte-identical to, across topology sizes.
//! A speedup table is printed once before measurement so a plain
//! `cargo bench --bench selection_fastpath` doubles as the performance
//! acceptance check (the fast paths must not regress below ~10× on
//! `max_bandwidth` and ~5× on `balanced` at n = 1000).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nodesel_bench::conditioned_tree;
use nodesel_core::{
    balanced, balanced_reference, exhaustive_select, exhaustive_select_reference, max_bandwidth,
    max_bandwidth_reference, Constraints, ExhaustiveObjective, GreedyPolicy, Weights,
};
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 3] = [50, 200, 1000];

/// Median-of-`iters` wall time of one call, in seconds.
fn time_one(mut f: impl FnMut(), iters: usize) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn print_speedup_table() {
    eprintln!("\n=== selection fast paths vs reference loops (median of 3) ===");
    eprintln!(
        "{:<14} {:>6} {:>14} {:>14} {:>9}",
        "algorithm", "nodes", "reference (s)", "fast (s)", "speedup"
    );
    for nodes in SIZES {
        let (topo, ids) = conditioned_tree(7, nodes);
        let m = 6.min(ids.len());
        let c = Constraints::none();
        let slow = time_one(
            || {
                black_box(max_bandwidth_reference(&topo, m, &c).unwrap());
            },
            3,
        );
        let fast = time_one(
            || {
                black_box(max_bandwidth(&topo, m, &c).unwrap());
            },
            3,
        );
        eprintln!(
            "{:<14} {:>6} {:>14.6} {:>14.6} {:>8.1}x",
            "max_bandwidth",
            nodes,
            slow,
            fast,
            slow / fast
        );
        let slow = time_one(
            || {
                black_box(
                    balanced_reference(&topo, m, Weights::EQUAL, &c, None, GreedyPolicy::Sweep)
                        .unwrap(),
                );
            },
            3,
        );
        let fast = time_one(
            || {
                black_box(
                    balanced(&topo, m, Weights::EQUAL, &c, None, GreedyPolicy::Sweep).unwrap(),
                );
            },
            3,
        );
        eprintln!(
            "{:<14} {:>6} {:>14.6} {:>14.6} {:>8.1}x",
            "balanced",
            nodes,
            slow,
            fast,
            slow / fast
        );
    }
    // The oracle is exponential, so its comparison runs at a fixed small
    // size (C(18, 4) = 3060 subsets) rather than the sweep sizes.
    let (topo, ids) = conditioned_tree(11, 36);
    let m = 4.min(ids.len());
    let obj = ExhaustiveObjective::Balanced(Weights::EQUAL);
    let c = Constraints::none();
    let slow = time_one(
        || {
            black_box(exhaustive_select_reference(&topo, m, obj, &c, None).unwrap());
        },
        3,
    );
    let fast = time_one(
        || {
            black_box(exhaustive_select(&topo, m, obj, &c, None).unwrap());
        },
        3,
    );
    eprintln!(
        "{:<14} {:>6} {:>14.6} {:>14.6} {:>8.1}x",
        "exhaustive",
        36,
        slow,
        fast,
        slow / fast
    );
}

fn bench_fastpath(c: &mut Criterion) {
    print_speedup_table();

    let mut group = c.benchmark_group("selection_fastpath/max_bandwidth");
    for nodes in SIZES {
        let (topo, ids) = conditioned_tree(7, nodes);
        let m = 6.min(ids.len());
        if nodes >= 1000 {
            group.sample_size(10);
        }
        group.bench_with_input(BenchmarkId::new("fast", nodes), &nodes, |b, _| {
            b.iter(|| black_box(max_bandwidth(&topo, m, &Constraints::none()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("reference", nodes), &nodes, |b, _| {
            b.iter(|| black_box(max_bandwidth_reference(&topo, m, &Constraints::none()).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("selection_fastpath/balanced");
    for nodes in SIZES {
        let (topo, ids) = conditioned_tree(7, nodes);
        let m = 6.min(ids.len());
        if nodes >= 1000 {
            group.sample_size(10);
        }
        group.bench_with_input(BenchmarkId::new("fast", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    balanced(
                        &topo,
                        m,
                        Weights::EQUAL,
                        &Constraints::none(),
                        None,
                        GreedyPolicy::Sweep,
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    balanced_reference(
                        &topo,
                        m,
                        Weights::EQUAL,
                        &Constraints::none(),
                        None,
                        GreedyPolicy::Sweep,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("selection_fastpath/exhaustive");
    group.sample_size(10);
    let (topo, ids) = conditioned_tree(11, 36);
    let m = 4.min(ids.len());
    let obj = ExhaustiveObjective::Balanced(Weights::EQUAL);
    group.bench_function("pruned_parallel", |b| {
        b.iter(|| black_box(exhaustive_select(&topo, m, obj, &Constraints::none(), None).unwrap()))
    });
    group.bench_function("serial_unpruned", |b| {
        b.iter(|| {
            black_box(
                exhaustive_select_reference(&topo, m, obj, &Constraints::none(), None).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fastpath);
criterion_main!(benches);
