//! Logical-topology vs end-to-end-tomography study, across measurement
//! noise levels.
//!
//! Usage: `tomography [repetitions]` (default 10).

use nodesel_apps::{fft::fft_program, AppModel};
use nodesel_experiments::driver::{Condition, TrialConfig};
use nodesel_experiments::tomography::{run_view_trials, View};
use nodesel_remos::CollectorConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let app = AppModel::Phased(fft_program(32));
    println!("FFT (32 iters, 4 nodes) under load+traffic, {reps} reps/cell");
    println!(
        "{:>8} {:>18} {:>16}",
        "noise", "logical topology", "tomography"
    );
    for noise in [0.0, 0.1, 0.25, 0.5] {
        let cfg = TrialConfig {
            collector: CollectorConfig {
                noise,
                ..CollectorConfig::default()
            },
            ..TrialConfig::default()
        };
        let logical = run_view_trials(
            &app,
            4,
            View::LogicalTopology,
            Condition::Both,
            &cfg,
            31,
            reps,
        );
        let tomo = run_view_trials(&app, 4, View::Tomography, Condition::Both, &cfg, 31, reps);
        println!("{noise:>8.2} {logical:>18.1} {tomo:>16.1}");
    }
    println!(
        "\n(the tomography view also pays O(n^2) active probes per decision,\n\
         and cannot see peak capacities: fractional objectives assume a\n\
         100 Mbps reference link)"
    );
}
