//! Loosely-synchronous phase programs.
//!
//! FFT and Airshed are "loosely synchronous parallel computations where any
//! computation or communication step can become a bottleneck" (paper §4.3):
//! the program is a sequence of collective phases separated by barriers, so
//! one slow node or one congested path delays everyone. This module
//! implements that execution model generically; the concrete applications
//! are parameterizations of it.

use crate::handle::AppHandle;
use nodesel_simnet::{Sim, SimTime};
use nodesel_topology::NodeId;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// One collective phase. Volumes are expressed as problem totals and scaled
/// by the node count at launch, so the same program runs on any `m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// Embarrassingly parallel computation of `work` total reference-CPU
    /// seconds, divided evenly across the nodes; barrier at the end.
    Compute {
        /// Total reference-CPU-seconds across all nodes.
        work: f64,
    },
    /// All-to-all exchange redistributing a data structure of `bits` total
    /// size (e.g. a matrix transpose): every ordered pair carries
    /// `bits / m²`; barrier at the end.
    AllToAll {
        /// Total bits of the redistributed structure.
        bits: f64,
    },
    /// Every non-root node sends its `bits / m` share to the root; barrier.
    Gather {
        /// Index (into the launch node list) of the root.
        root: usize,
        /// Total bits of the gathered structure.
        bits: f64,
    },
    /// The root sends `bits / m` to every non-root node; barrier.
    Broadcast {
        /// Index (into the launch node list) of the root.
        root: usize,
        /// Total bits of the broadcast structure.
        bits: f64,
    },
}

/// A loosely-synchronous program: `iterations` repetitions of a phase list.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProgram {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Number of outer iterations.
    pub iterations: usize,
    /// The phases of one iteration, executed in order with barriers.
    pub phases: Vec<Phase>,
}

impl PhaseProgram {
    /// Total compute demand of the whole program, reference-CPU-seconds.
    pub fn total_work(&self) -> f64 {
        self.iterations as f64
            * self
                .phases
                .iter()
                .map(|p| match p {
                    Phase::Compute { work } => *work,
                    _ => 0.0,
                })
                .sum::<f64>()
    }

    /// Total communication volume of the whole program, bits.
    pub fn total_bits(&self) -> f64 {
        self.iterations as f64
            * self
                .phases
                .iter()
                .map(|p| match p {
                    Phase::Compute { .. } => 0.0,
                    Phase::AllToAll { bits } => *bits,
                    Phase::Gather { bits, .. } | Phase::Broadcast { bits, .. } => *bits,
                })
                .sum::<f64>()
    }

    /// Predicted runtime on `m` nodes offering `min_cpu` effective CPU and
    /// `min_bw` bits/s of pairwise bandwidth — the performance-estimation
    /// hook for variable-node-count selection (§3.4): compute phases wait
    /// for the slowest member (`work / (m · min_cpu)`), communication
    /// phases for the most congested path.
    pub fn estimated_runtime(&self, m: usize, min_cpu: f64, min_bw: f64) -> f64 {
        assert!(m >= 1 && min_cpu > 0.0);
        let per_iteration: f64 = self
            .phases
            .iter()
            .map(|p| match *p {
                Phase::Compute { work } => work / (m as f64 * min_cpu),
                Phase::AllToAll { bits } => {
                    if m < 2 {
                        0.0
                    } else {
                        bits * (m as f64 - 1.0) / (m as f64 * m as f64) / min_bw.max(1.0)
                    }
                }
                Phase::Gather { bits, .. } | Phase::Broadcast { bits, .. } => {
                    if m < 2 {
                        0.0
                    } else {
                        bits * (m as f64 - 1.0) / m as f64 / min_bw.max(1.0)
                    }
                }
            })
            .sum();
        self.iterations as f64 * per_iteration
    }

    /// Lower bound on the unloaded single-iteration span on `m` reference
    /// nodes with `bw` bits/s between each pair (ignores latency): used by
    /// tests as a sanity floor.
    pub fn ideal_iteration_seconds(&self, m: usize, bw: f64) -> f64 {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Compute { work } => work / m as f64,
                Phase::AllToAll { bits } => {
                    if m < 2 {
                        0.0
                    } else {
                        // Each node sends and receives (m-1) · bits/m²; its
                        // access direction carries (m-1)/m² of the total.
                        bits * (m as f64 - 1.0) / (m as f64 * m as f64) / bw
                    }
                }
                Phase::Gather { bits, .. } | Phase::Broadcast { bits, .. } => {
                    if m < 2 {
                        0.0
                    } else {
                        // The root's access link carries (m-1)/m of the total.
                        bits * (m as f64 - 1.0) / m as f64 / bw
                    }
                }
            })
            .sum()
    }
}

struct Runner {
    program: PhaseProgram,
    nodes: Vec<NodeId>,
    iteration: usize,
    phase: usize,
    pending: usize,
    finished: Rc<Cell<Option<SimTime>>>,
}

/// Launches a phase program on the given nodes; returns a completion
/// handle. Panics when `nodes` is empty.
pub fn launch_phased(sim: &mut Sim, program: PhaseProgram, nodes: &[NodeId]) -> AppHandle {
    assert!(!nodes.is_empty(), "a program needs at least one node");
    for &n in nodes {
        assert!(
            sim.topology().node(n).is_compute(),
            "programs run on compute nodes"
        );
    }
    let (handle, finished) = AppHandle::new(sim.now());
    let runner = Rc::new(RefCell::new(Runner {
        program,
        nodes: nodes.to_vec(),
        iteration: 0,
        phase: 0,
        pending: 0,
        finished,
    }));
    start_phase(sim, runner);
    handle
}

fn start_phase(sim: &mut Sim, runner: Rc<RefCell<Runner>>) {
    // Resolve the ops of the current phase (or finish).
    enum Op {
        Compute(NodeId, f64),
        Transfer(NodeId, NodeId, f64),
    }
    let ops: Vec<Op> = {
        let mut r = runner.borrow_mut();
        loop {
            if r.iteration == r.program.iterations {
                r.finished.set(Some(sim.now()));
                return;
            }
            if r.phase == r.program.phases.len() {
                r.phase = 0;
                r.iteration += 1;
                continue;
            }
            let m = r.nodes.len();
            let mf = m as f64;
            let ops: Vec<Op> = match r.program.phases[r.phase] {
                Phase::Compute { work } => {
                    r.nodes.iter().map(|&n| Op::Compute(n, work / mf)).collect()
                }
                Phase::AllToAll { bits } => {
                    let per_pair = bits / (mf * mf);
                    let mut ops = Vec::with_capacity(m * (m - 1));
                    for &a in &r.nodes {
                        for &b in &r.nodes {
                            if a != b {
                                ops.push(Op::Transfer(a, b, per_pair));
                            }
                        }
                    }
                    ops
                }
                Phase::Gather { root, bits } => {
                    let root = r.nodes[root];
                    r.nodes
                        .iter()
                        .filter(|&&n| n != root)
                        .map(|&n| Op::Transfer(n, root, bits / mf))
                        .collect()
                }
                Phase::Broadcast { root, bits } => {
                    let root = r.nodes[root];
                    r.nodes
                        .iter()
                        .filter(|&&n| n != root)
                        .map(|&n| Op::Transfer(root, n, bits / mf))
                        .collect()
                }
            };
            if ops.is_empty() {
                // Single-node communication phases are no-ops.
                r.phase += 1;
                continue;
            }
            r.pending = ops.len();
            break ops;
        }
    };
    for op in ops {
        let runner = runner.clone();
        let on_done = move |sim: &mut Sim| {
            let advance = {
                let mut r = runner.borrow_mut();
                r.pending -= 1;
                if r.pending == 0 {
                    r.phase += 1;
                    true
                } else {
                    false
                }
            };
            if advance {
                start_phase(sim, runner);
            }
        };
        match op {
            Op::Compute(n, work) => {
                sim.start_compute(n, work, on_done);
            }
            Op::Transfer(a, b, bits) => {
                sim.start_transfer(a, b, bits, on_done);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    fn prog(iterations: usize, phases: Vec<Phase>) -> PhaseProgram {
        PhaseProgram {
            name: "test",
            iterations,
            phases,
        }
    }

    #[test]
    fn pure_compute_program_times_exactly() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        // 2 iterations × 40 total work / 4 nodes = 20 seconds.
        let h = launch_phased(&mut sim, prog(2, vec![Phase::Compute { work: 40.0 }]), &ids);
        sim.run();
        assert!((h.elapsed().unwrap() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn all_to_all_time_scales_with_volume() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        // 1600 Mbit matrix over 4 nodes: per pair 100 Mbit; each node's
        // access link carries 3 × 100 Mbit in each direction at up to
        // 100 Mbps, perfectly overlapped => 3 seconds.
        let h = launch_phased(
            &mut sim,
            prog(
                1,
                vec![Phase::AllToAll {
                    bits: 1_600.0 * MBPS,
                }],
            ),
            &ids,
        );
        sim.run();
        assert!(
            (h.elapsed().unwrap() - 3.0).abs() < 1e-6,
            "{:?}",
            h.elapsed()
        );
    }

    #[test]
    fn barrier_waits_for_slowest_node() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        // A background job on one node halves its speed: phase takes 2x.
        sim.start_compute(ids[0], 1e9, |_| {});
        let h = launch_phased(&mut sim, prog(1, vec![Phase::Compute { work: 30.0 }]), &ids);
        sim.run_for(100.0);
        // 10 work per node; loaded node runs at 0.5 => 20 s.
        assert!((h.elapsed().unwrap() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn gather_and_broadcast_hit_root_link() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        // Gather 400 Mbit to root: three senders × 100 Mbit each converge
        // on the root's access link => 3 seconds.
        let h = launch_phased(
            &mut sim,
            prog(
                1,
                vec![
                    Phase::Gather {
                        root: 0,
                        bits: 400.0 * MBPS,
                    },
                    Phase::Broadcast {
                        root: 0,
                        bits: 400.0 * MBPS,
                    },
                ],
            ),
            &ids,
        );
        sim.run();
        assert!(
            (h.elapsed().unwrap() - 6.0).abs() < 1e-6,
            "{:?}",
            h.elapsed()
        );
    }

    #[test]
    fn single_node_skips_communication() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = launch_phased(
            &mut sim,
            prog(
                3,
                vec![Phase::Compute { work: 5.0 }, Phase::AllToAll { bits: 1e12 }],
            ),
            &ids[..1],
        );
        sim.run();
        assert!((h.elapsed().unwrap() - 15.0).abs() < 1e-6);
    }

    #[test]
    fn totals_and_ideal_time() {
        let p = prog(
            4,
            vec![
                Phase::Compute { work: 10.0 },
                Phase::AllToAll { bits: 100.0 },
                Phase::Gather {
                    root: 0,
                    bits: 50.0,
                },
            ],
        );
        assert_eq!(p.total_work(), 40.0);
        assert_eq!(p.total_bits(), 600.0);
        let ideal = p.ideal_iteration_seconds(2, 100.0);
        // compute 5 + a2a 100·(1/4)/100 + gather 50·(1/2)/100.
        assert!((ideal - (5.0 + 0.25 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn zero_iterations_finish_immediately() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = launch_phased(&mut sim, prog(0, vec![Phase::Compute { work: 5.0 }]), &ids);
        sim.run();
        assert_eq!(h.elapsed(), Some(0.0));
    }
}
