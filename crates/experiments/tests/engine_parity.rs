//! Trial-level engine parity: a full `run_trial` (warm-up, generators,
//! Remos collection, selection, application run) must produce
//! bit-identical results for a fixed seed whichever flow engine the
//! simulator runs on. This is the end-to-end face of the `flow_parity`
//! suite in `nodesel-simnet`.

use nodesel_apps::AppModel;
use nodesel_core::{BalancedSelector, SelectionRequest, Selector};
use nodesel_experiments::{run_trial, Condition, Strategy, Testbed, TrialConfig};
use nodesel_loadgen::{install_load, LoadConfig};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::{install_faults, FaultPlan, FlowEngine};

#[test]
fn trials_are_engine_independent() {
    let testbed = Testbed::cmu();
    let suite = AppModel::paper_suite();
    let (app, m) = &suite[0];
    for strategy in [Strategy::Random, Strategy::Automatic] {
        for condition in [Condition::None, Condition::Both] {
            for seed in [1u64, 7] {
                let run = |engine| {
                    let cfg = TrialConfig {
                        warmup: 300.0,
                        engine,
                        ..TrialConfig::default()
                    };
                    run_trial(&testbed, app, *m, strategy, condition, &cfg, seed)
                };
                let a = run(FlowEngine::Incremental);
                let b = run(FlowEngine::Reference);
                assert_eq!(
                    a.elapsed.to_bits(),
                    b.elapsed.to_bits(),
                    "elapsed diverged: {} {strategy:?} {condition:?} seed {seed}",
                    app.name()
                );
                assert_eq!(a.nodes, b.nodes, "selection diverged");
            }
        }
    }
}

/// Installing an *empty* `FaultPlan` must be invisible: the driver
/// schedules nothing, so warm-up, collection, and selection are
/// bit-identical to a run without the fault subsystem installed at all.
/// This pins the pre-PR behavior of every fault-free experiment.
#[test]
fn empty_fault_plan_is_invisible() {
    let testbed = Testbed::cmu();
    for engine in [FlowEngine::Incremental, FlowEngine::Reference] {
        for seed in [3u64, 11] {
            let run = |with_plan: bool| {
                let mut sim = testbed.sim(engine);
                let remos = Remos::install(&mut sim, CollectorConfig::default());
                install_load(
                    &mut sim,
                    &testbed.machines,
                    LoadConfig::paper_defaults(),
                    seed ^ 0x10AD,
                );
                if with_plan {
                    let plan = FaultPlan::default();
                    assert!(plan.is_empty());
                    install_faults(&mut sim, &plan);
                }
                sim.run_for(600.0);
                let snap = remos.snapshot(&sim);
                let bits: Vec<u64> = snap
                    .load_values()
                    .iter()
                    .chain(snap.used_values())
                    .map(|v| v.to_bits())
                    .collect();
                let nodes = BalancedSelector::new()
                    .select(&snap, &SelectionRequest::balanced(4))
                    .expect("fault-free selection succeeds")
                    .nodes;
                assert!(snap.node_avail_values().iter().all(|&up| up));
                assert!(snap.node_stale_values().iter().all(|&s| s == 0));
                (sim.now().as_secs_f64().to_bits(), bits, nodes)
            };
            assert_eq!(
                run(true),
                run(false),
                "empty plan perturbed the run: {engine:?} seed {seed}"
            );
        }
    }
}
