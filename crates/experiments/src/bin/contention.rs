//! Contention study driver: K concurrent jobs placed oblivious vs
//! ledger-aware on the CMU and federated testbeds, measured through
//! simnet, with the summary committed to `BENCH_contention.json`.
//! `--smoke` shrinks the run for CI (and skips the JSON rewrite).

use nodesel_experiments::contention::{
    render_contention_table, run_contention_study, ContentionConfig, ContentionOutcome,
};

/// Panics unless `doc` carries the contention section this driver (and
/// the CI smoke step) promises: the schema-drift tripwire.
fn validate_schema(doc: &serde_json::Value) {
    let c = doc
        .get("contention")
        .expect("BENCH_contention.json lost its contention section");
    for key in [
        "smoke",
        "m",
        "iterations",
        "reference_bandwidth",
        "ks",
        "cells",
    ] {
        assert!(c.get(key).is_some(), "contention section lost `{key}`");
    }
    let cells = c["cells"].as_array().expect("contention cells is an array");
    assert!(!cells.is_empty(), "contention cells must not be empty");
    for cell in cells {
        for key in [
            "testbed",
            "regime",
            "k",
            "solo_s",
            "total_elapsed_s",
            "makespan_s",
            "mean_slowdown",
            "distinct_nodes",
            "elapsed_s",
        ] {
            assert!(
                cell.get(key).is_some(),
                "contention cell lost `{key}`: {cell}"
            );
        }
        let testbed = cell["testbed"].as_str().expect("testbed label is a string");
        assert!(
            ["cmu", "federated"].contains(&testbed),
            "unknown testbed {testbed:?}"
        );
        let regime = cell["regime"].as_str().expect("regime label is a string");
        assert!(
            ["oblivious", "ledger-aware"].contains(&regime),
            "unknown regime {regime:?}"
        );
    }
    // The headline claim the README quotes: ledger-aware beats
    // oblivious aggregate elapsed at K >= 4 on the federated testbed.
    for k in cells
        .iter()
        .filter(|c| c["testbed"].as_str() == Some("federated") && c["k"].as_u64().unwrap_or(0) >= 4)
        .map(|c| c["k"].as_u64().unwrap())
        .collect::<std::collections::HashSet<_>>()
    {
        let total = |regime: &str| {
            cells
                .iter()
                .find(|c| {
                    c["testbed"].as_str() == Some("federated")
                        && c["regime"].as_str() == Some(regime)
                        && c["k"].as_u64() == Some(k)
                })
                .and_then(|c| c["total_elapsed_s"].as_f64())
                .unwrap_or_else(|| panic!("federated K={k} {regime} cell missing"))
        };
        assert!(
            total("ledger-aware") < total("oblivious"),
            "ledger-aware must beat oblivious at K={k} on the federated testbed"
        );
    }
}

fn cell_json(c: &ContentionOutcome) -> serde_json::Value {
    serde_json::json!({
        "testbed": c.testbed.label(),
        "regime": c.regime.label(),
        "k": c.k,
        "solo_s": c.solo,
        "total_elapsed_s": c.total_elapsed,
        "makespan_s": c.makespan,
        "mean_slowdown": c.mean_slowdown,
        "distinct_nodes": c.distinct_nodes,
        "elapsed_s": c.elapsed,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (config, ks): (ContentionConfig, Vec<usize>) = if smoke {
        (
            ContentionConfig {
                iterations: 4,
                ..ContentionConfig::default()
            },
            vec![4],
        )
    } else {
        (ContentionConfig::default(), vec![2, 4, 6])
    };

    println!("=== Contention study: K concurrent jobs, oblivious vs ledger-aware ===");
    println!(
        "m = {} nodes/job, {} FFT iterations, {:.0} Mbit/s declared pair bandwidth",
        config.m,
        config.iterations,
        config.reference_bandwidth / 1e6
    );
    let cells = run_contention_study(&ks, &config);
    print!("{}", render_contention_table(&cells));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_contention.json");
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .filter(|v| v.as_object().is_some())
        .unwrap_or_else(|| serde_json::json!({}));
    let section = serde_json::json!({
        "smoke": smoke,
        "m": config.m,
        "iterations": config.iterations,
        "reference_bandwidth": config.reference_bandwidth,
        "ks": ks,
        "cells": cells.iter().map(cell_json).collect::<Vec<_>>(),
    });
    if smoke {
        // CI validates the shape and the headline inequality without
        // overwriting the committed full-run numbers.
        let mut probe = doc.clone();
        probe["contention"] = section;
        validate_schema(&probe);
        println!("smoke run: schema and headline validated, {path} left untouched");
        if doc.get("contention").is_some() {
            validate_schema(&doc);
        }
        return;
    }
    doc["contention"] = section;
    validate_schema(&doc);
    match std::fs::write(path, format!("{:#}\n", doc)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    let reread: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(path).expect("just wrote the study summary"))
            .expect("study summary is valid JSON");
    validate_schema(&reread);
}
