//! Migratable loosely-synchronous programs.
//!
//! The paper's abstract: "The node selection algorithms developed in this
//! research are also applicable to dynamic migration of long running
//! jobs." This module supplies the executable half of that claim: a
//! phase program whose node set can be **swapped between iterations**. At
//! every iteration boundary the runner consults a placement policy; if it
//! returns a new node set, the program pays a checkpoint cost — each
//! replaced node ships its `state_bits / m` share to its successor — and
//! resumes on the new nodes.
//!
//! The interesting dynamics this enables: the sensitivity study shows
//! measurement-based selection losing its edge as applications outlive
//! their measurements; periodic reconsideration (this module + the
//! `nodesel-core::migration` advisor) restores it, at the price of the
//! checkpoint traffic.

use crate::handle::AppHandle;
use crate::phased::{Phase, PhaseProgram};
use nodesel_simnet::{Sim, SimTime};
use nodesel_topology::NodeId;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Decides, at an iteration boundary, whether to move the application.
///
/// Receives the simulator (for measurement queries via captured handles),
/// the current placement and the upcoming iteration index; returns the new
/// node set, or `None` to stay. Returning the current set is equivalent to
/// `None`.
pub type PlacementPolicy = Box<dyn FnMut(&mut Sim, &[NodeId], usize) -> Option<Vec<NodeId>>>;

/// Counters describing what a migratable run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Completed migrations.
    pub migrations: u64,
    /// Policy consultations.
    pub reconsiderations: u64,
}

/// Handle extension carrying migration counters.
#[derive(Clone)]
pub struct MigratableHandle {
    /// Completion handle.
    pub app: AppHandle,
    stats: Rc<RefCell<MigrationStats>>,
    placement: Rc<RefCell<Vec<NodeId>>>,
}

impl MigratableHandle {
    /// Migration counters so far.
    pub fn stats(&self) -> MigrationStats {
        *self.stats.borrow()
    }

    /// The node set currently executing the program.
    pub fn placement(&self) -> Vec<NodeId> {
        self.placement.borrow().clone()
    }
}

struct Runner {
    program: PhaseProgram,
    nodes: Rc<RefCell<Vec<NodeId>>>,
    state_bits: f64,
    policy: PlacementPolicy,
    iteration: usize,
    phase: usize,
    pending: usize,
    finished: Rc<Cell<Option<SimTime>>>,
    stats: Rc<RefCell<MigrationStats>>,
}

/// Launches a migratable phase program. `state_bits` is the total
/// checkpoint size moved on migration (split evenly across nodes).
pub fn launch_phased_migratable(
    sim: &mut Sim,
    program: PhaseProgram,
    nodes: &[NodeId],
    state_bits: f64,
    policy: impl FnMut(&mut Sim, &[NodeId], usize) -> Option<Vec<NodeId>> + 'static,
) -> MigratableHandle {
    assert!(!nodes.is_empty(), "a program needs at least one node");
    assert!(state_bits >= 0.0);
    let (app, finished) = AppHandle::new(sim.now());
    let placement = Rc::new(RefCell::new(nodes.to_vec()));
    let stats = Rc::new(RefCell::new(MigrationStats::default()));
    let runner = Rc::new(RefCell::new(Runner {
        program,
        nodes: placement.clone(),
        state_bits,
        policy: Box::new(policy),
        iteration: 0,
        phase: 0,
        pending: 0,
        finished,
        stats: stats.clone(),
    }));
    advance(sim, runner);
    MigratableHandle {
        app,
        stats,
        placement,
    }
}

/// Drives the program forward: migration checks at iteration boundaries,
/// then the phases of the current iteration.
fn advance(sim: &mut Sim, runner: Rc<RefCell<Runner>>) {
    // Iteration boundary?
    let boundary = {
        let r = runner.borrow();
        r.phase == 0
    };
    if boundary {
        let (finished, iteration) = {
            let r = runner.borrow_mut();
            if r.iteration == r.program.iterations {
                r.finished.set(Some(sim.now()));
                (true, 0)
            } else {
                (false, r.iteration)
            }
        };
        if finished {
            return;
        }
        // Consult the policy (not on the very first iteration: launch-time
        // placement was just chosen by the caller).
        if iteration > 0 {
            let decision = {
                let mut r = runner.borrow_mut();
                r.stats.borrow_mut().reconsiderations += 1;
                let current = r.nodes.borrow().clone();
                // Split the borrow: the policy needs &mut Sim only.
                (r.policy)(sim, &current, iteration)
            };
            let current = runner.borrow().nodes.borrow().clone();
            if let Some(new_nodes) = decision {
                assert_eq!(
                    new_nodes.len(),
                    current.len(),
                    "migration must preserve the node count"
                );
                if new_nodes != current {
                    migrate(sim, runner, current, new_nodes);
                    return; // phases resume after the checkpoint lands
                }
            }
        }
    }
    run_phase(sim, runner);
}

/// Ships each replaced node's state share to its successor, then resumes.
fn migrate(sim: &mut Sim, runner: Rc<RefCell<Runner>>, from: Vec<NodeId>, to: Vec<NodeId>) {
    let (state_bits, m) = {
        let r = runner.borrow();
        (r.state_bits, from.len())
    };
    let share = state_bits / m as f64;
    let moves: Vec<(NodeId, NodeId)> = from
        .iter()
        .zip(&to)
        .filter(|(a, b)| a != b)
        .map(|(&a, &b)| (a, b))
        .collect();
    {
        let r = runner.borrow_mut();
        *r.nodes.borrow_mut() = to;
        r.stats.borrow_mut().migrations += 1;
    }
    if moves.is_empty() || share == 0.0 {
        run_phase(sim, runner);
        return;
    }
    runner.borrow_mut().pending = moves.len();
    for (src, dst) in moves {
        let runner = runner.clone();
        sim.start_transfer(src, dst, share, move |sim| {
            let done = {
                let mut r = runner.borrow_mut();
                r.pending -= 1;
                r.pending == 0
            };
            if done {
                run_phase(sim, runner);
            }
        });
    }
}

/// Launches the ops of the current phase (mirrors the static phased
/// runner, but reads the node set through the shared cell).
fn run_phase(sim: &mut Sim, runner: Rc<RefCell<Runner>>) {
    enum Op {
        Compute(NodeId, f64),
        Transfer(NodeId, NodeId, f64),
    }
    let ops: Vec<Op> = {
        let mut r = runner.borrow_mut();
        loop {
            if r.phase == r.program.phases.len() {
                r.phase = 0;
                r.iteration += 1;
                drop(r);
                return advance_outer(sim, runner);
            }
            let nodes = r.nodes.borrow().clone();
            let m = nodes.len();
            let mf = m as f64;
            let ops: Vec<Op> = match r.program.phases[r.phase] {
                Phase::Compute { work } => {
                    nodes.iter().map(|&n| Op::Compute(n, work / mf)).collect()
                }
                Phase::AllToAll { bits } => {
                    let per_pair = bits / (mf * mf);
                    let mut ops = Vec::with_capacity(m * (m - 1));
                    for &a in &nodes {
                        for &b in &nodes {
                            if a != b {
                                ops.push(Op::Transfer(a, b, per_pair));
                            }
                        }
                    }
                    ops
                }
                Phase::Gather { root, bits } => {
                    let root = nodes[root];
                    nodes
                        .iter()
                        .filter(|&&n| n != root)
                        .map(|&n| Op::Transfer(n, root, bits / mf))
                        .collect()
                }
                Phase::Broadcast { root, bits } => {
                    let root = nodes[root];
                    nodes
                        .iter()
                        .filter(|&&n| n != root)
                        .map(|&n| Op::Transfer(root, n, bits / mf))
                        .collect()
                }
            };
            if ops.is_empty() {
                r.phase += 1;
                continue;
            }
            r.pending = ops.len();
            break ops;
        }
    };
    for op in ops {
        let runner = runner.clone();
        let on_done = move |sim: &mut Sim| {
            let next = {
                let mut r = runner.borrow_mut();
                r.pending -= 1;
                if r.pending == 0 {
                    r.phase += 1;
                    true
                } else {
                    false
                }
            };
            if next {
                run_phase(sim, runner);
            }
        };
        match op {
            Op::Compute(n, work) => {
                sim.start_compute(n, work, on_done);
            }
            Op::Transfer(a, b, bits) => {
                sim.start_transfer(a, b, bits, on_done);
            }
        }
    }
}

/// Indirection so `run_phase` can tail-call back into `advance` without
/// recursion-in-borrow issues.
fn advance_outer(sim: &mut Sim, runner: Rc<RefCell<Runner>>) {
    advance(sim, runner);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phased::launch_phased;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    fn prog(iterations: usize) -> PhaseProgram {
        PhaseProgram {
            name: "mig-test",
            iterations,
            phases: vec![Phase::Compute { work: 4.0 }],
        }
    }

    #[test]
    fn never_migrating_matches_static_runner() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo.clone());
        let h_static = launch_phased(&mut sim, prog(5), &ids);
        sim.run();
        let t_static = h_static.elapsed();
        let mut sim = Sim::new(topo);
        let h = launch_phased_migratable(&mut sim, prog(5), &ids, 1e9, |_, _, _| None);
        sim.run();
        assert_eq!(h.app.elapsed(), t_static);
        assert_eq!(h.stats().migrations, 0);
        assert_eq!(h.stats().reconsiderations, 4); // once per boundary
    }

    #[test]
    fn migration_moves_to_faster_nodes() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        // ids[0], ids[1] get heavy background load; policy switches to
        // ids[2], ids[3] at the first boundary.
        for _ in 0..9 {
            sim.start_compute(ids[0], 1e9, |_| {});
            sim.start_compute(ids[1], 1e9, |_| {});
        }
        let target = vec![ids[2], ids[3]];
        let t2 = target.clone();
        let migrate_once = move |_: &mut Sim, current: &[NodeId], _: usize| {
            if current != t2.as_slice() {
                Some(t2.clone())
            } else {
                None
            }
        };
        let h = launch_phased_migratable(
            &mut sim,
            prog(10),
            &[ids[0], ids[1]],
            10.0 * MBPS,
            migrate_once,
        );
        sim.run_for(1e5);
        assert!(h.app.is_finished());
        assert_eq!(h.stats().migrations, 1);
        assert_eq!(h.placement(), vec![ids[2], ids[3]]);
        // 1 slow iteration (2 work / 0.1 rate = 20 s) + checkpoint (~0.05s)
        // + 9 fast iterations (2 s each): far below the stay-put 200 s.
        let t = h.app.elapsed().unwrap();
        assert!(t < 60.0, "elapsed {t}");
        assert!(t > 20.0, "elapsed {t}");
    }

    #[test]
    fn checkpoint_cost_is_paid() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        // Move every iteration between two disjoint pairs with a large
        // 100 Mbit state: each migration costs ~0.5 s per node pair.
        let mut sim = Sim::new(topo.clone());
        let pair_a = vec![ids[0], ids[1]];
        let pair_b = vec![ids[2], ids[3]];
        let (a2, b2) = (pair_a.clone(), pair_b.clone());
        let pingpong = move |_: &mut Sim, current: &[NodeId], _: usize| {
            if current == a2.as_slice() {
                Some(b2.clone())
            } else {
                Some(a2.clone())
            }
        };
        let h = launch_phased_migratable(&mut sim, prog(6), &pair_a, 100.0 * MBPS, pingpong);
        sim.run();
        let with_moves = h.app.elapsed().unwrap();
        assert_eq!(h.stats().migrations, 5);

        let mut sim = Sim::new(topo);
        let h_stay =
            launch_phased_migratable(&mut sim, prog(6), &pair_a, 100.0 * MBPS, |_, _, _| None);
        sim.run();
        let stay = h_stay.app.elapsed().unwrap();
        // Each of 5 migrations moves 2 x 50 Mbit over 100 Mbps links: the
        // two transfers run in parallel => +0.5 s each.
        assert!(
            (with_moves - stay - 5.0 * 0.5).abs() < 0.1,
            "moves {with_moves}, stay {stay}"
        );
    }

    #[test]
    fn migration_count_must_match() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let bad = {
            let ids = ids.clone();
            move |_: &mut Sim, _: &[NodeId], _: usize| Some(vec![ids[0]])
        };
        launch_phased_migratable(&mut sim, prog(3), &ids[..2], 0.0, bad);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run();
        }));
        assert!(result.is_err(), "mismatched migration size must panic");
    }
}
