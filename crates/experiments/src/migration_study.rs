//! Dynamic-migration study: does periodically re-running node selection
//! on a *long-running* job recover the benefit that static selection
//! loses as its measurements go stale?
//!
//! The sensitivity study shows exactly this gap: a 512-iteration FFT keeps
//! only ~40% of the selection benefit a 32-iteration run enjoys, because
//! background load shifts mid-run. The paper's abstract points at the fix
//! ("the node selection algorithms ... are also applicable to dynamic
//! migration of long running jobs"); this experiment executes it with the
//! `nodesel-apps` migratable runner and the `nodesel-core` migration
//! advisor, checkpoint costs included.

use crate::driver::{Condition, TrialConfig};
use nodesel_apps::{fft::fft_program, launch_phased_migratable, MigrationStats};
use nodesel_core::migration::{Advisor, OwnUsage};
use nodesel_core::{random_selection, BalancedSelector, SelectionRequest, Selector};
use nodesel_loadgen::{install_load, install_traffic};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::{Sim, SimTime};
use nodesel_topology::testbeds::cmu_testbed;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Placement decision callback used by the migratable runner.
type Policy = Box<
    dyn FnMut(
        &mut Sim,
        &[nodesel_topology::NodeId],
        usize,
    ) -> Option<Vec<nodesel_topology::NodeId>>,
>;

/// Placement strategy for a long-running job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LongRunStrategy {
    /// Random initial nodes, never moved.
    RandomStay,
    /// Automatic initial selection, never moved.
    AutoStay,
    /// Automatic initial selection plus periodic migration checks.
    AutoMigrate {
        /// Seconds between reconsiderations.
        period: f64,
        /// Relative score improvement required to move.
        threshold: f64,
    },
}

/// Result of one long-run trial.
#[derive(Debug, Clone, Copy)]
pub struct LongRunResult {
    /// Job turnaround, seconds.
    pub elapsed: f64,
    /// Migration counters (zero for the stay strategies).
    pub stats: MigrationStats,
}

/// Runs one long FFT job (`iterations` iterations on 4 nodes) under the
/// given background condition and placement strategy.
pub fn run_long_job(
    iterations: usize,
    strategy: LongRunStrategy,
    condition: Condition,
    config: &TrialConfig,
    seed: u64,
) -> LongRunResult {
    let tb = cmu_testbed();
    let machines = tb.machines.clone();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(
        &mut sim,
        CollectorConfig {
            estimator: config.estimator,
            ..config.collector
        },
    );
    if matches!(condition, Condition::Load | Condition::Both) {
        install_load(&mut sim, &machines, config.load, seed ^ 0x10AD);
    }
    if matches!(condition, Condition::Traffic | Condition::Both) {
        install_traffic(&mut sim, &machines, config.traffic, seed ^ 0x7AFF1C);
    }
    sim.run_for(config.warmup);

    let m = 4;
    let initial = match strategy {
        LongRunStrategy::RandomStay => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5E1EC7);
            random_selection(sim.topology(), m, &mut rng)
                .expect("nodes")
                .nodes
        }
        _ => {
            let mut selector = BalancedSelector::new();
            selector
                .select(&remos.snapshot(&sim), &SelectionRequest::balanced(m))
                .expect("nodes")
                .nodes
        }
    };

    // Checkpoint: the FFT's matrix state (16 MB) plus headroom.
    let state_bits = 2.0 * nodesel_apps::fft::MATRIX_BITS;
    let program = fft_program(iterations);
    let policy: Policy = match strategy {
        LongRunStrategy::AutoMigrate { period, threshold } => {
            let remos = remos.clone();
            let mut last_check = SimTime::ZERO;
            // The advisor's selector stays primed across checks: epochs
            // whose churn leaves the solve skeleton intact are replayed
            // instead of re-solved.
            let mut advisor = Advisor::new(SelectionRequest::balanced(m), threshold);
            Box::new(
                move |sim: &mut Sim, current: &[nodesel_topology::NodeId], _iter| {
                    let now = sim.now();
                    if now.seconds_since(last_check) < period {
                        return None;
                    }
                    last_check = now;
                    let snapshot = remos.snapshot(sim);
                    let own = OwnUsage::one_process_per_node(current);
                    match advisor.advise(&snapshot, current, &own) {
                        Ok(a) if a.recommended => Some(a.best.nodes),
                        _ => None,
                    }
                },
            )
        }
        _ => Box::new(|_: &mut Sim, _: &[nodesel_topology::NodeId], _| None),
    };

    let handle = launch_phased_migratable(&mut sim, program, &initial, state_bits, policy);
    while !handle.app.is_finished() {
        assert!(sim.step(), "drained before completion");
    }
    LongRunResult {
        elapsed: handle.app.elapsed().expect("finished"),
        stats: handle.stats(),
    }
}

/// Means over `reps` seeded repetitions.
pub fn run_long_jobs(
    iterations: usize,
    strategy: LongRunStrategy,
    condition: Condition,
    config: &TrialConfig,
    base_seed: u64,
    reps: usize,
) -> (f64, f64) {
    let mut total = 0.0;
    let mut migrations = 0.0;
    for rep in 0..reps {
        let r = run_long_job(
            iterations,
            strategy,
            condition,
            config,
            base_seed.wrapping_add(7_919 * rep as u64),
        );
        total += r.elapsed;
        migrations += r.stats.migrations as f64;
    }
    (total / reps as f64, migrations / reps as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stay_strategies_never_migrate() {
        let cfg = TrialConfig::default();
        let r = run_long_job(8, LongRunStrategy::AutoStay, Condition::Load, &cfg, 5);
        assert_eq!(r.stats.migrations, 0);
        let r = run_long_job(8, LongRunStrategy::RandomStay, Condition::None, &cfg, 5);
        assert_eq!(r.stats.migrations, 0);
        assert!(r.elapsed > 0.0);
    }

    #[test]
    fn migration_happens_under_churning_load() {
        // Long job, frequent checks, low threshold: some seed in this
        // small set must trigger at least one move.
        let cfg = TrialConfig::default();
        let mut total_migrations = 0;
        for seed in 0..4 {
            let r = run_long_job(
                96,
                LongRunStrategy::AutoMigrate {
                    period: 120.0,
                    threshold: 0.3,
                },
                Condition::Load,
                &cfg,
                seed,
            );
            total_migrations += r.stats.migrations;
        }
        assert!(total_migrations > 0, "no migrations across any seed");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TrialConfig::default();
        let s = LongRunStrategy::AutoMigrate {
            period: 120.0,
            threshold: 0.3,
        };
        let a = run_long_job(24, s, Condition::Both, &cfg, 9);
        let b = run_long_job(24, s, Condition::Both, &cfg, 9);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.stats, b.stats);
    }
}
