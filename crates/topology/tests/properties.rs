//! Property tests of the topology substrate: routing consistency, view
//! component invariants, serde round-trips and max-min allocation laws.

use nodesel_topology::builders::{random_tree, randomize_conditions};
use nodesel_topology::io::{from_json, to_json};
use nodesel_topology::maxmin::max_min_allocate;
use nodesel_topology::units::MBPS;
use nodesel_topology::{Direction, GraphView, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tree(seed: u64) -> (nodesel_topology::Topology, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let computes = rng.random_range(2..8);
    let networks = rng.random_range(0..6);
    let (mut topo, ids) = random_tree(&mut rng, computes, networks, 100.0 * MBPS);
    randomize_conditions(&mut topo, &mut rng, 3.0, 0.9);
    (topo, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On a tree, routes are unique: path(a,b) reversed equals path(b,a),
    /// and path length equals BFS hop distance.
    #[test]
    fn tree_routes_are_symmetric_and_shortest(seed in 0u64..100_000) {
        let (topo, ids) = tree(seed);
        let routes = topo.routes();
        for &a in &ids {
            let dist = nodesel_topology::metrics::hop_distances(&topo, a);
            for &b in &ids {
                let p = routes.path(a, b).unwrap();
                prop_assert_eq!(p.len(), dist[b.index()]);
                let q = routes.path(b, a).unwrap();
                let mut rev: Vec<_> = q.hops.iter().map(|&(e, _)| e).collect();
                rev.reverse();
                let fwd: Vec<_> = p.hops.iter().map(|&(e, _)| e).collect();
                prop_assert_eq!(fwd, rev);
            }
        }
    }

    /// Bottleneck bandwidth equals the minimum of per-link `bw` along the
    /// node sequence, and is symmetric on undirected trees.
    #[test]
    fn bottleneck_matches_path_minimum(seed in 0u64..100_000) {
        let (topo, ids) = tree(seed);
        let routes = topo.routes();
        for &a in &ids {
            for &b in &ids {
                if a == b { continue; }
                let p = routes.path(a, b).unwrap();
                let manual = p.hops.iter()
                    .map(|&(e, _)| topo.link(e).bw())
                    .fold(f64::INFINITY, f64::min);
                prop_assert_eq!(routes.bottleneck_bw(a, b).unwrap(), manual);
                prop_assert_eq!(
                    routes.bottleneck_bw(a, b).unwrap(),
                    routes.bottleneck_bw(b, a).unwrap()
                );
            }
        }
    }

    /// Removing edges partitions nodes: components are disjoint, cover the
    /// graph, and contain exactly the live-edge-connected nodes.
    #[test]
    fn view_components_partition(seed in 0u64..100_000, removals in 0usize..6) {
        let (topo, _) = tree(seed);
        let mut view = GraphView::new(&topo);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        for _ in 0..removals {
            if topo.link_count() == 0 { break; }
            let e = nodesel_topology::EdgeId::from_index(
                rng.random_range(0..topo.link_count()));
            view.remove_edge(e);
        }
        let comps = view.components();
        let mut seen = vec![false; topo.node_count()];
        for c in &comps {
            for &n in &c.nodes {
                prop_assert!(!seen[n.index()], "node in two components");
                seen[n.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "node missing from components");
        // Connectivity matches component membership.
        for c in &comps {
            for &a in &c.nodes {
                for &b in &c.nodes {
                    prop_assert!(view.connected(a, b));
                }
            }
        }
        // On a tree, removing k distinct edges makes exactly k+1 components.
        let removed = topo.link_count() - view.live_edge_count();
        prop_assert_eq!(comps.len(), removed + 1);
    }

    /// JSON round-trip is lossless for structure and conditions.
    #[test]
    fn json_round_trip(seed in 0u64..100_000) {
        let (topo, _) = tree(seed);
        let back = from_json(&to_json(&topo)).expect("round trip");
        prop_assert_eq!(back.node_count(), topo.node_count());
        prop_assert_eq!(back.link_count(), topo.link_count());
        for id in topo.node_ids() {
            prop_assert_eq!(back.node(id).name(), topo.node(id).name());
            prop_assert_eq!(back.node(id).load_avg(), topo.node(id).load_avg());
            prop_assert_eq!(back.node(id).kind(), topo.node(id).kind());
        }
        for e in topo.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                prop_assert_eq!(back.link(e).capacity(dir), topo.link(e).capacity(dir));
                prop_assert_eq!(back.link(e).used(dir), topo.link(e).used(dir));
            }
        }
    }

    /// Max-min allocation: never oversubscribes, every flow bottlenecked,
    /// and no flow can be raised without lowering a smaller-or-equal one
    /// (checked via the bottleneck condition).
    #[test]
    fn maxmin_allocation_laws(
        caps in prop::collection::vec(1.0f64..1000.0, 1..8),
        flow_spec in prop::collection::vec(prop::collection::vec(0usize..8, 1..4), 1..8),
    ) {
        let slots = caps.len();
        let flows: Vec<Vec<usize>> = flow_spec
            .into_iter()
            .map(|path| {
                let mut p: Vec<usize> = path.into_iter().map(|s| s % slots).collect();
                p.sort_unstable();
                p.dedup();
                p
            })
            .collect();
        let rates = max_min_allocate(&caps, &flows);
        let mut used = vec![0.0f64; slots];
        for (f, path) in flows.iter().enumerate() {
            prop_assert!(rates[f] > 0.0);
            for &s in path {
                used[s] += rates[f];
            }
        }
        for s in 0..slots {
            prop_assert!(used[s] <= caps[s] * (1.0 + 1e-9), "slot {s} oversubscribed");
        }
        // Bottleneck condition: every flow crosses a saturated slot where
        // it has a maximal rate among that slot's flows.
        for (f, path) in flows.iter().enumerate() {
            let ok = path.iter().any(|&s| {
                let saturated = used[s] >= caps[s] * (1.0 - 1e-9);
                let maximal = flows
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.contains(&s))
                    .all(|(g, _)| rates[g] <= rates[f] * (1.0 + 1e-9));
                saturated && maximal
            });
            prop_assert!(ok, "flow {f} has no max-min bottleneck");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cyclic topologies (§3.3): static routing fixes one shortest path per
    /// ordered pair, and asking twice gives the identical route.
    #[test]
    fn cyclic_routes_are_fixed_and_shortest(n in 3usize..10, rows in 2usize..4, cols in 2usize..5) {
        for (topo, ids) in [
            nodesel_topology::builders::ring(n, 100.0 * MBPS),
            nodesel_topology::builders::grid(rows, cols, 100.0 * MBPS),
        ] {
            let routes = topo.routes();
            for &a in &ids {
                let dist = nodesel_topology::metrics::hop_distances(&topo, a);
                for &b in &ids {
                    let p1 = routes.path(a, b).unwrap();
                    let p2 = routes.path(a, b).unwrap();
                    prop_assert_eq!(&p1, &p2, "route must be stable");
                    prop_assert_eq!(p1.len(), dist[b.index()], "route must be shortest");
                }
            }
        }
    }

    /// Selection still returns well-formed results on cyclic graphs (the
    /// algorithms are heuristic there, but must stay sound).
    #[test]
    fn selection_is_sound_on_cyclic_graphs(seed in 0u64..10_000, rows in 2usize..4, cols in 2usize..4) {
        let (mut topo, ids) = nodesel_topology::builders::grid(rows, cols, 100.0 * MBPS);
        let mut rng = StdRng::seed_from_u64(seed);
        randomize_conditions(&mut topo, &mut rng, 3.0, 0.9);
        let m = 2 + (seed as usize) % (ids.len() - 1).min(3);
        let sel = nodesel_core_shim::balanced_on(&topo, m);
        prop_assert_eq!(sel.len(), m);
        let routes = topo.routes();
        for (i, &a) in sel.iter().enumerate() {
            for &b in sel.iter().skip(i + 1) {
                prop_assert!(routes.path(a, b).is_ok());
            }
        }
    }
}

/// Minimal indirection so this crate's tests can exercise selection on
/// cyclic graphs without a circular dev-dependency: re-implements the
/// trivial "pick m best-cpu nodes" choice used only for soundness checks.
mod nodesel_core_shim {
    use nodesel_topology::{NodeId, Topology};

    pub fn balanced_on(topo: &Topology, m: usize) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = topo.compute_nodes().collect();
        nodes.sort_by(|&a, &b| {
            topo.node(b)
                .cpu()
                .total_cmp(&topo.node(a).cpu())
                .then(a.cmp(&b))
        });
        nodes.truncate(m);
        nodes.sort_unstable();
        nodes
    }
}
