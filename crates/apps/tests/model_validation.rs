//! Model validation: the analytic performance estimates used by
//! variable-node-count selection (§3.4) must track what the simulator
//! actually measures, or sizing decisions would be meaningless.

use nodesel_apps::{airshed::airshed_program, fft::fft_program, AppModel};
use nodesel_simnet::Sim;
use nodesel_topology::builders::star;
use nodesel_topology::units::MBPS;

/// Runs a phased program on `m` idle star nodes and returns the simulated
/// runtime.
fn simulate(app: &AppModel, m: usize) -> f64 {
    let (topo, ids) = star(m, 100.0 * MBPS);
    let mut sim = Sim::new(topo);
    let handle = app.launch(&mut sim, &ids[..m]);
    sim.run();
    handle.elapsed().expect("finished")
}

#[test]
fn fft_estimate_tracks_simulation_across_node_counts() {
    let program = fft_program(8);
    for m in [2usize, 4, 8] {
        let simulated = simulate(&AppModel::Phased(program.clone()), m);
        let estimated = program.estimated_runtime(m, 1.0, 100.0 * MBPS);
        let rel = (estimated - simulated).abs() / simulated;
        assert!(
            rel < 0.15,
            "m={m}: estimated {estimated:.2}, simulated {simulated:.2} (rel {rel:.2})"
        );
    }
}

#[test]
fn airshed_estimate_tracks_simulation() {
    let program = airshed_program(2);
    for m in [3usize, 5] {
        let simulated = simulate(&AppModel::Phased(program.clone()), m);
        let estimated = program.estimated_runtime(m, 1.0, 100.0 * MBPS);
        let rel = (estimated - simulated).abs() / simulated;
        assert!(
            rel < 0.15,
            "m={m}: estimated {estimated:.2}, simulated {simulated:.2} (rel {rel:.2})"
        );
    }
}

#[test]
fn estimate_responds_to_degraded_cpu_like_the_simulator() {
    // One background job on every node halves min_cpu; both the estimate
    // and the simulation should roughly double the compute-bound runtime.
    let program = fft_program(8);
    let m = 4;
    let (topo, ids) = star(m, 100.0 * MBPS);
    let mut sim = Sim::new(topo);
    for &n in &ids {
        sim.start_compute(n, 1e9, |_| {});
    }
    let handle = AppModel::Phased(program.clone()).launch(&mut sim, &ids);
    sim.run_for(1e6);
    let simulated = handle.elapsed().expect("finished");
    let estimated = program.estimated_runtime(m, 0.5, 100.0 * MBPS);
    let rel = (estimated - simulated).abs() / simulated;
    assert!(
        rel < 0.15,
        "estimated {estimated:.2}, simulated {simulated:.2} (rel {rel:.2})"
    );
}

#[test]
fn estimate_responds_to_degraded_bandwidth() {
    // Throttle the network: transposes dominate, and the estimate must
    // follow. Use a 10 Mbps star so communication is 10x slower.
    let program = fft_program(8);
    let m = 4;
    let (topo, ids) = star(m, 10.0 * MBPS);
    let mut sim = Sim::new(topo);
    let handle = AppModel::Phased(program.clone()).launch(&mut sim, &ids);
    sim.run();
    let simulated = handle.elapsed().expect("finished");
    let estimated = program.estimated_runtime(m, 1.0, 10.0 * MBPS);
    let rel = (estimated - simulated).abs() / simulated;
    assert!(
        rel < 0.15,
        "estimated {estimated:.2}, simulated {simulated:.2} (rel {rel:.2})"
    );
}
