//! Parity proptests: the incremental flow engine (sharing-cluster
//! reallocation + completion heap + lazy settlement) must be bit-identical
//! to the full-recompute reference on arbitrary churn sequences — same
//! rates, link rates, remaining bits, byte counters, and completion order.

mod common;

use nodesel_simnet::{FlowEngine, FlowId, FlowTable, Sim, SimTime};
use nodesel_topology::builders::random_tree;
use nodesel_topology::units::MBPS;
use nodesel_topology::{Direction, ShardPlan, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One churn step against both tables.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Add a flow between two (distinct) random nodes.
    Add { bits: f64 },
    /// Remove a random live flow (cancellation).
    Remove,
    /// Advance time and drain completions.
    Advance { secs: f64 },
}

fn random_ops(rng: &mut StdRng, n: usize) -> Vec<Op> {
    (0..n)
        .map(|_| match rng.random_range(0..5u32) {
            0 | 1 => Op::Add {
                bits: rng.random_range(0.0..400.0) * MBPS,
            },
            2 => Op::Remove,
            _ => Op::Advance {
                secs: rng.random_range(0.0..3.0),
            },
        })
        .collect()
}

/// Asserts every observable of the two tables matches bit-for-bit.
fn assert_tables_match(topo: &Topology, live: &[FlowId], a: &FlowTable, b: &FlowTable) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.next_completion(), b.next_completion());
    for &id in live {
        assert_eq!(
            a.flow_rate(id).map(f64::to_bits),
            b.flow_rate(id).map(f64::to_bits),
            "rate mismatch for {id:?}"
        );
        assert_eq!(
            a.remaining(id).map(f64::to_bits),
            b.remaining(id).map(f64::to_bits),
            "remaining mismatch for {id:?}"
        );
        assert_eq!(a.endpoints(id), b.endpoints(id));
    }
    for e in topo.edge_ids() {
        for dir in [Direction::AtoB, Direction::BtoA] {
            assert_eq!(
                a.link_rate(e, dir).to_bits(),
                b.link_rate(e, dir).to_bits(),
                "link rate mismatch on {e:?}/{dir:?}"
            );
            assert_eq!(
                a.link_bits(e, dir).to_bits(),
                b.link_bits(e, dir).to_bits(),
                "byte counter mismatch on {e:?}/{dir:?}"
            );
        }
    }
}

/// Drives the same churn script through an incremental and a reference
/// table, checking full observable parity after every step.
fn run_parity(seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let computes = rng.random_range(2..7);
    let networks = rng.random_range(0..5);
    let (topo, ids) = random_tree(&mut rng, computes, networks, 100.0 * MBPS);
    let routes = topo.routes();
    let mut inc = FlowTable::new(&topo);
    let mut oracle = FlowTable::with_engine(&topo, FlowEngine::Reference);
    assert_eq!(inc.engine(), FlowEngine::Incremental);
    let mut now = SimTime::ZERO;
    let mut next_id = 1u64;
    let mut live: Vec<FlowId> = Vec::new();
    let mut finished_inc = Vec::new();
    let mut finished_ref = Vec::new();
    for op in random_ops(&mut rng, steps) {
        match op {
            Op::Add { bits } => {
                let a = ids[rng.random_range(0..ids.len())];
                let b = ids[rng.random_range(0..ids.len())];
                if a == b {
                    continue;
                }
                let id = FlowId(next_id);
                next_id += 1;
                let path = routes.path(a, b).unwrap();
                inc.add_flow(id, &path, bits);
                oracle.add_flow(id, &path, bits);
                live.push(id);
            }
            Op::Remove => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(rng.random_range(0..live.len()));
                assert!(inc.remove_flow(id));
                assert!(oracle.remove_flow(id));
            }
            Op::Advance { secs } => {
                now = now.after_secs_f64(secs);
                inc.settle(now);
                oracle.settle(now);
                assert_eq!(inc.next_wake(), oracle.next_wake());
                inc.take_finished_into(&mut finished_inc);
                oracle.take_finished_into(&mut finished_ref);
                // Completion order parity (both are drained in id order).
                assert_eq!(finished_inc, finished_ref);
                live.retain(|id| !finished_inc.contains(id));
            }
        }
        assert_tables_match(&topo, &live, &inc, &oracle);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental and reference engines agree bit-for-bit on every
    /// observable after every step of a random churn sequence.
    #[test]
    fn incremental_matches_reference_on_random_churn(seed in 0u64..100_000) {
        run_parity(seed, 60);
    }

    /// Whole-simulation parity: a Sim driven by each engine produces the
    /// same final clock, statistics, event trace, and octet counters.
    #[test]
    fn sim_runs_are_engine_independent(seed in 0u64..100_000) {
        let run = |engine| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x51A7);
            let (topo, ids) = random_tree(&mut rng, 4, 2, 100.0 * MBPS);
            let mut sim = Sim::with_flow_engine(topo.clone(), engine);
            sim.enable_trace(usize::MAX);
            for _ in 0..rng.random_range(1..10) {
                let a = ids[rng.random_range(0..ids.len())];
                let b = ids[rng.random_range(0..ids.len())];
                if a == b {
                    continue;
                }
                let bits = rng.random_range(0.0..300.0) * MBPS;
                let delay = rng.random_range(0.0..5.0);
                sim.schedule_in(delay, move |s| {
                    s.start_transfer(a, b, bits, |_| {});
                });
            }
            let end = sim.run();
            let mut counters = Vec::new();
            for e in topo.edge_ids() {
                for dir in [Direction::AtoB, Direction::BtoA] {
                    counters.push(sim.link_bits(e, dir).to_bits());
                }
            }
            (end, sim.stats(), sim.take_trace().0, counters)
        };
        prop_assert_eq!(run(FlowEngine::Incremental), run(FlowEngine::Reference));
    }

    /// Starved flows (zero-capacity direction) are engine-parity too and
    /// never produce a completion.
    #[test]
    fn starved_flows_stay_parked(bits in 1.0f64..1e9) {
        let mut topo = Topology::new();
        let a = topo.add_compute_node("a", 1.0);
        let b = topo.add_compute_node("b", 1.0);
        topo.add_link_full(a, b, 0.0, 100.0 * MBPS, 0.0);
        let routes = topo.routes();
        let path = routes.path(a, b).unwrap();
        for engine in [FlowEngine::Incremental, FlowEngine::Reference] {
            let mut ft = FlowTable::with_engine(&topo, engine);
            ft.add_flow(FlowId(1), &path, bits);
            prop_assert_eq!(ft.flow_rate(FlowId(1)), Some(0.0));
            prop_assert_eq!(ft.next_wake(), SimTime::NEVER);
            ft.settle(SimTime::from_secs(86_400));
            prop_assert!(ft.take_finished().is_empty());
            prop_assert_eq!(ft.remaining(FlowId(1)).map(f64::to_bits), Some(bits.to_bits()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The parallel engine is flow-engine independent too: on a
    /// federated topology, sharded runs over the incremental and the
    /// reference engine both reproduce the serial incremental run —
    /// crossing the two parity dimensions (flow solver × executor).
    #[test]
    fn parallel_runs_are_engine_independent(seed in 0u64..100_000) {
        let (topo, subnets) = common::federation(4, None);
        let plan = ShardPlan::components(&topo);
        let serial = common::serial_run(
            &topo, &plan, &subnets, true, seed, 14.0, FlowEngine::Incremental,
        );
        for engine in [FlowEngine::Incremental, FlowEngine::Reference] {
            let (got, fallback) = common::parallel_run(
                &topo, &plan, &subnets, true, seed, 14.0, 4, engine,
            );
            prop_assert_eq!(fallback, None);
            prop_assert_eq!(&got, &serial, "diverged on {:?}", engine);
        }
    }
}
