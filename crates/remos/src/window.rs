//! Flat fixed-capacity ring buffer for sample histories.

/// A bounded history of `f64` samples ordered oldest → newest.
///
/// Backed by one flat allocation of the window capacity (made at collector
/// install time); pushing past capacity overwrites the oldest sample in
/// place, so steady-state collection allocates nothing and the ring clones
/// in one `memcpy` — the property [`crate::Remos`]'s state relies on to
/// make simulator forks cheap.
#[derive(Debug, Clone)]
pub struct Window {
    buf: Box<[f64]>,
    /// Index of the oldest sample.
    head: usize,
    len: usize,
}

impl Window {
    /// An empty window retaining at most `capacity` samples.
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "window must hold at least one sample");
        Window {
            buf: vec![0.0; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.len == self.buf.len() {
            self.buf[self.head] = x;
            self.head = (self.head + 1) % self.buf.len();
        } else {
            self.buf[(self.head + self.len) % self.buf.len()] = x;
            self.len += 1;
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th retained sample, oldest first.
    ///
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "window index out of range");
        self.buf[(self.head + i) % self.buf.len()]
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<f64> {
        (self.len > 0).then(|| self.get(self.len - 1))
    }

    /// Iterates the retained samples oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl FromIterator<f64> for Window {
    /// Collects into a window sized to the source (minimum capacity one).
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let xs: Vec<f64> = iter.into_iter().collect();
        let mut w = Window::new(xs.len().max(1));
        for x in xs {
            w.push(x);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps() {
        let mut w = Window::new(3);
        assert!(w.is_empty());
        assert_eq!(w.latest(), None);
        for x in 1..=3 {
            w.push(x as f64);
        }
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![1.0, 2.0, 3.0]);
        w.push(4.0);
        w.push(5.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![3.0, 4.0, 5.0]);
        assert_eq!(w.latest(), Some(5.0));
        assert_eq!(w.get(0), 3.0);
    }

    #[test]
    fn capacity_one_keeps_newest() {
        let mut w = Window::new(1);
        w.push(1.0);
        w.push(2.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.latest(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        Window::new(0);
    }

    #[test]
    fn clone_is_independent() {
        let mut w = Window::new(2);
        w.push(1.0);
        let mut c = w.clone();
        c.push(2.0);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![1.0]);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1.0, 2.0]);
    }
}
