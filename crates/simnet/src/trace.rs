//! Optional event tracing.
//!
//! When enabled, the engine records a structured entry for every task and
//! flow lifecycle event. Traces serve three purposes: debugging workload
//! models, asserting fine-grained behaviour in tests (ordering, overlap,
//! adaptivity), and checking determinism at full resolution (two runs
//! with the same seed must produce byte-identical traces).

use crate::flows::FlowId;
use crate::host::TaskId;
use crate::time::{EventKey, SimTime};
use nodesel_topology::{EdgeId, NodeId};

/// One traced lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A CPU task was started on a node.
    TaskStarted {
        /// Event time.
        at: SimTime,
        /// Host node.
        node: NodeId,
        /// Task id.
        id: TaskId,
        /// Reference-CPU-seconds of demand.
        work: f64,
    },
    /// A CPU task completed.
    TaskFinished {
        /// Event time.
        at: SimTime,
        /// Host node.
        node: NodeId,
        /// Task id.
        id: TaskId,
    },
    /// A CPU task was cancelled before completion.
    TaskCancelled {
        /// Event time.
        at: SimTime,
        /// Host node.
        node: NodeId,
        /// Task id.
        id: TaskId,
    },
    /// A bulk transfer was started.
    FlowStarted {
        /// Event time.
        at: SimTime,
        /// Flow id.
        id: FlowId,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Payload bits.
        bits: f64,
    },
    /// A bulk transfer fully drained (delivery fires one latency later).
    FlowFinished {
        /// Event time.
        at: SimTime,
        /// Flow id.
        id: FlowId,
    },
    /// A bulk transfer was cancelled.
    FlowCancelled {
        /// Event time.
        at: SimTime,
        /// Flow id.
        id: FlowId,
    },
    /// A link went down (fault injection or administrative action).
    LinkDown {
        /// Event time.
        at: SimTime,
        /// The affected link.
        edge: EdgeId,
    },
    /// A previously-down link came back up.
    LinkUp {
        /// Event time.
        at: SimTime,
        /// The affected link.
        edge: EdgeId,
    },
    /// A node crashed: its tasks were killed and its endpoint flows
    /// aborted.
    NodeDown {
        /// Event time.
        at: SimTime,
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node rebooted (empty run queue, links restored).
    NodeUp {
        /// Event time.
        at: SimTime,
        /// The rebooted node.
        node: NodeId,
    },
    /// A CPU task was killed by a host crash (its completion callback
    /// will never fire).
    TaskKilled {
        /// Event time.
        at: SimTime,
        /// Host node.
        node: NodeId,
        /// Task id.
        id: TaskId,
    },
    /// A bulk transfer was aborted because one of its endpoints crashed.
    FlowAborted {
        /// Event time.
        at: SimTime,
        /// Flow id.
        id: FlowId,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::TaskStarted { at, .. }
            | TraceEvent::TaskFinished { at, .. }
            | TraceEvent::TaskCancelled { at, .. }
            | TraceEvent::FlowStarted { at, .. }
            | TraceEvent::FlowFinished { at, .. }
            | TraceEvent::FlowCancelled { at, .. }
            | TraceEvent::LinkDown { at, .. }
            | TraceEvent::LinkUp { at, .. }
            | TraceEvent::NodeDown { at, .. }
            | TraceEvent::NodeUp { at, .. }
            | TraceEvent::TaskKilled { at, .. }
            | TraceEvent::FlowAborted { at, .. } => at,
        }
    }
}

/// A bounded trace buffer (unbounded when `limit == usize::MAX`).
///
/// Entries carry the dispatch key of the engine event that emitted them,
/// so traces recorded by independent shards can be merged back into the
/// exact serial order (dispatch keys are totally ordered and each key
/// belongs to exactly one shard).
#[derive(Debug, Default, Clone)]
pub(crate) struct Tracer {
    events: Vec<(EventKey, TraceEvent)>,
    limit: usize,
    dropped: u64,
}

impl Tracer {
    pub(crate) fn new(limit: usize) -> Self {
        Tracer {
            events: Vec::new(),
            limit,
            dropped: 0,
        }
    }

    pub(crate) fn limit(&self) -> usize {
        self.limit
    }

    pub(crate) fn record(&mut self, key: EventKey, e: TraceEvent) {
        if self.events.len() < self.limit {
            self.events.push((key, e));
        } else {
            self.dropped += 1;
        }
    }

    pub(crate) fn take(&mut self) -> (Vec<TraceEvent>, u64) {
        let (keyed, dropped) = self.take_keyed();
        (keyed.into_iter().map(|(_, e)| e).collect(), dropped)
    }

    pub(crate) fn take_keyed(&mut self) -> (Vec<(EventKey, TraceEvent)>, u64) {
        let dropped = self.dropped;
        self.dropped = 0;
        (std::mem::take(&mut self.events), dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> EventKey {
        EventKey {
            at: SimTime(i),
            domain: 0,
            seq: i,
        }
    }

    #[test]
    fn tracer_respects_limit() {
        let mut t = Tracer::new(2);
        for i in 0..5u64 {
            t.record(
                key(i),
                TraceEvent::FlowFinished {
                    at: SimTime(i),
                    id: FlowId(i),
                },
            );
        }
        let (events, dropped) = t.take();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 3);
        // After take, the buffer refills.
        let mut t2 = Tracer::new(2);
        t2.record(
            key(9),
            TraceEvent::FlowFinished {
                at: SimTime(9),
                id: FlowId(9),
            },
        );
        assert_eq!(t2.take().0.len(), 1);
    }

    #[test]
    fn event_timestamps_accessible() {
        let e = TraceEvent::TaskFinished {
            at: SimTime::from_secs(3),
            node: NodeId::from_index(0),
            id: TaskId(1),
        };
        assert_eq!(e.at(), SimTime::from_secs(3));
    }
}
