//! Byte-identical parity between the incremental selectors and one-shot
//! selection: along any churn sequence of snapshot epochs, `refresh` must
//! return exactly what a fresh `select` on the materialized topology
//! would — nodes, quality, score, iteration counts, and error cases.
//!
//! Random connected topologies, random constraint sets (including corners
//! where the incremental paths are ineligible and must fall back to a
//! full re-solve), and several epochs of random node/link churn.

use std::collections::HashSet;
use std::sync::Arc;

use nodesel_core::{
    select, selector_for, Constraints, GreedyPolicy, Objective, SelectionRequest, Weights,
};
use nodesel_topology::builders::random_tree;
use nodesel_topology::units::MBPS;
use nodesel_topology::{Direction, NetDelta, NetSnapshot, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random connected topology: a random tree plus up to four chords, with
/// random loads and per-direction link utilization.
fn random_topology(
    seed: u64,
    computes: usize,
    networks: usize,
    chords: usize,
) -> (Topology, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut topo, compute_ids) = random_tree(&mut rng, computes, networks, 100.0 * MBPS);
    let all: Vec<NodeId> = topo.node_ids().collect();
    for _ in 0..chords {
        let a = all[rng.random_range(0..all.len())];
        let b = all[rng.random_range(0..all.len())];
        if a != b {
            topo.add_link(a, b, 100.0 * MBPS);
        }
    }
    for n in compute_ids.iter().copied() {
        topo.set_load_avg(n, rng.random_range(0.0..4.0));
    }
    for e in topo.edge_ids().collect::<Vec<_>>() {
        for dir in [Direction::AtoB, Direction::BtoA] {
            let cap = topo.link(e).capacity(dir);
            topo.set_link_used(e, dir, cap * rng.random_range(0.0..0.95));
        }
    }
    (topo, compute_ids)
}

/// Random constraint set, covering the corners where incremental replay
/// is ineligible (required nodes, CPU floors) and where link churn forces
/// fallback (bandwidth floors).
fn random_constraints(seed: u64, ids: &[NodeId]) -> Constraints {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut c = Constraints::none();
    if rng.random_range(0..3) == 0 {
        c.required = vec![ids[rng.random_range(0..ids.len())]];
    }
    if rng.random_range(0..3) == 0 {
        c.min_cpu = Some(rng.random_range(0.1..0.6));
    }
    if rng.random_range(0..3) == 0 {
        c.min_bandwidth = Some(rng.random_range(1.0..40.0) * MBPS);
    }
    if rng.random_range(0..4) == 0 {
        let keep = 1 + rng.random_range(0..ids.len());
        c.allowed = Some(ids.iter().copied().take(keep).collect::<HashSet<_>>());
    }
    c
}

/// One epoch of churn: some compute-node loads move, and (when `links`
/// is set) some directed-link utilizations move too.
fn random_delta(seed: u64, topo: &Topology, links: bool) -> NetDelta {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5DE17A);
    let mut delta = NetDelta::default();
    for n in topo.compute_nodes() {
        if rng.random_range(0..2) == 0 {
            delta.nodes.push((n, rng.random_range(0.0..4.0)));
        }
    }
    if links {
        for e in topo.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                if rng.random_range(0..3) == 0 {
                    let cap = topo.link(e).capacity(dir);
                    delta
                        .links
                        .push((e, dir, cap * rng.random_range(0.0..0.95)));
                }
            }
        }
    }
    delta
}

/// Drives one persistent selector through `steps` epochs and checks each
/// refresh against a fresh solve on the materialized topology.
fn check_parity(request: &SelectionRequest, topo: Topology, seed: u64, steps: usize, links: bool) {
    let mut snap = NetSnapshot::capture(Arc::new(topo));
    let mut selector = selector_for(request.objective);
    let primed = selector.select(&snap, request);
    assert_eq!(primed, select(&snap.to_topology(), request), "prime");
    for step in 0..steps {
        let delta = random_delta(seed.wrapping_add(step as u64), snap.structure_arc(), links);
        let next = snap.apply(&delta);
        let incremental = selector.refresh(&next, &delta);
        let fresh = select(&next.to_topology(), request);
        assert_eq!(incremental, fresh, "step {step} of {steps} (links {links})");
        snap = next;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn refresh_matches_fresh_select_under_node_churn(
        seed in 0u64..100_000,
        computes in 2usize..12,
        networks in 0usize..8,
        chords in 0usize..4,
        steps in 1usize..5,
    ) {
        let (topo, ids) = random_topology(seed, computes, networks, chords);
        let constraints = random_constraints(seed, &ids);
        let m = 1 + (seed as usize) % ids.len().min(5);
        for objective in [
            Objective::Compute,
            Objective::Communication,
            Objective::Balanced(Weights::comm_priority(2.0)),
        ] {
            let request = SelectionRequest {
                count: m,
                objective,
                constraints: constraints.clone(),
                reference_bandwidth: if seed % 3 == 0 { Some(155.0 * MBPS) } else { None },
                policy: GreedyPolicy::Sweep,
            };
            check_parity(&request, topo.clone(), seed, steps, false);
        }
    }

    #[test]
    fn refresh_matches_fresh_select_under_full_churn(
        seed in 0u64..100_000,
        computes in 2usize..12,
        networks in 0usize..8,
        chords in 0usize..4,
        steps in 1usize..5,
    ) {
        let (topo, ids) = random_topology(seed, computes, networks, chords);
        let constraints = random_constraints(seed, &ids);
        let m = 1 + (seed as usize) % ids.len().min(5);
        for (objective, policy) in [
            (Objective::Compute, GreedyPolicy::Sweep),
            (Objective::Communication, GreedyPolicy::Sweep),
            (Objective::Balanced(Weights::EQUAL), GreedyPolicy::Sweep),
            // Faithful is never replayed incrementally; it must fall back.
            (Objective::Balanced(Weights::EQUAL), GreedyPolicy::Faithful),
        ] {
            let request = SelectionRequest {
                count: m,
                objective,
                constraints: constraints.clone(),
                reference_bandwidth: None,
                policy,
            };
            check_parity(&request, topo.clone(), seed, steps, true);
        }
    }
}
